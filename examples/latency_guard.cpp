// Latency guard: protect an interactive service from DVFS power capping.
//
//   build/examples/latency_guard
//
// Hosts a Redis-like service on an over-provisioned row and compares its
// tail latency when the row budget is enforced by (a) hardware capping vs
// (b) Ampere steering batch work away before the cap engages — the §4.3
// scenario an SRE would check before enabling over-provisioning on a row
// with latency-critical tenants.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/controller.h"
#include "src/workload/batch_workload.h"
#include "src/workload/interactive_service.h"

using namespace ampere;  // NOLINT: example brevity.

namespace {

double RunArm(bool use_ampere) {
  Rng rng(17);
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 2;
  topo.racks_per_row = 2;
  topo.servers_per_rack = 15;  // Two rows of 30.
  topo.capping_enabled = true;
  DataCenter dc(topo, &sim);
  double budget = 30 * 250.0 / 1.25;  // Row 0 over-provisioned at rO=0.25.
  dc.SetRowCappingBudget(RowId(0), budget);

  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));

  std::vector<ServerId> redis{ServerId(0), ServerId(1), ServerId(2)};
  for (ServerId id : redis) {
    dc.SetReserved(id, true);
  }
  std::vector<ServerId> row0_batch;
  for (ServerId id : dc.servers_in_row(RowId(0))) {
    if (!dc.server(id).reserved()) {
      row0_batch.push_back(id);
    }
  }
  monitor.RegisterGroup("row0", {dc.servers_in_row(RowId(0)).begin(),
                                 dc.servers_in_row(RowId(0)).end()});

  InteractiveServiceParams service_params;
  service_params.servers = redis;
  service_params.requests_per_sec_per_server = 2500.0;
  InteractiveService service(service_params, &sim, &dc, rng.Fork(3));

  JobIdAllocator ids;
  BatchWorkloadParams batch;
  batch.arrivals.base_rate_per_min = 31.0;  // Row 0 runs ~8 % over budget.
  BatchWorkload workload(batch, &sim, &scheduler, &ids, rng.Fork(4));

  std::unique_ptr<AmpereController> ampere;
  if (use_ampere) {
    AmpereControllerConfig config;
    config.effect = FreezeEffectModel(0.013);
    config.et = EtEstimator::Constant(0.04);
    ampere = std::make_unique<AmpereController>(&scheduler, &monitor, config);
    ampere->AddDomain({"row0", row0_batch, budget});
    ampere->Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  }

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  service.Run(SimTime::Minutes(55), SimTime::Minutes(75),
              SimTime::Minutes(60));
  sim.RunUntil(SimTime::Minutes(80));
  return service.latency_histogram(RedisOp::kGet).Quantile(0.999);
}

}  // namespace

int main() {
  std::printf("measuring GET p99.9 with hardware capping only...\n");
  double capped = RunArm(/*use_ampere=*/false);
  std::printf("measuring GET p99.9 with Ampere...\n");
  double guarded = RunArm(/*use_ampere=*/true);
  std::printf("\nGET p99.9 latency:\n");
  std::printf("  power capping: %.3f ms\n", capped);
  std::printf("  Ampere:        %.3f ms  (%.2fx better)\n", guarded,
              capped / guarded);
  return 0;
}
