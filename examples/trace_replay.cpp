// Trace workflow: capture a workload as a CSV trace, replay it under
// Ampere, and export the resulting power telemetry as CSV.
//
//   build/examples/trace_replay [trace.csv [power.csv]]
//
// Demonstrates the data-exchange surfaces: SampleTrace / WriteJobTraceFile /
// ReadJobTraceFile / TraceWorkload for workloads, and ExportCsvFile for
// telemetry — the pieces a user needs to run Ampere experiments against
// their own recorded workloads and plot the results.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/csv_export.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/trace.h"

using namespace ampere;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  std::string trace_path = argc > 1 ? argv[1] : "/tmp/ampere_trace.csv";
  std::string power_path = argc > 2 ? argv[2] : "/tmp/ampere_power.csv";

  // 1. Materialize 6 hours of the calibrated synthetic workload as a trace
  //    (a user would instead record one from their own cluster).
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 40.0;
  params.arrivals.diurnal_amplitude = 0.0;
  auto trace = SampleTrace(params, SimTime::Hours(6), Rng(11));
  WriteJobTraceFile(trace_path, trace);
  std::printf("wrote %zu job records to %s\n", trace.size(),
              trace_path.c_str());

  // 2. Replay the trace through a controlled row.
  Rng rng(12);
  Simulation sim;
  TopologyConfig topology;
  topology.num_rows = 2;
  topology.racks_per_row = 2;
  topology.servers_per_rack = 20;
  DataCenter dc(topology, &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  JobIdAllocator ids;
  TraceWorkload workload(ReadJobTraceFile(trace_path), &sim, &scheduler,
                         &ids);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  std::vector<ServerId> row0(dc.servers_in_row(RowId(0)).begin(),
                             dc.servers_in_row(RowId(0)).end());
  monitor.RegisterGroup("row0", row0);

  AmpereControllerConfig controller_config;
  controller_config.effect = FreezeEffectModel(0.013);
  controller_config.et = EtEstimator::Constant(0.02);
  AmpereController ampere(&scheduler, &monitor, controller_config);
  double budget = 40 * 250.0 / 1.17;  // rO = 0.17 on row 0.
  ampere.AddDomain({"row0", row0, budget});

  workload.Start();
  monitor.Start(SimTime::Minutes(1));
  ampere.Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  sim.RunUntil(SimTime::Hours(6.5));

  std::printf("replayed %llu/%zu jobs; %llu placed; freeze ops %llu\n",
              static_cast<unsigned long long>(workload.jobs_submitted()),
              workload.jobs_total(),
              static_cast<unsigned long long>(scheduler.jobs_placed()),
              static_cast<unsigned long long>(ampere.freeze_ops()));

  // 3. Export row/group power telemetry for plotting.
  std::vector<std::string> series{
      PowerMonitor::GroupSeries("row0"),
      PowerMonitor::RowSeries(RowId(1)),
      PowerMonitor::kTotalSeries,
  };
  ExportCsvFile(db, series, power_path);
  std::printf("exported %zu telemetry series (%zu points) to %s\n",
              series.size(), db.TotalPoints(), power_path.c_str());
  return 0;
}
