// Fleet observatory: a live text dashboard over a controlled multi-row fleet.
//
//   build/examples/fleet_observatory [days] [--frame-hours=H]
//                                    [--log-level=debug|info|warning|error|off]
//
// Runs a 4-row fleet with distinct per-row products for N simulated days
// with an Ampere controller deployed on every row, advancing the simulation
// one frame (default 6 h) at a time. Each row's controller is scoped under
// its own obs domain ("row0/".."row3/"), exactly how a campus scopes its
// DCs, so the registry splits into per-row metric columns and the flight
// recorder labels every timeline event with the row it came from. After
// each frame the dashboard renders what a fleet operator's terminal would
// show:
//
//   - per-row power against the control budget and the frozen-server count,
//   - per-row metric columns (one column per control domain) plus the
//     unscoped fleet-wide counters and the span profile,
//   - the recent-events panel: the tail of the flight recorder's ring,
//   - the tail of each controller's DecisionJournal (the audit log),
//   - the journal-fed model-drift gauges (rolling RMSE, E_t utilization).
//
// The final frame also prints the closing §2.2-style measurement study
// (per-row utilization, unused power, E_t profile) and a Prometheus text
// exposition sample, so the example doubles as living documentation for
// docs/observability.md.
//
// Log verbosity follows the harness convention: AMPERE_LOG_LEVEL in the
// environment, overridden by --log-level (both parsed by ParseHarnessArgs,
// mirroring --jobs / AMPERE_JOBS).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/control/et_estimator.h"
#include "src/core/controller.h"
#include "src/core/fleet.h"
#include "src/harness/runner.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/stats/descriptive.h"

using namespace ampere;  // NOLINT: example brevity.

namespace {

using Controllers = std::vector<std::unique_ptr<AmpereController>>;

void RenderPowerPanel(Fleet& fleet, const Controllers& controllers,
                      const std::vector<double>& domain_budgets) {
  std::printf("  %-6s %10s %10s %8s %8s %8s\n", "row", "watts", "budget",
              "P_norm", "frozen", "u");
  for (int32_t r = 0; r < fleet.dc().num_rows(); ++r) {
    size_t d = static_cast<size_t>(r);
    double watts = fleet.monitor().LatestRowWatts(RowId(r));
    double budget = domain_budgets[d];
    std::printf("  row%-3d %10.0f %10.0f %8.3f %8zu %8.3f\n", r, watts,
                budget, watts / budget, controllers[d]->frozen_count(0),
                controllers[d]->freeze_ratio(0));
  }
}

// Per-domain metric columns: every "rowK/" counter and gauge becomes one
// row of the table with one column per control domain — the same split a
// campus gets per DC. Fleet-wide (unscoped) counters follow on one line.
void RenderPerRowMetricColumns(const obs::MetricsSnapshot& snapshot,
                               int num_rows) {
  std::vector<std::string> prefixes;
  for (int r = 0; r < num_rows; ++r) {
    prefixes.push_back("row" + std::to_string(r) + "/");
  }
  auto scoped_base = [&prefixes](const std::string& name) -> std::string {
    for (const std::string& p : prefixes) {
      if (name.rfind(p, 0) == 0) return name.substr(p.size());
    }
    return "";
  };

  std::vector<std::string> counter_names;
  for (const obs::CounterValue& c : snapshot.counters) {
    std::string base = scoped_base(c.name);
    if (!base.empty() && std::find(counter_names.begin(), counter_names.end(),
                                   base) == counter_names.end()) {
      counter_names.push_back(base);
    }
  }
  std::sort(counter_names.begin(), counter_names.end());

  std::printf("  %-26s", "counter");
  for (int r = 0; r < num_rows; ++r) {
    std::printf(" %10s", ("row" + std::to_string(r)).c_str());
  }
  std::printf("\n");
  for (const std::string& base : counter_names) {
    std::printf("  %-26s", base.c_str());
    for (const std::string& p : prefixes) {
      const uint64_t* value = snapshot.FindCounter(p + base);
      if (value != nullptr) {
        std::printf(" %10llu", static_cast<unsigned long long>(*value));
      } else {
        std::printf(" %10s", "-");
      }
    }
    std::printf("\n");
  }

  std::vector<std::string> gauge_names;
  for (const obs::GaugeValue& g : snapshot.gauges) {
    std::string base = scoped_base(g.name);
    if (!base.empty() && std::find(gauge_names.begin(), gauge_names.end(),
                                   base) == gauge_names.end()) {
      gauge_names.push_back(base);
    }
  }
  std::sort(gauge_names.begin(), gauge_names.end());
  for (const std::string& base : gauge_names) {
    std::printf("  %-26s", base.c_str());
    for (const std::string& p : prefixes) {
      const double* value = snapshot.FindGauge(p + base);
      if (value != nullptr) {
        std::printf(" %10.4g", *value);
      } else {
        std::printf(" %10s", "-");
      }
    }
    std::printf("\n");
  }

  std::printf("  fleet-wide:");
  for (const obs::CounterValue& c : snapshot.counters) {
    if (scoped_base(c.name).empty()) {
      std::printf("  %s=%llu", c.name.c_str(),
                  static_cast<unsigned long long>(c.value));
    }
  }
  std::printf("\n  spans:\n");
  std::printf("  %-28s %10s %12s %12s %12s\n", "span", "count", "mean_us",
              "p50_us", "p99_us");
  for (const obs::SpanStats& s : snapshot.spans) {
    std::printf("  %-28s %10llu %12.2f %12.2f %12.2f\n", s.name.c_str(),
                static_cast<unsigned long long>(s.count), s.mean_ns() / 1e3,
                s.p50_ns() / 1e3, s.p99_ns() / 1e3);
  }
}

// The flight recorder's ring, newest-last: what just happened, per track.
void RenderRecentEvents(const obs::FlightRecorder& recorder, size_t n) {
  std::printf("  %-6s %8s %-20s %-16s %11s %11s %8s\n", "seq", "hour",
              "event", "track", "a", "b", "c");
  for (const obs::TimelineEvent& e : recorder.Tail(n)) {
    const std::string track = std::string(obs::DomainPrefix(e.domain)) +
                              std::string(obs::TimelineEventSource(e.type));
    std::printf("  %-6llu %8.2f %-20s %-16s %11.4g %11.4g %8llu\n",
                static_cast<unsigned long long>(e.seq), e.time.hours(),
                std::string(obs::TimelineEventTypeName(e.type)).c_str(),
                track.c_str(), e.a, e.b,
                static_cast<unsigned long long>(e.c));
  }
}

void RenderJournalTails(const Controllers& controllers, size_t n_per_row) {
  std::printf("  %-6s %8s %6s %8s %8s %6s %6s %6s %6s\n", "seq", "hour",
              "row", "P_norm", "u", "nf", "frz", "thaw", "cap");
  for (const auto& controller : controllers) {
    for (const obs::DecisionRecord& r : controller->journal().Tail(n_per_row)) {
      std::printf("  %-6llu %8.2f %6s %8.3f %8.3f %6u %6u %6u %6s\n",
                  static_cast<unsigned long long>(r.seq), r.time.hours(),
                  r.domain.c_str(), r.normalized_power, r.u, r.n_freeze,
                  r.freeze_ops, r.unfreeze_ops, r.cap_engaged ? "yes" : "no");
    }
  }
}

void RenderDriftPanel(const Controllers& controllers, size_t window) {
  std::printf("  %-6s %14s %16s\n", "row", "model_rmse", "et_margin_util");
  for (size_t r = 0; r < controllers.size(); ++r) {
    std::string domain = "row" + std::to_string(r);
    auto rmse = controllers[r]->journal().RollingModelRmse(window, domain);
    auto util =
        controllers[r]->journal().RollingEtMarginUtilization(window, domain);
    std::printf("  row%-3zu %14s %16s\n", r,
                rmse ? std::to_string(*rmse).c_str() : "-",
                util ? std::to_string(*util).c_str() : "-");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // ParseHarnessArgs applies AMPERE_LOG_LEVEL, then --log-level on top —
  // the same precedence every bench uses. Positionals stay ours.
  harness::HarnessArgs args = harness::ParseHarnessArgs(argc, argv);
  int days = 2;
  double frame_hours = 6.0;
  for (const std::string& arg : args.positional) {
    if (arg.rfind("--frame-hours=", 0) == 0) {
      frame_hours = std::atof(arg.c_str() + 14);
    } else {
      days = std::atoi(arg.c_str());
    }
  }
  if (days <= 0) days = 2;
  if (frame_hours <= 0.0) frame_hours = 6.0;

  // The dashboard's own registry and flight recorder: every instrumented
  // path below lands here, and every timeline event lands in the ring.
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  obs::FlightRecorder recorder(4096);
  obs::ScopedFlightRecorder recorder_scope(&recorder);

  FleetConfig config;
  config.seed = 31;
  config.topology.num_rows = 4;
  config.topology.racks_per_row = 5;
  config.topology.servers_per_rack = 20;
  config.products = {{0.70, 3.0, 0.20, 0.02},
                     {0.82, 9.0, 0.12, 0.03},
                     {0.76, 15.0, 0.25, 0.02},
                     {0.68, 21.0, 0.18, 0.025}};
  Fleet fleet(config);

  // Deploy an Ampere controller on every row, as production would (§3.2):
  // one controller per row, scoped under its own obs domain ("rowK/", the
  // campus "dcK/" convention), budget set below the rated row budget so the
  // diurnal peaks actually engage the controller now and then.
  AmpereControllerConfig controller_config;
  controller_config.effect = FreezeEffectModel(0.05);
  controller_config.et = EtEstimator::Constant(0.02);
  std::vector<double> domain_budgets;
  std::vector<std::vector<ServerId>> row_servers(
      static_cast<size_t>(fleet.dc().num_rows()));
  for (int32_t s = 0; s < fleet.dc().num_servers(); ++s) {
    RowId row = fleet.dc().row_of(ServerId(s));
    row_servers[static_cast<size_t>(row.index())].push_back(ServerId(s));
  }
  Controllers controllers;
  for (int32_t r = 0; r < fleet.dc().num_rows(); ++r) {
    std::string group = "row" + std::to_string(r);
    fleet.monitor().RegisterGroup(group,
                                  row_servers[static_cast<size_t>(r)]);
    double budget = 0.85 * fleet.dc().row_budget_watts(RowId(r));
    domain_budgets.push_back(budget);
    auto controller = std::make_unique<AmpereController>(
        &fleet.scheduler(), &fleet.monitor(), controller_config);
    controller->SetObsDomain(obs::InternDomain(group + "/"));
    controller->AddDomain({group, row_servers[static_cast<size_t>(r)],
                           budget});
    // Tick 1 s after the monitor's minute samples, the production offset.
    controller->Start(&fleet.sim(),
                      SimTime::Minutes(1) + SimTime::Seconds(1));
    controllers.push_back(std::move(controller));
  }

  const SimTime end = SimTime::Hours(24.0 * days + 2);
  std::printf("fleet observatory: %d rows, %d day(s), one frame every %.1f h "
              "(log level: %s)\n",
              fleet.dc().num_rows(), days, frame_hours,
              LogLevelName(GetLogLevel()));

  int frame = 0;
  for (SimTime now; now < end;) {
    now = std::min(now + SimTime::Hours(frame_hours), end);
    fleet.Run(now);
    ++frame;

    uint64_t decisions = 0;
    for (const auto& controller : controllers) {
      decisions += controller->journal().total_appended();
    }

    std::printf("\n========================= frame %d — t = %.1f h "
                "=========================\n", frame, now.hours());
    std::printf("\n[power]\n");
    RenderPowerPanel(fleet, controllers, domain_budgets);
    std::printf("\n[metrics by domain]\n");
    RenderPerRowMetricColumns(registry.Snapshot(), fleet.dc().num_rows());
    std::printf("\n[recent events] (%llu recorded, ring keeps %zu)\n",
                static_cast<unsigned long long>(recorder.total_appended()),
                recorder.capacity());
    RenderRecentEvents(recorder, 10);
    std::printf("\n[journal tails] (%llu decisions total)\n",
                static_cast<unsigned long long>(decisions));
    RenderJournalTails(controllers, 2);
    std::printf("\n[model drift] (window=%zu ticks/row)\n",
                controller_config.drift_window);
    RenderDriftPanel(controllers, controller_config.drift_window);
  }

  // Closing measurement study (§2.2), as before the dashboard upgrade.
  SimTime from = SimTime::Hours(2);
  std::printf("\n=================== closing survey (%d day(s)) "
              "===================\n", days);
  std::printf("\nper-row utilization and unused power (Eq. 1):\n");
  std::printf("%6s %12s %12s %12s %14s\n", "row", "mean_util", "max_util",
              "budget_W", "unused_mean_W");
  for (int32_t r = 0; r < fleet.dc().num_rows(); ++r) {
    std::vector<double> watts;
    fleet.db()
        .QueryStitched(PowerMonitor::RowSeries(RowId(r)), from, end)
        .ForEachPoint([&](const TimePoint& p) { watts.push_back(p.value); });
    Summary s = Summarize(watts);
    double budget = fleet.dc().row_budget_watts(RowId(r));
    std::printf("%6d %12.3f %12.3f %12.0f %14.0f\n", r, s.mean / budget,
                s.max / budget, budget, budget - s.mean);
  }

  std::vector<double> dc_watts;
  fleet.db()
      .QueryStitched(PowerMonitor::kTotalSeries, from, end)
      .ForEachPoint([&](const TimePoint& p) { dc_watts.push_back(p.value); });
  Summary dc_s = Summarize(dc_watts);
  double dc_budget = fleet.dc().total_budget_watts();
  std::printf("\ndata center: mean utilization %.3f of %.0f W budget "
              "(unused %.0f W on average)\n",
              dc_s.mean / dc_budget, dc_budget, dc_budget - dc_s.mean);

  // The E_t profile an Ampere deployment on row 0 would use next.
  std::vector<double> row0_norm;
  double row0_budget = fleet.dc().row_budget_watts(RowId(0));
  fleet.db()
      .QueryStitched(PowerMonitor::RowSeries(RowId(0)), from, end)
      .ForEachPoint(
          [&](const TimePoint& p) { row0_norm.push_back(p.value / row0_budget); });
  EtEstimator et = EtEstimator::FromHistory(row0_norm, /*start=*/120);
  std::printf("\nrow-0 hourly E_t profile (99.5th pct 1-min increase):\n");
  for (int h = 0; h < 24; ++h) {
    std::printf("  %02d:00  %.4f\n", h, et.per_hour()[static_cast<size_t>(h)]);
  }

  // Exposition sample: the same snapshot a scrape endpoint would serve.
  std::printf("\nprometheus exposition sample (first lines):\n");
  std::string prom = registry.Snapshot().ToPrometheusText();
  size_t lines = 0, pos = 0;
  while (pos < prom.size() && lines < 12) {
    size_t nl = prom.find('\n', pos);
    if (nl == std::string::npos) nl = prom.size();
    std::printf("  %.*s\n", static_cast<int>(nl - pos), prom.c_str() + pos);
    pos = nl + 1;
    ++lines;
  }
  return 0;
}
