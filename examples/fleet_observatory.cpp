// Fleet observatory: survey a multi-row data center's power telemetry.
//
//   build/examples/fleet_observatory [days]
//
// Runs a 4-row fleet with distinct per-row products for N simulated days,
// then queries the time-series database the way the paper's operators did:
// per-level utilization summaries, unused power (Eq. 1), and the E_t
// profile that would parameterize a controller — the §2.2 measurement study
// that motivates Ampere.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/control/et_estimator.h"
#include "src/core/fleet.h"
#include "src/stats/descriptive.h"

using namespace ampere;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  int days = argc > 1 ? std::atoi(argv[1]) : 2;

  FleetConfig config;
  config.seed = 31;
  config.topology.num_rows = 4;
  config.topology.racks_per_row = 5;
  config.topology.servers_per_rack = 20;
  config.products = {{0.70, 3.0, 0.20, 0.02},
                     {0.82, 9.0, 0.12, 0.03},
                     {0.76, 15.0, 0.25, 0.02},
                     {0.68, 21.0, 0.18, 0.025}};
  Fleet fleet(config);
  std::printf("running %d rows for %d day(s)...\n",
              config.topology.num_rows, days);
  fleet.Run(SimTime::Hours(24.0 * days + 2));

  SimTime from = SimTime::Hours(2);
  SimTime to = SimTime::Hours(24.0 * days + 2);

  std::printf("\nper-row utilization and unused power (Eq. 1):\n");
  std::printf("%6s %12s %12s %12s %14s\n", "row", "mean_util", "max_util",
              "budget_W", "unused_mean_W");
  for (int32_t r = 0; r < fleet.dc().num_rows(); ++r) {
    std::vector<double> watts;
    for (const auto& p :
         fleet.db().Query(PowerMonitor::RowSeries(RowId(r)), from, to)) {
      watts.push_back(p.value);
    }
    Summary s = Summarize(watts);
    double budget = fleet.dc().row_budget_watts(RowId(r));
    std::printf("%6d %12.3f %12.3f %12.0f %14.0f\n", r, s.mean / budget,
                s.max / budget, budget, budget - s.mean);
  }

  std::vector<double> dc_watts;
  for (const auto& p :
       fleet.db().Query(PowerMonitor::kTotalSeries, from, to)) {
    dc_watts.push_back(p.value);
  }
  Summary dc_s = Summarize(dc_watts);
  double dc_budget = fleet.dc().total_budget_watts();
  std::printf("\ndata center: mean utilization %.3f of %.0f W budget "
              "(unused %.0f W on average)\n",
              dc_s.mean / dc_budget, dc_budget, dc_budget - dc_s.mean);

  // Build the E_t profile an Ampere deployment on row 0 would use.
  std::vector<double> row0_norm;
  double row0_budget = fleet.dc().row_budget_watts(RowId(0));
  for (const auto& p :
       fleet.db().Query(PowerMonitor::RowSeries(RowId(0)), from, to)) {
    row0_norm.push_back(p.value / row0_budget);
  }
  EtEstimator et = EtEstimator::FromHistory(row0_norm, /*start=*/120);
  std::printf("\nrow-0 hourly E_t profile (99.5th pct 1-min increase):\n");
  for (int h = 0; h < 24; ++h) {
    std::printf("  %02d:00  %.4f\n", h, et.per_hour()[static_cast<size_t>(h)]);
  }
  return 0;
}
