// Command-line experiment driver: run calibrations, controlled experiments,
// and fleet observations from flags, with optional CSV export.
//
//   build/examples/ampere_cli --mode=experiment --ro=0.25 --target=0.99
//       --hours=24 --seed=7 --csv=/tmp/run.csv   (flags combine freely)
//   build/examples/ampere_cli --mode=calibrate --hours=24
//   build/examples/ampere_cli --mode=fleet --rows=4 --days=2
//
// Modes:
//   calibrate  — run the Fig. 5 f(u) calibration, print the fitted kr.
//   experiment — run the §4.1.2 controlled experiment, print the Table 2
//                style report (and per-minute CSV with --csv).
//   fleet      — run a multi-row observation, print per-row utilization
//                (and row power CSV with --csv).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/core/experiment.h"
#include "src/core/fleet.h"
#include "src/stats/descriptive.h"
#include "src/telemetry/csv_export.h"

using namespace ampere;  // NOLINT: example brevity.

namespace {

struct Flags {
  std::string mode = "experiment";
  uint64_t seed = 42;
  int servers = 420;
  int rows = 1;
  double ro = 0.25;
  double target = 0.97;
  double kr = 0.013;
  double et = 0.02;
  double hours = 24.0;
  double days = 1.0;
  std::string csv;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

Flags Parse(int argc, char** argv) {
  Flags flags;
  // AMPERE_LOG_LEVEL first, --log-level on top — the harness precedence.
  ApplyLogLevelFromEnv();
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "mode", &value)) {
      flags.mode = value;
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "servers", &value)) {
      flags.servers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "rows", &value)) {
      flags.rows = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "ro", &value)) {
      flags.ro = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "target", &value)) {
      flags.target = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "kr", &value)) {
      flags.kr = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "et", &value)) {
      flags.et = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "hours", &value)) {
      flags.hours = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "days", &value)) {
      flags.days = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "csv", &value)) {
      flags.csv = value;
    } else if (ParseFlag(argv[i], "log-level", &value)) {
      LogLevel level;
      if (!ParseLogLevel(value, &level)) {
        std::fprintf(stderr,
                     "--log-level wants debug|info|warning|error|off\n");
        std::exit(2);
      }
      SetLogLevel(level);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return flags;
}

ExperimentConfig MakeExperimentConfig(const Flags& flags) {
  ExperimentConfig config;
  config.seed = flags.seed;
  config.topology.num_rows = 1;
  config.topology.servers_per_rack = 30;
  config.topology.racks_per_row = std::max(1, flags.servers / 30);
  config.over_provision_ratio = flags.ro;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, flags.target, flags.ro);
  config.controller.effect = FreezeEffectModel(flags.kr);
  config.controller.et = EtEstimator::Constant(flags.et);
  config.warmup = SimTime::Hours(2);
  config.duration = SimTime::Hours(flags.hours);
  return config;
}

int RunCalibrate(const Flags& flags) {
  ExperimentConfig config = MakeExperimentConfig(flags);
  config.enable_ampere = false;
  config.warmup = SimTime::Hours(1);
  ControlledExperiment experiment(config);
  std::vector<double> levels{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  auto samples = experiment.RunFuCalibration(levels, SimTime::Minutes(5),
                                             SimTime::Minutes(25),
                                             SimTime::Hours(flags.hours));
  FreezeEffectModel model = FreezeEffectModel::Fit(samples);
  std::printf("fitted f(u) = %.4f * u (R^2 %.3f over %zu samples)\n",
              model.kr(), model.fit_r_squared(), samples.size());
  std::printf("pass --kr=%.4f to experiment runs on this workload\n",
              model.kr());
  return 0;
}

int RunExperiment(const Flags& flags) {
  ControlledExperiment experiment(MakeExperimentConfig(flags));
  ExperimentResult result = experiment.Run();
  std::printf("rO=%.2f target=%.2f seed=%llu %0.fh\n", flags.ro,
              flags.target, static_cast<unsigned long long>(flags.seed),
              flags.hours);
  std::printf("%8s %8s %8s %8s %8s %10s\n", "group", "u_mean", "u_max",
              "P_mean", "P_max", "violations");
  std::printf("%8s %8.3f %8.3f %8.3f %8.3f %10d\n", "exp",
              result.experiment.u_mean, result.experiment.u_max,
              result.experiment.p_mean, result.experiment.p_max,
              result.experiment.violations);
  std::printf("%8s %8s %8s %8.3f %8.3f %10d\n", "ctl", "-", "-",
              result.control.p_mean, result.control.p_max,
              result.control.violations);
  std::printf("rT = %.3f   G_TPW = %.1f%%\n", result.throughput_ratio,
              100.0 * result.gain_tpw);
  if (!flags.csv.empty()) {
    std::vector<std::string> series{
        PowerMonitor::GroupSeries(ControlledExperiment::kExperimentGroup),
        PowerMonitor::GroupSeries(ControlledExperiment::kControlGroup)};
    ExportCsvFile(experiment.db(), series, flags.csv);
    std::printf("wrote %s\n", flags.csv.c_str());
  }
  return 0;
}

int RunFleet(const Flags& flags) {
  FleetConfig config;
  config.seed = flags.seed;
  config.topology.num_rows = flags.rows;
  config.topology.racks_per_row = 4;
  config.topology.servers_per_rack =
      std::max(1, flags.servers / std::max(1, flags.rows) / 4);
  config.products = {{0.72, 4.0, 0.2, 0.02},
                     {0.80, 10.0, 0.15, 0.02},
                     {0.76, 16.0, 0.25, 0.02},
                     {0.70, 22.0, 0.2, 0.02}};
  Fleet fleet(config);
  fleet.Run(SimTime::Hours(24.0 * flags.days));
  std::printf("%6s %12s %12s %12s\n", "row", "mean_util", "max_util",
              "unused_W");
  std::vector<std::string> series;
  for (int32_t r = 0; r < fleet.dc().num_rows(); ++r) {
    std::vector<double> watts;
    fleet.db()
        .SeriesStitched(PowerMonitor::RowSeries(RowId(r)))
        .ForEachPoint([&](const TimePoint& p) { watts.push_back(p.value); });
    Summary s = Summarize(watts);
    double budget = fleet.dc().row_budget_watts(RowId(r));
    std::printf("%6d %12.3f %12.3f %12.0f\n", r, s.mean / budget,
                s.max / budget, budget - s.mean);
    series.push_back(PowerMonitor::RowSeries(RowId(r)));
  }
  if (!flags.csv.empty()) {
    ExportCsvFile(fleet.db(), series, flags.csv);
    std::printf("wrote %s\n", flags.csv.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Parse(argc, argv);
  if (flags.mode == "calibrate") {
    return RunCalibrate(flags);
  }
  if (flags.mode == "experiment") {
    return RunExperiment(flags);
  }
  if (flags.mode == "fleet") {
    return RunFleet(flags);
  }
  std::fprintf(stderr,
               "usage: ampere_cli --mode=calibrate|experiment|fleet "
               "[--seed=N] [--servers=N] [--rows=N] [--ro=X] [--target=X] "
               "[--kr=X] [--et=X] [--hours=X] [--days=X] [--csv=PATH]\n");
  return 2;
}
