// scenario_sweep — run a registered scenario set in parallel.
//
//   scenario_sweep --list
//   scenario_sweep experiment-smoke [--jobs=N] [--csv=out.csv] [--json=out.json]
//
// Front end for the harness layer (src/harness): picks a scenario set from
// the registry, runs it on the work-stealing pool (hardware_concurrency
// workers by default; --jobs or AMPERE_JOBS override), and prints the
// deterministic result table. CSV output is bit-stable across job counts;
// JSON additionally carries per-run wall-clock timing and captured logs.

#include <cstdio>

#include "src/harness/runner.h"
#include "src/harness/scenario.h"

int main(int argc, char** argv) {
  using namespace ampere;  // NOLINT
  harness::RegisterBuiltinScenarios();
  harness::HarnessArgs args = harness::ParseHarnessArgs(argc, argv);

  bool list_only = false;
  for (const std::string& arg : args.positional) {
    if (arg == "--list") {
      list_only = true;
    }
  }
  if (list_only || args.positional.empty()) {
    std::printf("registered scenario sets:\n");
    for (const auto& [name, description] :
         harness::ScenarioRegistry::Global().List()) {
      std::printf("  %-20s %s\n", name.c_str(), description.c_str());
    }
    if (args.positional.empty()) {
      std::printf("\nusage: scenario_sweep <set> [--jobs=N] [--csv=PATH] "
                  "[--json=PATH]\n");
    }
    return list_only ? 0 : 2;
  }

  const std::string& set_name = args.positional.front();
  if (!harness::ScenarioRegistry::Global().Contains(set_name)) {
    std::fprintf(stderr, "unknown scenario set '%s' (try --list)\n",
                 set_name.c_str());
    return 2;
  }

  auto scenarios = harness::ScenarioRegistry::Global().Make(set_name);
  harness::ResultTable table =
      harness::RunScenarios(scenarios, args.runner);

  std::printf("%s — %zu scenarios, jobs=%d, total %.0f ms\n\n",
              set_name.c_str(), table.size(), table.jobs(),
              table.total_wall_ms());
  std::printf("%s", table.ToText().c_str());
  if (args.print_notes) {
    for (const auto& row : table.rows()) {
      if (!row.notes.empty()) {
        std::printf("\n--- %s ---\n%s", row.scenario.c_str(),
                    row.notes.c_str());
      }
    }
  }
  if (!args.csv_path.empty()) {
    harness::WriteFile(args.csv_path, table.ToCsv());
    std::printf("\nwrote %s\n", args.csv_path.c_str());
  }
  if (!args.json_path.empty()) {
    harness::WriteFile(args.json_path, table.ToJson());
    std::printf("wrote %s\n", args.json_path.c_str());
  }

  bool all_ok = true;
  for (const auto& row : table.rows()) {
    if (!row.ok) {
      std::fprintf(stderr, "FAILED %s: %s\n", row.scenario.c_str(),
                   row.error.c_str());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
