// Quickstart: assemble a simulated two-row data center, attach the power
// monitor and the Ampere controller to row 0, and watch violations
// disappear.
//
//   build/examples/quickstart
//
// Walks through the full public API:
//   1. DataCenter — the simulated fleet (topology + power model).
//   2. Scheduler — two-level scheduler; Ampere touches it only through
//      Freeze/Unfreeze.
//   3. BatchWorkload — Poisson job arrivals with Fig.7-calibrated durations.
//   4. PowerMonitor + TimeSeriesDb — per-minute telemetry.
//   5. AmpereController — Algorithm 1 on one control domain (row 0); jobs
//      steered away from row 0 land on row 1, like the rest of a fleet.
//
// Timeline: 2 h warmup -> 3 h uncontrolled measurement -> 3 h controlled.

#include <cstdio>
#include <vector>

#include "src/core/controller.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"

using namespace ampere;  // NOLINT: example brevity.

int main() {
  Rng rng(7);
  Simulation sim;

  // 1. Two rows of 40 servers (16 cores, 250 W rated, 65 % idle).
  TopologyConfig topology;
  topology.num_rows = 2;
  topology.racks_per_row = 2;
  topology.servers_per_rack = 20;
  DataCenter dc(topology, &sim);

  // 2. Scheduler over the whole pool.
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));

  // 3. Batch workload: ~43 jobs/min across both rows, with slow wander.
  BatchWorkloadParams workload_params;
  workload_params.arrivals.base_rate_per_min = 43.0;
  workload_params.arrivals.diurnal_amplitude = 0.0;
  workload_params.arrivals.ar_sigma = 0.02;
  JobIdAllocator ids;
  BatchWorkload workload(workload_params, &sim, &scheduler, &ids,
                         rng.Fork(2));

  // 4. Telemetry: sample every server each minute, aggregate per row.
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(3));
  std::vector<ServerId> row0(dc.servers_in_row(RowId(0)).begin(),
                             dc.servers_in_row(RowId(0)).end());
  monitor.RegisterGroup("row0", row0);

  // Warm up to steady state, then set the operator budget at the current
  // draw — tight enough that workload wander violates it regularly.
  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  sim.RunUntil(SimTime::Hours(2));
  double budget_watts = dc.row_power_watts(RowId(0));

  // 5. Ampere on row 0. kr comes from a Fig. 5 calibration in production;
  //    here we use the value that procedure yields on this substrate.
  AmpereControllerConfig controller_config;
  controller_config.effect = FreezeEffectModel(0.013);
  controller_config.et = EtEstimator::Constant(0.025);
  AmpereController ampere(&scheduler, &monitor, controller_config);
  ampere.AddDomain({"row0", row0, budget_watts});

  int violations_uncontrolled = 0;
  int violations_controlled = 0;
  sim.SchedulePeriodic(
      SimTime::Hours(2) + SimTime::Seconds(2), SimTime::Minutes(1),
      [&](SimTime t) {
        if (monitor.LatestGroupWatts("row0") > budget_watts) {
          (t < SimTime::Hours(5) ? violations_uncontrolled
                                 : violations_controlled)++;
        }
      });
  sim.RunUntil(SimTime::Hours(5));          // Uncontrolled phase.
  ampere.Start(&sim, sim.now() + SimTime::Seconds(61));
  sim.RunUntil(SimTime::Hours(8));          // Controlled phase.

  std::printf("row-0 budget: %.0f W over %zu servers\n", budget_watts,
              row0.size());
  std::printf("violations/180min, hours 2-5 (no control): %d\n",
              violations_uncontrolled);
  std::printf("violations/180min, hours 5-8 (Ampere):     %d\n",
              violations_controlled);
  std::printf("freeze/unfreeze ops issued: %llu/%llu; jobs placed: %llu\n",
              static_cast<unsigned long long>(ampere.freeze_ops()),
              static_cast<unsigned long long>(ampere.unfreeze_ops()),
              static_cast<unsigned long long>(scheduler.jobs_placed()));
  return 0;
}
