// Capacity planning: how many extra servers should we over-provision?
//
//   build/examples/capacity_planning [typical_power]
//
// Sweeps the over-provisioning ratio rO and reports the gain in throughput
// per provisioned watt (G_TPW, Eq. 18) from a controlled experiment at each
// setting — the §4.4 methodology an operator would run before picking rO
// (the paper picks 0.17).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/experiment.h"

using namespace ampere;  // NOLINT: example brevity.

int main(int argc, char** argv) {
  // Demand level of the row's workload, expressed relative to the budget at
  // a reference rO of 0.17 (how hot the row typically runs). The workload
  // itself is FIXED across the sweep; each candidate rO only tightens the
  // power budget further — exactly the operator's decision problem.
  double typical_power = argc > 1 ? std::atof(argv[1]) : 0.95;

  TopologyConfig topology;
  topology.num_rows = 1;
  topology.racks_per_row = 5;
  topology.servers_per_rack = 20;  // 100 servers: fast sweep.
  BatchWorkloadParams workload;
  const double kReferenceRo = 0.17;
  double rate = ArrivalRateForNormalizedPower(topology, workload,
                                              typical_power, kReferenceRo);

  std::printf("capacity planning sweep (fixed workload, %.1f jobs/min; "
              "demand = %.2f of the rO=%.2f budget)\n",
              rate, typical_power, kReferenceRo);
  std::printf("%6s %10s %10s %10s %10s\n", "rO", "u_mean", "violations",
              "r_thru", "G_TPW");

  double best_gain = -1.0;
  double best_ro = 0.0;
  for (double ro : {0.10, 0.13, 0.17, 0.21, 0.25, 0.30}) {
    ExperimentConfig config;
    config.seed = 99;
    config.topology = topology;
    config.over_provision_ratio = ro;
    config.workload = workload;
    config.workload.arrivals.base_rate_per_min = rate;
    config.controller.effect = FreezeEffectModel(0.015);
    config.controller.et = EtEstimator::Constant(0.02);
    config.scale_control_budget = false;
    config.warmup = SimTime::Hours(1);
    config.duration = SimTime::Hours(12);
    ControlledExperiment experiment(config);
    ExperimentResult result = experiment.Run();
    // Freezing cannot raise throughput; rT > 1 is split noise.
    double r_thru = std::min(result.throughput_ratio, 1.0);
    double gain = GainInTpw(r_thru, ro);
    std::printf("%6.2f %10.3f %10d %10.3f %9.1f%%\n", ro,
                result.experiment.u_mean, result.experiment.violations,
                r_thru, 100.0 * gain);
    if (gain > best_gain) {
      best_gain = gain;
      best_ro = ro;
    }
  }
  std::printf("\nrecommended rO = %.2f (G_TPW %.1f%%)\n", best_ro,
              100.0 * best_gain);
  std::printf("note: the paper weighs G_TPW against violation risk and "
              "chooses 0.17 for production.\n");
  return 0;
}
