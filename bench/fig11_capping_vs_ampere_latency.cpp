// Figure 11: p99.9 latency of redis-benchmark operations under hardware
// power capping vs. under Ampere's control, on a row over-provisioned at
// rO = 0.25. Also reproduces the §4.3 statistic that without Ampere a large
// fraction of servers spends a significant fraction of time power-capped.
//
// Paper's shape: power capping roughly DOUBLES the p99.9 latency of every
// Redis operation (DVFS slows the CPU-bound single-threaded server and
// queueing compounds it), while Ampere leaves running jobs untouched.
//
// Setup: two rows share one scheduler. Row 0 hosts a 6-server Redis pool
// (reserved) plus batch servers and has its budget scaled down per Eq. (16);
// row 1 is uncontrolled overflow capacity, playing the role of "the rest of
// the fleet". The capping arm enforces row 0's budget with RAPL; the Ampere
// arm holds the same budget by freezing row-0 batch servers, diverting work
// to row 1.

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/controller.h"
#include "src/workload/batch_workload.h"
#include "src/workload/interactive_service.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160411;
constexpr double kRo = 0.25;
constexpr int kRedisServers = 6;

struct ArmResult {
  std::vector<double> p999_ms;        // Per RedisOp.
  double capped_fraction_time = 0.0;  // Fraction of window row 0 was capped.
  double mean_row0_power = 0.0;
  uint64_t requests = 0;
};

ArmResult RunArm(bool use_ampere) {
  Rng rng(kSeed);  // Same seed for both arms: identical workload.
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 2;
  topo.racks_per_row = 4;
  topo.servers_per_rack = 15;  // 60 per row.
  // Both arms keep RAPL enabled at the scaled budget — the paper always
  // leaves hardware capping on as a safety net (§2.1). The difference is
  // whether Ampere proactively keeps the row away from the cap.
  topo.capping_enabled = true;
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitorConfig mc;
  PowerMonitor monitor(&dc, &db, mc, rng.Fork(2));

  double row0_budget = 60 * 250.0 / (1.0 + kRo);
  dc.SetRowCappingBudget(RowId(0), row0_budget);

  // Redis pool: the first kRedisServers of row 0, reserved.
  std::vector<ServerId> redis;
  for (int32_t s = 0; s < kRedisServers; ++s) {
    redis.push_back(ServerId(s));
    dc.SetReserved(ServerId(s), true);
  }
  std::vector<ServerId> row0_batch;
  for (ServerId id : dc.servers_in_row(RowId(0))) {
    if (!dc.server(id).reserved()) {
      row0_batch.push_back(id);
    }
  }
  monitor.RegisterGroup("row0", {dc.servers_in_row(RowId(0)).begin(),
                                 dc.servers_in_row(RowId(0)).end()});

  InteractiveServiceParams redis_params;
  redis_params.servers = redis;
  // ~44 % busy at full clock: enough headroom normally, but DVFS throttling
  // pushes the single-threaded instance deep into queueing territory.
  redis_params.requests_per_sec_per_server = 2500.0;
  InteractiveService service(redis_params, &sim, &dc, rng.Fork(3));

  JobIdAllocator ids;
  BatchWorkloadParams batch;
  batch.arrivals.base_rate_per_min = 56.0;  // Row 0 demand ~6% over budget.
  BatchWorkload workload(batch, &sim, &scheduler, &ids, rng.Fork(4));

  std::unique_ptr<AmpereController> controller;
  if (use_ampere) {
    AmpereControllerConfig config;
    config.effect = FreezeEffectModel(0.013);  // Fig. 5 calibration value.
    // Generous margin: act well before the cap would engage.
    config.et = EtEstimator::Constant(0.04);
    controller = std::make_unique<AmpereController>(&scheduler, &monitor,
                                                    config);
    controller->AddDomain({"row0", row0_batch, row0_budget});
  }

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  if (controller != nullptr) {
    controller->Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  }
  // Warm up 90 min, then measure a 15-minute benchmark window.
  SimTime warm = SimTime::Minutes(90);
  SimTime window_end = warm + SimTime::Minutes(15);
  service.Run(warm - SimTime::Minutes(5), window_end, warm);
  sim.RunUntil(warm);
  SimTime capped_before = dc.row_capped_time(RowId(0));
  SimTime capped_after;
  double power_acc = 0.0;
  int power_samples = 0;
  sim.SchedulePeriodic(warm + SimTime::Seconds(2), SimTime::Minutes(1),
                       [&](SimTime t) {
                         if (t < window_end) {
                           power_acc += monitor.LatestGroupWatts("row0");
                           ++power_samples;
                         }
                       });
  sim.ScheduleAt(window_end,
                 [&] { capped_after = dc.row_capped_time(RowId(0)); });
  sim.RunUntil(window_end + SimTime::Minutes(1));

  ArmResult result;
  for (int op = 0; op < kNumRedisOps; ++op) {
    result.p999_ms.push_back(
        service.latency_histogram(static_cast<RedisOp>(op)).Quantile(0.999));
  }
  result.capped_fraction_time =
      (capped_after - capped_before).seconds() /
      (window_end - warm).seconds();
  result.mean_row0_power =
      power_samples > 0 ? power_acc / power_samples / row0_budget : 0.0;
  result.requests = service.requests_served();
  return result;
}

void Main() {
  bench::Header("Figure 11",
                "redis p99.9 latency: power capping vs Ampere (rO=0.25)",
                kSeed);

  ArmResult capping = RunArm(/*use_ampere=*/false);
  ArmResult ampere = RunArm(/*use_ampere=*/true);

  bench::Section("p99.9 latency per operation (ms, and capping/Ampere ratio)");
  std::printf("%12s %12s %12s %8s\n", "op", "capping", "ampere", "ratio");
  double worst_ratio = 10.0;
  for (int op = 0; op < kNumRedisOps; ++op) {
    double ratio = capping.p999_ms[static_cast<size_t>(op)] /
                   ampere.p999_ms[static_cast<size_t>(op)];
    worst_ratio = std::min(worst_ratio, ratio);
    std::printf("%12s %12.3f %12.3f %8.2f\n",
                RedisOpName(static_cast<RedisOp>(op)),
                capping.p999_ms[static_cast<size_t>(op)],
                ampere.p999_ms[static_cast<size_t>(op)], ratio);
  }

  bench::Section("row-0 state during the benchmark window");
  std::printf("%12s %18s %18s %12s\n", "arm", "capped_time_frac",
              "mean_power/budget", "requests");
  std::printf("%12s %18.3f %18.3f %12llu\n", "capping",
              capping.capped_fraction_time, capping.mean_row0_power,
              static_cast<unsigned long long>(capping.requests));
  std::printf("%12s %18.3f %18.3f %12llu\n", "ampere",
              ampere.capped_fraction_time, ampere.mean_row0_power,
              static_cast<unsigned long long>(ampere.requests));

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(worst_ratio > 1.4,
                    "capping inflates p99.9 of every op (paper: ~2x)");
  bench::ShapeCheck(capping.capped_fraction_time > 0.3,
                    "without Ampere, servers are capped a large fraction of "
                    "time (paper: 54% of servers ~15% of time)");
  bench::ShapeCheck(ampere.capped_fraction_time < 0.05,
                    "Ampere practically never triggers the capping safety net");
  bench::ShapeCheck(ampere.mean_row0_power <= 1.02,
                    "Ampere holds the row near/below its budget");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
