// Figure 8: normalized power of one production row over 24 hours, sampled
// each minute. Paper's shape: large hour-scale swings (roughly 0.75-1.0 of
// the daily max) plus hard-to-predict minute-scale spikes and valleys.

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/fleet.h"
#include "src/stats/descriptive.h"
#include "src/stats/timeseries_ops.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160408;

void Main() {
  bench::Header("Figure 8", "row power over 24 hours (per-minute samples)",
                kSeed);

  FleetConfig config;
  config.seed = kSeed;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 10;
  config.topology.servers_per_rack = 42;
  // Deep diurnal swing + wander: the paper's row spans roughly 0.75-1.0 of
  // its daily peak. The 65 % idle floor compresses power dynamics, so large
  // rate swings are needed to reproduce the band.
  config.products = {{0.82, 15.0, 0.45, 0.04, 0.015, 2.0}};
  Fleet fleet(config);
  fleet.Run(SimTime::Hours(26));

  std::vector<double> series;
  for (const auto& p : fleet.db().QueryView(PowerMonitor::RowSeries(RowId(0)),
                                        SimTime::Hours(2),
                                        SimTime::Hours(26))) {
    series.push_back(p.value);
  }
  double max_power = *std::max_element(series.begin(), series.end());
  for (double& v : series) {
    v /= max_power;  // Paper normalizes to the daily maximum.
  }

  bench::Section("normalized row power (one sample per 15 min shown; "
                 "per-minute series underlies the statistics)");
  bench::PrintSeries("minute", "power/max", series, /*stride=*/15,
                     /*x_scale=*/1.0);

  Summary s = Summarize(series);
  auto spikes = FirstOrderDifferences(series);
  Summary d = Summarize(spikes);
  bench::Section("variability statistics");
  std::printf("hour-scale: min %.3f  mean %.3f  max %.3f of daily peak\n",
              s.min, s.mean, s.max);
  std::printf("minute-scale: |delta| stddev %.4f, largest single-minute "
              "change %.4f\n",
              d.stddev, std::max(std::abs(d.min), std::abs(d.max)));

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(s.min < 0.85,
                    "hour-scale swings span a wide band below the peak");
  bench::ShapeCheck(d.stddev > 0.001,
                    "visible minute-scale spikes exist");
  bench::ShapeCheck(s.max == 1.0, "series normalized to its daily max");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
