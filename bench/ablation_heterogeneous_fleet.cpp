// Ablation: Ampere on a mixed-generation row.
//
// Production rows accumulate server generations; the paper's experiments
// use a homogeneous row, but nothing in Algorithm 1 assumes homogeneity —
// it ranks servers by measured watts. This bench runs the controller on a
// row whose racks alternate between power-hungry old boxes (300 W rated,
// 70 % idle) and efficient new ones (200 W rated, 55 % idle), at the same
// demand level as a homogeneous control run.
//
// Expected shape: control quality carries over unchanged, and the
// highest-power selection concentrates freezes on the old generation far
// beyond its population share — watt-ranked freezing is generation-aware
// for free, draining the most power per frozen scheduling slot.
//
// The homogeneous and mixed arms are independent day-long simulations and
// run in parallel through the scenario harness.

#include <array>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/controller.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160504;

struct MixResult {
  int violations = 0;
  double u_mean = 0.0;
  double old_gen_freeze_share = 0.0;  // Of frozen servers, fraction old-gen.
};

MixResult RunRow(bool mixed) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 1;
  topo.racks_per_row = 8;
  topo.servers_per_rack = 10;  // 80 servers.
  if (mixed) {
    PowerModelParams old_gen;
    old_gen.rated_watts = 300.0;
    old_gen.idle_fraction = 0.70;
    PowerModelParams new_gen;
    new_gen.rated_watts = 200.0;
    new_gen.idle_fraction = 0.55;
    topo.server_generations = {old_gen, new_gen};
  }
  DataCenter dc(topo, &sim);
  // Same rO-scaled budget structure either way: rated / 1.25.
  double budget = dc.row_budget_watts(RowId(0)) / 1.25;

  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  std::vector<ServerId> all{dc.servers_in_row(RowId(0)).begin(),
                            dc.servers_in_row(RowId(0)).end()};
  monitor.RegisterGroup("row", all);

  JobIdAllocator ids;
  BatchWorkloadParams params;
  // Drive demand to ~0.97 of the scaled budget: utilization such that
  // idle + util * dynamic = budget. Compute from aggregate idle/dynamic.
  double idle_sum = 0.0;
  double dyn_sum = 0.0;
  for (ServerId id : all) {
    idle_sum += dc.server(id).idle_watts();
    dyn_sum += dc.server(id).rated_watts() - dc.server(id).idle_watts();
  }
  double util = (0.97 * budget - idle_sum) / dyn_sum;
  params.arrivals.base_rate_per_min = util * 80 * 16.0 / (9.1 * 2.0);
  params.arrivals.ar_sigma = 0.015;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.013);
  config.et = EtEstimator::Constant(0.02);
  AmpereController controller(&scheduler, &monitor, config);
  controller.AddDomain({"row", all, budget});

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  controller.Start(&sim, SimTime::Hours(2) + SimTime::Seconds(1));

  struct Acc {
    int violations = 0;
    double u_sum = 0.0;
    int samples = 0;
    int64_t frozen_old = 0;
    int64_t frozen_total = 0;
  };
  Acc acc;
  sim.SchedulePeriodic(
      SimTime::Hours(2) + SimTime::Seconds(2), SimTime::Minutes(1),
      [&](SimTime) {
        ++acc.samples;
        if (monitor.LatestGroupWatts("row") > budget) {
          ++acc.violations;
        }
        acc.u_sum += controller.freeze_ratio(0);
        for (ServerId id : all) {
          if (dc.server(id).frozen()) {
            ++acc.frozen_total;
            if (dc.server(id).rated_watts() > 250.0) {
              ++acc.frozen_old;
            }
          }
        }
      });
  sim.RunUntil(SimTime::Hours(2 + 24));

  MixResult result;
  result.violations = acc.violations;
  result.u_mean = acc.u_sum / acc.samples;
  result.old_gen_freeze_share =
      acc.frozen_total > 0 ? static_cast<double>(acc.frozen_old) /
                                 static_cast<double>(acc.frozen_total)
                           : 0.0;
  return result;
}

void Main(const harness::HarnessArgs& args) {
  bench::Header("Ablation: heterogeneous fleet",
                "Algorithm 1 on a mixed-generation row", kSeed);

  const std::array<bool, 2> arms{false, true};  // homogeneous, mixed.
  auto grid = bench::RunGrid(
      args, arms,
      [](bool is_mixed, size_t) {
        return harness::GridMeta{is_mixed ? "mixed" : "homogeneous", kSeed};
      },
      [](bool is_mixed, harness::RunContext& context) {
        MixResult result = RunRow(is_mixed);
        context.Metric("violations", result.violations);
        context.Metric("u_mean", result.u_mean);
        if (is_mixed) {
          context.Metric("old_gen_freeze_share",
                         result.old_gen_freeze_share);
        }
        return result;
      });

  bench::Section("24 h at ~0.97 of the rO=0.25 budget");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const MixResult& homogeneous = grid.values[0];
  const MixResult& mixed = grid.values[1];
  std::printf("(old generation is 50%% of the population)\n");

  bench::Section("shape checks");
  bench::ShapeCheck(mixed.violations <= homogeneous.violations * 3 + 30,
                    "control quality carries over to mixed generations");
  bench::ShapeCheck(mixed.old_gen_freeze_share > 0.65,
                    "watt-ranked freezing concentrates on the power-hungry "
                    "generation (generation-aware for free)");
  bench::ShapeCheck(mixed.u_mean < 0.5,
                    "the mixed row does not need saturated control");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
