// Ablation: the r_stable hysteresis parameter (§3.5, Algorithm 1).
//
// r_stable keeps a frozen server in the candidate pool while its power
// remains above r_stable times the weakest member of the target set,
// preventing freeze/unfreeze churn as frozen servers drain. The paper finds
// "the value of r_stable does not affect the performance much" and uses 0.8.
// Expected shape: control quality (violations, throughput) is flat across
// r_stable, while churn (freeze+unfreeze operations) falls as the band
// widens (smaller r_stable = wider band = stickier frozen set).
//
// The five r_stable arms are independent day-long simulations and run in
// parallel through the scenario harness.

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160424;

struct RStableResult {
  double r_stable = 0.0;
  int violations = 0;
  double u_mean = 0.0;
  double r_thru = 0.0;
  uint64_t churn_ops = 0;
};

void Main(const harness::HarnessArgs& args) {
  bench::Header("Ablation: r_stable hysteresis",
                "churn and control quality across the stability band",
                kSeed);

  const std::vector<double> r_stables{0.5, 0.7, 0.8, 0.9, 1.0};
  auto grid = bench::RunGrid(
      args, r_stables,
      [](double r_stable, size_t) {
        char name[32];
        std::snprintf(name, sizeof(name), "r_stable=%.2f", r_stable);
        return harness::GridMeta{name, kSeed};
      },
      [](double r_stable, harness::RunContext& context) {
        ExperimentConfig config =
            bench::PaperExperimentConfig(kSeed, /*target_power=*/1.0, 0.25);
        config.controller.effect = FreezeEffectModel(0.013);
        config.controller.et = EtEstimator::Constant(0.02);
        config.controller.r_stable = r_stable;
        config.workload.arrivals.ar_sigma = 0.015;
        // The churn counters live on the controller, so run the experiment
        // in place instead of through RunExperimentToResult.
        ControlledExperiment experiment(config);
        ExperimentResult result = experiment.Run();
        RStableResult out;
        out.r_stable = r_stable;
        out.violations = result.experiment.violations;
        out.u_mean = result.experiment.u_mean;
        out.r_thru = std::min(result.throughput_ratio, 1.0);
        out.churn_ops = experiment.controller()->freeze_ops() +
                        experiment.controller()->unfreeze_ops();
        context.Metric("r_stable", out.r_stable);
        context.Metric("violations", out.violations);
        context.Metric("u_mean", out.u_mean);
        context.Metric("r_thru", out.r_thru);
        context.Metric("churn_ops", static_cast<double>(out.churn_ops));
        return out;
      });

  bench::Section("24 h heavy runs at rO=0.25 (paper uses r_stable = 0.8)");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const std::vector<RStableResult>& results = grid.values;

  bench::Section("shape checks vs. paper");
  int min_viol = results[0].violations;
  int max_viol = results[0].violations;
  double min_rt = results[0].r_thru;
  double max_rt = results[0].r_thru;
  for (const RStableResult& r : results) {
    min_viol = std::min(min_viol, r.violations);
    max_viol = std::max(max_viol, r.violations);
    min_rt = std::min(min_rt, r.r_thru);
    max_rt = std::max(max_rt, r.r_thru);
  }
  bench::ShapeCheck(max_viol - min_viol < 60,
                    "violation count is insensitive to r_stable");
  bench::ShapeCheck(max_rt - min_rt < 0.08,
                    "throughput is insensitive to r_stable");
  bench::ShapeCheck(results.front().churn_ops <= results.back().churn_ops,
                    "a wider hysteresis band (small r_stable) churns less "
                    "than no band (r_stable = 1.0)");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
