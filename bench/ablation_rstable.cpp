// Ablation: the r_stable hysteresis parameter (§3.5, Algorithm 1).
//
// r_stable keeps a frozen server in the candidate pool while its power
// remains above r_stable times the weakest member of the target set,
// preventing freeze/unfreeze churn as frozen servers drain. The paper finds
// "the value of r_stable does not affect the performance much" and uses 0.8.
// Expected shape: control quality (violations, throughput) is flat across
// r_stable, while churn (freeze+unfreeze operations) falls as the band
// widens (smaller r_stable = wider band = stickier frozen set).

#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160424;

struct RStableResult {
  double r_stable = 0.0;
  int violations = 0;
  double u_mean = 0.0;
  double r_thru = 0.0;
  uint64_t churn_ops = 0;
};

RStableResult RunWith(double r_stable) {
  ExperimentConfig config =
      bench::PaperExperimentConfig(kSeed, /*target_power=*/1.0, 0.25);
  config.controller.effect = FreezeEffectModel(0.013);
  config.controller.et = EtEstimator::Constant(0.02);
  config.controller.r_stable = r_stable;
  config.workload.arrivals.ar_sigma = 0.015;
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();
  RStableResult out;
  out.r_stable = r_stable;
  out.violations = result.experiment.violations;
  out.u_mean = result.experiment.u_mean;
  out.r_thru = std::min(result.throughput_ratio, 1.0);
  out.churn_ops = experiment.controller()->freeze_ops() +
                  experiment.controller()->unfreeze_ops();
  return out;
}

void Main() {
  bench::Header("Ablation: r_stable hysteresis",
                "churn and control quality across the stability band",
                kSeed);

  std::vector<RStableResult> results;
  for (double r : {0.5, 0.7, 0.8, 0.9, 1.0}) {
    results.push_back(RunWith(r));
  }

  bench::Section("24 h heavy runs at rO=0.25 (paper uses r_stable = 0.8)");
  std::printf("%10s %12s %10s %10s %12s\n", "r_stable", "violations",
              "u_mean", "r_thru", "churn_ops");
  for (const RStableResult& r : results) {
    std::printf("%10.2f %12d %10.3f %10.3f %12llu\n", r.r_stable,
                r.violations, r.u_mean, r.r_thru,
                static_cast<unsigned long long>(r.churn_ops));
  }

  bench::Section("shape checks vs. paper");
  int min_viol = results[0].violations;
  int max_viol = results[0].violations;
  double min_rt = results[0].r_thru;
  double max_rt = results[0].r_thru;
  for (const RStableResult& r : results) {
    min_viol = std::min(min_viol, r.violations);
    max_viol = std::max(max_viol, r.violations);
    min_rt = std::min(min_rt, r.r_thru);
    max_rt = std::max(max_rt, r.r_thru);
  }
  bench::ShapeCheck(max_viol - min_viol < 60,
                    "violation count is insensitive to r_stable");
  bench::ShapeCheck(max_rt - min_rt < 0.08,
                    "throughput is insensitive to r_stable");
  bench::ShapeCheck(results.front().churn_ops <= results.back().churn_ops,
                    "a wider hysteresis band (small r_stable) churns less "
                    "than no band (r_stable = 1.0)");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
