// Ablation: the E_t safety-margin estimator (§3.6, design choice 4).
//
// The paper estimates E_t as the per-hour 99.5th percentile of historical
// one-minute power increases, and claims performance is "not sensitive" to
// E_t while noting the estimate is deliberately conservative. This bench
// compares, under a diurnal workload whose volatility varies by hour:
//   * no margin at all (E_t = 0),
//   * flat conservative margins (0.02, 0.05),
//   * the paper's per-hour history-driven profile.
// Expected shape: no margin -> the most violations; a large flat margin ->
// fewest violations but the most freezing; the history profile sits on the
// efficient frontier between them.
//
// The 48-hour history pass runs first (the four arms depend on it); the
// four controlled arms are then independent and run in parallel through
// the scenario harness.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160422;

ExperimentConfig BaseConfig() {
  ExperimentConfig config =
      bench::PaperExperimentConfig(kSeed, /*target_power=*/0.99, 0.25);
  config.controller.effect = FreezeEffectModel(0.013);
  // Volatile demand whose burstiness is time-varying: mornings are calm,
  // afternoons spiky (through the diurnal modulation of arrival rate).
  config.workload.arrivals.ar_sigma = 0.02;
  config.workload.arrivals.burst_prob = 0.02;
  config.workload.arrivals.burst_factor = 1.9;
  config.duration = SimTime::Hours(24);
  return config;
}

struct EtArm {
  const char* name;
  EtEstimator et;
};

struct EtResult {
  const char* name = nullptr;
  int violations = 0;
  double u_mean = 0.0;
  double r_thru = 0.0;
};

void Main(const harness::HarnessArgs& args) {
  bench::Header("Ablation: E_t estimator",
                "zero vs flat vs per-hour-history safety margin", kSeed);

  // History pass: a two-day uncontrolled run provides the per-minute series
  // the paper's estimator consumes.
  ExperimentConfig history_config = BaseConfig();
  history_config.enable_ampere = false;
  history_config.duration = SimTime::Hours(48);
  ExperimentResult history = RunExperimentToResult(history_config);
  std::vector<double> series;
  for (const MinutePoint& m : history.experiment.minutes) {
    series.push_back(m.normalized_power);
  }
  EtEstimator learned = EtEstimator::FromHistory(
      series, /*start_minute_of_day=*/120);
  bench::Section("learned per-hour E_t profile (99.5th pct 1-min increase)");
  for (int h = 0; h < 24; h += 4) {
    std::printf("  %02d:00 %.4f", h, learned.per_hour()[static_cast<size_t>(h)]);
  }
  std::printf("\n");

  const std::vector<EtArm> arms = {
      {"none (0.00)", EtEstimator::Constant(0.0)},
      {"flat 0.02", EtEstimator::Constant(0.02)},
      {"flat 0.05", EtEstimator::Constant(0.05)},
      {"history 99.5p", learned},
  };
  auto grid = bench::RunGrid(
      args, arms,
      [](const EtArm& arm, size_t) {
        return harness::GridMeta{arm.name, kSeed};
      },
      [](const EtArm& arm, harness::RunContext& context) {
        ExperimentConfig config = BaseConfig();
        config.controller.et = arm.et;
        ExperimentResult result = RunExperimentToResult(config);
        EtResult out;
        out.name = arm.name;
        out.violations = result.experiment.violations;
        out.u_mean = result.experiment.u_mean;
        out.r_thru = std::min(result.throughput_ratio, 1.0);
        context.Metric("violations", out.violations);
        context.Metric("u_mean", out.u_mean);
        context.Metric("r_thru", out.r_thru);
        return out;
      });

  bench::Section("24 h controlled runs at rO=0.25, demand ~0.99 of budget");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const std::vector<EtResult>& results = grid.values;

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(results[0].violations >= results[2].violations,
                    "no margin risks the most violations");
  bench::ShapeCheck(results[2].u_mean >= results[1].u_mean,
                    "larger flat margins freeze more");
  bench::ShapeCheck(results[3].violations <= results[0].violations,
                    "the history profile protects at least as well as no "
                    "margin");
  // The paper's insensitivity claim holds among *well-sized* margins: the
  // history-driven profile matches the small flat margin's throughput. An
  // oversized flat margin, however, buys its safety with standing freezing
  // — which is exactly why the estimator is data-driven.
  bench::ShapeCheck(
      std::abs(results[3].r_thru - results[1].r_thru) < 0.05,
      "history profile matches the well-sized flat margin's throughput");
  bench::ShapeCheck(results[2].r_thru < results[3].r_thru,
                    "an oversized flat margin costs real throughput, "
                    "motivating the data-driven profile");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
