// Figure 6: the control function F mapping realtime row power P_t to the
// freezing ratio u_t. Deterministic by construction (Eq. 13): zero below
// the threshold r_threshold = P_M - E_t, then a linear ramp of slope 1/kr,
// saturating at 1.0 (or the operational cap). The figure's caption notes
// the curve varies with E_t and kr; we print a family of curves.

#include "bench/bench_common.h"
#include "src/control/spcp.h"

namespace ampere {
namespace {

void Main() {
  bench::Header("Figure 6", "the control function F: P_t -> u_t", 0);

  struct Curve {
    double et;
    double kr;
  };
  const Curve curves[] = {{0.02, 0.05}, {0.05, 0.05}, {0.02, 0.10}};

  bench::Section("u_t as a function of normalized power (PM = 1.0)");
  std::printf("%8s", "P_t");
  for (const Curve& c : curves) {
    std::printf("   Et=%.2f,kr=%.2f", c.et, c.kr);
  }
  std::printf("\n");
  for (double p = 0.90; p <= 1.151; p += 0.01) {
    std::printf("%8.2f", p);
    for (const Curve& c : curves) {
      std::printf(" %16.3f", FreezeRatioFor(p, c.et, 1.0, c.kr, 1.0));
    }
    std::printf("\n");
  }

  bench::Section("shape checks vs. paper");
  // Threshold: u == 0 exactly up to PM - Et.
  bench::ShapeCheck(FreezeRatioFor(0.98, 0.02, 1.0, 0.05, 1.0) == 0.0 &&
                        FreezeRatioFor(0.981, 0.02, 1.0, 0.05, 1.0) > 0.0,
                    "control engages exactly at r_threshold = PM - Et");
  // Linear ramp with slope 1/kr.
  double u1 = FreezeRatioFor(1.00, 0.02, 1.0, 0.05, 1.0);
  double u2 = FreezeRatioFor(1.01, 0.02, 1.0, 0.05, 1.0);
  bench::ShapeCheck(std::abs((u2 - u1) - 0.01 / 0.05) < 1e-12,
                    "the ramp slope is 1/kr");
  // Saturation at 1.0.
  bench::ShapeCheck(FreezeRatioFor(1.20, 0.02, 1.0, 0.05, 1.0) == 1.0,
                    "u saturates at 1.0");
  // Larger Et shifts the threshold left; larger kr flattens the ramp.
  bench::ShapeCheck(FreezeRatioFor(0.97, 0.05, 1.0, 0.05, 1.0) >
                        FreezeRatioFor(0.97, 0.02, 1.0, 0.05, 1.0),
                    "a larger safety margin engages control earlier");
  bench::ShapeCheck(FreezeRatioFor(1.01, 0.02, 1.0, 0.10, 1.0) <
                        FreezeRatioFor(1.01, 0.02, 1.0, 0.05, 1.0),
                    "a stronger effect model needs fewer frozen servers");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
