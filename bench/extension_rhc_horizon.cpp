// Extension: receding-horizon planning depth (§3.6 + Lemma 3.1, live).
//
// The paper formulates the general horizon-N Power Control Problem, then
// proves (Lemma 3.1) that with the linear effect model the iterated
// horizon-1 closed form is already optimal, so planning deeper buys
// nothing. The unit tests verify the lemma against exhaustive search on
// random instances; this bench verifies it END TO END: the same 24-hour
// closed-loop experiment is run with planning horizons 1, 4, and 16, and
// with a constant E forecast the control trajectories must coincide
// minute for minute.
//
// The three horizon runs are independent simulations and execute in
// parallel through the scenario harness; determinism across job counts is
// exactly what makes the minute-for-minute comparison meaningful.

#include <cmath>
#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160428;

void Main(const harness::HarnessArgs& args) {
  bench::Header("Extension: RHC planning horizon",
                "Lemma 3.1 verified in the live closed loop", kSeed);

  const std::vector<int> horizons{1, 4, 16};
  auto grid = bench::RunGrid(
      args, horizons,
      [](int horizon, size_t) {
        char name[32];
        std::snprintf(name, sizeof(name), "horizon=%d", horizon);
        return harness::GridMeta{name, kSeed};
      },
      [](int horizon, harness::RunContext& context) {
        ExperimentConfig config =
            bench::PaperExperimentConfig(kSeed, /*target_power=*/1.0, 0.25);
        config.controller.effect = FreezeEffectModel(0.013);
        config.controller.et = EtEstimator::Constant(0.02);
        config.controller.horizon = horizon;
        config.workload.arrivals.ar_sigma = 0.015;
        ExperimentResult result = RunExperimentToResult(config);
        context.Metric("horizon", horizon);
        context.Metric("violations", result.experiment.violations);
        context.Metric("u_mean", result.experiment.u_mean);
        context.Metric("P_max", result.experiment.p_max);
        context.Metric("r_thru", std::min(result.throughput_ratio, 1.0));
        return result;
      });

  bench::Section("24 h heavy runs at rO=0.25 per planning horizon");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const std::vector<ExperimentResult>& results = grid.values;

  // Minute-for-minute trajectory comparison against horizon 1.
  size_t mismatches_h4 = 0;
  size_t mismatches_h16 = 0;
  const auto& base = results[0].experiment.minutes;
  for (size_t m = 0; m < base.size(); ++m) {
    if (std::abs(results[1].experiment.minutes[m].freeze_ratio -
                 base[m].freeze_ratio) > 1e-12) {
      ++mismatches_h4;
    }
    if (std::abs(results[2].experiment.minutes[m].freeze_ratio -
                 base[m].freeze_ratio) > 1e-12) {
      ++mismatches_h16;
    }
  }
  std::printf("freeze-ratio trajectory mismatches vs horizon 1: "
              "h=4: %zu, h=16: %zu (of %zu minutes)\n",
              mismatches_h4, mismatches_h16, base.size());

  bench::Section("shape checks (Lemma 3.1, end to end)");
  bench::ShapeCheck(mismatches_h4 == 0 && mismatches_h16 == 0,
                    "with linear f(u), deeper planning produces the exact "
                    "same control trajectory (Lemma 3.1)");
  bench::ShapeCheck(results[0].experiment.violations ==
                            results[2].experiment.violations &&
                        results[0].experiment.throughput_jobs ==
                            results[2].experiment.throughput_jobs,
                    "identical trajectories yield identical outcomes");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
