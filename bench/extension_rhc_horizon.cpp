// Extension: receding-horizon planning depth (§3.6 + Lemma 3.1, live).
//
// The paper formulates the general horizon-N Power Control Problem, then
// proves (Lemma 3.1) that with the linear effect model the iterated
// horizon-1 closed form is already optimal, so planning deeper buys
// nothing. The unit tests verify the lemma against exhaustive search on
// random instances; this bench verifies it END TO END: the same 24-hour
// closed-loop experiment is run with planning horizons 1, 4, and 16, and
// with a constant E forecast the control trajectories must coincide
// minute for minute.

#include <cmath>
#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160428;

ExperimentResult RunWithHorizon(int horizon) {
  ExperimentConfig config =
      bench::PaperExperimentConfig(kSeed, /*target_power=*/1.0, 0.25);
  config.controller.effect = FreezeEffectModel(0.013);
  config.controller.et = EtEstimator::Constant(0.02);
  config.controller.horizon = horizon;
  config.workload.arrivals.ar_sigma = 0.015;
  ControlledExperiment experiment(config);
  return experiment.Run();
}

void Main() {
  bench::Header("Extension: RHC planning horizon",
                "Lemma 3.1 verified in the live closed loop", kSeed);

  std::vector<int> horizons{1, 4, 16};
  std::vector<ExperimentResult> results;
  for (int h : horizons) {
    results.push_back(RunWithHorizon(h));
  }

  bench::Section("24 h heavy runs at rO=0.25 per planning horizon");
  std::printf("%10s %12s %10s %10s %10s\n", "horizon", "violations",
              "u_mean", "P_max", "r_thru");
  for (size_t i = 0; i < horizons.size(); ++i) {
    std::printf("%10d %12d %10.3f %10.3f %10.3f\n", horizons[i],
                results[i].experiment.violations,
                results[i].experiment.u_mean, results[i].experiment.p_max,
                std::min(results[i].throughput_ratio, 1.0));
  }

  // Minute-for-minute trajectory comparison against horizon 1.
  size_t mismatches_h4 = 0;
  size_t mismatches_h16 = 0;
  const auto& base = results[0].experiment.minutes;
  for (size_t m = 0; m < base.size(); ++m) {
    if (std::abs(results[1].experiment.minutes[m].freeze_ratio -
                 base[m].freeze_ratio) > 1e-12) {
      ++mismatches_h4;
    }
    if (std::abs(results[2].experiment.minutes[m].freeze_ratio -
                 base[m].freeze_ratio) > 1e-12) {
      ++mismatches_h16;
    }
  }
  std::printf("freeze-ratio trajectory mismatches vs horizon 1: "
              "h=4: %zu, h=16: %zu (of %zu minutes)\n",
              mismatches_h4, mismatches_h16, base.size());

  bench::Section("shape checks (Lemma 3.1, end to end)");
  bench::ShapeCheck(mismatches_h4 == 0 && mismatches_h16 == 0,
                    "with linear f(u), deeper planning produces the exact "
                    "same control trajectory (Lemma 3.1)");
  bench::ShapeCheck(results[0].experiment.violations ==
                            results[2].experiment.violations &&
                        results[0].experiment.throughput_jobs ==
                            results[2].experiment.throughput_jobs,
                    "identical trajectories yield identical outcomes");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
