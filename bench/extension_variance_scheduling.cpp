// Extension (paper §6 future work): "scheduling the jobs to different rows
// so that there can be a larger variance in power utilization across
// different rows, leading to more unused power to cultivate."
//
// The kConcentrateRows placement policy packs new jobs onto already-busy
// rows (below a per-row power ceiling), leaving other rows cold. Total
// slack (budget minus draw) is conserved — power has to go somewhere — so
// the win is CONSOLIDATION, not creation: compared with uniform random
// placement at the same total load, concentration
//   * raises the cross-row power variance,
//   * gathers the headroom into one large, temporally stable block on the
//     cold row (where whole racks of extra servers can be provisioned with
//     a tiny safety margin) instead of thin slivers on every row,
// without losing throughput (the policy is work-conserving).

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/fleet.h"
#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160426;
constexpr int kRows = 4;
constexpr int kServersPerRow = 80;

struct PolicyOutcome {
  double row_power_stddev = 0.0;   // Across rows, of per-row mean power.
  double headroom_watts = 0.0;     // Sum over rows of budget - p95(power).
  double max_row_headroom = 0.0;   // Largest single-row p95 headroom.
  double coldest_row_stddev = 0.0; // Temporal stddev of the coldest row.
  uint64_t jobs_placed = 0;
  size_t queue_length = 0;
  std::vector<double> row_mean;
  std::vector<double> row_p95;
};

PolicyOutcome RunPolicy(PlacementPolicy policy) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = kRows;
  topo.racks_per_row = 4;
  topo.servers_per_rack = kServersPerRow / 4;
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  SchedulerConfig sched_config;
  sched_config.policy = policy;
  Scheduler scheduler(&dc, sched_config, rng.Fork(1));
  PowerMonitorConfig mc;
  PowerMonitor monitor(&dc, &db, mc, rng.Fork(2));
  JobIdAllocator ids;
  BatchWorkloadParams params;
  // Total demand ~45 % CPU across the fleet: enough to fully load ~2 of the
  // 4 rows when concentrated.
  params.arrivals.base_rate_per_min = 0.45 * kRows * kServersPerRow * 16.0 /
                                      (9.1 * 2.0);
  params.arrivals.ar_sigma = 0.02;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  sim.RunUntil(SimTime::Hours(26));

  PolicyOutcome out;
  std::vector<double> row_means;
  double coldest_mean = 1e18;
  for (int32_t r = 0; r < kRows; ++r) {
    std::vector<double> watts;
    for (const auto& p : db.QueryView(PowerMonitor::RowSeries(RowId(r)),
                                  SimTime::Hours(2), SimTime::Hours(26))) {
      watts.push_back(p.value);
    }
    Summary s = Summarize(watts);
    row_means.push_back(s.mean);
    double p95 = Percentile(watts, 0.95);
    out.row_mean.push_back(s.mean);
    out.row_p95.push_back(p95);
    double headroom = std::max(0.0, dc.row_budget_watts(RowId(r)) - p95);
    out.headroom_watts += headroom;
    out.max_row_headroom = std::max(out.max_row_headroom, headroom);
    if (s.mean < coldest_mean) {
      coldest_mean = s.mean;
      out.coldest_row_stddev = s.stddev;
    }
  }
  out.row_power_stddev = Summarize(row_means).stddev;
  out.jobs_placed = scheduler.jobs_placed();
  out.queue_length = scheduler.queue_length();
  return out;
}

void Main() {
  bench::Header("Extension: variance-cultivating placement",
                "random-fit vs concentrate-rows (§6 future work)", kSeed);

  PolicyOutcome random = RunPolicy(PlacementPolicy::kRandomFit);
  PolicyOutcome packed = RunPolicy(PlacementPolicy::kConcentrateRows);

  bench::Section("24 h at ~45% fleet CPU, 4 rows x 80 servers");
  std::printf("%16s %16s %16s %12s %8s\n", "policy", "row_stddev_W",
              "headroom_W", "placed", "queued");
  std::printf("%16s %16.0f %16.0f %12llu %8zu\n", "random-fit",
              random.row_power_stddev, random.headroom_watts,
              static_cast<unsigned long long>(random.jobs_placed),
              random.queue_length);
  std::printf("%16s %16.0f %16.0f %12llu %8zu\n", "concentrate",
              packed.row_power_stddev, packed.headroom_watts,
              static_cast<unsigned long long>(packed.jobs_placed),
              packed.queue_length);

  bench::Section("per-row mean / p95 power (W)");
  std::printf("%6s %12s %12s %12s %12s\n", "row", "rand_mean", "rand_p95",
              "pack_mean", "pack_p95");
  for (int r = 0; r < kRows; ++r) {
    auto i = static_cast<size_t>(r);
    std::printf("%6d %12.0f %12.0f %12.0f %12.0f\n", r, random.row_mean[i],
                random.row_p95[i], packed.row_mean[i], packed.row_p95[i]);
  }

  std::printf("largest single-row headroom: random %.0f W, concentrate "
              "%.0f W\n",
              random.max_row_headroom, packed.max_row_headroom);
  std::printf("coldest row temporal stddev: random %.0f W, concentrate "
              "%.0f W\n",
              random.coldest_row_stddev, packed.coldest_row_stddev);

  bench::Section("shape checks (the future-work hypothesis)");
  bench::ShapeCheck(packed.row_power_stddev > 2.0 * random.row_power_stddev,
                    "concentration raises cross-row power variance");
  bench::ShapeCheck(packed.max_row_headroom > 1.8 * random.max_row_headroom,
                    "the headroom consolidates into one large block "
                    "(cultivable by whole racks, not server slivers)");
  bench::ShapeCheck(
      packed.coldest_row_stddev < 0.7 * random.coldest_row_stddev,
      "the cold row is temporally stable (tiny safety margin suffices)");
  bench::ShapeCheck(
      packed.headroom_watts > 0.85 * random.headroom_watts,
      "total slack is roughly conserved (consolidated, not created) — a "
      "finding of this reproduction");
  bench::ShapeCheck(packed.jobs_placed >= random.jobs_placed * 99 / 100 &&
                        packed.queue_length <= random.queue_length + 10,
                    "the policy is work-conserving (no throughput loss)");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
