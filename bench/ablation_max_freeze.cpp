// Ablation: the 50 % freezing-ratio cap (§4.2 + future work).
//
// The paper limits the freezing ratio to 50 % "considering some operational
// maintenance issues of the scheduler"; their single heavy-load violation
// was caused by that cap saturating, and removing the limitation is listed
// as future work. This bench sweeps the cap under heavy demand. Expected
// shape: violations fall monotonically as the cap rises (more control
// authority), at the price of deeper throughput suppression while control
// is active.
//
// The four cap arms are independent day-long simulations and run in
// parallel through the scenario harness.

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160425;

struct CapResult {
  double max_ratio = 0.0;
  int violations = 0;
  double u_mean = 0.0;
  double u_max = 0.0;
  double r_thru = 0.0;
};

void Main(const harness::HarnessArgs& args) {
  bench::Header("Ablation: max freezing ratio",
                "lifting the paper's 50% operational cap under heavy load",
                kSeed);

  const std::vector<double> caps{0.3, 0.5, 0.7, 0.9};
  auto grid = bench::RunGrid(
      args, caps,
      [](double cap, size_t) {
        char name[32];
        std::snprintf(name, sizeof(name), "cap=%.1f", cap);
        return harness::GridMeta{name, kSeed};
      },
      [](double cap, harness::RunContext& context) {
        ExperimentConfig config =
            bench::PaperExperimentConfig(kSeed, /*target_power=*/1.02, 0.25);
        config.controller.effect = FreezeEffectModel(0.013);
        config.controller.et = EtEstimator::Constant(0.02);
        config.controller.max_freeze_ratio = cap;
        config.workload.arrivals.ar_sigma = 0.015;
        ExperimentResult result = RunExperimentToResult(config);
        CapResult out;
        out.max_ratio = cap;
        out.violations = result.experiment.violations;
        out.u_mean = result.experiment.u_mean;
        out.u_max = result.experiment.u_max;
        out.r_thru = std::min(result.throughput_ratio, 1.0);
        context.Metric("cap", out.max_ratio);
        context.Metric("violations", out.violations);
        context.Metric("u_mean", out.u_mean);
        context.Metric("u_max", out.u_max);
        context.Metric("r_thru", out.r_thru);
        return out;
      });

  bench::Section("24 h runs at rO=0.25, demand ~1.02 of budget");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const std::vector<CapResult>& results = grid.values;

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(results[0].violations > results[1].violations,
                    "a tighter cap than the paper's 0.5 loses protection");
  bench::ShapeCheck(results[3].violations <= results[1].violations,
                    "lifting the cap (future work) removes the residual "
                    "violations the paper attributes to it");
  bool authority_used = true;
  for (const CapResult& r : results) {
    if (r.u_max < r.max_ratio - 0.05) {
      authority_used = false;
    }
  }
  bench::ShapeCheck(authority_used,
                    "under heavy load the controller saturates whatever cap "
                    "it is given");
  bench::ShapeCheck(results[3].r_thru <= results[0].r_thru + 0.02,
                    "extra protection is paid for with throughput");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
