// Figure 7: CDF of batch job durations in the production cluster.
// Paper's shape: mean ≈ 9 minutes, ~40 % of jobs finish within 2 minutes,
// and the CDF reaches ~0.97 by 50 minutes.

#include <vector>

#include "bench/bench_common.h"
#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"
#include "src/workload/duration_model.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160407;

void Main() {
  bench::Header("Figure 7", "CDF of batch job durations", kSeed);

  DurationModel model;
  Rng rng(kSeed);
  std::vector<double> minutes;
  const int n = 500000;
  minutes.reserve(n);
  for (int i = 0; i < n; ++i) {
    minutes.push_back(model.Sample(rng).minutes());
  }
  Summary s = Summarize(minutes);
  std::printf("samples: %d   mean: %.2f min   p50: %.2f min\n", n, s.mean,
              Percentile(minutes, 0.5));

  EmpiricalCdf cdf(std::move(minutes));
  bench::Section("CDF (duration in minutes -> cumulative fraction)");
  std::printf("%10s %10s\n", "minutes", "cdf");
  for (double x : {0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 9.0, 12.0, 15.0, 20.0, 25.0,
                   30.0, 40.0, 50.0}) {
    std::printf("%10.1f %10.4f\n", x, cdf.Evaluate(x));
  }

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(s.mean > 8.4 && s.mean < 9.6,
                    "average job duration ~9 minutes");
  bench::ShapeCheck(cdf.Evaluate(2.0) > 0.36 && cdf.Evaluate(2.0) < 0.44,
                    "~40% of jobs finish within 2 minutes");
  bench::ShapeCheck(cdf.Evaluate(50.0) > 0.94,
                    "CDF nearly saturates by 50 minutes");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
