// Micro-benchmarks (google-benchmark) for the hot components: controller
// decision latency, telemetry sampling, scheduler placement, SPCP/PCP
// solvers, and the event core. These quantify that the control plane is
// cheap enough for the paper's one-minute cadence with enormous headroom.
//
// The instrumented paths (controller tick, monitor sample, scheduler
// placement) run under a private obs::MetricsRegistry so their counters and
// spans land in a bench-local registry, exactly as harness runs do. The
// BM_ObsOverheadControllerTick pair quantifies what that instrumentation
// costs: Arg(1) ticks with obs enabled, Arg(0) with the runtime kill switch
// off — the closest runtime stand-in for an -DAMPERE_OBS_DISABLED=ON build,
// which compiles the macros away entirely. Acceptance wants the enabled arm
// within 5 % of the disabled arm.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/span_kernels.h"
#include "src/core/controller.h"
#include "src/control/pcp.h"
#include "src/control/spcp.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"

// --- Global allocation counter ------------------------------------------
//
// Same replacement perf_closed_loop uses: every operator new bumps a relaxed
// atomic so steady-state cases can assert a zero allocation delta. Counts
// are only ever read as before/after differences around controlled loops,
// so the benchmark framework's own allocations never pollute a reading.

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   ((size + static_cast<std::size_t>(align) -
                                     1) /
                                    static_cast<std::size_t>(align)) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ampere {
namespace {

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

struct Rig {
  Simulation sim;
  DataCenter dc;
  TimeSeriesDb db;
  Scheduler scheduler;
  PowerMonitor monitor;

  static TopologyConfig Topology(int rows) {
    TopologyConfig config;
    config.num_rows = rows;
    config.racks_per_row = 10;
    config.servers_per_rack = 42;
    return config;
  }

  explicit Rig(int rows)
      : dc(Topology(rows), &sim),
        scheduler(&dc, SchedulerConfig{}, Rng(1)),
        monitor(&dc, &db, PowerMonitorConfig{}, Rng(2)) {}
};

void BM_SpcpSolve(benchmark::State& state) {
  double p = 0.99;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSpcp(p, 0.02, 1.0, 0.05));
  }
}
BENCHMARK(BM_SpcpSolve);

void BM_PcpGreedyHorizon(benchmark::State& state) {
  PcpProblem problem;
  problem.p0 = 0.98;
  problem.e.assign(static_cast<size_t>(state.range(0)), 0.03);
  problem.pm = 1.0;
  problem.f = [](double u) { return 0.05 * u; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolvePcpGreedy(problem));
  }
}
BENCHMARK(BM_PcpGreedyHorizon)->Arg(1)->Arg(10)->Arg(60);

void BM_MonitorSampleRow(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  Rig rig(static_cast<int>(state.range(0)));
  int64_t minute = 1;
  for (auto _ : state) {
    rig.monitor.SampleOnce(
        SimTime::Minutes(static_cast<double>(minute++)));
  }
  state.SetItemsProcessed(state.iterations() * rig.dc.num_servers());
}
BENCHMARK(BM_MonitorSampleRow)->Arg(1)->Arg(4);

// Group sampling in steady state, with the group registered AFTER
// PreallocateSamples — the ordering that used to leave the group's series
// unreserved (RegisterGroup now back-fills the reservation from the last
// preallocation). Before the timed loop the case hard-asserts a zero
// allocation delta across 64 sample passes, so a regression fails the run
// loudly instead of just shifting a number.
void BM_GroupSamplingSteadyState(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  constexpr size_t kPrealloc = size_t{1} << 15;
  int64_t minute = 1;
  size_t taken = 0;
  auto make_rig = [&] {
    auto rig = std::make_unique<Rig>(1);
    // Preallocation FIRST, group registration SECOND: the previously buggy
    // order. RegisterGroup must reserve the new series itself.
    rig->monitor.PreallocateSamples(kPrealloc + 16);
    std::vector<ServerId> all;
    all.reserve(static_cast<size_t>(rig->dc.num_servers()));
    for (int32_t s = 0; s < rig->dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
    }
    rig->monitor.RegisterGroup("all_servers", all);
    minute = 1;
    taken = 0;
    return rig;
  };
  auto rig = make_rig();
  auto sample = [&] {
    rig->monitor.SampleOnce(SimTime::Minutes(static_cast<double>(minute++)));
    ++taken;
  };
  for (int i = 0; i < 4; ++i) {
    sample();  // Warmup: first passes may fault pages / prime maps.
  }
  const uint64_t allocs_before = AllocCount();
  for (int i = 0; i < 64; ++i) {
    sample();
  }
  AMPERE_CHECK(AllocCount() == allocs_before)
      << "group sampling allocated in steady state after "
         "PreallocateSamples -> RegisterGroup";
  for (auto _ : state) {
    if (taken >= kPrealloc) {
      state.PauseTiming();
      rig = make_rig();
      for (int i = 0; i < 4; ++i) {
        sample();
      }
      state.ResumeTiming();
    }
    sample();
  }
  state.SetItemsProcessed(state.iterations() * rig->dc.num_servers());
  state.SetLabel("prealloc_then_register_group_zero_alloc");
}
BENCHMARK(BM_GroupSamplingSteadyState);

// --- Scalar vs batched kernels ------------------------------------------
//
// The three vectorized hot kernels, each with its scalar twin under Arg(0)
// and the batched span form under Arg(1). Every batched arm hard-asserts
// (a) bit-identity against the scalar arm over the same inputs and (b) a
// zero allocation delta across the measured region — the determinism and
// zero-alloc contracts are enforced here in the bench, not just in tests.

// Counter-based Box-Muller: one row of sensor noise (420 servers = 210
// pairs), per-pair calls vs one StandardNormalSpan sweep.
void BM_NoiseSpan(benchmark::State& state) {
  constexpr size_t kPairs = 210;
  const uint64_t base = counter_rng::TickBase(0x9E3779B97F4A7C15ULL, 1234);
  std::vector<double> scalar(2 * kPairs, 0.0);
  std::vector<double> batched(2 * kPairs, 0.0);
  for (size_t s = 0; s < kPairs; ++s) {
    const auto pair = counter_rng::StandardNormalPair(
        counter_rng::StreamKey(base, static_cast<uint64_t>(s)));
    scalar[2 * s] = pair.z0;
    scalar[2 * s + 1] = pair.z1;
  }
  counter_rng::StandardNormalSpan(base, 0, kPairs, batched.data());
  for (size_t i = 0; i < 2 * kPairs; ++i) {
    AMPERE_CHECK(scalar[i] == batched[i])
        << "StandardNormalSpan diverged from StandardNormalPair at " << i;
  }
  const bool use_span = state.range(0) != 0;
  const uint64_t allocs_before = AllocCount();
  for (auto _ : state) {
    if (use_span) {
      counter_rng::StandardNormalSpan(base, 0, kPairs, batched.data());
      benchmark::DoNotOptimize(batched.data());
    } else {
      for (size_t s = 0; s < kPairs; ++s) {
        const auto pair = counter_rng::StandardNormalPair(
            counter_rng::StreamKey(base, static_cast<uint64_t>(s)));
        scalar[2 * s] = pair.z0;
        scalar[2 * s + 1] = pair.z1;
      }
      benchmark::DoNotOptimize(scalar.data());
    }
  }
  AMPERE_CHECK(AllocCount() == allocs_before)
      << "noise kernel allocated in steady state";
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * kPairs));
  state.SetLabel(use_span ? "batched_span" : "scalar_pairs");
}
BENCHMARK(BM_NoiseSpan)->Arg(0)->Arg(1);

// Row resummation: one row's power span (420 servers), naive accumulate
// loop vs the fixed blocked-order reduction. (SumSequential IS the naive
// loop — the interesting comparison is the blocked order the bulk capping
// path uses, which trades association order for SIMD lanes.)
void BM_ResummateRowSpan(benchmark::State& state) {
  constexpr size_t kServers = 420;
  std::vector<double> watts(kServers);
  for (size_t i = 0; i < kServers; ++i) {
    watts[i] = 162.5 + 0.25 * static_cast<double>(i % 41);
  }
  // The dispatcher must match the portable kernel bit-for-bit (vaddpd is
  // four independent IEEE adds) — pin it here too, at both an aligned and
  // a ragged length.
  for (size_t n : {kServers, size_t{417}, size_t{3}, size_t{1}}) {
    AMPERE_CHECK(span_kernels::SumBlocked4(watts.data(), n) ==
                 span_kernels::SumBlocked4Portable(watts.data(), n))
        << "blocked4 dispatcher diverged from portable at n=" << n;
  }
  const bool use_blocked = state.range(0) != 0;
  const uint64_t allocs_before = AllocCount();
  for (auto _ : state) {
    double sum = use_blocked
                     ? span_kernels::SumBlocked4(watts.data(), kServers)
                     : span_kernels::SumSequential(watts.data(), kServers);
    benchmark::DoNotOptimize(sum);
  }
  AMPERE_CHECK(AllocCount() == allocs_before)
      << "span reduction allocated in steady state";
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kServers));
  state.SetLabel(use_blocked ? "blocked4" : "sequential");
}
BENCHMARK(BM_ResummateRowSpan)->Arg(0)->Arg(1);

// Per-rack power-model evaluation at one uniform frequency (the row-capping
// shape): per-server PowerAt/DynamicPowerAt calls vs one
// PowerSpanUniformFreq sweep over the rack span.
void BM_PowerModelRackBatch(benchmark::State& state) {
  constexpr size_t kRack = 42;
  const ServerPowerModel model{PowerModelParams{}};
  std::vector<double> util(kRack);
  for (size_t i = 0; i < kRack; ++i) {
    util[i] = static_cast<double>(i) / static_cast<double>(kRack);
  }
  const double freq = 0.8;
  std::vector<double> power_scalar(kRack), dynamic_scalar(kRack);
  std::vector<double> power_batch(kRack), dynamic_batch(kRack);
  for (size_t i = 0; i < kRack; ++i) {
    power_scalar[i] = model.PowerAt(util[i], freq);
    dynamic_scalar[i] = model.DynamicPowerAt(util[i], 1.0);
  }
  model.PowerSpanUniformFreq(util.data(), freq, power_batch.data(),
                             dynamic_batch.data(), kRack);
  for (size_t i = 0; i < kRack; ++i) {
    AMPERE_CHECK(power_scalar[i] == power_batch[i] &&
                 dynamic_scalar[i] == dynamic_batch[i])
        << "PowerSpanUniformFreq diverged from scalar calls at " << i;
  }
  const bool use_span = state.range(0) != 0;
  const uint64_t allocs_before = AllocCount();
  for (auto _ : state) {
    if (use_span) {
      model.PowerSpanUniformFreq(util.data(), freq, power_batch.data(),
                                 dynamic_batch.data(), kRack);
      benchmark::DoNotOptimize(power_batch.data());
    } else {
      for (size_t i = 0; i < kRack; ++i) {
        power_scalar[i] = model.PowerAt(util[i], freq);
        dynamic_scalar[i] = model.DynamicPowerAt(util[i], 1.0);
      }
      benchmark::DoNotOptimize(power_scalar.data());
    }
  }
  AMPERE_CHECK(AllocCount() == allocs_before)
      << "power-model batch allocated in steady state";
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kRack));
  state.SetLabel(use_span ? "batched_rack_span" : "scalar_per_server");
}
BENCHMARK(BM_PowerModelRackBatch)->Arg(0)->Arg(1);

void BM_SchedulerPlacement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  Rig rig(1);
  int32_t id = 0;
  for (auto _ : state) {
    JobSpec job;
    job.id = JobId(id++);
    job.demand = Resources{1.0, 2.0};
    job.duration = SimTime::Minutes(9);
    rig.scheduler.Submit(job);
    if (id % 2000 == 0) {
      // Drain so the cluster does not clog.
      state.PauseTiming();
      rig.sim.RunUntil(rig.sim.now() + SimTime::Minutes(10));
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerPlacement);

// One 420-server row under a loaded fleet, with a monitor group registered
// and a controller ready to tick — shared by the tick-latency and the
// obs-overhead benches so both measure the identical decision path.
struct ControllerTickRig {
  Rig rig{1};
  TimeSeriesDb db2;
  PowerMonitor monitor;
  std::unique_ptr<AmpereController> controller;
  int64_t minute = 2;

  ControllerTickRig()
      : monitor(&rig.dc, &db2, PowerMonitorConfig{}, Rng(3)) {
    std::vector<ServerId> all;
    for (int32_t s = 0; s < rig.dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
      rig.dc.PlaceTask(ServerId(s), TaskSpec{JobId(s), Resources{8.0, 8.0},
                                             SimTime::Hours(1000)});
    }
    monitor.RegisterGroup("row", all);
    monitor.SampleOnce(SimTime::Minutes(1));
    AmpereControllerConfig config;
    config.effect = FreezeEffectModel(0.05);
    config.et = EtEstimator::Constant(0.02);
    controller = std::make_unique<AmpereController>(&rig.scheduler, &monitor,
                                                    config);
    controller->AddDomain({"row", all, 420 * 250.0 / 1.25});
  }

  void Tick() {
    controller->Tick(SimTime::Minutes(static_cast<double>(minute++)));
  }
};

void BM_ControllerTick420Servers(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  ControllerTickRig rig;
  for (auto _ : state) {
    rig.Tick();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerTick420Servers);

// obs_overhead: the same tick loop with instrumentation on (Arg 1) and with
// the obs runtime kill switch off (Arg 0). Disabled, every AMPERE_SPAN /
// AMPERE_COUNTER_ADD site reduces to one relaxed atomic load and a branch —
// the runtime approximation of the -DAMPERE_OBS_DISABLED=ON build, where
// they compile to nothing. The DecisionJournal (config-gated, not
// obs-gated) stays on in both arms so the delta isolates the macro cost.
void BM_ObsOverheadControllerTick(benchmark::State& state) {
  const bool instrumented = state.range(0) == 1;
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  obs::SetEnabled(instrumented);
  ControllerTickRig rig;
  for (auto _ : state) {
    rig.Tick();
  }
  obs::SetEnabled(true);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(instrumented ? "instrumented" : "obs_disabled");
}
BENCHMARK(BM_ObsOverheadControllerTick)->Arg(1)->Arg(0);

// Flight-recorder append in steady state. The ring is preallocated at
// construction and a slot write is a fixed-size POD copy, so after a short
// warmup the case hard-asserts a ZERO allocation delta across 4096 appends
// (eviction included — the ring is 1024 slots, so the assert loop wraps it
// four times). A regression that puts an allocation on the append path
// fails the run loudly instead of shifting a number.
void BM_FlightRecorderAppend(benchmark::State& state) {
  obs::FlightRecorder recorder(1024);
  int64_t t = 0;
  auto append = [&] {
    recorder.Append(SimTime::Micros(t++), obs::TimelineEventType::kTickBegin,
                    1.0, 2.0, 3);
  };
  for (int i = 0; i < 64; ++i) {
    append();  // Warmup: fault the ring's pages.
  }
  const uint64_t allocs_before = AllocCount();
  for (int i = 0; i < 4096; ++i) {
    append();
  }
  AMPERE_CHECK(AllocCount() == allocs_before)
      << "flight-recorder append allocated in steady state";
  for (auto _ : state) {
    append();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("steady_state_zero_alloc");
}
BENCHMARK(BM_FlightRecorderAppend);

// The AMPERE_TIMELINE dispatch cost by mode: recording (Arg 2) pays the
// ring write; armed-but-no-recorder (Arg 1) is the usual production state —
// one thread_local load and a branch; kill switch off (Arg 0) is one relaxed
// atomic load — the runtime stand-in for -DAMPERE_OBS_DISABLED=ON, where the
// macro compiles to ((void)0). Acceptance wants the Arg 0 / Arg 1 residuals
// at effectively zero next to any real work.
void BM_TimelineMacroDispatch(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  obs::FlightRecorder recorder(1024);
  std::optional<obs::ScopedFlightRecorder> scoped;
  if (mode == 2) scoped.emplace(&recorder);
  if (mode == 0) obs::SetEnabled(false);
  int64_t t = 0;
  for (auto _ : state) {
    AMPERE_TIMELINE(SimTime::Micros(t++),
                    obs::TimelineEventType::kTickBegin, 1.0, 2.0, 3);
  }
  obs::SetEnabled(true);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(mode == 2   ? "recording"
                 : mode == 1 ? "no_recorder"
                             : "obs_disabled");
}
BENCHMARK(BM_TimelineMacroDispatch)->Arg(2)->Arg(1)->Arg(0);

// recorder_overhead: the identical controller decision path with a flight
// recorder in scope (Arg 1) vs without one (Arg 0). Both arms keep metrics
// instrumentation on, so the delta isolates what RECORDING timeline events
// adds on top — a tick_begin/tick_end pair plus one event per freeze RPC.
// Acceptance wants the recording arm within 5 % of the recorder-less arm.
void BM_RecorderOverheadControllerTick(benchmark::State& state) {
  const bool recording = state.range(0) == 1;
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  obs::FlightRecorder recorder(16384);
  std::optional<obs::ScopedFlightRecorder> scoped;
  if (recording) scoped.emplace(&recorder);
  ControllerTickRig rig;
  for (auto _ : state) {
    rig.Tick();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(recording ? "recording" : "no_recorder");
}
BENCHMARK(BM_RecorderOverheadControllerTick)->Arg(1)->Arg(0);

// The raw cost of the obs primitives themselves, for when the per-path
// numbers above need explaining.
void BM_ObsCounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  for (auto _ : state) {
    AMPERE_COUNTER_ADD("bench.counter", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  double value = 0.0;
  for (auto _ : state) {
    AMPERE_HISTOGRAM_OBSERVE("bench.hist", value);
    value += 0.1;
    if (value > 1000.0) value = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpan(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  for (auto _ : state) {
    AMPERE_SPAN("bench.span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpan);

void BM_ObsSnapshot(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  for (int i = 0; i < 16; ++i) {
    obs::CounterAdd("bench.counter." + std::to_string(i), 1);
    obs::GaugeSet("bench.gauge." + std::to_string(i),
                  static_cast<double>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Snapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSnapshot);

// fault_path_overhead: the telemetry sample pass — the hottest injector-
// guarded path (one dropout/noise decision per server per minute) — with
// (Arg 1) a quiescent injector attached (all probabilities zero, empty
// window schedule: every hook short-circuits without advancing an RNG) vs
// (Arg 0) no injector at all (every hook is one nullptr test). Acceptance
// wants the quiescent-attached arm within 5 % of the detached arm: runs
// that don't opt into chaos must not pay for the capability.
void BM_FaultPathOverheadMonitorSample(benchmark::State& state) {
  const bool attached = state.range(0) == 1;
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  Rig rig(1);
  faults::FaultPlanConfig quiescent;  // any() == false.
  quiescent.rpc_latency_mean = SimTime();
  faults::FaultPlan plan =
      faults::FaultPlan::Generate(quiescent, SimTime::Hours(26));
  faults::FaultInjector injector(plan);
  if (attached) {
    rig.monitor.AttachFaultInjector(&injector);
  }
  int64_t minute = 1;
  for (auto _ : state) {
    rig.monitor.SampleOnce(SimTime::Minutes(static_cast<double>(minute++)));
  }
  state.SetItemsProcessed(state.iterations() * rig.dc.num_servers());
  state.SetLabel(attached ? "quiescent_injector" : "no_injector");
}
BENCHMARK(BM_FaultPathOverheadMonitorSample)->Arg(0)->Arg(1);

// The same question for an injector whose faults DO fire at the moderate
// preset's rates — the price of actually being under chaos, for context.
void BM_FaultPathActiveMonitorSample(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);
  Rig rig(1);
  faults::FaultPlanConfig active;
  active.sample_dropout_prob = 0.05;
  active.noise_spike_prob = 0.01;
  active.noise_spike_sigma_watts = 15.0;
  active.sensor_bias_watts = 1.0;
  faults::FaultPlan plan =
      faults::FaultPlan::Generate(active, SimTime::Hours(26));
  faults::FaultInjector injector(plan);
  rig.monitor.AttachFaultInjector(&injector);
  int64_t minute = 1;
  for (auto _ : state) {
    rig.monitor.SampleOnce(SimTime::Minutes(static_cast<double>(minute++)));
  }
  state.SetItemsProcessed(state.iterations() * rig.dc.num_servers());
}
BENCHMARK(BM_FaultPathActiveMonitorSample);

void BM_EventCoreScheduleFire(benchmark::State& state) {
  Simulation sim;
  for (auto _ : state) {
    sim.ScheduleAfter(SimTime::Micros(1), [] {});
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCoreScheduleFire);

// Schedule + O(1) cancel through the pooled slots. Cancelled entries linger
// in the queue until popped, so the loop drains periodically (untimed) to
// keep the heap at steady size; the timed region is pure schedule/cancel.
void BM_EventCoreScheduleCancel(benchmark::State& state) {
  Simulation sim;
  int n = 0;
  for (auto _ : state) {
    auto handle = sim.ScheduleAfter(SimTime::Micros(1), [] {});
    handle.Cancel();
    if (++n % 4096 == 0) {
      state.PauseTiming();
      sim.Step();  // Drains every stale entry; returns false.
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCoreScheduleCancel);

// Reference arm for the event core: the per-event allocation pattern the
// pooled slots replaced — one shared_ptr control block for the cancel state
// plus one std::function whose typical 24-byte closure overflows libstdc++'s
// 16-byte inline buffer. The old queue is not reimplemented; the delta
// against BM_EventCoreScheduleFire is the allocator traffic the slab/free
// list removed (everything else about the two loops is equivalent work).
void BM_EventCoreLegacyAllocPattern(benchmark::State& state) {
  struct CancelState {
    bool cancelled = false;
  };
  uint64_t hits = 0;
  for (auto _ : state) {
    auto cancel_state = std::make_shared<CancelState>();
    const uint64_t a = hits;
    const int64_t b = static_cast<int64_t>(hits);
    std::function<void()> callback = [&hits, a, b] {
      hits += (a ^ static_cast<uint64_t>(b)) & 1u;
    };
    if (!cancel_state->cancelled) {
      callback();
    }
    benchmark::DoNotOptimize(cancel_state);
    benchmark::DoNotOptimize(callback);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCoreLegacyAllocPattern);

// Row-power read: the incrementally maintained aggregate (one load) vs the
// full loop over the row's servers that it replaced as the readers' path.
// Both return the same watts (the loop IS the resummation the drift-snap
// periodically applies); the question is only what a read costs at 420
// servers per row.
void BM_RowPowerRead(benchmark::State& state) {
  const bool incremental = state.range(0) == 1;
  Simulation sim;
  DataCenter dc(Rig::Topology(1), &sim);
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    dc.PlaceTask(ServerId(s), TaskSpec{JobId(s), Resources{8.0, 8.0},
                                       SimTime::Hours(1000)});
  }
  for (auto _ : state) {
    const double watts = incremental
                             ? dc.row_power_watts(RowId(0))
                             : dc.PowerOfServers(dc.servers_in_row(RowId(0)));
    benchmark::DoNotOptimize(watts);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(incremental ? "incremental_O1" : "loop_over_420_servers");
}
BENCHMARK(BM_RowPowerRead)->Arg(1)->Arg(0);

// String-name append: the convenience shim. Pays one transparent-hash map
// probe per call before landing in the same flat storage as the interned
// path below.
void BM_TimeSeriesAppend(benchmark::State& state) {
  TimeSeriesDb db;
  int64_t t = 0;
  for (auto _ : state) {
    db.Append("bench", SimTime::Micros(t++), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesAppend);

// Interned-handle append: the hot path PowerMonitor uses. One bounds check
// plus a vector push_back — no hashing, no name formatting.
void BM_TimeSeriesAppendInterned(benchmark::State& state) {
  TimeSeriesDb db;
  const SeriesId id = db.Intern("bench");
  int64_t t = 0;
  for (auto _ : state) {
    db.Append(id, SimTime::Micros(t++), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesAppendInterned);

// Bulk ingest: one AppendBatch call per batch (Arg1 == 1) vs the same batch
// fed through the per-point interned Append (Arg1 == 0). Both arms pay the
// identical batch-fill loop; the delta is the per-point call + order-check
// overhead the batch form amortizes to once per batch. Storage is reserved
// up front and the db is rebuilt (untimed) when the reservation is
// exhausted, so neither arm ever times a reallocation.
void BM_TimeSeriesAppendBatch(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) == 1;
  constexpr size_t kReserve = size_t{1} << 22;
  std::optional<TimeSeriesDb> db;
  SeriesId id;
  size_t appended = 0;
  auto reset_db = [&] {
    db.emplace();
    id = db->Intern("bench");
    db->ReservePoints(id, kReserve + batch_size);
    appended = 0;
  };
  reset_db();
  std::vector<TimePoint> batch(batch_size);
  int64_t t = 0;
  for (auto _ : state) {
    if (appended >= kReserve) {
      state.PauseTiming();
      reset_db();
      t = 0;
      state.ResumeTiming();
    }
    for (TimePoint& p : batch) {
      p = TimePoint{SimTime::Micros(t++), 1.0};
    }
    if (batched) {
      db->AppendBatch(id, batch);
    } else {
      for (const TimePoint& p : batch) {
        db->Append(id, p.time, p.value);
      }
    }
    appended += batch_size;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_size));
  state.SetLabel(batched ? "append_batch" : "append_per_point");
}
BENCHMARK(BM_TimeSeriesAppendBatch)
    ->Args({64, 1})
    ->Args({64, 0})
    ->Args({420, 1})
    ->Args({420, 0});

// The map probe in isolation (Find by name), for decomposing the string-
// minus-interned delta above.
void BM_TimeSeriesFindByName(benchmark::State& state) {
  TimeSeriesDb db;
  db.Append("bench", SimTime::Micros(0), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Find("bench"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesFindByName);

}  // namespace
}  // namespace ampere

BENCHMARK_MAIN();
