// Micro-benchmarks (google-benchmark) for the hot components: controller
// decision latency, telemetry sampling, scheduler placement, SPCP/PCP
// solvers, and the event core. These quantify that the control plane is
// cheap enough for the paper's one-minute cadence with enormous headroom.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/core/controller.h"
#include "src/control/pcp.h"
#include "src/control/spcp.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

struct Rig {
  Simulation sim;
  DataCenter dc;
  TimeSeriesDb db;
  Scheduler scheduler;
  PowerMonitor monitor;

  static TopologyConfig Topology(int rows) {
    TopologyConfig config;
    config.num_rows = rows;
    config.racks_per_row = 10;
    config.servers_per_rack = 42;
    return config;
  }

  explicit Rig(int rows)
      : dc(Topology(rows), &sim),
        scheduler(&dc, SchedulerConfig{}, Rng(1)),
        monitor(&dc, &db, PowerMonitorConfig{}, Rng(2)) {}
};

void BM_SpcpSolve(benchmark::State& state) {
  double p = 0.99;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSpcp(p, 0.02, 1.0, 0.05));
  }
}
BENCHMARK(BM_SpcpSolve);

void BM_PcpGreedyHorizon(benchmark::State& state) {
  PcpProblem problem;
  problem.p0 = 0.98;
  problem.e.assign(static_cast<size_t>(state.range(0)), 0.03);
  problem.pm = 1.0;
  problem.f = [](double u) { return 0.05 * u; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolvePcpGreedy(problem));
  }
}
BENCHMARK(BM_PcpGreedyHorizon)->Arg(1)->Arg(10)->Arg(60);

void BM_MonitorSampleRow(benchmark::State& state) {
  Rig rig(static_cast<int>(state.range(0)));
  int64_t minute = 1;
  for (auto _ : state) {
    rig.monitor.SampleOnce(
        SimTime::Minutes(static_cast<double>(minute++)));
  }
  state.SetItemsProcessed(state.iterations() * rig.dc.num_servers());
}
BENCHMARK(BM_MonitorSampleRow)->Arg(1)->Arg(4);

void BM_SchedulerPlacement(benchmark::State& state) {
  Rig rig(1);
  int32_t id = 0;
  for (auto _ : state) {
    JobSpec job;
    job.id = JobId(id++);
    job.demand = Resources{1.0, 2.0};
    job.duration = SimTime::Minutes(9);
    rig.scheduler.Submit(job);
    if (id % 2000 == 0) {
      // Drain so the cluster does not clog.
      state.PauseTiming();
      rig.sim.RunUntil(rig.sim.now() + SimTime::Minutes(10));
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerPlacement);

void BM_ControllerTick420Servers(benchmark::State& state) {
  Rig rig(1);
  std::vector<ServerId> all;
  for (int32_t s = 0; s < rig.dc.num_servers(); ++s) {
    all.push_back(ServerId(s));
    rig.dc.PlaceTask(ServerId(s), TaskSpec{JobId(s), Resources{8.0, 8.0},
                                           SimTime::Hours(1000)});
  }
  // A monitor group is required before Start; construct a second monitor
  // with the group registered.
  TimeSeriesDb db2;
  PowerMonitor monitor(&rig.dc, &db2, PowerMonitorConfig{}, Rng(3));
  monitor.RegisterGroup("row", all);
  monitor.SampleOnce(SimTime::Minutes(1));
  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.05);
  config.et = EtEstimator::Constant(0.02);
  AmpereController controller(&rig.scheduler, &monitor, config);
  controller.AddDomain({"row", all, 420 * 250.0 / 1.25});
  int64_t minute = 2;
  for (auto _ : state) {
    controller.Tick(SimTime::Minutes(static_cast<double>(minute++)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerTick420Servers);

void BM_EventCoreScheduleFire(benchmark::State& state) {
  Simulation sim;
  for (auto _ : state) {
    sim.ScheduleAfter(SimTime::Micros(1), [] {});
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCoreScheduleFire);

void BM_TimeSeriesAppend(benchmark::State& state) {
  TimeSeriesDb db;
  int64_t t = 0;
  for (auto _ : state) {
    db.Append("bench", SimTime::Micros(t++), 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeSeriesAppend);

}  // namespace
}  // namespace ampere

BENCHMARK_MAIN();
