// Baseline: server consolidation via sleep states (§5.1 related work).
//
// PowerNap-style systems save energy by sleeping idle servers and waking
// them on demand. The paper's critique: transitions take tens of seconds,
// so demand has to queue behind cold servers — "it is very hard to
// guarantee the SLA requirements". This bench quantifies the trade on a
// diurnal workload (busy day, quiet night):
//   * always-on  — every server idles at 65 % of rated power all night;
//   * consolidation — idle servers sleep at 6 %, but job-start latency
//     spikes whenever demand returns faster than servers boot.
// Ampere is orthogonal: it raises capacity-per-watt without touching jobs,
// while consolidation cuts idle energy at an SLA price; the shapes here are
// the reason the paper chose the freeze interface for its goal.
//
// The always-on and consolidation arms are independent two-day simulations
// and run in parallel through the scenario harness.

#include <array>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/consolidation.h"
#include "src/stats/percentile.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160501;

// Records submit->placement waits while forwarding to the scheduler.
class WaitTrackingSink : public JobSink {
 public:
  WaitTrackingSink(Scheduler* scheduler, Simulation* sim)
      : scheduler_(scheduler), sim_(sim) {
    scheduler_->SetPlacementListener(
        [this](const JobSpec& job, ServerId) {
          auto it = submit_times_.find(job.id);
          if (it != submit_times_.end()) {
            double wait = (sim_->now() - it->second).minutes();
            waits_minutes_.push_back(wait);
            int hour = it->second.hour_of_day();
            if (hour >= 22 || hour < 7) {
              night_waits_minutes_.push_back(wait);
            }
            submit_times_.erase(it);
          }
        });
  }

  void Submit(const JobSpec& job) override {
    submit_times_[job.id] = sim_->now();
    scheduler_->Submit(job);
  }

  const std::vector<double>& waits_minutes() const { return waits_minutes_; }
  // Waits of jobs submitted during the quiet night hours (22:00-07:00),
  // where consolidation has put most of the fleet to sleep.
  const std::vector<double>& night_waits_minutes() const {
    return night_waits_minutes_;
  }

 private:
  Scheduler* scheduler_;
  Simulation* sim_;
  std::unordered_map<JobId, SimTime> submit_times_;
  std::vector<double> waits_minutes_;
  std::vector<double> night_waits_minutes_;
};

struct ArmResult {
  double energy_kwh = 0.0;
  double wait_mean_min = 0.0;
  double wait_p99_min = 0.0;
  double night_delayed_fraction = 0.0;  // Night jobs waiting > 3 s.
  double night_wait_max_min = 0.0;
  uint64_t completed = 0;
  uint64_t sleeps = 0;
};

ArmResult RunArm(bool consolidate) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 1;
  topo.racks_per_row = 4;
  topo.servers_per_rack = 15;  // 60 servers.
  topo.wake_latency = SimTime::Seconds(45);
  DataCenter dc(topo, &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  WaitTrackingSink sink(&scheduler, &sim);

  JobIdAllocator ids;
  BatchWorkloadParams params;
  // Deep diurnal swing: ~80 % CPU at the afternoon peak, ~20 % at night,
  // never saturated — an always-on fleet starts every job immediately.
  params.arrivals.base_rate_per_min = 27.0;
  params.arrivals.diurnal_amplitude = 0.6;
  params.arrivals.peak_hour = 14.0;
  // Occasional sharp bursts: a surge arriving while most of the fleet
  // sleeps must queue behind 45-second boots — the SLA hazard.
  params.arrivals.burst_prob = 0.015;
  params.arrivals.burst_factor = 6.0;
  BatchWorkload workload(params, &sim, &sink, &ids, rng.Fork(2));

  std::unique_ptr<ConsolidationController> controller;
  if (consolidate) {
    ConsolidationConfig config;
    // Aggressive: keep the awake fleet hot. This maximizes savings and is
    // where the latency hazard lives.
    config.sleep_below_utilization = 0.75;
    config.wake_above_utilization = 0.85;
    config.min_awake = 6;
    config.step = 2;
    controller = std::make_unique<ConsolidationController>(&dc, &scheduler,
                                                           config);
    controller->Start(&sim, SimTime::Minutes(1));
  }

  workload.Start(SimTime());
  struct Acc {
    double watt_minutes = 0.0;
    int samples = 0;
  };
  Acc acc;
  sim.SchedulePeriodic(SimTime::Minutes(1), SimTime::Minutes(1),
                       [&](SimTime) {
                         acc.watt_minutes += dc.total_power_watts();
                         ++acc.samples;
                       });
  sim.RunUntil(SimTime::Hours(48));

  ArmResult result;
  result.energy_kwh = acc.watt_minutes / 60.0 / 1000.0;
  const auto& waits = sink.waits_minutes();
  if (!waits.empty()) {
    double sum = 0.0;
    for (double w : waits) {
      sum += w;
    }
    result.wait_mean_min = sum / static_cast<double>(waits.size());
    result.wait_p99_min = Percentile(waits, 0.999);
  }
  if (!sink.night_waits_minutes().empty()) {
    size_t delayed = 0;
    for (double w : sink.night_waits_minutes()) {
      if (w > 0.05) {
        ++delayed;
      }
      result.night_wait_max_min = std::max(result.night_wait_max_min, w);
    }
    result.night_delayed_fraction =
        static_cast<double>(delayed) /
        static_cast<double>(sink.night_waits_minutes().size());
  }
  result.completed = scheduler.jobs_completed();
  result.sleeps = controller != nullptr ? controller->sleeps_initiated() : 0;
  return result;
}

void Main(const harness::HarnessArgs& args) {
  bench::Header("Baseline: sleep-state consolidation (§5.1)",
                "energy vs job-start latency over 2 diurnal days", kSeed);

  const std::array<bool, 2> arms{false, true};
  auto grid = bench::RunGrid(
      args, arms,
      [](bool consolidate, size_t) {
        return harness::GridMeta{consolidate ? "consolidation" : "always-on",
                                 kSeed};
      },
      [](bool consolidate, harness::RunContext& context) {
        ArmResult r = RunArm(consolidate);
        context.Metric("energy_kWh", r.energy_kwh);
        context.Metric("wait_p999_min", r.wait_p99_min);
        context.Metric("night_delayed", r.night_delayed_fraction);
        context.Metric("night_max_min", r.night_wait_max_min);
        context.Metric("completed", static_cast<double>(r.completed));
        context.Metric("sleeps", static_cast<double>(r.sleeps));
        return r;
      });

  bench::Section("48 h, 60 servers, deep diurnal workload");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const ArmResult& always_on = grid.values[0];
  const ArmResult& consolidated = grid.values[1];
  double savings = 1.0 - consolidated.energy_kwh / always_on.energy_kwh;
  std::printf("energy savings: %.1f%%; night jobs delayed >3s: %.2f%% (max "
              "wait %.1f min)\n",
              100.0 * savings,
              100.0 * consolidated.night_delayed_fraction,
              consolidated.night_wait_max_min);

  bench::Section("shape checks (the §5.1 trade-off)");
  bench::ShapeCheck(savings > 0.05,
                    "consolidation saves real energy on diurnal workloads");
  bench::ShapeCheck(always_on.night_delayed_fraction < 0.0005,
                    "the always-on fleet starts night jobs immediately "
                    "(it has massive headroom at night)");
  bench::ShapeCheck(consolidated.night_delayed_fraction >
                        10.0 * always_on.night_delayed_fraction + 0.002,
                    "consolidation delays a real fraction of night jobs by "
                    "up to minutes when bursts hit a sleeping fleet (the "
                    "SLA risk the paper cites)");
  bench::ShapeCheck(consolidated.completed >= always_on.completed * 98 / 100,
                    "throughput is roughly preserved (work is delayed, not "
                    "lost)");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
