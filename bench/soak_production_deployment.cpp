// Soak: two simulated weeks of a 4-row production deployment at rO = 0.17
// (the paper's §6 deployment), with a controller failover every simulated
// day exercising the stateless-replacement path (§3.2: "if the controller
// fails, we can easily switch to a replacement").
//
// Expected shape: violation rate stays low and FLAT across the whole run
// (no drift, no degradation after failovers), breakers never trip, the
// frozen-set bookkeeping survives every replacement exactly, and the
// telemetry store grows linearly with time.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/controller.h"
#include "src/core/fleet.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160503;
constexpr int kRows = 4;
constexpr int kDays = 14;

void Main() {
  bench::Header("Soak: production deployment",
                "14 days, 4 controlled rows, daily controller failover",
                kSeed);

  FleetConfig config;
  config.seed = kSeed;
  config.topology.num_rows = kRows;
  config.topology.racks_per_row = 4;
  config.topology.servers_per_rack = 15;  // 60 per row.
  double row_budget = 60 * 250.0 / 1.17;  // rO = 0.17.
  config.topology.row_budget_watts = row_budget;
  // Pinned product floors (~0.85-0.88 of the scaled budget) plus a large
  // flexible stream that brings the hottest rows near their limits; the
  // flexible share is what Ampere can steer between rows.
  config.products = {{0.70, 4.0, 0.08, 0.012},
                     {0.71, 10.0, 0.06, 0.012},
                     {0.72, 16.0, 0.08, 0.012},
                     {0.70, 22.0, 0.06, 0.012}};
  config.flexible_target_power = 0.10;
  config.flexible.ar_sigma = 0.02;
  config.flexible.diurnal_amplitude = 0.15;
  Fleet fleet(config);

  // Register per-row monitor groups are implicit: the Fleet monitor records
  // row series; the controller needs groups, so re-register via the row
  // series names is not possible — instead use RowSeries-equivalent groups.
  // Fleet's monitor doesn't expose groups, so we add them before start.
  std::vector<ControlDomain> domains;
  for (int32_t r = 0; r < kRows; ++r) {
    std::string name = "soak_row" + std::to_string(r);
    std::vector<ServerId> servers{fleet.dc().servers_in_row(RowId(r)).begin(),
                                  fleet.dc().servers_in_row(RowId(r)).end()};
    fleet.monitor().RegisterGroup(name, servers);
    domains.push_back({name, std::move(servers), row_budget});
  }

  AmpereControllerConfig controller_config;
  controller_config.effect = FreezeEffectModel(0.013);
  controller_config.et = EtEstimator::Constant(0.025);
  auto controller = std::make_unique<AmpereController>(
      &fleet.scheduler(), &fleet.monitor(), controller_config);
  for (const ControlDomain& domain : domains) {
    controller->AddDomain(domain);
  }
  controller->Start(&fleet.sim(), SimTime::Minutes(1) + SimTime::Seconds(1));

  struct DayStats {
    int violations = 0;
    int samples = 0;
    double u_sum = 0.0;
  };
  std::vector<DayStats> days(kDays + 1);
  fleet.sim().SchedulePeriodic(
      SimTime::Minutes(2), SimTime::Minutes(1), [&](SimTime t) {
        auto day = static_cast<size_t>(t.hours() / 24.0);
        if (day > static_cast<size_t>(kDays)) {
          return;
        }
        for (int32_t r = 0; r < kRows; ++r) {
          ++days[day].samples;
          if (fleet.monitor().LatestGroupWatts(
                  "soak_row" + std::to_string(r)) > row_budget) {
            ++days[day].violations;
          }
          days[day].u_sum +=
              controller->freeze_ratio(static_cast<size_t>(r));
        }
      });

  // Daily failover at 03:30: replace the controller instance and rebuild
  // its state from the scheduler's frozen flags.
  size_t failovers = 0;
  bool rebuild_mismatch = false;
  fleet.sim().SchedulePeriodic(
      SimTime::Hours(3.5), SimTime::Hours(24), [&](SimTime) {
        std::vector<size_t> before;
        for (size_t d = 0; d < domains.size(); ++d) {
          before.push_back(controller->frozen_count(d));
        }
        controller = std::make_unique<AmpereController>(
            &fleet.scheduler(), &fleet.monitor(), controller_config);
        for (const ControlDomain& domain : domains) {
          controller->AddDomain(domain);
        }
        controller->RebuildStateFromScheduler();
        for (size_t d = 0; d < domains.size(); ++d) {
          if (controller->frozen_count(d) != before[d]) {
            rebuild_mismatch = true;
          }
        }
        controller->Start(&fleet.sim(),
                          fleet.sim().now() + SimTime::Seconds(30));
        ++failovers;
      });

  fleet.Run(SimTime::Hours(24.0 * kDays));

  bench::Section("per-day violation rate and mean freezing ratio");
  std::printf("%6s %12s %10s\n", "day", "viol_rate", "u_mean");
  double first_week_rate = 0.0;
  double second_week_rate = 0.0;
  for (int d = 0; d < kDays; ++d) {
    const DayStats& day = days[static_cast<size_t>(d)];
    double rate = day.samples > 0
                      ? static_cast<double>(day.violations) / day.samples
                      : 0.0;
    double u = day.samples > 0 ? day.u_sum / day.samples : 0.0;
    std::printf("%6d %11.2f%% %10.3f\n", d, 100.0 * rate, u);
    (d < kDays / 2 ? first_week_rate : second_week_rate) += rate;
  }
  first_week_rate /= kDays / 2.0;
  second_week_rate /= kDays / 2.0;
  std::printf("week 1 violation rate %.2f%%, week 2 %.2f%%; failovers %zu; "
              "telemetry points %zu\n",
              100.0 * first_week_rate, 100.0 * second_week_rate, failovers,
              fleet.db().TotalPoints());

  bench::Section("shape checks");
  bench::ShapeCheck(first_week_rate < 0.05 && second_week_rate < 0.05,
                    "violation rate stays low for the whole fortnight");
  bench::ShapeCheck(second_week_rate < first_week_rate + 0.02,
                    "no degradation over time (no controller drift)");
  bench::ShapeCheck(failovers >= static_cast<size_t>(kDays) - 1 &&
                        !rebuild_mismatch,
                    "every daily failover rebuilt the frozen set exactly");
  bench::ShapeCheck(!fleet.dc().AnyBreakerTripped(),
                    "no breaker ever tripped");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
