// Federation: hierarchical budget allocation across a campus of DCs.
//
// The paper controls one row/DC against one power cap. This bench promotes
// the experiment to a campus of four data centers under ONE campus-level
// experiment cap and compares two ways of dividing it:
//
//   static    — a fixed 4-way equal split (what N independent Ampere
//               deployments would do), and
//   headroom  — the CampusBudgetAllocator re-planning every 15 minutes from
//               each DC's observed experiment-group power (E_t-margined
//               demand-proportional water-fill, clamped at per-DC rated
//               contracts).
//
// The DCs run heterogeneous demand (0.99 / 0.95 / 0.90 / 0.85 normalized),
// so a static split starves the hottest DC — its controller freezes
// schedulers while siblings strand headroom. Expected shape: the headroom
// policy beats the static split on campus G_TPW with zero breaker trips in
// every arm. Both policies also run with cross-DC batch spillover enabled
// to show the two federation mechanisms compose.
//
// Flags (besides the usual harness ones):
//   --quick       4 h measured window on 48-server DCs (CI smoke tier).
//   --hyperscale  instead of the grid, run the acceptance determinism
//                 matrix: one 4-DC x 6720-server campus (26880 servers) in
//                 one process at jobs in {1, 2, 8}, and require the
//                 allocator journal, all four controller journals, and the
//                 serialized TimeSeriesDb to be byte-identical.

#include <array>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/campus_experiment.h"
#include "src/telemetry/csv_export.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160427;

struct Arm {
  const char* name;
  CampusAllocPolicy policy;
  bool spillover;
};

ExperimentConfig CampusConfigFor(bool quick, bool hyperscale) {
  ExperimentConfig config;
  config.seed = kSeed;
  if (hyperscale) {
    config.topology.num_rows = 16;
    config.topology.racks_per_row = 10;
    config.topology.servers_per_rack = 42;  // 6720 per DC, 26880 total.
  } else if (quick) {
    config.topology.num_rows = 2;
    config.topology.racks_per_row = 3;
    config.topology.servers_per_rack = 8;  // 48 per DC, 192 total.
  } else {
    config.topology = bench::PaperRowTopology();  // 420 per DC, 1680 total.
  }
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  if (hyperscale) {
    config.duration = SimTime::Hours(2);
  } else {
    config.duration = quick ? SimTime::Hours(4) : SimTime::Hours(24);
  }
  config.campus.enabled = true;
  config.campus.num_datacenters = 4;
  // Heterogeneous operating points, all above the ~0.81 idle floor
  // (idle_fraction 0.65 at rO = 0.25). DC 0 is the one a static split hurts.
  config.campus.dc_target_power = {0.99, 0.95, 0.90, 0.85};
  config.campus.allocator.replan_interval = SimTime::Minutes(15);
  config.campus.spillover_queue_threshold = 4;
  config.campus.spillover_max_jobs_per_pass = 16;
  return config;
}

// --- Grid mode: static vs headroom, with and without spillover -----------

void RunGridMode(const harness::HarnessArgs& args, bool quick) {
  const std::array<Arm, 4> arms{{
      {"static", CampusAllocPolicy::kStatic, false},
      {"static+spill", CampusAllocPolicy::kStatic, true},
      {"headroom", CampusAllocPolicy::kHeadroom, false},
      {"headroom+spill", CampusAllocPolicy::kHeadroom, true},
  }};
  auto grid = bench::RunGrid(
      args, arms,
      [](const Arm& arm, size_t) {
        return harness::GridMeta{arm.name, kSeed};
      },
      [quick, &args, total = arms.size()](const Arm& arm,
                                          harness::RunContext& context) {
        ExperimentConfig config = CampusConfigFor(quick, false);
        config.campus.allocator.policy = arm.policy;
        config.campus.enable_spillover = arm.spillover;
        // --trace / --postmortem-dir: per-arm flight-recorder artifacts
        // (one track per DC in the trace). Observation-only.
        bench::ApplyObsArgs(config, args, arm.name, context.index(), total);
        // --budget-schedule: time-varying campus cap P(t). Workload trace
        // record/replay stays single-DC, so only the schedule applies here.
        bench::ApplyBudgetScheduleArg(config, args);
        // --store-dir / --hot-budget: persistent cold tier under the shared
        // campus db. Storage plumbing only; metrics are bit-identical.
        bench::ApplyStorageArgs(config, args, context.index(), total);
        CampusResult result = RunCampusToResult(config);
        bench::ReportArtifacts(context, result.artifacts);
        context.Metric("gain_tpw", result.gain_tpw);
        context.Metric("rT", result.throughput_ratio);
        context.Metric("replans", static_cast<double>(result.replans));
        context.Metric("spillover",
                       static_cast<double>(result.spillover_jobs));
        context.Metric("breaker", result.breaker_tripped ? 1.0 : 0.0);
        int violations = 0;
        for (const CampusDcResult& dc : result.dcs) {
          violations += dc.experiment.violations;
        }
        context.Metric("violations", violations);
        context.Metric("dc0_budget", result.dcs[0].final_budget_watts);
        context.Metric("dc3_budget", result.dcs[3].final_budget_watts);
        for (size_t d = 0; d < result.dcs.size(); ++d) {
          const CampusDcResult& dc = result.dcs[d];
          bench::NoteF(context,
                       "dc%zu: budget %.0f W, rT %.3f, G_TPW %+.3f, "
                       "out/in %llu/%llu, queue %zu\n",
                       d, dc.final_budget_watts, dc.throughput_ratio,
                       dc.gain_tpw,
                       static_cast<unsigned long long>(dc.jobs_spilled_out),
                       static_cast<unsigned long long>(dc.jobs_spilled_in),
                       dc.final_queue_length);
        }
        return result;
      });

  bench::Section(quick ? "4 h campus runs (quick tier)"
                       : "24 h campus runs, 4 DCs, one experiment cap");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }

  const CampusResult& fixed = grid.values[0];
  const CampusResult& fixed_spill = grid.values[1];
  const CampusResult& dynamic = grid.values[2];
  const CampusResult& dynamic_spill = grid.values[3];

  bench::Section("shape checks (hierarchical allocation, Eq. 17-18 gains)");
  bench::ShapeCheck(dynamic.gain_tpw > fixed.gain_tpw,
                    "headroom re-planning beats the static 4-way split on "
                    "campus G_TPW");
  bench::ShapeCheck(dynamic_spill.gain_tpw > fixed_spill.gain_tpw,
                    "the ordering survives with spillover enabled");
  bool no_trips = true;
  for (const CampusResult& result : grid.values) {
    no_trips = no_trips && !result.breaker_tripped;
  }
  bench::ShapeCheck(no_trips, "zero breaker trips in every arm");
  const double equal_split =
      dynamic.dcs[0].final_budget_watts + dynamic.dcs[1].final_budget_watts +
      dynamic.dcs[2].final_budget_watts + dynamic.dcs[3].final_budget_watts;
  bench::ShapeCheck(
      dynamic.dcs[0].final_budget_watts > equal_split / 4.0 &&
          dynamic.dcs[3].final_budget_watts < equal_split / 4.0,
      "the hot DC ends above the equal split, funded by the coldest");
}

// --- Hyperscale mode: the one-process 26880-server determinism matrix ----

struct CampusArtifacts {
  std::string allocator_csv;
  std::string controllers_csv;
  std::string db_csv;
  double gain_tpw = 0.0;
  uint64_t replans = 0;
  bool breaker_tripped = false;
};

CampusArtifacts RunHyperscale(int jobs) {
  ExperimentConfig config = CampusConfigFor(false, true);
  config.jobs = jobs;
  config.campus.allocator.policy = CampusAllocPolicy::kHeadroom;
  config.campus.enable_spillover = true;
  CampusExperiment experiment(config);
  CampusResult result = experiment.Run();
  CampusArtifacts artifacts;
  artifacts.allocator_csv = experiment.allocator().journal().ToCsv();
  for (int d = 0; d < experiment.campus().num_datacenters(); ++d) {
    artifacts.controllers_csv +=
        experiment.controller(DataCenterId(d)).journal().ToCsv();
  }
  std::ostringstream out;
  ExportCsv(experiment.db(), experiment.db().SeriesNames(), out);
  artifacts.db_csv = out.str();
  artifacts.gain_tpw = result.gain_tpw;
  artifacts.replans = result.replans;
  artifacts.breaker_tripped = result.breaker_tripped;
  return artifacts;
}

void RunHyperscaleMode() {
  bench::Section("hyperscale determinism matrix: 4 DCs x 6720 servers");
  std::printf("one process, 26880 servers, 2 h measured window, "
              "headroom + spillover\n");
  const CampusArtifacts reference = RunHyperscale(1);
  std::printf("jobs=1: G_TPW %+.4f, %llu re-plans, breaker %s, "
              "db %zu bytes, journals %zu bytes\n",
              reference.gain_tpw,
              static_cast<unsigned long long>(reference.replans),
              reference.breaker_tripped ? "TRIPPED" : "clear",
              reference.db_csv.size(), reference.controllers_csv.size());
  bool identical = true;
  for (int jobs : {2, 8}) {
    const CampusArtifacts parallel = RunHyperscale(jobs);
    const bool same = parallel.allocator_csv == reference.allocator_csv &&
                      parallel.controllers_csv == reference.controllers_csv &&
                      parallel.db_csv == reference.db_csv;
    std::printf("jobs=%d: artifacts %s\n", jobs,
                same ? "byte-identical" : "DIVERGED");
    identical = identical && same;
  }
  bench::ShapeCheck(identical,
                    "allocator journal + 4 controller journals + TimeSeriesDb "
                    "byte-identical at jobs in {1, 2, 8}");
  bench::ShapeCheck(!reference.breaker_tripped,
                    "no breaker trips at hyperscale");
  bench::ShapeCheck(reference.replans > 0, "the allocator actually re-planned");
}

void Main(const harness::HarnessArgs& args) {
  bool quick = false;
  bool hyperscale = false;
  for (const std::string& arg : args.positional) {
    if (arg == "--quick") quick = true;
    if (arg == "--hyperscale") hyperscale = true;
  }
  bench::Header("Federation: campus budget allocation",
                "static 4-way split vs hierarchical headroom re-planning",
                kSeed);
  if (hyperscale) {
    RunHyperscaleMode();
    return;
  }
  RunGridMode(args, quick);
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
