// Trace record/replay grid: workload source x budget schedule.
//
// The subsystem under test is the ampere.trace.v1 record/replay path
// (src/workload/trace_format.h) plus the time-varying budget P(t)
// (src/control/budget_schedule.h). The bench:
//
//   1. Records one synthetic run's workload through the TraceRecorder,
//      round-trips it through SerializeTrace -> ParseTrace, and generates
//      three seeded adversarial traces (bursts, synchronized arrivals,
//      heavy-tail durations).
//   2. Runs the grid {synthetic, replayed, adv-bursts, adv-sync,
//      adv-heavytail} x {static cap, curtailment P(t)} with the RHC
//      controller (horizon 3).
//
// The claims under test (the PR's acceptance bar): a replayed trace
// reproduces the synthetic run bit-for-bit (journal summary, power peaks,
// job counts); recording is a pass-through decorator (the recording run IS
// the synthetic run); and the controller rides a mid-day curtailment event
// — a step to 0.85 x budget followed by a recovery ramp — with ZERO breaker
// trips on every arm, including the adversarial ones.
//
// Tiers: --quick runs a 48-server DC for a 2 h measured window (the CI
// smoke tier); default is the paper row (420 servers) over 8 h.
//
// Flags: the usual harness set, plus --record=PATH to write the recorded
// synthetic trace as an ampere.trace.v1 artifact (CI uploads one).

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/check.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160808;

struct CellSpec {
  std::string name;
  std::shared_ptr<const TraceData> replay;  // Null = synthetic generator.
  bool curtailed = false;
};

ExperimentConfig BaseConfig(bool quick) {
  ExperimentConfig config;
  config.seed = kSeed;
  if (quick) {
    config.topology.num_rows = 2;
    config.topology.racks_per_row = 3;
    config.topology.servers_per_rack = 8;  // 48 servers.
    config.topology.server_capacity = Resources{16.0, 64.0};
    config.topology.power_model.rated_watts = 250.0;
    config.topology.power_model.idle_fraction = 0.65;
    config.warmup = SimTime::Minutes(30);
    config.duration = SimTime::Hours(2);
  } else {
    config.topology = bench::PaperRowTopology();  // 420 servers.
    config.warmup = SimTime::Hours(2);
    config.duration = SimTime::Hours(8);
  }
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, /*target_normalized_power=*/0.97,
      /*over_provision_ratio=*/0.25);
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.controller.horizon = 3;  // RHC: forecast the curtailment window.
  return config;
}

// The curtailment event: a step to 0.85 x budget for 40 minutes starting
// one hour into the measured window, then a 20-minute recovery ramp back
// to the full cap. Fits inside the quick tier's 2 h window.
BudgetSchedule CurtailmentSchedule() {
  BudgetSchedule schedule;
  schedule.AddStep(SimTime::Minutes(60), SimTime::Minutes(100), 0.85);
  schedule.AddRamp(SimTime::Minutes(100), SimTime::Minutes(120), 0.85, 1.0);
  return schedule;
}

bool SameTrace(const TraceData& a, const TraceData& b) {
  if (a.seed != b.seed || a.classes.size() != b.classes.size() ||
      a.jobs.size() != b.jobs.size()) {
    return false;
  }
  for (size_t i = 0; i < a.classes.size(); ++i) {
    if (a.classes[i].cpu_cores != b.classes[i].cpu_cores ||
        a.classes[i].memory_gb != b.classes[i].memory_gb ||
        a.classes[i].weight != b.classes[i].weight) {
      return false;
    }
  }
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    const TraceJob& x = a.jobs[i];
    const TraceJob& y = b.jobs[i];
    if (x.submit_us != y.submit_us || x.duration_us != y.duration_us ||
        x.cpu_cores != y.cpu_cores || x.memory_gb != y.memory_gb ||
        x.row_affinity != y.row_affinity || x.class_id != y.class_id) {
      return false;
    }
  }
  return true;
}

// Bit-for-bit outcome equality across two runs: the journal summary (every
// per-tick statistic folded in), the power peaks, and the job totals.
bool SameOutcome(const ExperimentResult& a, const ExperimentResult& b) {
  return a.journal.ToJson() == b.journal.ToJson() &&
         a.experiment.p_max == b.experiment.p_max &&
         a.experiment.p_mean == b.experiment.p_mean &&
         a.experiment.u_mean == b.experiment.u_mean &&
         a.experiment.violations == b.experiment.violations &&
         a.control.p_max == b.control.p_max &&
         a.jobs_submitted == b.jobs_submitted &&
         a.jobs_completed == b.jobs_completed;
}

void Main(const harness::HarnessArgs& args) {
  bool quick = false;
  for (const std::string& arg : args.positional) {
    if (arg == "--quick") {
      quick = true;
    }
  }
  bench::Header("Trace replay grid",
                std::string("record/replay x budget schedule, RHC horizon 3") +
                    (quick ? " (quick tier)" : ""),
                kSeed);

  // --budget-schedule overrides the curtailed arm's P(t); malformed specs
  // fail here, before any run. The static arm always stays constant.
  BudgetSchedule curtailment = CurtailmentSchedule();
  if (!args.budget_schedule_spec.empty()) {
    BudgetSchedule custom;
    std::string error;
    AMPERE_CHECK(ParseBudgetSchedule(args.budget_schedule_spec, &custom,
                                     &error))
        << "--budget-schedule: " << error;
    AMPERE_CHECK(!custom.IsConstant())
        << "--budget-schedule: spec is constant; the curtailed arm needs a "
           "time-varying schedule";
    curtailment = custom;
  }

  // --- Phase 1: record the synthetic run, round-trip, generate adversaries.
  bench::Section("phase 1: record + round trip + adversarial generation");
  ExperimentConfig record_config = BaseConfig(quick);
  record_config.trace.record = true;
  ControlledExperiment recorder_run(record_config);
  const ExperimentResult recorded_result = recorder_run.Run();
  std::shared_ptr<const TraceData> recorded = recorder_run.RecordedTrace();
  std::printf("recorded %zu jobs from the synthetic generator\n",
              recorded->jobs.size());

  const std::string bytes = SerializeTrace(*recorded);
  TraceParseResult parsed = ParseTrace(bytes);
  std::printf("serialized %zu bytes -> parse: %s\n", bytes.size(),
              parsed.ok() ? "ok" : parsed.message.c_str());
  bench::ShapeCheck(parsed.ok() && SameTrace(*recorded, parsed.trace),
                    "serialize -> parse round trip preserves the recorded "
                    "trace exactly");

  if (!args.record_trace_path.empty()) {
    const std::filesystem::path out(args.record_trace_path);
    if (out.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(out.parent_path(), ec);
    }
    if (WriteTraceFile(args.record_trace_path, *recorded)) {
      std::printf("wrote %s\n", args.record_trace_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", args.record_trace_path.c_str());
    }
  }

  const SimTime horizon = record_config.warmup + record_config.duration;
  auto adversary = [&](AdversarialTraceParams::Kind kind, uint64_t seed) {
    AdversarialTraceParams params;
    params.kind = kind;
    params.seed = seed;
    params.duration = horizon;
    // Scale the adversary's mean intensity to the calibrated rate so its
    // bursts probe the controller rather than idling or saturating.
    params.base_rate_per_min =
        record_config.workload.arrivals.base_rate_per_min;
    return std::make_shared<const TraceData>(GenerateAdversarialTrace(params));
  };
  auto adv_bursts = adversary(AdversarialTraceParams::Kind::kBursts, kSeed + 11);
  auto adv_sync = adversary(AdversarialTraceParams::Kind::kSynchronized, kSeed + 12);
  auto adv_tail = adversary(AdversarialTraceParams::Kind::kHeavyTail, kSeed + 13);
  std::printf("adversarial traces: bursts=%zu sync=%zu heavytail=%zu jobs\n",
              adv_bursts->jobs.size(), adv_sync->jobs.size(),
              adv_tail->jobs.size());

  // Adversarial traces must survive the same byte round trip.
  TraceParseResult adv_round = ParseTrace(SerializeTrace(*adv_sync));
  bench::ShapeCheck(adv_round.ok() && SameTrace(*adv_sync, adv_round.trace),
                    "adversarial trace survives the byte round trip");

  // --- Phase 2: the grid. -------------------------------------------------
  std::vector<CellSpec> cells;
  std::shared_ptr<const TraceData> replay_source = recorded;
  if (parsed.ok()) {
    // Replay the *parsed* bytes, not the in-memory recording, so the grid
    // exercises the full record -> serialize -> parse -> replay path.
    replay_source =
        std::make_shared<const TraceData>(std::move(parsed.trace));
  }
  std::vector<std::pair<std::string, std::shared_ptr<const TraceData>>>
      sources;
  sources.emplace_back("synthetic", nullptr);
  sources.emplace_back("replayed", replay_source);
  sources.emplace_back("adv-bursts", adv_bursts);
  sources.emplace_back("adv-sync", adv_sync);
  sources.emplace_back("adv-heavytail", adv_tail);
  for (const auto& [name, trace] : sources) {
    for (bool curtailed : {false, true}) {
      cells.push_back(CellSpec{
          name + (curtailed ? "/curtailed" : "/static"), trace, curtailed});
    }
  }

  auto grid = bench::RunGrid(
      args, cells,
      [](const CellSpec& cell, size_t) {
        return harness::GridMeta{cell.name, kSeed};
      },
      [quick, &curtailment](const CellSpec& cell,
                            harness::RunContext& context) {
        ExperimentConfig config = BaseConfig(quick);
        config.trace.replay_data = cell.replay;
        if (cell.curtailed) {
          config.budget_schedule = curtailment;
        }
        ExperimentResult result = RunExperimentToResult(config);
        context.Metric("violations", result.experiment.violations);
        context.Metric("breaker", result.breaker_tripped ? 1.0 : 0.0);
        context.Metric("P_max", result.experiment.p_max);
        context.Metric("u_mean", result.experiment.u_mean);
        context.Metric("u_max", result.experiment.u_max);
        context.Metric("scale_min", result.budget_scale_min);
        context.Metric("jobs_completed",
                       static_cast<double>(result.jobs_completed));
        context.Metric("replayed",
                       static_cast<double>(result.trace_jobs_replayed));
        return result;
      });
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }

  auto find = [&](const std::string& name) -> const ExperimentResult& {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].name == name) {
        return grid.values[i];
      }
    }
    AMPERE_CHECK(false) << "missing cell " << name;
    std::abort();
  };

  bench::Section("grid (experiment group, per cell)");
  std::printf("%22s %8s %8s %8s %8s %9s %10s\n", "cell", "P_max", "violate",
              "breaker", "u_mean", "scale_min", "replayed");
  for (size_t i = 0; i < cells.size(); ++i) {
    const ExperimentResult& r = grid.values[i];
    std::printf("%22s %8.3f %8d %8s %8.3f %9.2f %10llu\n",
                cells[i].name.c_str(), r.experiment.p_max,
                r.experiment.violations, r.breaker_tripped ? "TRIP" : "ok",
                r.experiment.u_mean, r.budget_scale_min,
                static_cast<unsigned long long>(r.trace_jobs_replayed));
  }

  const ExperimentResult& syn_static = find("synthetic/static");
  const ExperimentResult& syn_curt = find("synthetic/curtailed");
  const ExperimentResult& rep_static = find("replayed/static");

  bench::Section("shape checks");
  bench::ShapeCheck(SameOutcome(recorded_result, syn_static),
                    "recording is a pass-through decorator: the recording "
                    "run equals the synthetic run bit-for-bit");
  bench::ShapeCheck(SameOutcome(rep_static, syn_static),
                    "record -> serialize -> parse -> replay reproduces the "
                    "synthetic run bit-for-bit");
  bench::ShapeCheck(rep_static.trace_jobs_replayed ==
                        static_cast<uint64_t>(recorded->jobs.size()),
                    "replay submits every recorded job");
  bool no_trips = true;
  for (const ExperimentResult& r : grid.values) {
    no_trips = no_trips && !r.breaker_tripped;
  }
  bench::ShapeCheck(no_trips,
                    "zero breaker trips across the grid, including the "
                    "curtailment event on adversarial traces (acceptance "
                    "bar)");
  // The deepest scale the experiment can observe: its budget event runs
  // 0.5 s past each measured minute, so sample the schedule at exactly
  // those instants (bit-equal to what budget_scale_min folds in).
  double curtail_floor = 1.0;
  for (SimTime t = SimTime::Millis(500); t < BaseConfig(quick).duration;
       t += SimTime::Minutes(1)) {
    curtail_floor = std::min(curtail_floor, curtailment.ScaleAt(t));
  }
  bool scales_ok = true;
  for (size_t i = 0; i < cells.size(); ++i) {
    const double expect = cells[i].curtailed ? curtail_floor : 1.0;
    scales_ok = scales_ok && grid.values[i].budget_scale_min == expect;
  }
  bench::ShapeCheck(scales_ok,
                    "P(t) reached the curtailment floor on curtailed arms "
                    "and stayed flat on static arms");
  bench::ShapeCheck(syn_curt.experiment.u_mean >=
                        syn_static.experiment.u_mean,
                    "curtailment makes the controller freeze at least as "
                    "hard as the static cap");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
