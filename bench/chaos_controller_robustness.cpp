// Chaos grid: controller robustness under deterministic fault injection.
//
// Re-runs the Fig. 10 closed-loop scenario (light and heavy workload arms,
// rO = 0.25, 24 hours) under every fault preset (none | light | moderate |
// heavy, src/faults/presets.h): dropped telemetry samples, sensor noise
// spikes and bias, stale monitor windows, per-row feed blackouts, and
// fallible freeze/unfreeze RPCs with retry/backoff.
//
// The claim under test (the PR's acceptance bar): graceful degradation.
// Under the `moderate` preset — >= 5 % sample dropout, >= 1 % RPC failure,
// recurring stale windows and row blackouts — the controller still finishes
// the day with ZERO breaker trips, near-baseline violation counts, and
// <= 10 % capacity loss versus the fault-free run of the same arm. Stale
// fallback (widened E_t) and blackout skip (hold, don't guess) trade a
// little capacity for safety; they never trade safety away.
//
// Every run is a pure function of (workload seed, fault-plan seed): the
// grid also re-runs one chaos cell serially and checks the journal summary
// and fault counts reproduce bit-for-bit.

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/check.h"
#include "src/faults/presets.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160410;
// Fault-plan seeds are deliberately disjoint from workload seeds: the plan
// draws from its own root stream so the same chaos schedule can be replayed
// against any workload.
constexpr uint64_t kFaultSeed = 977001;

struct ArmSpec {
  const char* name;
  double target_power;
  double ar_sigma;
};

struct CellSpec {
  ArmSpec arm;
  std::string preset;  // Owned: PresetNames() returns by value.
  uint64_t workload_seed;
  uint64_t fault_seed;
};

ExperimentConfig CellConfig(const CellSpec& cell,
                            const FreezeEffectModel& effect) {
  ExperimentConfig config = bench::PaperExperimentConfig(
      cell.workload_seed, cell.arm.target_power, 0.25);
  config.controller.effect = effect;
  config.controller.et = EtEstimator::Constant(0.02);
  config.workload.arrivals.ar_sigma = cell.arm.ar_sigma;
  config.workload.arrivals.burst_prob = 0.012;
  config.workload.arrivals.burst_factor = 2.2;
  auto faults = faults::PresetByName(cell.preset);
  AMPERE_CHECK(faults.has_value()) << "unknown preset " << cell.preset;
  config.faults = *faults;
  config.faults.seed = cell.fault_seed;
  return config;
}

ExperimentResult RunCell(const CellSpec& cell, const FreezeEffectModel& effect,
                         const harness::HarnessArgs& args, size_t total_runs,
                         harness::RunContext& context) {
  ExperimentConfig config = CellConfig(cell, effect);
  // --trace / --postmortem-dir: record the run's timeline and dump
  // postmortems on anomalies. Observation-only — all metrics below are
  // bit-identical with or without the recorder.
  bench::ApplyObsArgs(config, args,
                      std::string(cell.arm.name) + "/" + cell.preset,
                      context.index(), total_runs);
  // --replay / --record / --budget-schedule: optional trace arm and P(t).
  // Recording is a pass-through decorator, so all metrics stay
  // bit-identical with or without it.
  bench::ApplyTraceArgs(config, args, context.index(), total_runs);
  // --store-dir / --hot-budget: persistent telemetry cold tier. Storage
  // plumbing only — the controller reads monitor caches, so every metric
  // below is bit-identical with or without the store.
  bench::ApplyStorageArgs(config, args, context.index(), total_runs);
  ExperimentResult result = RunExperimentToResult(config);
  bench::ReportArtifacts(context, result.artifacts);

  context.Metric("violations", result.experiment.violations);
  context.Metric("ctl_violations", result.control.violations);
  context.Metric("breaker_tripped", result.breaker_tripped ? 1.0 : 0.0);
  context.Metric("P_max", result.experiment.p_max);
  context.Metric("u_mean", result.experiment.u_mean);
  context.Metric("jobs_completed", static_cast<double>(result.jobs_completed));
  context.Metric("throughput_ratio", result.throughput_ratio);
  context.Metric("degraded_ticks", static_cast<double>(result.degraded_ticks));
  context.Metric("stale_fallbacks",
                 static_cast<double>(result.stale_fallbacks));
  context.Metric("blackout_skips", static_cast<double>(result.blackout_skips));
  context.Metric("rpc_giveups", static_cast<double>(result.rpc_giveups));
  context.Metric("dropped_samples",
                 static_cast<double>(result.fault_counts.dropped_samples));
  context.Metric("telemetry_stalls",
                 static_cast<double>(result.fault_counts.telemetry_stalls));
  context.Metric("rpc_failures",
                 static_cast<double>(result.fault_counts.rpc_failures));

  bench::NoteF(context,
               "%s/%s: adversity seen: stalls=%llu dropped=%llu spikes=%llu "
               "blackout_reads=%llu rpc_fail=%llu/%llu\n",
               cell.arm.name, cell.preset.c_str(),
               static_cast<unsigned long long>(
                   result.fault_counts.telemetry_stalls),
               static_cast<unsigned long long>(
                   result.fault_counts.dropped_samples),
               static_cast<unsigned long long>(
                   result.fault_counts.noise_spikes),
               static_cast<unsigned long long>(
                   result.fault_counts.blackout_reads),
               static_cast<unsigned long long>(
                   result.fault_counts.rpc_failures),
               static_cast<unsigned long long>(
                   result.fault_counts.rpc_attempts));
  bench::NoteF(context,
               "%s/%s: controller response: degraded=%llu (stale=%llu "
               "blackout=%llu) rpc_giveups=%llu\n",
               cell.arm.name, cell.preset.c_str(),
               static_cast<unsigned long long>(result.degraded_ticks),
               static_cast<unsigned long long>(result.stale_fallbacks),
               static_cast<unsigned long long>(result.blackout_skips),
               static_cast<unsigned long long>(result.rpc_giveups));
  return result;
}

bool SameChaosOutcome(const ExperimentResult& a, const ExperimentResult& b) {
  return a.journal.ToJson() == b.journal.ToJson() &&
         a.fault_counts.telemetry_stalls == b.fault_counts.telemetry_stalls &&
         a.fault_counts.dropped_samples == b.fault_counts.dropped_samples &&
         a.fault_counts.noise_spikes == b.fault_counts.noise_spikes &&
         a.fault_counts.blackout_reads == b.fault_counts.blackout_reads &&
         a.fault_counts.rpc_attempts == b.fault_counts.rpc_attempts &&
         a.fault_counts.rpc_failures == b.fault_counts.rpc_failures &&
         a.experiment.p_max == b.experiment.p_max &&
         a.experiment.violations == b.experiment.violations &&
         a.jobs_completed == b.jobs_completed;
}

void Main(const harness::HarnessArgs& args) {
  bench::Header("Chaos grid",
                "controller robustness under fault injection, rO=0.25",
                kSeed);

  FreezeEffectModel effect = bench::CalibrateEffectModel(
      kSeed, /*target_power=*/0.97, /*ro=*/0.25, /*verbose=*/true);

  const std::vector<ArmSpec> arms = {
      {"light", 0.91, 0.035},
      {"heavy", 1.00, 0.015},
  };
  std::vector<CellSpec> cells;
  for (const ArmSpec& arm : arms) {
    uint64_t workload_seed = kSeed + (arm.target_power > 0.95 ? 1 : 2);
    size_t p = 0;
    for (const std::string& preset : faults::PresetNames()) {
      cells.push_back(CellSpec{arm, preset, workload_seed, kFaultSeed + p++});
    }
  }

  auto grid = bench::RunGrid(
      args, cells,
      [](const CellSpec& cell, size_t) {
        return harness::GridMeta{
            std::string(cell.arm.name) + "/" + cell.preset,
            cell.workload_seed};
      },
      [&effect, &args, total = cells.size()](const CellSpec& cell,
                                             harness::RunContext& context) {
        return RunCell(cell, effect, args, total, context);
      });
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }

  auto find = [&](const char* arm, const char* preset) -> const
      ExperimentResult& {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (std::strcmp(cells[i].arm.name, arm) == 0 &&
          cells[i].preset == preset) {
        return grid.values[i];
      }
    }
    AMPERE_CHECK(false) << "missing cell " << arm << "/" << preset;
    std::abort();
  };

  bench::Section("robustness table (experiment group, per preset)");
  std::printf("%8s %10s %8s %8s %8s %10s %10s %9s %9s\n", "arm", "preset",
              "P_max", "violate", "breaker", "jobs", "capacity", "degraded",
              "giveups");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellSpec& cell = cells[i];
    const ExperimentResult& r = grid.values[i];
    const ExperimentResult& baseline = find(cell.arm.name, "none");
    double capacity = baseline.jobs_completed > 0
                          ? static_cast<double>(r.jobs_completed) /
                                static_cast<double>(baseline.jobs_completed)
                          : 0.0;
    std::printf("%8s %10s %8.3f %8d %8s %10llu %9.1f%% %9llu %9llu\n",
                cell.arm.name, cell.preset.c_str(), r.experiment.p_max,
                r.experiment.violations, r.breaker_tripped ? "TRIP" : "ok",
                static_cast<unsigned long long>(r.jobs_completed),
                100.0 * capacity,
                static_cast<unsigned long long>(r.degraded_ticks),
                static_cast<unsigned long long>(r.rpc_giveups));
  }

  const ExperimentResult& heavy_none = find("heavy", "none");
  const ExperimentResult& heavy_mod = find("heavy", "moderate");
  const ExperimentResult& light_none = find("light", "none");
  const ExperimentResult& light_mod = find("light", "moderate");
  const ExperimentResult& heavy_heavy = find("heavy", "heavy");

  bench::Section("shape checks: graceful degradation");
  bool no_trips = true;
  for (const ExperimentResult& r : grid.values) {
    no_trips = no_trips && !r.breaker_tripped;
  }
  bench::ShapeCheck(no_trips,
                    "no breaker trips anywhere on the grid, even under the "
                    "heavy chaos preset");
  bench::ShapeCheck(!heavy_mod.breaker_tripped && !light_mod.breaker_tripped,
                    "moderate chaos trips zero breakers on either arm "
                    "(acceptance bar)");
  // Budget-violation *minutes* may creep up slightly — stale fallback holds
  // last-known-good for up to 90 s — but the controller must stay an order
  // of magnitude better than running uncontrolled, and far from doubling.
  bench::ShapeCheck(heavy_mod.experiment.violations <=
                            heavy_mod.control.violations / 5 &&
                        heavy_mod.experiment.violations <=
                            2 * heavy_none.experiment.violations,
                    "moderate chaos keeps heavy-load violations bounded "
                    "(<< uncontrolled, < 2x the fault-free baseline)");
  // Capacity: both completed-job count and the within-run exp/ctl
  // throughput ratio (which isolates the controller's share of any loss —
  // both groups see the same arrivals).
  double heavy_capacity =
      static_cast<double>(heavy_mod.jobs_completed) /
      static_cast<double>(heavy_none.jobs_completed);
  double light_capacity =
      static_cast<double>(light_mod.jobs_completed) /
      static_cast<double>(light_none.jobs_completed);
  double heavy_rt = heavy_mod.throughput_ratio / heavy_none.throughput_ratio;
  double light_rt = light_mod.throughput_ratio / light_none.throughput_ratio;
  bench::ShapeCheck(heavy_capacity >= 0.90 && light_capacity >= 0.90 &&
                        heavy_rt >= 0.90 && light_rt >= 0.90,
                    "moderate chaos costs <= 10% capacity vs fault-free, in "
                    "jobs completed and in exp/ctl throughput ratio "
                    "(acceptance bar)");
  bench::ShapeCheck(heavy_mod.experiment.u_mean >=
                        heavy_none.experiment.u_mean,
                    "under chaos the controller leans conservative: widened "
                    "E_t freezes at least as much as the fault-free run");
  bench::ShapeCheck(heavy_mod.degraded_ticks > 0 &&
                        heavy_mod.stale_fallbacks > 0,
                    "the degraded paths actually exercised (stale fallback "
                    "fired under moderate chaos)");
  bench::ShapeCheck(heavy_mod.fault_counts.dropped_samples > 0 &&
                        heavy_mod.fault_counts.rpc_failures > 0,
                    "moderate preset injected both >=5% sample dropout and "
                    ">=1% RPC failures");
  bench::ShapeCheck(heavy_heavy.degraded_ticks > heavy_mod.degraded_ticks,
                    "degraded-tick count scales with chaos intensity");
  bench::ShapeCheck(light_mod.experiment.violations == 0,
                    "light workload stays violation-free under moderate "
                    "chaos");

  bench::Section("determinism cross-check (same seeds => same chaos)");
  // Replay the noisiest cell serially, outside the pool, and require the
  // journal summary and every fault counter to reproduce exactly.
  CellSpec replay_cell{arms[1], "heavy", kSeed + 1,
                       kFaultSeed + faults::PresetNames().size() - 1};
  ExperimentConfig replay_config = CellConfig(replay_cell, effect);
  // Mirror the grid's workload source and P(t) (but not --record: the
  // cross-check must not clobber the grid cell's artifact) so the
  // bit-identical claim holds under --replay / --budget-schedule too.
  bench::ApplyBudgetScheduleArg(replay_config, args);
  replay_config.trace.replay_path = args.replay_trace_path;
  ExperimentResult replay = RunExperimentToResult(replay_config);
  bench::ShapeCheck(SameChaosOutcome(heavy_heavy, replay),
                    "heavy/heavy cell replays bit-identically (journal "
                    "summary + fault counts + outcomes)");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
