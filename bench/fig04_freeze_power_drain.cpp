// Figure 4: average normalized power of ~80 high-power servers after being
// frozen. The paper observes a gradual decay from ~0.83 of rated power to
// near idle (~0.69) over about 35 minutes, as running jobs finish and no new
// ones arrive.

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160404;

void Main() {
  bench::Header("Figure 4", "power drain of ~80 frozen high-power servers",
                kSeed);

  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo = bench::PaperRowTopology();
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitorConfig mc;
  mc.noise_sigma_watts = 1.0;
  PowerMonitor monitor(&dc, &db, mc, rng.Fork(2));
  JobIdAllocator ids;
  BatchWorkloadParams params;
  // High utilization so the frozen set starts visibly above idle.
  params.arrivals.base_rate_per_min = 220.0;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  std::vector<ServerId> all;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    all.push_back(ServerId(s));
  }
  monitor.RegisterGroup("row", all);
  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  sim.RunUntil(SimTime::Hours(2));

  // Pick the ~80 highest-power servers (the paper froze "a group of about
  // 80 servers with relatively high power utilization").
  std::vector<ServerId> ranked = all;
  std::sort(ranked.begin(), ranked.end(), [&](ServerId a, ServerId b) {
    return dc.server_power_watts(a) > dc.server_power_watts(b);
  });
  ranked.resize(80);
  for (ServerId id : ranked) {
    scheduler.Freeze(id);
  }
  double rated = dc.power_model().rated_watts();

  bench::Section("mean power of frozen servers, normalized to rated");
  std::printf("%10s %14s\n", "minute", "norm_power");
  std::vector<double> trace;
  for (int minute = 0; minute <= 50; ++minute) {
    sim.RunUntil(SimTime::Hours(2) + SimTime::Minutes(minute));
    double mean = dc.PowerOfServers(ranked) / (80.0 * rated);
    trace.push_back(mean);
    std::printf("%10d %14.4f\n", minute, mean);
  }

  bench::Section("shape checks vs. paper");
  double idle_norm = topo.power_model.idle_fraction;
  bench::ShapeCheck(trace.front() > idle_norm + 0.08,
                    "frozen set starts well above idle (paper ~0.83)");
  bench::ShapeCheck(trace[35] < trace.front() - 0.5 * (trace.front() -
                                                       idle_norm),
                    "most of the drain completes within ~35 minutes");
  // The paper's curve also plateaus slightly above idle (~0.69 of rated):
  // the freeze does not kill jobs, and the duration distribution's long
  // tail leaves a few stragglers running past 50 minutes.
  bench::ShapeCheck(trace.back() < idle_norm + 0.05,
                    "power approaches the idle floor (paper plateaus ~0.69)");
  bool monotone_ish = true;
  for (size_t i = 5; i < trace.size(); i += 5) {
    if (trace[i] > trace[i - 5] + 0.01) {
      monotone_ish = false;
    }
  }
  bench::ShapeCheck(monotone_ish, "decay is monotone up to workload noise");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
