// Figure 10 + Table 2: controller effectiveness under light and heavy
// workload at over-provisioning ratio rO = 0.25 over 24 hours.
//
// Paper's shape (Table 2): under heavy workload the uncontrolled group sees
// hundreds of budget violations (321) while Ampere's group sees ~1 (caused
// by the 50 % freezing-ratio cap); under light workload the controller acts
// only occasionally (u_mean 1.5 %) and nobody violates. The experiment
// group's max power stays at/below the budget while the control group
// overshoots.
//
// The light and heavy arms are independent day-long simulations and run in
// parallel through the scenario harness; each arm's 24-hour trace is
// captured into its result row's notes instead of interleaved stdout.

#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160410;

struct ArmSpec {
  const char* name;
  double target_power;
  double ar_sigma;
};

ExperimentResult RunScenario(const ArmSpec& arm,
                             const FreezeEffectModel& effect,
                             const harness::HarnessArgs& args,
                             size_t total_runs,
                             harness::RunContext& context) {
  ExperimentConfig config = bench::PaperExperimentConfig(
      kSeed + (arm.target_power > 0.95 ? 1 : 2), arm.target_power, 0.25);
  config.controller.effect = effect;
  config.controller.et = EtEstimator::Constant(0.02);
  // The paper's light trace wanders widely and spikes toward the budget
  // now and then (Fig. 10a: mean .857, max .997), while the heavy trace
  // hovers tightly against the budget (Fig. 10b: .95-1.0).
  config.workload.arrivals.ar_sigma = arm.ar_sigma;
  config.workload.arrivals.burst_prob = 0.012;
  config.workload.arrivals.burst_factor = 2.2;
  // --replay / --record / --budget-schedule: optional trace arm and P(t).
  bench::ApplyTraceArgs(config, args, context.index(), total_runs);
  ExperimentResult result = RunExperimentToResult(config);
  if (result.trace_jobs_recorded > 0 || result.trace_jobs_replayed > 0) {
    bench::NoteF(context, "%s: trace recorded=%llu replayed=%llu\n", arm.name,
                 static_cast<unsigned long long>(result.trace_jobs_recorded),
                 static_cast<unsigned long long>(result.trace_jobs_replayed));
  }
  bench::ReportArtifacts(context, result.artifacts);

  bench::NoteF(context, "%s: 24-hour trace (one row per 30 min)\n",
               arm.name);
  bench::NoteF(context, "%8s %12s %12s %10s\n", "hour", "exp_power",
               "ctl_power", "freeze_u");
  for (size_t i = 0; i < result.experiment.minutes.size(); i += 30) {
    const MinutePoint& e = result.experiment.minutes[i];
    const MinutePoint& c = result.control.minutes[i];
    bench::NoteF(context, "%8.1f %12.3f %12.3f %10.3f\n",
                 e.time.hours() - 2.0, e.normalized_power,
                 c.normalized_power, e.freeze_ratio);
  }

  context.Metric("u_mean", result.experiment.u_mean);
  context.Metric("u_max", result.experiment.u_max);
  context.Metric("P_mean", result.experiment.p_mean);
  context.Metric("P_max", result.experiment.p_max);
  context.Metric("violations", result.experiment.violations);
  context.Metric("ctl_P_max", result.control.p_max);
  context.Metric("ctl_violations", result.control.violations);
  return result;
}

// The controller's DecisionJournal is an independent audit path: it sees the
// same per-minute watts the metrics recorder sees (monitor sample at :00,
// controller tick at +1 s, recorder at +2 s), so its "experiment"-domain
// summary must reproduce the GroupReport's Table-2 counts bit-for-bit.
bool JournalReproducesTable2(const ExperimentResult& result) {
  const obs::JournalDomainSummary* d = result.journal.FindDomain("experiment");
  if (d == nullptr) {
    return false;
  }
  const GroupReport& report = result.experiment;
  return d->ticks == report.minutes.size() &&
         d->violations == static_cast<uint64_t>(report.violations) &&
         d->u_mean == report.u_mean && d->u_max == report.u_max &&
         d->p_mean == report.p_mean && d->p_max == report.p_max;
}

void PrintTable2Row(const char* workload, const char* group, double u_mean,
                    double u_max, double p_mean, double p_max,
                    int violations) {
  std::printf("%8s %6s %8.3f %8.3f %8.3f %8.3f %8d\n", workload, group,
              u_mean, u_max, p_mean, p_max, violations);
}

void Main(const harness::HarnessArgs& args) {
  bench::Header("Figure 10 + Table 2",
                "controller effectiveness, light vs heavy workload, rO=0.25",
                kSeed);

  // Calibrate kr once with the Fig. 5 procedure, as production would.
  FreezeEffectModel effect = bench::CalibrateEffectModel(
      kSeed, /*target_power=*/0.97, /*ro=*/0.25, /*verbose=*/true);

  const std::vector<ArmSpec> arms = {
      {"light", 0.91, 0.035},
      {"heavy", 1.00, 0.015},
  };
  auto grid = bench::RunGrid(
      args, arms,
      [](const ArmSpec& arm, size_t) {
        return harness::GridMeta{
            arm.name, kSeed + (arm.target_power > 0.95 ? 1 : 2)};
      },
      [&effect, &args, total = arms.size()](const ArmSpec& arm,
                                            harness::RunContext& context) {
        return RunScenario(arm, effect, args, total, context);
      });
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const ExperimentResult& light = grid.values[0];
  const ExperimentResult& heavy = grid.values[1];

  bench::Section("Table 2: controller effectiveness (per-minute samples)");
  std::printf("%8s %6s %8s %8s %8s %8s %8s\n", "workload", "group", "u_mean",
              "u_max", "P_mean", "P_max", "violate");
  PrintTable2Row("light", "exp", light.experiment.u_mean,
                 light.experiment.u_max, light.experiment.p_mean,
                 light.experiment.p_max, light.experiment.violations);
  PrintTable2Row("light", "ctl", 0.0, 0.0, light.control.p_mean,
                 light.control.p_max, light.control.violations);
  PrintTable2Row("heavy", "exp", heavy.experiment.u_mean,
                 heavy.experiment.u_max, heavy.experiment.p_mean,
                 heavy.experiment.p_max, heavy.experiment.violations);
  PrintTable2Row("heavy", "ctl", 0.0, 0.0, heavy.control.p_mean,
                 heavy.control.p_max, heavy.control.violations);
  std::printf("(paper heavy: exp u_mean .247 u_max .50 P_mean .948 P_max "
              "1.002, 1 violation; ctl P_max 1.025, 321 violations)\n");

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(heavy.control.violations > 50,
                    "heavy uncontrolled group violates routinely");
  bench::ShapeCheck(heavy.experiment.violations <
                        heavy.control.violations / 10,
                    "Ampere eliminates almost all heavy-load violations");
  bench::ShapeCheck(light.experiment.violations == 0 &&
                        light.control.violations <= 2,
                    "light workload needs (almost) no control");
  bench::ShapeCheck(light.experiment.u_mean < 0.08,
                    "light-load freezing is occasional");
  bench::ShapeCheck(heavy.experiment.u_mean > 0.05,
                    "heavy-load freezing is sustained");
  bench::ShapeCheck(heavy.experiment.u_max >= 0.49,
                    "the 50% freeze cap saturates under heavy load");
  bench::ShapeCheck(heavy.experiment.p_max < heavy.control.p_max,
                    "control reduces the peak power draw");

  bench::Section("DecisionJournal audit cross-check");
  for (const ExperimentResult* result : {&light, &heavy}) {
    const char* arm = result == &light ? "light" : "heavy";
    const obs::JournalDomainSummary* d =
        result->journal.FindDomain("experiment");
    if (d != nullptr) {
      std::printf("%8s journal: ticks=%llu violate=%llu capped=%llu "
                  "u_mean=%.3f u_max=%.3f P_mean=%.3f P_max=%.3f\n",
                  arm, static_cast<unsigned long long>(d->ticks),
                  static_cast<unsigned long long>(d->violations),
                  static_cast<unsigned long long>(d->capped_ticks), d->u_mean,
                  d->u_max, d->p_mean, d->p_max);
    }
    char claim[128];
    std::snprintf(claim, sizeof(claim),
                  "%s journal summary reproduces Table 2 bit-for-bit", arm);
    bench::ShapeCheck(JournalReproducesTable2(*result), claim);
  }
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
