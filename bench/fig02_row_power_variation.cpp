// Figure 2: power of five randomly chosen rows over a two-hour window,
// showing temporal and spatial variation; plus the §2.2 cross-row
// correlation statistic (80 % of pairwise coefficients below 0.33).

#include <vector>

#include "bench/bench_common.h"
#include "src/core/fleet.h"
#include "src/stats/correlation.h"
#include "src/stats/percentile.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160402;

void Main() {
  bench::Header("Figure 2", "row power of 5 rows over 2 hours + correlations",
                kSeed);

  FleetConfig config;
  config.seed = kSeed;
  config.topology.num_rows = 5;
  config.topology.racks_per_row = 8;
  config.topology.servers_per_rack = 20;
  config.monitor.record_racks = false;
  // Five products at distinct levels/phases with strong independent wander.
  config.products = {{0.66, 3.0, 0.20, 0.035},
                     {0.80, 8.0, 0.15, 0.035},
                     {0.72, 13.0, 0.25, 0.035},
                     {0.86, 18.0, 0.12, 0.035},
                     {0.70, 23.0, 0.22, 0.035}};
  Fleet fleet(config);
  fleet.Run(SimTime::Hours(26));

  // Two-hour heat-strip window (hours 12-14), one value per 5 minutes.
  bench::Section("two-hour window, normalized row power (rows as columns)");
  std::printf("%8s %8s %8s %8s %8s %8s\n", "min", "row0", "row1", "row2",
              "row3", "row4");
  for (int m = 0; m <= 120; m += 5) {
    SimTime t = SimTime::Hours(12) + SimTime::Minutes(m);
    std::printf("%8d", m);
    for (int32_t r = 0; r < 5; ++r) {
      auto points =
          fleet.db().QueryView(PowerMonitor::RowSeries(RowId(r)), t, t);
      double v = points.empty() ? 0.0
                                : points.front().value /
                                      fleet.dc().row_budget_watts(RowId(r));
      std::printf(" %8.3f", v);
    }
    std::printf("\n");
  }

  // Pairwise correlations over the full day.
  std::vector<std::vector<double>> series;
  for (int32_t r = 0; r < 5; ++r) {
    std::vector<double> s;
    for (const auto& p : fleet.db().QueryView(PowerMonitor::RowSeries(RowId(r)),
                                          SimTime::Hours(2),
                                          SimTime::Hours(26))) {
      s.push_back(p.value);
    }
    series.push_back(std::move(s));
  }
  std::vector<double> cors = PairwiseCorrelations(series);
  bench::Section("pairwise cross-row power correlations (24 h)");
  size_t below = 0;
  for (double c : cors) {
    std::printf("  corr = %+.3f\n", c);
    if (c < 0.33) {
      ++below;
    }
  }
  double frac_below = static_cast<double>(below) /
                      static_cast<double>(cors.size());
  std::printf("fraction below 0.33: %.2f (paper: 0.80)\n", frac_below);

  // Spatial imbalance: mean power spread across rows.
  std::vector<double> means;
  for (const auto& s : series) {
    double sum = 0.0;
    for (double v : s) {
      sum += v;
    }
    means.push_back(sum / static_cast<double>(s.size()) / (160 * 250.0));
  }
  bench::Section("shape checks vs. paper");
  double spread = Percentile(means, 1.0) - Percentile(means, 0.0);
  bench::ShapeCheck(frac_below >= 0.6,
                    "most cross-row correlations are weak (< 0.33)");
  bench::ShapeCheck(spread > 0.08,
                    "rows are spatially unbalanced (mean power spread)");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
