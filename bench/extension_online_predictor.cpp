// Extension (paper §3.6 future work): "We can use a better online power
// prediction model to get a better estimation [of E_t]."
//
// Compares the shipped estimator (static per-hour 99.5th-percentile
// profile) with the online AR(1)+z-sigma predictor on a workload whose
// volatility regime shifts mid-day — the scenario where a static profile
// built from yesterday's data is mis-calibrated. Expected shape: the online
// predictor holds a similar violation count with less standing freezing
// (higher throughput), because its margin tracks the live volatility
// instead of the historical worst case.

#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160427;

struct PredictorResult {
  const char* name;
  int violations = 0;
  double u_mean = 0.0;
  double r_thru = 0.0;
};

ExperimentConfig BaseConfig(uint64_t seed) {
  ExperimentConfig config =
      bench::PaperExperimentConfig(seed, /*target_power=*/0.99, 0.25);
  config.controller.effect = FreezeEffectModel(0.013);
  // Volatile, bursty demand.
  config.workload.arrivals.ar_sigma = 0.02;
  config.workload.arrivals.burst_prob = 0.02;
  config.workload.arrivals.burst_factor = 1.8;
  return config;
}

PredictorResult RunStatic(const EtEstimator& et) {
  ExperimentConfig config = BaseConfig(kSeed);
  config.controller.et = et;
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();
  PredictorResult out;
  out.name = "static 99.5p";
  out.violations = result.experiment.violations;
  out.u_mean = result.experiment.u_mean;
  out.r_thru = std::min(result.throughput_ratio, 1.0);
  return out;
}

PredictorResult RunOnline() {
  ExperimentConfig config = BaseConfig(kSeed);
  config.controller.use_online_predictor = true;
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();
  PredictorResult out;
  out.name = "online AR(1)";
  out.violations = result.experiment.violations;
  out.u_mean = result.experiment.u_mean;
  out.r_thru = std::min(result.throughput_ratio, 1.0);
  return out;
}

void Main() {
  bench::Header("Extension: online E_t prediction",
                "static per-hour profile vs live AR(1)+z-sigma margin",
                kSeed);

  // Build the static profile from a separate history run, as production
  // would (yesterday's data parameterizes today's controller).
  ExperimentConfig history_config = BaseConfig(kSeed + 1);
  history_config.enable_ampere = false;
  history_config.duration = SimTime::Hours(48);
  ControlledExperiment history_run(history_config);
  ExperimentResult history = history_run.Run();
  std::vector<double> series;
  for (const MinutePoint& m : history.experiment.minutes) {
    series.push_back(m.normalized_power);
  }
  EtEstimator static_profile =
      EtEstimator::FromHistory(series, /*start_minute_of_day=*/120);

  PredictorResult stat = RunStatic(static_profile);
  PredictorResult online = RunOnline();

  bench::Section("24 h controlled runs at rO=0.25, demand ~0.99 of budget");
  std::printf("%16s %12s %10s %10s\n", "estimator", "violations", "u_mean",
              "r_thru");
  std::printf("%16s %12d %10.3f %10.3f\n", stat.name, stat.violations,
              stat.u_mean, stat.r_thru);
  std::printf("%16s %12d %10.3f %10.3f\n", online.name, online.violations,
              online.u_mean, online.r_thru);

  bench::Section("shape checks (the future-work hypothesis)");
  bench::ShapeCheck(online.violations <= stat.violations + 30,
                    "the online predictor protects comparably");
  bench::ShapeCheck(online.r_thru >= stat.r_thru - 0.02,
                    "the online predictor does not cost throughput");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
