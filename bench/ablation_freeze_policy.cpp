// Ablation: which servers to freeze (§3.5, design choice 3).
//
// The paper freezes the highest-power servers: they drain the most power per
// frozen server, and "servers with lower power utilization may have more
// computation capacity left and thus freezing them may result in a higher
// cost". This bench separates the two channels of f(u):
//
//  (a) DRAIN — power released by the frozen servers themselves as their
//      jobs finish. Measured Fig.4-style: freeze the hottest vs the coldest
//      80 servers and watch the frozen set's power. Only hot servers have
//      dynamic power to shed, so the ordering must be decisive here.
//  (b) DIVERSION — new jobs statistically steered elsewhere. This depends
//      only on how many servers are frozen, not which, so the end-to-end
//      calibrated kr is far less sensitive to the policy than intuition
//      suggests — a finding of this reproduction worth reporting.
//
// Closed-loop control with a policy-matched kr protects under every
// selection; the paper's choice wins on the drain channel and on capacity
// cost in fragmented clusters.
//
// The two drain measurements and the three policy arms (each a calibration
// plus a day-long closed loop) are all independent simulations; each group
// runs in parallel through the scenario harness.

#include <algorithm>
#include <array>
#include <vector>

#include "bench/bench_common.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160423;

// Fig.4-style drain: returns the frozen set's normalized power drop after
// 30 minutes when freezing the hottest (descending=true) or coldest 80.
double MeasureDrain(bool hottest) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo = bench::PaperRowTopology();
  DataCenter dc(topo, &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 160.0;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(2));
  workload.Start(SimTime());
  sim.RunUntil(SimTime::Hours(2));

  std::vector<ServerId> ranked;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    ranked.push_back(ServerId(s));
  }
  std::sort(ranked.begin(), ranked.end(), [&](ServerId a, ServerId b) {
    double pa = dc.server_power_watts(a);
    double pb = dc.server_power_watts(b);
    return hottest ? pa > pb : pa < pb;
  });
  ranked.resize(80);
  for (ServerId id : ranked) {
    scheduler.Freeze(id);
  }
  double before = dc.PowerOfServers(ranked);
  sim.RunUntil(SimTime::Hours(2.5));
  double after = dc.PowerOfServers(ranked);
  return (before - after) / (80.0 * dc.power_model().rated_watts());
}

double CalibrateKr(FreezeSelection selection) {
  ExperimentConfig config =
      bench::PaperExperimentConfig(kSeed, /*target_power=*/0.97, 0.25);
  config.enable_ampere = false;
  config.warmup = SimTime::Hours(1);
  ControlledExperiment calibration(config);
  std::vector<double> levels{0.2, 0.3, 0.4, 0.5, 0.6};
  auto samples = calibration.RunFuCalibration(
      levels, SimTime::Minutes(5), SimTime::Minutes(25), SimTime::Hours(24),
      selection);
  return FreezeEffectModel::Fit(samples).kr();
}

struct PolicyArm {
  const char* name;
  FreezeSelection selection;
};

struct PolicyResult {
  const char* name = nullptr;
  double kr = 0.0;
  int violations = 0;
  double u_mean = 0.0;
  double r_thru = 0.0;
};

void Main(const harness::HarnessArgs& args) {
  bench::Header("Ablation: freeze-selection policy",
                "highest-power vs random vs lowest-power", kSeed);

  bench::Section("drain channel (Fig. 4-style, 80 servers, 30 min frozen)");
  const std::array<bool, 2> drain_arms{true, false};
  auto drain_grid = bench::RunGrid(
      args, drain_arms,
      [](bool hottest, size_t) {
        return harness::GridMeta{hottest ? "drain hottest" : "drain coldest",
                                 kSeed};
      },
      [](bool hottest, harness::RunContext& context) {
        double drain = MeasureDrain(hottest);
        context.Metric("drain", drain);
        return drain;
      });
  double drain_hot = drain_grid.values[0];
  double drain_cold = drain_grid.values[1];
  std::printf("normalized power shed by frozen set: hottest %.4f, "
              "coldest %.4f\n",
              drain_hot, drain_cold);

  const std::vector<PolicyArm> arms = {
      {"highest-power", FreezeSelection::kHighestPower},
      {"random", FreezeSelection::kRandom},
      {"lowest-power", FreezeSelection::kLowestPower},
  };
  auto grid = bench::RunGrid(
      args, arms,
      [](const PolicyArm& arm, size_t) {
        return harness::GridMeta{arm.name, kSeed};
      },
      [](const PolicyArm& arm, harness::RunContext& context) {
        PolicyResult out;
        out.name = arm.name;
        out.kr = CalibrateKr(arm.selection);

        ExperimentConfig config =
            bench::PaperExperimentConfig(kSeed, /*target_power=*/1.0, 0.25);
        config.controller.effect = FreezeEffectModel(out.kr);
        config.controller.et = EtEstimator::Constant(0.02);
        config.controller.selection = arm.selection;
        config.workload.arrivals.ar_sigma = 0.015;
        ExperimentResult result = RunExperimentToResult(config);
        out.violations = result.experiment.violations;
        out.u_mean = result.experiment.u_mean;
        out.r_thru = std::min(result.throughput_ratio, 1.0);
        context.Metric("kr", out.kr);
        context.Metric("violations", out.violations);
        context.Metric("u_mean", out.u_mean);
        context.Metric("r_thru", out.r_thru);
        return out;
      });

  bench::Section("per-policy calibrated effect and 24 h heavy closed loop");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const std::vector<PolicyResult>& results = grid.values;

  bench::Section("shape checks");
  bench::ShapeCheck(drain_hot > 4.0 * drain_cold + 0.01,
                    "only hot servers have dynamic power to drain "
                    "(the paper's §3.5 rationale)");
  double kr_spread =
      std::max({results[0].kr, results[1].kr, results[2].kr}) -
      std::min({results[0].kr, results[1].kr, results[2].kr});
  bench::ShapeCheck(kr_spread < 0.5 * results[0].kr,
                    "end-to-end kr is dominated by diversion, not drain: "
                    "selection matters far less than intuition suggests "
                    "(reproduction finding)");
  bool all_protect = true;
  for (const PolicyResult& r : results) {
    if (r.violations > 120) {  // > ~8% of the 1440 controlled minutes.
      all_protect = false;
    }
  }
  bench::ShapeCheck(all_protect,
                    "with a policy-matched kr, the closed loop protects "
                    "under every selection (the scheme is robust)");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
