// Figure 1: CDF of power utilization (normalized to the provisioned budget)
// at rack, row, and data-center levels over one week.
//
// Paper's shape: utilization is lower — and the distribution tighter — at
// larger aggregation scales; the data-center level averages ~0.70 of the
// provisioned budget, while individual racks spread much wider and reach
// closer to 1.0. This is the statistical-multiplexing slack Ampere farms.

#include <vector>

#include "bench/bench_common.h"
#include "src/core/fleet.h"
#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160418;

void Main() {
  bench::Header("Figure 1", "CDF of rack/row/DC power utilization (1 week)",
                kSeed);

  FleetConfig config;
  config.seed = kSeed;
  config.topology.num_rows = 6;
  config.topology.racks_per_row = 8;
  config.topology.servers_per_rack = 20;  // 960 servers total.
  config.monitor.record_racks = true;
  // Six products with distinct levels, phases, and wander (§2.2): the DC
  // mean lands near the paper's ~0.70.
  config.products = {{0.66, 2.0, 0.20, 0.02},  {0.78, 6.0, 0.15, 0.025},
                     {0.71, 10.0, 0.25, 0.02}, {0.84, 14.0, 0.12, 0.03},
                     {0.68, 18.0, 0.22, 0.02}, {0.74, 22.0, 0.18, 0.025}};
  Fleet fleet(config);
  std::printf("fleet: %d rows x %d racks x %d servers; 7 simulated days\n",
              config.topology.num_rows, config.topology.racks_per_row,
              config.topology.servers_per_rack);
  fleet.Run(SimTime::Hours(24 * 7 + 2));

  // Collect post-warmup utilization samples normalized to rated budgets.
  SimTime from = SimTime::Hours(2);
  SimTime to = SimTime::Hours(24 * 7 + 2);
  std::vector<double> rack_util;
  for (int32_t k = 0; k < fleet.dc().num_racks(); ++k) {
    double budget = fleet.dc().rack_budget_watts(RackId(k));
    for (const auto& p :
         fleet.db().QueryView(PowerMonitor::RackSeries(RackId(k)), from, to)) {
      rack_util.push_back(p.value / budget);
    }
  }
  std::vector<double> row_util;
  for (int32_t r = 0; r < fleet.dc().num_rows(); ++r) {
    double budget = fleet.dc().row_budget_watts(RowId(r));
    for (const auto& p :
         fleet.db().QueryView(PowerMonitor::RowSeries(RowId(r)), from, to)) {
      row_util.push_back(p.value / budget);
    }
  }
  std::vector<double> dc_util;
  double dc_budget = fleet.dc().total_budget_watts();
  for (const auto& p :
       fleet.db().QueryView(PowerMonitor::kTotalSeries, from, to)) {
    dc_util.push_back(p.value / dc_budget);
  }

  Summary rack_s = Summarize(rack_util);
  Summary row_s = Summarize(row_util);
  Summary dc_s = Summarize(dc_util);
  bench::Section("utilization summary (normalized to provisioned budget)");
  std::printf("%8s %8s %8s %8s %8s\n", "level", "mean", "p5", "p95", "max");
  std::printf("%8s %8.3f %8.3f %8.3f %8.3f\n", "rack", rack_s.mean,
              Percentile(rack_util, 0.05), Percentile(rack_util, 0.95),
              rack_s.max);
  std::printf("%8s %8.3f %8.3f %8.3f %8.3f\n", "row", row_s.mean,
              Percentile(row_util, 0.05), Percentile(row_util, 0.95),
              row_s.max);
  std::printf("%8s %8.3f %8.3f %8.3f %8.3f\n", "dc", dc_s.mean,
              Percentile(dc_util, 0.05), Percentile(dc_util, 0.95), dc_s.max);

  bench::Section("CDF series (power utilization -> cumulative fraction)");
  EmpiricalCdf rack_cdf(std::move(rack_util));
  EmpiricalCdf row_cdf(std::move(row_util));
  EmpiricalCdf dc_cdf(std::move(dc_util));
  std::printf("%10s %10s %10s %10s\n", "power", "rack", "row", "dc");
  for (double x = 0.60; x <= 1.001; x += 0.02) {
    std::printf("%10.2f %10.4f %10.4f %10.4f\n", x, rack_cdf.Evaluate(x),
                row_cdf.Evaluate(x), dc_cdf.Evaluate(x));
  }

  bench::Section("shape checks vs. paper");
  double rack_spread = rack_cdf.Quantile(0.95) - rack_cdf.Quantile(0.05);
  double dc_spread = dc_cdf.Quantile(0.95) - dc_cdf.Quantile(0.05);
  bench::ShapeCheck(dc_s.mean > 0.62 && dc_s.mean < 0.80,
                    "DC-level mean utilization ~0.70 (budget underused)");
  bench::ShapeCheck(rack_spread > dc_spread,
                    "distribution widens at smaller scales (rack > dc)");
  bench::ShapeCheck(rack_cdf.max() > dc_cdf.max(),
                    "individual racks reach higher peaks than the DC");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
