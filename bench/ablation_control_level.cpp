// Ablation: row-level vs rack-level power control (§2.2, design choice 1).
//
// The paper manages power at the row level because unused power is strictly
// larger there than at rack level — statistical multiplexing smooths the
// aggregate, while individual racks spike independently. This bench runs the
// same over-provisioned workload twice: once with one row-level control
// domain, once with ten rack-level domains splitting the same total budget.
// Expected shape: rack-level control freezes more servers (chasing local
// spikes the row never sees) for no less violation exposure.
//
// The two arms are independent hand-assembled simulations and run in
// parallel through the scenario harness.

#include <array>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/controller.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160421;

struct LevelResult {
  double mean_freeze_ratio = 0.0;   // Across all domains and minutes.
  int violations = 0;               // Domain-budget violations, all domains.
  double mean_unused_watts = 0.0;   // Budget minus draw, summed over domains
                                    // (floored at 0 per domain).
  uint64_t freeze_ops = 0;
};

LevelResult RunLevel(bool rack_level) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo = bench::PaperRowTopology();
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitorConfig mc;
  mc.record_racks = true;
  PowerMonitor monitor(&dc, &db, mc, rng.Fork(2));

  double total_budget = 420 * 250.0 / 1.25;  // rO = 0.25.

  std::vector<ControlDomain> domains;
  if (rack_level) {
    for (int32_t k = 0; k < dc.num_racks(); ++k) {
      ControlDomain domain;
      domain.group = "rack" + std::to_string(k);
      domain.servers = {dc.servers_in_rack(RackId(k)).begin(),
                        dc.servers_in_rack(RackId(k)).end()};
      domain.budget_watts = total_budget / dc.num_racks();
      monitor.RegisterGroup(domain.group, domain.servers);
      domains.push_back(std::move(domain));
    }
  } else {
    ControlDomain domain;
    domain.group = "row";
    domain.servers = {dc.servers_in_row(RowId(0)).begin(),
                      dc.servers_in_row(RowId(0)).end()};
    domain.budget_watts = total_budget;
    monitor.RegisterGroup(domain.group, domain.servers);
    domains.push_back(std::move(domain));
  }

  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      topo, params, /*target_normalized_power=*/0.96, /*ro=*/0.25);
  params.arrivals.ar_sigma = 0.02;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.013);
  config.et = EtEstimator::Constant(0.02);
  AmpereController controller(&scheduler, &monitor, config);
  for (ControlDomain& domain : domains) {
    controller.AddDomain(domain);
  }

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  controller.Start(&sim, SimTime::Hours(2) + SimTime::Seconds(1));

  struct Acc {
    double freeze_sum = 0.0;
    int freeze_samples = 0;
    int violations = 0;
    double unused_sum = 0.0;
    int minutes = 0;
  };
  Acc acc;
  size_t n_domains = domains.size();
  sim.SchedulePeriodic(
      SimTime::Hours(2) + SimTime::Seconds(2), SimTime::Minutes(1),
      [&](SimTime) {
        ++acc.minutes;
        for (size_t d = 0; d < n_domains; ++d) {
          double watts = monitor.LatestGroupWatts(domains[d].group);
          acc.freeze_sum += controller.freeze_ratio(d);
          ++acc.freeze_samples;
          if (watts > domains[d].budget_watts) {
            ++acc.violations;
          }
          acc.unused_sum += std::max(0.0, domains[d].budget_watts - watts);
        }
      });
  sim.RunUntil(SimTime::Hours(2 + 24));

  LevelResult result;
  result.mean_freeze_ratio = acc.freeze_sum / acc.freeze_samples;
  result.violations = acc.violations;
  result.mean_unused_watts = acc.unused_sum / acc.minutes;
  result.freeze_ops = controller.freeze_ops();
  return result;
}

void Main(const harness::HarnessArgs& args) {
  bench::Header("Ablation: control level",
                "row-level vs rack-level domains, same total budget", kSeed);

  const std::array<bool, 2> arms{false, true};  // row, rack.
  auto grid = bench::RunGrid(
      args, arms,
      [](bool rack_level, size_t) {
        return harness::GridMeta{rack_level ? "rack" : "row", kSeed};
      },
      [](bool rack_level, harness::RunContext& context) {
        LevelResult result = RunLevel(rack_level);
        context.Metric("u_mean", result.mean_freeze_ratio);
        context.Metric("violations", result.violations);
        context.Metric("unused_W", result.mean_unused_watts);
        context.Metric("freeze_ops", static_cast<double>(result.freeze_ops));
        return result;
      });

  bench::Section("24 h controlled run at rO=0.25, demand ~0.96 of budget");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const LevelResult& row = grid.values[0];
  const LevelResult& rack = grid.values[1];

  bench::Section("shape checks vs. paper (§2.2 rationale)");
  bench::ShapeCheck(rack.mean_freeze_ratio > row.mean_freeze_ratio,
                    "rack-level control freezes more (chases local spikes)");
  bench::ShapeCheck(rack.mean_unused_watts > row.mean_unused_watts,
                    "rack-level partitioning strands more unused power");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
