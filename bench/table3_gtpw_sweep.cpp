// Table 3: gain in throughput-per-provisioned-watt (G_TPW) under different
// over-provisioning ratios rO and workload levels — thirteen day-long runs.
//
// Paper's shape: at a given rO, G_TPW falls as the power demand (P_mean,
// measured on the uncontrolled group and normalized to the scaled budget)
// approaches/exceeds 1.0, because the controller must freeze more (u_mean
// rises, rT falls). Across rO: 0.25 is too aggressive under heavy load
// (G_TPW collapses toward 0), 0.13 caps the attainable gain at 13 %, and
// 0.17 is the sweet spot the paper deploys (~15-17 % gain under typical
// workload).

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160413;

struct RunSpec {
  double ro;
  double target_power;  // Demand level normalized to the scaled budget.
};

void Main() {
  bench::Header("Table 3", "G_TPW across rO x workload (13 day-long runs)",
                kSeed);

  // Mirrors the paper's 13 rows: four demand levels per rO in {0.25, 0.21,
  // 0.17} and the single light 0.13 run. The absolute levels are shifted
  // up relative to the paper's P_mean column because our servers idle at
  // 65 % of rated power: normalized to the scaled budget, the idle floor
  // alone is 0.81 at rO = 0.25, so "light demand" starts above that.
  const std::vector<RunSpec> runs = {
      {0.25, 0.88}, {0.25, 0.94}, {0.25, 0.99}, {0.25, 1.01},
      {0.21, 0.86}, {0.21, 0.91}, {0.21, 0.96}, {0.21, 1.00},
      {0.17, 0.82}, {0.17, 0.87}, {0.17, 0.93}, {0.17, 0.99},
      {0.13, 0.80},
  };

  // One calibration per rO (the effect slope depends on rO, §3.4).
  std::printf("calibrating f(u) per rO...\n");
  std::vector<double> ros{0.25, 0.21, 0.17, 0.13};
  std::vector<FreezeEffectModel> models;
  for (double ro : ros) {
    models.push_back(
        bench::CalibrateEffectModel(kSeed, /*target_power=*/0.95, ro));
  }
  auto model_for = [&](double ro) {
    for (size_t i = 0; i < ros.size(); ++i) {
      if (ros[i] == ro) {
        return models[i];
      }
    }
    return models.front();
  };

  bench::Section("Table 3 (per-minute samples over 24 h per run)");
  std::printf("%4s %6s %8s %8s %8s %8s %8s\n", "#", "rO", "P_mean", "P_max",
              "u_mean", "r_thru", "G_TPW");
  std::vector<double> gains;
  std::vector<double> gains_017;
  bool order_ok = true;
  double prev_gain = 2.0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunSpec& run = runs[i];
    ExperimentConfig config = bench::PaperExperimentConfig(
        kSeed + i, run.target_power, run.ro);
    config.controller.effect = model_for(run.ro);
    config.controller.et = EtEstimator::Constant(0.02);
    config.workload.arrivals.ar_sigma = 0.02;
    config.workload.arrivals.burst_prob = 0.01;
    config.workload.arrivals.burst_factor = 1.8;
    // §4.4: only the experiment group's budget is scaled, so its throughput
    // loss is measured against unconstrained demand.
    config.scale_control_budget = false;
    ControlledExperiment experiment(config);
    ExperimentResult result = experiment.Run();

    // P_mean/P_max of the control group normalized to the experiment
    // group's scaled budget (paper footnote 2): the control group's budget
    // is unscaled here, so multiply its rated-normalized power by (1 + rO).
    double p_mean = result.control.p_mean * (1.0 + run.ro);
    double p_max = result.control.p_max * (1.0 + run.ro);
    // Freezing cannot raise throughput: rT > 1 is estimator noise from the
    // random placement split, so clamp like the paper's rthru = 1.0 rows.
    double r_thru = std::min(result.throughput_ratio, 1.0);
    double gain = GainInTpw(r_thru, run.ro);
    gains.push_back(gain);
    if (run.ro == 0.17) {
      gains_017.push_back(gain);
    }
    std::printf("%4zu %6.2f %8.3f %8.3f %8.3f %8.3f %7.1f%%\n", i + 1,
                run.ro, p_mean, p_max, result.experiment.u_mean,
                r_thru, 100.0 * gain);
    // Within an rO block, higher demand should not raise the gain.
    if (i > 0 && runs[i - 1].ro == run.ro) {
      if (gain > prev_gain + 0.03) {
        order_ok = false;
      }
    }
    prev_gain = gain;
  }
  std::printf("(paper: e.g. rO=0.25 gains 19.7%%..4.3%% as demand rises; "
              "rO=0.17 gains 17%%..5.5%%; rO=0.13 caps at 13%%)\n");

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(order_ok,
                    "within each rO block, G_TPW falls as demand rises");
  bench::ShapeCheck(gains.back() <= 0.13 + 1e-9,
                    "rO=0.13 caps the attainable gain at 13%");
  double best_017 = *std::max_element(gains_017.begin(), gains_017.end());
  bench::ShapeCheck(best_017 > 0.14,
                    "rO=0.17 achieves ~15-17% gain under typical workload");
  double worst_025 = gains[3];
  bench::ShapeCheck(worst_025 < 0.12,
                    "rO=0.25 collapses under heavy demand");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
