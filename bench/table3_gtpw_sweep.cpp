// Table 3: gain in throughput-per-provisioned-watt (G_TPW) under different
// over-provisioning ratios rO and workload levels — thirteen day-long runs.
//
// Paper's shape: at a given rO, G_TPW falls as the power demand (P_mean,
// measured on the uncontrolled group and normalized to the scaled budget)
// approaches/exceeds 1.0, because the controller must freeze more (u_mean
// rises, rT falls). Across rO: 0.25 is too aggressive under heavy load
// (G_TPW collapses toward 0), 0.13 caps the attainable gain at 13 %, and
// 0.17 is the sweet spot the paper deploys (~15-17 % gain under typical
// workload).
//
// All 13 runs (and the 4 calibrations before them) are independent
// simulations, so they execute in parallel through the scenario harness:
//   table3_gtpw_sweep [--jobs=N] [--csv=PATH] [--json=PATH]
// Metric rows are bit-identical for any --jobs value; the JSON output
// carries per-run wall-clock timing.

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/check.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160413;

struct RunSpec {
  size_t ro_index;      // Index into kRos — never matched by floating ==.
  double target_power;  // Demand level normalized to the scaled budget.
};

// One calibration per rO (the effect slope depends on rO, §3.4).
const std::vector<double> kRos = {0.25, 0.21, 0.17, 0.13};

struct RunOutcome {
  double ro = 0.0;
  double p_mean = 0.0;
  double p_max = 0.0;
  double u_mean = 0.0;
  double r_thru = 0.0;
  double gain = 0.0;
};

void Main(const harness::HarnessArgs& args) {
  bench::Header("Table 3", "G_TPW across rO x workload (13 day-long runs)",
                kSeed);

  // Mirrors the paper's 13 rows: four demand levels per rO in {0.25, 0.21,
  // 0.17} and the single light 0.13 run. The absolute levels are shifted
  // up relative to the paper's P_mean column because our servers idle at
  // 65 % of rated power: normalized to the scaled budget, the idle floor
  // alone is 0.81 at rO = 0.25, so "light demand" starts above that.
  const std::vector<RunSpec> runs = {
      {0, 0.88}, {0, 0.94}, {0, 0.99}, {0, 1.01},
      {1, 0.86}, {1, 0.91}, {1, 0.96}, {1, 1.00},
      {2, 0.82}, {2, 0.87}, {2, 0.93}, {2, 0.99},
      {3, 0.80},
  };

  std::printf("calibrating f(u) per rO (parallel)...\n");
  auto calibration = bench::RunGrid(
      args, kRos,
      [](double ro, size_t) {
        char name[32];
        std::snprintf(name, sizeof(name), "calibrate rO=%.2f", ro);
        return harness::GridMeta{name, kSeed};
      },
      [](double ro, harness::RunContext& context) {
        FreezeEffectModel model =
            bench::CalibrateEffectModel(kSeed, /*target_power=*/0.95, ro);
        context.Metric("kr", model.kr());
        context.Metric("r_squared", model.fit_r_squared());
        return model.kr();
      });
  // Calibrated slopes are indexed by rO *index*, so a RunSpec can never
  // silently pick up the wrong model (the old float-equality lookup fell
  // back to models.front() on any mismatch).
  const std::vector<double>& kr_by_ro = calibration.values;
  AMPERE_CHECK(kr_by_ro.size() == kRos.size());
  for (size_t i = 0; i < kRos.size(); ++i) {
    std::printf("  rO=%.2f: f(u) = %.4f * u (R^2 = %.3f)\n", kRos[i],
                calibration.table.row(i).Metric("kr"),
                calibration.table.row(i).Metric("r_squared"));
  }

  auto grid = bench::RunGrid(
      args, runs,
      [](const RunSpec& run, size_t i) {
        char name[48];
        std::snprintf(name, sizeof(name), "rO=%.2f target=%.2f",
                      kRos[run.ro_index], run.target_power);
        return harness::GridMeta{name, kSeed + i};
      },
      [&kr_by_ro](const RunSpec& run, harness::RunContext& context) {
        AMPERE_CHECK(run.ro_index < kr_by_ro.size())
            << "run spec references an uncalibrated rO";
        const double ro = kRos[run.ro_index];
        ExperimentConfig config = bench::PaperExperimentConfig(
            context.seed(), run.target_power, ro);
        config.controller.effect = FreezeEffectModel(kr_by_ro[run.ro_index]);
        config.controller.et = EtEstimator::Constant(0.02);
        config.workload.arrivals.ar_sigma = 0.02;
        config.workload.arrivals.burst_prob = 0.01;
        config.workload.arrivals.burst_factor = 1.8;
        // §4.4: only the experiment group's budget is scaled, so its
        // throughput loss is measured against unconstrained demand.
        config.scale_control_budget = false;
        ExperimentResult result = RunExperimentToResult(config);

        RunOutcome out;
        out.ro = ro;
        // P_mean/P_max of the control group normalized to the experiment
        // group's scaled budget (paper footnote 2): the control group's
        // budget is unscaled here, so multiply its rated-normalized power
        // by (1 + rO).
        out.p_mean = result.control.p_mean * (1.0 + ro);
        out.p_max = result.control.p_max * (1.0 + ro);
        // Freezing cannot raise throughput: rT > 1 is estimator noise from
        // the random placement split, so clamp like the paper's
        // rthru = 1.0 rows.
        out.r_thru = std::min(result.throughput_ratio, 1.0);
        out.u_mean = result.experiment.u_mean;
        out.gain = GainInTpw(out.r_thru, ro);

        context.Metric("rO", out.ro);
        context.Metric("P_mean", out.p_mean);
        context.Metric("P_max", out.p_max);
        context.Metric("u_mean", out.u_mean);
        context.Metric("r_thru", out.r_thru);
        context.Metric("G_TPW", out.gain);
        return out;
      });

  bench::Section("Table 3 (per-minute samples over 24 h per run)");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }

  std::vector<double> gains;
  std::vector<double> gains_017;
  bool order_ok = true;
  double prev_gain = 2.0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunOutcome& out = grid.values[i];
    gains.push_back(out.gain);
    if (runs[i].ro_index == 2) {  // rO = 0.17.
      gains_017.push_back(out.gain);
    }
    // Within an rO block, higher demand should not raise the gain.
    if (i > 0 && runs[i - 1].ro_index == runs[i].ro_index) {
      if (out.gain > prev_gain + 0.03) {
        order_ok = false;
      }
    }
    prev_gain = out.gain;
  }
  std::printf("(paper: e.g. rO=0.25 gains 19.7%%..4.3%% as demand rises; "
              "rO=0.17 gains 17%%..5.5%%; rO=0.13 caps at 13%%)\n");

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(order_ok,
                    "within each rO block, G_TPW falls as demand rises");
  bench::ShapeCheck(gains.back() <= 0.13 + 1e-9,
                    "rO=0.13 caps the attainable gain at 13%");
  double best_017 = *std::max_element(gains_017.begin(), gains_017.end());
  bench::ShapeCheck(best_017 > 0.14,
                    "rO=0.17 achieves ~15-17% gain under typical workload");
  double worst_025 = gains[3];
  bench::ShapeCheck(worst_025 < 0.12,
                    "rO=0.25 collapses under heavy demand");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
