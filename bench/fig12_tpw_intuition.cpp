// Figure 12: a four-hour trace of power and throughput for the experiment
// (controlled, budget scaled to rO = 0.25) and control groups, illustrating
// why TPW does not grow monotonically with rO: during the boxed high-power
// period the controller must suppress both power AND throughput (paper:
// throughput dips ~20 % inside the box; the window-average rT is ~0.95,
// giving G_TPW = 1.25 * 0.95 - 1 ≈ 0.19).

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160412;

void Main() {
  bench::Header("Figure 12",
                "power + throughput under control, rO=0.25, 4 hours", kSeed);

  FreezeEffectModel effect =
      bench::CalibrateEffectModel(kSeed, /*target_power=*/0.97, /*ro=*/0.25);

  ExperimentConfig config =
      bench::PaperExperimentConfig(kSeed, /*target_power=*/0.97, /*ro=*/0.25);
  config.controller.effect = effect;
  config.controller.et = EtEstimator::Constant(0.02);
  config.duration = SimTime::Hours(4);
  // §4.4 scales only the experiment group's budget so the control group
  // shows the unconstrained demand/throughput.
  config.scale_control_budget = false;
  // A pronounced demand hill in the middle of the window recreates the
  // "boxed" high-power period.
  config.workload.arrivals.diurnal_amplitude = 0.08;
  config.workload.arrivals.peak_hour = 3.5;  // Inside hours 2-6 of sim time.
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();

  bench::Section("trace (per 10 min): power normalized to scaled budget; "
                 "per-minute placements smoothed over 10 min");
  std::printf("%6s %10s %10s %8s %10s %10s\n", "min", "exp_pow", "ctl_pow",
              "u", "exp_thru", "ctl_thru");
  const auto& exp_min = result.experiment.minutes;
  const auto& ctl_min = result.control.minutes;
  double ctl_budget_scaled =
      experiment.control_budget_watts() / (1.0 + 0.25);
  for (size_t i = 0; i + 10 <= exp_min.size(); i += 10) {
    double exp_thru = 0.0;
    double ctl_thru = 0.0;
    for (size_t j = i; j < i + 10; ++j) {
      exp_thru += exp_min[j].placements;
      ctl_thru += ctl_min[j].placements;
    }
    // Normalize the control group's power to the same scaled budget so the
    // two curves are comparable (paper footnote 2).
    std::printf("%6zu %10.3f %10.3f %8.3f %10.1f %10.1f\n", i,
                exp_min[i].normalized_power,
                ctl_min[i].power_watts / ctl_budget_scaled,
                exp_min[i].freeze_ratio, exp_thru / 10.0, ctl_thru / 10.0);
  }

  // Boxed period: the contiguous third of the window with the highest
  // control-group power.
  size_t n = ctl_min.size();
  size_t box_len = n / 3;
  size_t best_start = 0;
  double best_sum = -1.0;
  for (size_t start = 0; start + box_len <= n; start += 10) {
    double sum = 0.0;
    for (size_t j = start; j < start + box_len; ++j) {
      sum += ctl_min[j].power_watts;
    }
    if (sum > best_sum) {
      best_sum = sum;
      best_start = start;
    }
  }
  auto thru_ratio_in = [&](size_t from, size_t to) {
    double e = 0.0;
    double c = 0.0;
    for (size_t j = from; j < to; ++j) {
      e += exp_min[j].placements;
      c += ctl_min[j].placements;
    }
    return c > 0.0 ? e / c : 0.0;
  };
  double rt_box = thru_ratio_in(best_start, best_start + box_len);
  double rt_all = result.throughput_ratio;

  bench::Section("TPW accounting (Eq. 18)");
  std::printf("boxed high-power period: minutes %zu-%zu\n", best_start,
              best_start + box_len);
  std::printf("rT inside box = %.3f  (paper: ~0.8 under sustained peak)\n",
              rt_box);
  std::printf("rT whole window = %.3f  (paper: ~0.95)\n", rt_all);
  std::printf("G_TPW = (1+0.25)*rT - 1 = %.3f (box: %.3f)\n",
              GainInTpw(rt_all, 0.25), GainInTpw(rt_box, 0.25));

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(rt_box < rt_all,
                    "throughput suppression concentrates in the box");
  bench::ShapeCheck(rt_all > rt_box && rt_all <= 1.02,
                    "window-average rT exceeds boxed rT and stays <= ~1");
  bench::ShapeCheck(GainInTpw(rt_all, 0.25) > GainInTpw(rt_box, 0.25),
                    "G_TPW is workload dependent (worse at sustained peak)");
  double u_box_mean = 0.0;
  for (size_t j = best_start; j < best_start + box_len; ++j) {
    u_box_mean += exp_min[j].freeze_ratio;
  }
  u_box_mean /= static_cast<double>(box_len);
  bench::ShapeCheck(u_box_mean > result.experiment.u_mean,
                    "control actions concentrate in the high-power box");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
