// perf_closed_loop: the repo's perf baseline for the per-run hot path.
//
// Every scenario in the grid benches is one single-threaded discrete-event
// run; the harness (PR 1) parallelizes *across* runs, so per-run throughput
// is the floor every later PR stands on. This bench measures that floor and
// emits a machine-readable record (BENCH_perf_closed_loop.json) that CI
// compares against the committed baseline.
//
// Phases, per topology (small 84 / paper 420 / fleet4x 1680 / hyperscale
// 6720 servers; --huge adds a 26880-server tier):
//   closed_loop  — a full ControlledExperiment (workload + scheduler +
//                  monitor + controller + breaker) for several simulated
//                  hours; reports steps/sec (sim events per wall second)
//                  and sim-minutes/sec.
//   sample       — the PowerMonitor minute pass in a tight loop on a loaded
//                  fleet; reports samples/sec (server readings per wall
//                  second), ns per pass, and heap allocations per pass.
//   resummate    — the exact power re-aggregation sweep (servers -> racks ->
//                  rows -> total) on a loaded fleet; reports ns per
//                  resummation.
//   events       — event-core schedule+fire pairs with a typical closure;
//                  reports ns and heap allocations per event.
// Plus, at paper scale only:
//   tick         — the controller decision tick; reports ns per tick.
//
// --trajectory entries carry the per-topology "steps_per_sec" map (shape
// unchanged since schema 1) plus a "phase_ns" map with the paper-scale
// per-kernel timings {sample, resummate, tick, events}, so kernel-level
// regressions are attributable across PRs, not just the composite.
//
// Allocation accounting: this binary replaces global operator new/delete
// with counting forwarders. The steady-state contract after the interned-
// handle/pooled-event rebuild is ZERO allocations per sample pass and per
// event — enforced whenever the committed baseline says
// "require_zero_alloc": true (CI runs `--check=BENCH_perf_closed_loop.json`).
//
// Thread scaling: when the host has >= 2 hardware threads (or --jobs forces
// it), the hyperscale tier additionally measures the sharded sample pass
// and the closed loop at several --jobs values. The serial (jobs=1)
// numbers remain the baseline-checked ones — they are host-portable; the
// parallel block is reported for scaling visibility and is byte-identical
// in *results* to the serial run by construction (counter-based noise +
// static partitions), only faster.
//
// Flags:
//   --json=PATH        write the current numbers as JSON
//   --check=PATH       compare against a committed baseline: fail (exit 1)
//                      on a >25% steps/sec regression on any topology, or on
//                      any steady-state allocation when the baseline
//                      requires zero
//   --quick            quarter-length closed loops (for smoke use)
//   --jobs=N           force the parallel sweep up to N lanes (default:
//                      hardware_concurrency; 1 disables the sweep)
//   --huge             add the 64-row (26880-server) tier
//   --trajectory=PATH  append a dated {date, commit, per-topology steps/s}
//                      entry to the perf-trajectory JSON (commit read from
//                      $AMPERE_COMMIT, "unknown" if unset)
//   --store-dir=DIR    run the persistent-telemetry identity check before
//                      the tiers: a spill-enabled small closed loop under
//                      DIR whose stitched bytes must equal a RAM-only twin's,
//                      then an OpenExisting reopen that must serve the same
//                      bytes again. Prints STORAGE CHECK [PASS|FAIL] lines
//                      (CI greps them) and fails the binary on mismatch.
//   --storage-only     exit right after the --store-dir check (CI smoke)
//   --rss-demo         instead of the tiers, run the bounded-RSS demo: a
//                      multi-day hyperscale closed loop with per-server
//                      telemetry, once RAM-only and once spilling under
//                      --store-dir, sampling VmRSS each simulated day. The
//                      JSON gains a "storage_demo" block (RAM grows, spill
//                      plateaus; steps/s within 10%).
//   --rss-days=N       measured days for --rss-demo (default 7)
//
// RSS accounting: every tier (and every --rss-demo day) records VmRSS from
// /proc/self/status — best-effort, 0.0 where the file does not exist — so
// the longitudinal record tracks memory footprint, not just speed.
//
// The committed bench/BENCH_perf_closed_loop.json also archives the
// pre-rebuild numbers under "pre_change" so the speedup each PR documented
// stays auditable; --check ignores that block. The repo-root
// BENCH_perf_closed_loop.json is the longitudinal trajectory file that
// --trajectory appends to.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/controller.h"
#include "src/core/experiment.h"
#include "src/obs/metrics.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/cold_store.h"
#include "src/telemetry/csv_export.h"
#include "src/telemetry/power_monitor.h"
#include "src/telemetry/timeseries_db.h"

// --- Global allocation counter ------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   ((size + static_cast<std::size_t>(align) -
                                     1) /
                                    static_cast<std::size_t>(align)) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160412;

uint64_t AllocCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

double NowSeconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

// Steady-state resident set in MB from /proc/self/status (VmRSS is in kB).
// Best-effort: returns 0.0 where the file does not exist (non-Linux hosts),
// so consumers treat 0 as "not measured", never as "no memory".
double ReadVmRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

struct TopologySpec {
  const char* name;
  int rows;
  int racks_per_row;
  double closed_loop_hours;
};

struct ClosedLoopStats {
  double sim_hours = 0.0;
  double wall_s = 0.0;
  uint64_t events = 0;
  double steps_per_sec = 0.0;
  double sim_minutes_per_sec = 0.0;
};

struct SampleStats {
  uint64_t passes = 0;
  double samples_per_sec = 0.0;
  double ns_per_pass = 0.0;
  double allocs_per_pass = 0.0;
};

struct EventStats {
  double ns_per_event = 0.0;
  double allocs_per_event = 0.0;
};

struct TopologyResult {
  std::string name;
  int servers = 0;
  ClosedLoopStats closed_loop;
  SampleStats sample;
  double resummate_ns = 0.0;
  EventStats events;
  double tick_ns = 0.0;  // Paper topology only; 0 elsewhere.
  // Thread-scaling sweep (hyperscale tier on multicore hosts only): the
  // sharded sample pass at each jobs value, plus one parallel closed loop
  // at the top jobs value. Empty/zero when the sweep did not run.
  std::vector<std::pair<int, SampleStats>> sample_sweep;
  int parallel_jobs = 0;
  ClosedLoopStats closed_loop_parallel;
  // VmRSS right after this tier's phases finished (0.0 = not measurable).
  double rss_mb = 0.0;
};

TopologyConfig MakeTopology(const TopologySpec& spec) {
  TopologyConfig config;
  config.num_rows = spec.rows;
  config.racks_per_row = spec.racks_per_row;
  config.servers_per_rack = 42;
  config.server_capacity = Resources{16.0, 64.0};
  config.power_model.rated_watts = 250.0;
  config.power_model.idle_fraction = 0.65;
  return config;
}

// --- Phase: full closed loop --------------------------------------------

ExperimentConfig MakeClosedLoopConfig(const TopologySpec& spec, double hours,
                                      int jobs = 1) {
  ExperimentConfig config;
  config.seed = kSeed;
  config.jobs = jobs;
  config.topology = MakeTopology(spec);
  config.over_provision_ratio = 0.25;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 0.98, 0.25);
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(hours);
  return config;
}

ClosedLoopStats RunClosedLoop(const TopologySpec& spec, double hours,
                              int jobs = 1) {
  ExperimentConfig config = MakeClosedLoopConfig(spec, hours, jobs);

  ControlledExperiment experiment(config);
  const double start = NowSeconds();
  experiment.Run();
  const double wall = NowSeconds() - start;

  ClosedLoopStats stats;
  stats.sim_hours = hours + 0.5;
  stats.wall_s = wall;
  stats.events = experiment.sim().processed_events();
  stats.steps_per_sec = static_cast<double>(stats.events) / wall;
  stats.sim_minutes_per_sec = stats.sim_hours * 60.0 / wall;
  return stats;
}

// --- Phase: telemetry sample pass ---------------------------------------

// A loaded fleet whose monitor is sampled in a tight loop. obs is switched
// off for the measured section so the numbers isolate the telemetry path
// itself (the obs overhead has its own micro bench).
SampleStats RunSamplePhase(const TopologySpec& spec, int jobs = 1) {
  Simulation sim;
  DataCenter dc(MakeTopology(spec), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, Rng(kSeed));
  std::unique_ptr<ThreadPool> pool;
  if (jobs >= 2) {
    // jobs lanes total: this thread + jobs-1 workers, matching
    // ExperimentConfig::jobs semantics. Pool creation allocates; it happens
    // here, before the measured section, so steady-state allocs stay zero.
    pool = std::make_unique<ThreadPool>(jobs - 1);
    monitor.SetThreadPool(pool.get());
    dc.SetThreadPool(pool.get());
  }
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    dc.PlaceTask(ServerId(s), TaskSpec{JobId(s), Resources{8.0, 8.0},
                                       SimTime::Hours(100000)});
  }

  const uint64_t passes = 4096;
  // Steady-state storage: one point per recorded series per pass. Sizing
  // the stores up front is what production monitors do for a known horizon;
  // it is also what makes a zero-allocation steady state possible at all.
  db.Reserve(static_cast<size_t>(dc.num_racks() + dc.num_rows()) + 1);
  monitor.PreallocateSamples(passes + 16);

  int64_t minute = 1;
  // Warmup: fault-free first passes intern/construct every series and let
  // vectors settle.
  for (int i = 0; i < 8; ++i) {
    monitor.SampleOnce(SimTime::Minutes(static_cast<double>(minute++)));
  }

  // Min-of-windows timing: the reported figure is the fastest of 8 equal
  // windows. The phase loops run for only a few ms, so a single scheduler
  // preemption inside one flat timing loop can inflate the mean 2x; the
  // minimum window measures the kernel, not whichever window the host's
  // jitter landed in. Allocations are still counted across every pass.
  constexpr uint64_t kWindows = 8;
  const uint64_t per_window = passes / kWindows;
  obs::SetEnabled(false);
  const uint64_t allocs_before = AllocCount();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t w = 0; w < kWindows; ++w) {
    const double start = NowSeconds();
    for (uint64_t i = 0; i < per_window; ++i) {
      monitor.SampleOnce(SimTime::Minutes(static_cast<double>(minute++)));
    }
    best = std::min(best, NowSeconds() - start);
  }
  const uint64_t allocs = AllocCount() - allocs_before;
  obs::SetEnabled(true);

  SampleStats stats;
  stats.passes = passes;
  stats.samples_per_sec =
      static_cast<double>(per_window) * static_cast<double>(dc.num_servers()) /
      best;
  stats.ns_per_pass = best * 1e9 / static_cast<double>(per_window);
  stats.allocs_per_pass =
      static_cast<double>(allocs) / static_cast<double>(passes);
  return stats;
}

// --- Phase: power resummation --------------------------------------------

// The exact re-aggregation sweep the monitor triggers each minute and the
// breaker check leans on: full servers -> racks -> rows -> total pairwise
// sums on a loaded fleet.
double RunResummatePhase(const TopologySpec& spec) {
  Simulation sim;
  DataCenter dc(MakeTopology(spec), &sim);
  Rng rng(kSeed + 3);
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    if (rng.Bernoulli(0.8)) {
      dc.PlaceTask(ServerId(s), TaskSpec{JobId(s), Resources{8.0, 8.0},
                                         SimTime::Hours(100000)});
    }
  }
  const uint64_t sweeps = 4096;
  for (int i = 0; i < 16; ++i) {
    dc.ResummatePowerAggregates();
  }
  // Min-of-windows (see RunSamplePass): this is the shortest phase, so it
  // is the most exposed to preemption spikes under a flat timing loop.
  constexpr uint64_t kWindows = 8;
  const uint64_t per_window = sweeps / kWindows;
  obs::SetEnabled(false);
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t w = 0; w < kWindows; ++w) {
    const double start = NowSeconds();
    for (uint64_t i = 0; i < per_window; ++i) {
      dc.ResummatePowerAggregates();
    }
    best = std::min(best, NowSeconds() - start);
  }
  obs::SetEnabled(true);
  return best * 1e9 / static_cast<double>(per_window);
}

// --- Phase: event core ---------------------------------------------------

EventStats RunEventPhase() {
  Simulation sim;
  struct Receiver {
    uint64_t hits = 0;
    void OnFire(int32_t, int64_t) { ++hits; }
  } receiver;

  const uint64_t iterations = 1 << 20;
  // Warmup grows the pool/queue to steady capacity.
  for (uint64_t i = 0; i < 1024; ++i) {
    sim.ScheduleAfter(SimTime::Micros(1), [&receiver, i, j = int64_t(i)] {
      receiver.OnFire(static_cast<int32_t>(i), j);
    });
    sim.Step();
  }

  // Min-of-windows (see RunSamplePass). Allocations still counted across
  // every iteration.
  constexpr uint64_t kWindows = 8;
  const uint64_t per_window = iterations / kWindows;
  obs::SetEnabled(false);
  const uint64_t allocs_before = AllocCount();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t w = 0; w < kWindows; ++w) {
    const double start = NowSeconds();
    for (uint64_t i = 0; i < per_window; ++i) {
      // The sim's typical closure shape — a this-pointer plus two ids
      // (24 bytes, beyond std::function's 16-byte inline buffer).
      sim.ScheduleAfter(SimTime::Micros(1), [&receiver, i, j = int64_t(i)] {
        receiver.OnFire(static_cast<int32_t>(i & 0xff), j);
      });
      sim.Step();
    }
    best = std::min(best, NowSeconds() - start);
  }
  const uint64_t allocs = AllocCount() - allocs_before;
  obs::SetEnabled(true);

  EventStats stats;
  stats.ns_per_event = best * 1e9 / static_cast<double>(per_window);
  stats.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(iterations);
  return stats;
}

// --- Phase: controller tick ----------------------------------------------

double RunTickPhase(const TopologySpec& spec) {
  Simulation sim;
  DataCenter dc(MakeTopology(spec), &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, Rng(kSeed + 1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, Rng(kSeed + 2));
  std::vector<ServerId> all;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    all.push_back(ServerId(s));
    dc.PlaceTask(ServerId(s), TaskSpec{JobId(s), Resources{8.0, 8.0},
                                       SimTime::Hours(100000)});
  }
  monitor.RegisterGroup("domain", all);
  monitor.SampleOnce(SimTime::Minutes(1));

  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.05);
  config.et = EtEstimator::Constant(0.02);
  AmpereController controller(&scheduler, &monitor, config);
  controller.AddDomain(
      {"domain", all, static_cast<double>(dc.num_servers()) * 250.0 / 1.25});

  const uint64_t ticks = 4096;
  int64_t minute = 2;
  for (int i = 0; i < 16; ++i) {
    controller.Tick(SimTime::Minutes(static_cast<double>(minute++)));
  }
  // Min-of-windows (see RunSamplePass).
  constexpr uint64_t kWindows = 8;
  const uint64_t per_window = ticks / kWindows;
  obs::SetEnabled(false);
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t w = 0; w < kWindows; ++w) {
    const double start = NowSeconds();
    for (uint64_t i = 0; i < per_window; ++i) {
      controller.Tick(SimTime::Minutes(static_cast<double>(minute++)));
    }
    best = std::min(best, NowSeconds() - start);
  }
  obs::SetEnabled(true);
  return best * 1e9 / static_cast<double>(per_window);
}

// --- JSON emit / check ----------------------------------------------------

void AppendJson(std::ostringstream& out, const TopologyResult& r,
                bool last) {
  out << "    \"" << r.name << "\": {\n";
  out << "      \"servers\": " << r.servers << ",\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "      \"rss_mb\": %.1f,\n",
                r.rss_mb);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "      \"closed_loop\": {\"sim_hours\": %.2f, \"wall_s\": "
                "%.3f, \"events\": %llu, \"steps_per_sec\": %.0f, "
                "\"sim_minutes_per_sec\": %.1f},\n",
                r.closed_loop.sim_hours, r.closed_loop.wall_s,
                static_cast<unsigned long long>(r.closed_loop.events),
                r.closed_loop.steps_per_sec,
                r.closed_loop.sim_minutes_per_sec);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "      \"sample\": {\"passes\": %llu, \"samples_per_sec\": "
                "%.0f, \"ns_per_pass\": %.0f, \"allocs_per_pass\": %.3f},\n",
                static_cast<unsigned long long>(r.sample.passes),
                r.sample.samples_per_sec, r.sample.ns_per_pass,
                r.sample.allocs_per_pass);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "      \"resummate\": {\"ns_per_sweep\": %.0f},\n",
                r.resummate_ns);
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "      \"events\": {\"ns_per_event\": %.1f, "
                "\"allocs_per_event\": %.3f}",
                r.events.ns_per_event, r.events.allocs_per_event);
  out << buffer;
  if (r.tick_ns > 0.0) {
    std::snprintf(buffer, sizeof(buffer), ",\n      \"tick_ns\": %.0f",
                  r.tick_ns);
    out << buffer;
  }
  if (!r.sample_sweep.empty()) {
    // Parallel block last, so CheckAgainstBaseline's first-occurrence
    // lookups keep resolving to the serial numbers above.
    out << ",\n      \"parallel\": {";
    for (size_t i = 0; i < r.sample_sweep.size(); ++i) {
      std::snprintf(buffer, sizeof(buffer),
                    "%s\"sample_jobs%d\": {\"ns_per_pass\": %.0f, "
                    "\"allocs_per_pass\": %.3f}",
                    i == 0 ? "" : ", ", r.sample_sweep[i].first,
                    r.sample_sweep[i].second.ns_per_pass,
                    r.sample_sweep[i].second.allocs_per_pass);
      out << buffer;
    }
    if (r.parallel_jobs > 0) {
      std::snprintf(buffer, sizeof(buffer),
                    ", \"closed_loop_jobs\": %d, "
                    "\"closed_loop_steps_per_sec\": %.0f",
                    r.parallel_jobs,
                    r.closed_loop_parallel.steps_per_sec);
      out << buffer;
    }
    out << "}";
  }
  out << "\n    }" << (last ? "\n" : ",\n");
}

// `extra` (may be empty) is a pre-rendered top-level JSON member — e.g. the
// --rss-demo "storage_demo" block — emitted AFTER "topologies" so
// CheckAgainstBaseline's first-occurrence key lookups keep resolving into
// the per-tier section.
std::string ToJson(const std::vector<TopologyResult>& results,
                   const std::string& extra = {}) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"perf_closed_loop\",\n  \"schema\": 2,\n";
  out << "  \"require_zero_alloc\": true,\n";
  out << "  \"hw_threads\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"topologies\": {\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendJson(out, results[i], i + 1 == results.size());
  }
  out << "  }";
  if (!extra.empty()) {
    out << ",\n" << extra;
  }
  out << "\n}\n";
  return out.str();
}

// --- Perf trajectory -------------------------------------------------------

// Best-effort commit id for trajectory entries: $AMPERE_COMMIT when the
// harness provides it, else `git describe --always` from the current
// directory (benches run from the repo checkout), else "unknown".
std::string CommitId() {
  if (const char* env = std::getenv("AMPERE_COMMIT");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::string id;
  if (FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r")) {
    char buffer[128];
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      id = buffer;
    }
    pclose(pipe);
  }
  while (!id.empty() && (id.back() == '\n' || id.back() == '\r')) {
    id.pop_back();
  }
  return id.empty() ? "unknown" : id;
}

// Appends one dated entry to the longitudinal trajectory JSON:
//   {"date": "...", "commit": "...", "steps_per_sec": {topo: N, ...},
//    "phase_ns": {topo: {"sample": ..., "resummate": ..., "events": ...}}}
// The file is this bench's own shape ({"entries": [ ... ]}); a missing or
// unrecognized file is recreated fresh.
void AppendTrajectory(const std::string& path,
                      const std::vector<TopologyResult>& results) {
  std::ostringstream entry;
  char date[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm* tm = std::gmtime(&now)) {
    std::strftime(date, sizeof(date), "%Y-%m-%d", tm);
  }
  entry << "    {\"date\": \"" << date << "\", \"commit\": \"" << CommitId()
        << "\", \"steps_per_sec\": {";
  for (size_t i = 0; i < results.size(); ++i) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "%s\"%s\": %.0f",
                  i == 0 ? "" : ", ", results[i].name.c_str(),
                  results[i].closed_loop.steps_per_sec);
    entry << buffer;
  }
  entry << "}";
  // Per-kernel timings at EVERY tier, so a regression localized to one
  // scale (e.g. the hyperscale sample pass) is visible in the longitudinal
  // record, not just at paper scale. The controller tick is only measured
  // at paper scale and is included there alone.
  entry << ", \"phase_ns\": {";
  for (size_t i = 0; i < results.size(); ++i) {
    const TopologyResult& r = results[i];
    char buffer[192];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\"%s\": {\"sample\": %.0f, \"resummate\": %.0f, "
                  "\"events\": %.1f",
                  i == 0 ? "" : ", ", r.name.c_str(), r.sample.ns_per_pass,
                  r.resummate_ns, r.events.ns_per_event);
    entry << buffer;
    if (r.tick_ns > 0.0) {
      std::snprintf(buffer, sizeof(buffer), ", \"tick\": %.0f", r.tick_ns);
      entry << buffer;
    }
    entry << "}";
  }
  entry << "}";
  // Schema 2: steady-state VmRSS after each tier's phases, so footprint
  // regressions are as attributable as throughput ones.
  entry << ", \"rss_mb\": {";
  for (size_t i = 0; i < results.size(); ++i) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "%s\"%s\": %.1f",
                  i == 0 ? "" : ", ", results[i].name.c_str(),
                  results[i].rss_mb);
    entry << buffer;
  }
  entry << "}";
  entry << "}";

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  const size_t close = text.rfind("\n  ]");
  std::string out;
  if (close == std::string::npos) {
    out = "{\n  \"bench\": \"perf_closed_loop_trajectory\",\n"
          "  \"schema\": 2,\n"
          "  \"schema_note\": \"phase_ns is per-tier: {tier: {sample, "
          "resummate, events[, tick]}}; rss_mb is the per-tier steady-state "
          "VmRSS in MB after that tier's phases (0 = not measurable)\",\n"
          "  \"entries\": [\n" +
          entry.str() + "\n  ]\n}\n";
  } else {
    // Comma-join unless the entries array is still empty.
    size_t tail = text.find_last_not_of(" \t\r\n", close);
    const bool has_entries = tail != std::string::npos && text[tail] == '}';
    out = text.substr(0, close) + (has_entries ? ",\n" : "\n") + entry.str() +
          text.substr(close);
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << out;
  std::printf("appended trajectory entry to %s\n", path.c_str());
}

// Minimal scanner for our own JSON shape: finds `"key": <number>` after the
// first occurrence of `"section"`. Good enough for the baseline file this
// bench itself writes; not a general JSON parser.
bool FindNumber(const std::string& json, const std::string& section,
                const std::string& key, double* out) {
  size_t at = json.find("\"" + section + "\"");
  if (at == std::string::npos) {
    return false;
  }
  at = json.find("\"" + key + "\"", at);
  if (at == std::string::npos) {
    return false;
  }
  at = json.find(':', at);
  if (at == std::string::npos) {
    return false;
  }
  *out = std::strtod(json.c_str() + at + 1, nullptr);
  return true;
}

bool CheckAgainstBaseline(const std::string& path,
                          const std::vector<TopologyResult>& results) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "perf_closed_loop: cannot read baseline %s\n",
                 path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Strip the archived "pre_change" block (if present) so lookups resolve
  // inside the current-baseline section only.
  std::string json = buffer.str();
  if (size_t cut = json.find("\"pre_change\""); cut != std::string::npos) {
    json = json.substr(0, cut);
  }

  double zero_alloc_flag = 0.0;
  const bool require_zero_alloc =
      json.find("\"require_zero_alloc\": true") != std::string::npos;
  (void)zero_alloc_flag;

  bool ok = true;
  for (const TopologyResult& r : results) {
    double baseline_steps = 0.0;
    if (!FindNumber(json, r.name, "steps_per_sec", &baseline_steps)) {
      std::fprintf(stderr, "  [%s] baseline has no steps_per_sec; skipped\n",
                   r.name.c_str());
      continue;
    }
    const double floor = 0.75 * baseline_steps;
    const bool pass = r.closed_loop.steps_per_sec >= floor;
    std::printf("  [%s] steps/sec %.0f vs baseline %.0f (floor %.0f): %s\n",
                r.name.c_str(), r.closed_loop.steps_per_sec, baseline_steps,
                floor, pass ? "ok" : "REGRESSION");
    ok = ok && pass;
    // Per-kernel phase gate: each measured phase may regress at most 35 %
    // against the committed baseline, so a slowdown localized to one kernel
    // (noise, resummation, event core, controller tick) fails the smoke
    // check even when the aggregate steps/s still clears its floor. Phases
    // absent from the baseline (older schema) are skipped.
    struct PhaseCheck {
      const char* key;
      double current;
    };
    const PhaseCheck phases[] = {
        {"ns_per_pass", r.sample.ns_per_pass},  // First match = sample's.
        {"ns_per_sweep", r.resummate_ns},       // Resummate phase's key.
        {"ns_per_event", r.events.ns_per_event},
        {"tick_ns", r.tick_ns},
    };
    constexpr double kPhaseRegressionLimit = 1.35;
    for (const PhaseCheck& phase : phases) {
      double baseline_ns = 0.0;
      if (phase.current <= 0.0 ||
          !FindNumber(json, r.name, phase.key, &baseline_ns) ||
          baseline_ns <= 0.0) {
        continue;
      }
      const bool phase_ok =
          phase.current <= kPhaseRegressionLimit * baseline_ns;
      std::printf("  [%s] phase %s %.1f ns vs baseline %.1f ns "
                  "(limit %.1f): %s\n",
                  r.name.c_str(), phase.key, phase.current, baseline_ns,
                  kPhaseRegressionLimit * baseline_ns,
                  phase_ok ? "ok" : "PHASE REGRESSION");
      ok = ok && phase_ok;
    }
    if (require_zero_alloc) {
      const bool alloc_ok = r.sample.allocs_per_pass == 0.0 &&
                            r.events.allocs_per_event == 0.0;
      std::printf("  [%s] steady-state allocs: %.3f/pass, %.3f/event: %s\n",
                  r.name.c_str(), r.sample.allocs_per_pass,
                  r.events.allocs_per_event,
                  alloc_ok ? "ok" : "NONZERO (hot path allocates)");
      ok = ok && alloc_ok;
    }
  }
  return ok;
}

// --- Persistent-telemetry identity check (--store-dir) --------------------

__attribute__((format(printf, 3, 4)))
void StorageCheck(bool ok, bool* all_ok, const char* format, ...) {
  char message[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);
  std::printf("STORAGE CHECK [%s]: %s\n", ok ? "PASS" : "FAIL", message);
  *all_ok = *all_ok && ok;
}

// Canonical per-series bytes via the stitched read: one "micros value" line
// per point, %.17g so doubles round-trip bit-exactly. `limit` truncates to a
// prefix (used to compare a reopened, cold-only store against the full run).
std::string CanonicalSeriesBytes(const TimeSeriesDb& db,
                                 const std::string& name,
                                 size_t limit = SIZE_MAX) {
  std::string out;
  size_t n = 0;
  db.SeriesStitched(name).ForEachPoint([&](const TimePoint& point) {
    if (n++ >= limit) {
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%lld %.17g\n",
                  static_cast<long long>(point.time.micros()), point.value);
    out += buffer;
  });
  return out;
}

// Runs the spill-identity + instant-restart matrix on the small tier:
//   1. RAM-only closed loop (the reference bytes).
//   2. The same config spilling into `dir` under a tight hot budget — the
//      stitched CSV export must be byte-identical to the reference.
//   3. ColdStore::OpenExisting on `dir` after the run — every series the
//      store holds must serve exactly the reference's first N samples.
bool RunStorageSection(const std::string& dir) {
  std::printf("\n--- persistent-telemetry identity check (%s) ---\n",
              dir.c_str());
  const TopologySpec spec{"small", 1, 2, 8.0};
  constexpr size_t kHotBudget = 64;
  bool ok = true;

  ExperimentConfig ram_config = MakeClosedLoopConfig(spec, 8.0);
  ram_config.monitor.record_servers = true;  // More series, harder check.
  ControlledExperiment ram(ram_config);
  ram.Run();
  std::ostringstream ram_csv;
  ExportCsv(ram.db(), ram.db().SeriesNames(), ram_csv);

  std::vector<std::string> series_names;
  std::vector<uint64_t> cold_counts;
  uint64_t spilled = 0;
  uint64_t segments = 0;
  std::string manifest_path;
  {
    ExperimentConfig spill_config = ram_config;
    spill_config.storage.store_dir = dir;
    spill_config.storage.hot_budget_samples = kHotBudget;
    ControlledExperiment spill(spill_config);
    ExperimentResult result = spill.Run();
    spilled = result.cold_samples_spilled;
    segments = result.cold_segments;
    manifest_path = spill.cold_store()->ManifestPath();
    std::ostringstream spill_csv;
    ExportCsv(spill.db(), spill.db().SeriesNames(), spill_csv);
    StorageCheck(spilled > 0 && segments > 0, &ok,
                 "spill actually engaged: %llu samples into %llu segments "
                 "(hot budget %zu)",
                 static_cast<unsigned long long>(spilled),
                 static_cast<unsigned long long>(segments), kHotBudget);
    StorageCheck(spill_csv.str() == ram_csv.str() && !ram_csv.str().empty(),
                 &ok,
                 "stitched hot+cold export byte-identical to the RAM-only "
                 "run (%zu bytes, %zu series)",
                 ram_csv.str().size(), ram.db().SeriesNames().size());
    for (const std::string& name : spill.cold_store()->SeriesNames()) {
      series_names.push_back(name);
      cold_counts.push_back(spill.cold_store()->SamplesForSeries(name));
    }
  }  // Destroys the spill experiment: the store is now only on disk.

  ColdStoreConfig reopen_config;
  reopen_config.dir = dir;
  ColdStore::OpenResult reopened = ColdStore::OpenExisting(reopen_config);
  StorageCheck(reopened.status.ok(), &ok,
               "OpenExisting validated the manifest and every segment (%s)",
               reopened.status.ok() ? manifest_path.c_str()
                                    : reopened.status.message.c_str());
  if (reopened.store != nullptr) {
    TimeSeriesDb restarted;
    restarted.AttachColdStore(reopened.store.get(), kHotBudget);
    size_t mismatched = 0;
    uint64_t cold_total = 0;
    for (size_t i = 0; i < series_names.size(); ++i) {
      cold_total += cold_counts[i];
      const std::string after = CanonicalSeriesBytes(restarted,
                                                     series_names[i]);
      const std::string expected = CanonicalSeriesBytes(
          ram.db(), series_names[i], static_cast<size_t>(cold_counts[i]));
      if (after != expected || after.empty()) {
        ++mismatched;
      }
    }
    StorageCheck(mismatched == 0 && !series_names.empty(), &ok,
                 "reopened store serves identical bytes without "
                 "re-simulating (%zu series, %llu cold samples, %zu "
                 "mismatched)",
                 series_names.size(),
                 static_cast<unsigned long long>(cold_total), mismatched);
  }
  return ok;
}

// --- Bounded-RSS demo (--rss-demo) ----------------------------------------

struct RssArm {
  double rss_start_mb = 0.0;
  double rss_final_mb = 0.0;
  double rss_peak_mb = 0.0;
  std::vector<double> rss_day_mb;  // VmRSS at each simulated day boundary.
  double wall_s = 0.0;
  double steps_per_sec = 0.0;
  uint64_t events = 0;
  uint64_t jobs_completed = 0;
  uint64_t spilled = 0;
  uint64_t segments = 0;

  double growth_mb() const { return rss_final_mb - rss_start_mb; }
};

// One hyperscale multi-day closed loop with per-server telemetry recorded
// (the configuration whose RAM-only footprint actually grows), VmRSS sampled
// at every simulated day boundary via a self-rescheduling sim event. The
// sampler reads /proc and schedules one event per day — it never touches
// simulation state, so both arms' results stay bit-identical.
RssArm RunRssArm(double days, const std::string& store_dir,
                 size_t hot_budget) {
  const TopologySpec spec{"hyperscale", 16, 10, days * 24.0};
  ExperimentConfig config = MakeClosedLoopConfig(spec, days * 24.0);
  config.monitor.record_servers = true;
  if (!store_dir.empty()) {
    config.storage.store_dir = store_dir;
    config.storage.hot_budget_samples = hot_budget;
  }
  ControlledExperiment experiment(config);

  RssArm arm;
  arm.rss_start_mb = ReadVmRssMb();
  arm.rss_peak_mb = arm.rss_start_mb;
  Simulation& sim = experiment.sim();
  // Offset half a minute past the day boundary so the sampler never shares a
  // timestamp with the minute-aligned monitor/controller events.
  std::function<void()> sample_day = [&] {
    const double rss = ReadVmRssMb();
    arm.rss_day_mb.push_back(rss);
    arm.rss_peak_mb = std::max(arm.rss_peak_mb, rss);
    std::printf("    day %2zu: %8.1f MB RSS\n", arm.rss_day_mb.size(), rss);
    sim.ScheduleAfter(SimTime::Hours(24), sample_day);
  };
  sim.ScheduleAfter(SimTime::Hours(24) + SimTime::Minutes(0.5), sample_day);

  const double start = NowSeconds();
  ExperimentResult result = experiment.Run();
  arm.wall_s = NowSeconds() - start;
  arm.events = experiment.sim().processed_events();
  arm.steps_per_sec = static_cast<double>(arm.events) / arm.wall_s;
  arm.rss_final_mb = ReadVmRssMb();
  arm.rss_peak_mb = std::max(arm.rss_peak_mb, arm.rss_final_mb);
  arm.jobs_completed = result.jobs_completed;
  arm.spilled = result.cold_samples_spilled;
  arm.segments = result.cold_segments;
  return arm;
}

void AppendRssArmJson(std::ostringstream& out, const char* key,
                      const RssArm& arm, bool last) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "    \"%s\": {\"steps_per_sec\": %.0f, \"wall_s\": %.1f, "
                "\"rss_start_mb\": %.1f, \"rss_final_mb\": %.1f, "
                "\"rss_peak_mb\": %.1f, \"rss_growth_mb\": %.1f,\n",
                key, arm.steps_per_sec, arm.wall_s, arm.rss_start_mb,
                arm.rss_final_mb, arm.rss_peak_mb, arm.growth_mb());
  out << buffer;
  std::snprintf(buffer, sizeof(buffer),
                "      \"samples_spilled\": %llu, \"cold_segments\": %llu, "
                "\"rss_day_mb\": [",
                static_cast<unsigned long long>(arm.spilled),
                static_cast<unsigned long long>(arm.segments));
  out << buffer;
  for (size_t i = 0; i < arm.rss_day_mb.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%s%.1f", i == 0 ? "" : ", ",
                  arm.rss_day_mb[i]);
    out << buffer;
  }
  out << "]}" << (last ? "\n" : ",\n");
}

// Runs the spill arm first (small footprint), then the RAM-only arm, and
// renders the "storage_demo" JSON block. Returns false when an acceptance
// gate (identical results, steps/s within 10%, spill growth well under the
// RAM growth) fails.
bool RunRssDemo(const std::string& store_dir, double days,
                std::string* extra_json) {
  std::printf("\n--- bounded-RSS demo: hyperscale, %.0f days, per-server "
              "telemetry ---\n", days);
  constexpr size_t kHotBudget = 1024;
  std::printf("  spill arm (hot budget %zu samples/series -> %s):\n",
              kHotBudget, store_dir.c_str());
  const RssArm spill = RunRssArm(days, store_dir, kHotBudget);
  std::printf("  RAM-only arm:\n");
  const RssArm ram = RunRssArm(days, "", 0);

  std::printf("  spill: %8.0f steps/s, RSS %7.1f -> %7.1f MB (peak %7.1f), "
              "%llu samples into %llu segments\n",
              spill.steps_per_sec, spill.rss_start_mb, spill.rss_final_mb,
              spill.rss_peak_mb,
              static_cast<unsigned long long>(spill.spilled),
              static_cast<unsigned long long>(spill.segments));
  std::printf("  ram:   %8.0f steps/s, RSS %7.1f -> %7.1f MB (peak %7.1f)\n",
              ram.steps_per_sec, ram.rss_start_mb, ram.rss_final_mb,
              ram.rss_peak_mb);

  bool ok = true;
  StorageCheck(spill.events == ram.events &&
                   spill.jobs_completed == ram.jobs_completed,
               &ok,
               "both arms simulated identical runs (%llu events, %llu jobs)",
               static_cast<unsigned long long>(ram.events),
               static_cast<unsigned long long>(ram.jobs_completed));
  const double ratio = spill.steps_per_sec / ram.steps_per_sec;
  StorageCheck(ratio >= 0.90, &ok,
               "spill throughput within 10%% of RAM-only (%.2fx)", ratio);
  StorageCheck(spill.spilled > 0, &ok,
               "the spill arm actually spilled (%llu samples)",
               static_cast<unsigned long long>(spill.spilled));
  // The plateau gate: if RSS is measurable, the spill arm's growth must stay
  // well under the RAM arm's (the hot tier is bounded; only the active
  // segments and allocator slack grow).
  if (ram.rss_final_mb > 0.0) {
    StorageCheck(spill.growth_mb() < 0.5 * ram.growth_mb(), &ok,
                 "spill RSS growth %.1f MB vs RAM-only %.1f MB "
                 "(plateau vs grow)",
                 spill.growth_mb(), ram.growth_mb());
  }

  std::ostringstream out;
  out << "  \"storage_demo\": {\n";
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "    \"days\": %.0f, \"servers\": 6720, "
                "\"record_servers\": true, \"hot_budget_samples\": %zu,\n",
                days, kHotBudget);
  out << buffer;
  AppendRssArmJson(out, "hyperscale_spill", spill, false);
  AppendRssArmJson(out, "hyperscale_ram", ram, true);
  out << "  }";
  *extra_json = out.str();
  return ok;
}

int Main(int argc, char** argv) {
  std::string json_path;
  std::string check_path;
  std::string trajectory_path;
  std::string store_dir;
  bool storage_only = false;
  bool rss_demo = false;
  double rss_days = 7.0;
  bool quick = false;
  bool huge = false;
  int jobs_flag = 0;  // 0 = auto (hardware_concurrency).
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(8);
    } else if (arg.rfind("--trajectory=", 0) == 0) {
      trajectory_path = arg.substr(13);
    } else if (arg.rfind("--store-dir=", 0) == 0) {
      store_dir = arg.substr(12);
    } else if (arg == "--storage-only") {
      storage_only = true;
    } else if (arg == "--rss-demo") {
      rss_demo = true;
    } else if (arg.rfind("--rss-days=", 0) == 0) {
      rss_days = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs_flag = std::atoi(arg.c_str() + 7);
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--huge") {
      huge = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if ((storage_only || rss_demo) && store_dir.empty()) {
    std::fprintf(stderr,
                 "--storage-only / --rss-demo need --store-dir=DIR\n");
    return 2;
  }

  if (rss_demo) {
    // Demo mode replaces the tiers: the multi-day arms are the whole run.
    std::string extra_json;
    const bool demo_ok =
        RunRssDemo(store_dir + "/rss_demo", rss_days, &extra_json);
    const std::string json = ToJson({}, extra_json);
    if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
      out << json;
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("%s", json.c_str());
    }
    std::printf("STORAGE DEMO [%s]\n", demo_ok ? "PASS" : "FAIL");
    return demo_ok ? 0 : 1;
  }
  if (!store_dir.empty()) {
    if (!RunStorageSection(store_dir + "/identity")) {
      std::printf("STORAGE CHECK [FAIL] overall\n");
      return 1;
    }
    if (storage_only) {
      return 0;
    }
  }

  std::vector<TopologySpec> specs = {
      {"small", 1, 2, 96.0},
      {"paper", 1, 10, 72.0},
      {"fleet4x", 4, 10, 24.0},
      {"hyperscale", 16, 10, 8.0},
  };
  if (huge) {
    specs.push_back({"huge", 64, 10, 2.0});
  }

  // Parallel sweep lane count: explicit --jobs wins; otherwise the host's
  // hardware threads. <= 1 (the 1-core CI container) disables the sweep —
  // speedups are unmeasurable there, and the serial numbers are the
  // baseline-checked contract anyway.
  const int max_jobs =
      jobs_flag > 0 ? jobs_flag
                    : static_cast<int>(std::thread::hardware_concurrency());

  std::printf("perf_closed_loop: hot-path throughput (seed=%llu%s%s)\n",
              static_cast<unsigned long long>(kSeed),
              quick ? ", quick" : "", max_jobs >= 2 ? ", parallel sweep" : "");
  std::vector<TopologyResult> results;
  for (const TopologySpec& spec : specs) {
    TopologyResult r;
    r.name = spec.name;
    r.servers = spec.rows * spec.racks_per_row * 42;
    const double hours =
        quick ? spec.closed_loop_hours / 4.0 : spec.closed_loop_hours;
    r.closed_loop = RunClosedLoop(spec, hours);
    r.sample = RunSamplePhase(spec);
    r.resummate_ns = RunResummatePhase(spec);
    r.events = RunEventPhase();
    if (std::strcmp(spec.name, "paper") == 0) {
      r.tick_ns = RunTickPhase(spec);
    }
    r.rss_mb = ReadVmRssMb();
    std::printf(
        "  [%10s] %5d servers | closed loop %5.2f sim-h in %6.2fs "
        "(%8.0f steps/s, %6.1f sim-min/s) | sample %9.0f samples/s "
        "(%6.0f ns/pass, %.3f allocs/pass) | resummate %6.0f ns | "
        "events %5.1f ns (%.3f allocs) | rss %.0f MB%s\n",
        spec.name, r.servers, r.closed_loop.sim_hours, r.closed_loop.wall_s,
        r.closed_loop.steps_per_sec, r.closed_loop.sim_minutes_per_sec,
        r.sample.samples_per_sec, r.sample.ns_per_pass,
        r.sample.allocs_per_pass, r.resummate_ns, r.events.ns_per_event,
        r.events.allocs_per_event, r.rss_mb, r.tick_ns > 0.0 ? " | tick" : "");
    if (r.tick_ns > 0.0) {
      std::printf("  [%10s] controller tick: %.0f ns\n", spec.name,
                  r.tick_ns);
    }
    if (std::strcmp(spec.name, "hyperscale") == 0 && max_jobs >= 2) {
      // Thread-scaling sweep on the largest default tier: sample pass at
      // 2/4/8 lanes (clamped to max_jobs), closed loop at the top value.
      std::vector<int> sweep;
      for (int j : {2, 4, 8}) {
        if (j <= max_jobs) {
          sweep.push_back(j);
        }
      }
      if (sweep.empty() || sweep.back() != max_jobs) {
        sweep.push_back(std::min(max_jobs, 16));
      }
      for (int j : sweep) {
        SampleStats s = RunSamplePhase(spec, j);
        std::printf("  [%10s] sample x%d jobs: %6.0f ns/pass (%.2fx, "
                    "%.3f allocs/pass)\n",
                    spec.name, j, s.ns_per_pass,
                    r.sample.ns_per_pass / s.ns_per_pass, s.allocs_per_pass);
        r.sample_sweep.emplace_back(j, s);
      }
      r.parallel_jobs = sweep.back();
      r.closed_loop_parallel =
          RunClosedLoop(spec, hours, r.parallel_jobs);
      std::printf("  [%10s] closed loop x%d jobs: %8.0f steps/s (%.2fx)\n",
                  spec.name, r.parallel_jobs,
                  r.closed_loop_parallel.steps_per_sec,
                  r.closed_loop_parallel.steps_per_sec /
                      r.closed_loop.steps_per_sec);
    }
    results.push_back(std::move(r));
  }

  const std::string json = ToJson(results);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    out << json;
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("%s", json.c_str());
  }

  if (!trajectory_path.empty()) {
    AppendTrajectory(trajectory_path, results);
  }

  if (!check_path.empty()) {
    std::printf("checking against baseline %s\n", check_path.c_str());
    if (!CheckAgainstBaseline(check_path, results)) {
      std::printf("PERF CHECK [FAIL]\n");
      return 1;
    }
    std::printf("PERF CHECK [PASS]\n");
  }
  return 0;
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) { return ampere::Main(argc, argv); }
