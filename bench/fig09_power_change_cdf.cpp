// Figure 9: CDF of row power changes at 1/5/20/60-minute scales, using the
// paper's method: for scale k, take the max power in each k-minute window
// and difference the resulting sequence. All changes are normalized to the
// provisioned power budget.
//
// Paper's shape: at the 1-minute scale 99 % of changes lie within ±2.5 %,
// but the tail reaches ~10 %; longer scales spread progressively wider.

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/fleet.h"
#include "src/stats/percentile.h"
#include "src/stats/timeseries_ops.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160409;

void Main() {
  bench::Header("Figure 9",
                "CDF of power changes at 1/5/20/60-minute scales", kSeed);

  FleetConfig config;
  config.seed = kSeed;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 10;
  config.topology.servers_per_rack = 42;
  // Bursty arrivals generate the rare multi-percent one-minute jumps the
  // paper's Fig. 9 tail shows.
  config.products = {{0.80, 15.0, 0.25, 0.03, 0.015, 2.2}};
  Fleet fleet(config);
  // Several days so the 60-minute sequence has enough points.
  fleet.Run(SimTime::Hours(2 + 24 * 4));

  double budget = fleet.dc().row_budget_watts(RowId(0));
  std::vector<double> per_minute;
  for (const auto& p : fleet.db().QueryView(PowerMonitor::RowSeries(RowId(0)),
                                        SimTime::Hours(2),
                                        SimTime::Hours(2 + 24 * 4))) {
    per_minute.push_back(p.value / budget);
  }

  const int scales[] = {1, 5, 20, 60};
  std::vector<EmpiricalCdf> cdfs;
  for (int k : scales) {
    cdfs.emplace_back(ScaledPowerChanges(per_minute, k));
  }

  bench::Section("CDF series (normalized change -> cumulative fraction)");
  std::printf("%10s %10s %10s %10s %10s\n", "change", "1-min", "5-min",
              "20-min", "60-min");
  for (double x = -0.10; x <= 0.1001; x += 0.01) {
    std::printf("%10.2f", x);
    for (const auto& cdf : cdfs) {
      std::printf(" %10.4f", cdf.Evaluate(x));
    }
    std::printf("\n");
  }

  bench::Section("spread per scale");
  std::printf("%8s %12s %12s\n", "scale", "p0.5..p99.5", "within ±2.5%");
  std::vector<double> spreads;
  for (size_t i = 0; i < cdfs.size(); ++i) {
    double spread = cdfs[i].Quantile(0.995) - cdfs[i].Quantile(0.005);
    double inside = cdfs[i].Evaluate(0.025) - cdfs[i].Evaluate(-0.025);
    spreads.push_back(spread);
    std::printf("%7dm %12.4f %12.3f\n", scales[i], spread, inside);
  }

  bench::Section("shape checks vs. paper");
  double inside_1min = cdfs[0].Evaluate(0.025) - cdfs[0].Evaluate(-0.025);
  bench::ShapeCheck(inside_1min > 0.97,
                    "1-minute changes within ±2.5% ~99% of the time");
  bench::ShapeCheck(spreads[0] < spreads[1] && spreads[1] < spreads[3],
                    "longer scales spread wider");
  double extreme = std::max(std::abs(cdfs[0].min()), cdfs[0].max());
  bench::ShapeCheck(extreme > 0.02,
                    "rare 1-minute changes of several percent exist");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
