// The deployment headline (§1, §6): "we can add 17 % more servers into the
// fleet and get a 15 % improvement in the effective computation capacity
// comparing to the provisioning based on rated power without any violation."
//
// Two fleets under the SAME total power budget and the SAME memory-heavy
// demand stream (memory binds before CPU, so servers run at ~60 % power —
// the structural reason rated provisioning strands budget):
//   * baseline  — N servers, rated provisioning (power can never violate);
//   * ampere    — 1.17 N servers against the same budget, Ampere guarding.
// Demand exceeds the baseline fleet's capacity (jobs queue, §2.2: "there
// are often jobs waiting in the scheduler queue"), so completed throughput
// measures effective capacity. Expected shape: ~15-17 % more jobs complete
// per provisioned watt on the over-provisioned fleet, with essentially no
// budget violations.

#include <vector>

#include "bench/bench_common.h"
#include "src/core/controller.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160430;
constexpr int kBaselineServers = 360;
constexpr int kAmpereServers = 420;  // +16.7 %.
constexpr double kBudgetWatts = kBaselineServers * 250.0;

// Memory-heavy mix: ~7.9 GB per core, so a 16-core/64-GB server fills its
// memory at ~51 % CPU — drawing only ~83 % of rated power. This is the
// structural slack (memory-bound fleets cannot reach their power limit)
// that over-provisioning converts into capacity.
std::vector<DemandProfile> MemoryHeavyMix() {
  return {{Resources{1.0, 12.0}, 0.5},
          {Resources{2.0, 16.0}, 0.35},
          {Resources{4.0, 22.0}, 0.15}};
}

struct FleetResult {
  uint64_t completed = 0;
  int violations = 0;
  double mean_power_norm = 0.0;
  double u_mean = 0.0;
  size_t final_queue = 0;
};

FleetResult RunFleet(int servers, bool with_ampere, double rate_per_min) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 1;
  topo.racks_per_row = servers / 30;
  topo.servers_per_rack = 30;
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  std::vector<ServerId> all;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    all.push_back(ServerId(s));
  }
  monitor.RegisterGroup("fleet", all);

  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = rate_per_min;
  params.arrivals.diurnal_amplitude = 0.05;
  params.demands = MemoryHeavyMix();
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  std::unique_ptr<AmpereController> controller;
  if (with_ampere) {
    AmpereControllerConfig config;
    config.effect = FreezeEffectModel(0.013);
    config.et = EtEstimator::Constant(0.02);
    controller = std::make_unique<AmpereController>(&scheduler, &monitor,
                                                    config);
    controller->AddDomain({"fleet", all, kBudgetWatts});
    controller->Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  }

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));

  struct Acc {
    uint64_t completed_at_start = 0;
    int violations = 0;
    double power_sum = 0.0;
    double u_sum = 0.0;
    int samples = 0;
  };
  Acc acc;
  sim.ScheduleAt(SimTime::Hours(3), [&] {
    acc.completed_at_start = scheduler.jobs_completed();
  });
  sim.SchedulePeriodic(
      SimTime::Hours(3) + SimTime::Seconds(2), SimTime::Minutes(1),
      [&](SimTime) {
        ++acc.samples;
        double watts = monitor.LatestGroupWatts("fleet");
        acc.power_sum += watts;
        if (watts > kBudgetWatts) {
          ++acc.violations;
        }
        if (controller != nullptr) {
          acc.u_sum += controller->freeze_ratio(0);
        }
      });
  sim.RunUntil(SimTime::Hours(3 + 24));

  FleetResult result;
  result.completed = scheduler.jobs_completed() - acc.completed_at_start;
  result.violations = acc.violations;
  result.mean_power_norm = acc.power_sum / acc.samples / kBudgetWatts;
  result.u_mean = acc.u_sum / acc.samples;
  result.final_queue = scheduler.queue_length();
  return result;
}

void Main() {
  bench::Header("Deployment headline",
                "+17% servers under the same budget -> throughput gain",
                kSeed);

  // Demand: ~1.25x the baseline fleet's memory-bound capacity, so both
  // fleets are saturated and completions measure effective capacity.
  // Baseline capacity: 360 servers * (64 GB / ~14.9 GB-per-job) jobs
  // ~ 1550 concurrent jobs / 9.1 min ~ 170 jobs/min.
  const double rate = 210.0;
  std::printf("budget %.0f W for both fleets; %d vs %d servers; "
              "memory-heavy mix at %.0f jobs/min (both saturated)\n",
              kBudgetWatts, kBaselineServers, kAmpereServers, rate);

  FleetResult baseline = RunFleet(kBaselineServers, /*with_ampere=*/false,
                                  rate);
  FleetResult over = RunFleet(kAmpereServers, /*with_ampere=*/true, rate);

  bench::Section("24 h saturated throughput under the same budget");
  std::printf("%12s %12s %12s %12s %10s %10s\n", "fleet", "completed",
              "violations", "power/budg", "u_mean", "queue");
  std::printf("%12s %12llu %12d %12.3f %10.3f %10zu\n", "baseline",
              static_cast<unsigned long long>(baseline.completed),
              baseline.violations, baseline.mean_power_norm, 0.0,
              baseline.final_queue);
  std::printf("%12s %12llu %12d %12.3f %10.3f %10zu\n", "ampere+17%",
              static_cast<unsigned long long>(over.completed),
              over.violations, over.mean_power_norm, over.u_mean,
              over.final_queue);

  double gain = static_cast<double>(over.completed) /
                    static_cast<double>(baseline.completed) -
                1.0;
  std::printf("\neffective capacity gain at the same provisioned power: "
              "%+.1f%%  (paper: +15%% from +17%% servers)\n", 100.0 * gain);

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(gain > 0.10 && gain < 0.20,
                    "+17% servers yield ~15% more throughput per "
                    "provisioned watt");
  bench::ShapeCheck(over.violations <= 3,
                    "essentially no power violations (paper: none)");
  bench::ShapeCheck(baseline.mean_power_norm < 0.95,
                    "rated provisioning strands budget (the memory-bound "
                    "fleet cannot reach its power limit)");
  bench::ShapeCheck(over.mean_power_norm > baseline.mean_power_norm,
                    "over-provisioning raises budget utilization");
  bench::ShapeCheck(baseline.final_queue > 0 && over.final_queue > 0,
                    "both fleets are demand-saturated (queues non-empty)");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
