// Figure 5: the effect of the freezing ratio u on the one-minute power
// change f(u), measured with the controlled experiment (parity-split groups)
// and summarized by the 25th/50th/75th percentile per u level. The paper
// fits a linear model f(u) = kr * u to these samples; the fitted slope is
// the controller's kr.

#include <vector>

#include "bench/bench_common.h"
#include "src/control/freeze_effect.h"
#include "src/stats/regression.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160405;

void Main() {
  bench::Header("Figure 5", "f(u) percentiles vs freezing ratio + linear fit",
                kSeed);

  ExperimentConfig config =
      bench::PaperExperimentConfig(kSeed, /*target_power=*/0.97,
                                   /*ro=*/0.25);
  config.enable_ampere = false;
  config.warmup = SimTime::Hours(1);
  ControlledExperiment experiment(config);
  std::vector<double> levels{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  std::printf("48 h calibration; cycle = [freeze top u*n for 5 min, sample] "
              "-> [25 min rest] across u in {0..0.6}\n");
  auto samples = experiment.RunFuCalibration(levels, SimTime::Minutes(5),
                                             SimTime::Minutes(25),
                                             SimTime::Hours(48));
  std::printf("collected %zu (u, f) samples\n", samples.size());

  std::vector<double> u;
  std::vector<double> f;
  for (const FuSample& s : samples) {
    u.push_back(s.u);
    f.push_back(s.delta_power);
  }
  std::vector<double> qs{0.25, 0.5, 0.75};
  auto buckets = QuantilesByBucket(u, f, 7, qs);

  bench::Section("f(u) percentiles per freezing-ratio bucket");
  std::printf("%10s %8s %10s %10s %10s\n", "u_center", "n", "p25", "p50",
              "p75");
  for (const auto& b : buckets) {
    std::printf("%10.3f %8zu %10.4f %10.4f %10.4f\n", b.x_center, b.count,
                b.quantiles[0], b.quantiles[1], b.quantiles[2]);
  }

  FreezeEffectModel model = FreezeEffectModel::Fit(samples);
  bench::Section("linear fit (paper: f(u) = kr * u)");
  std::printf("kr = %.4f per minute (normalized to budget), R^2 = %.3f\n",
              model.kr(), model.fit_r_squared());

  bench::Section("shape checks vs. paper");
  bench::ShapeCheck(model.kr() > 0.0, "freezing reduces power (kr > 0)");
  // Medians increase with u.
  bool increasing = true;
  for (size_t i = 1; i < buckets.size(); ++i) {
    if (buckets[i].quantiles[1] < buckets[i - 1].quantiles[1] - 0.01) {
      increasing = false;
    }
  }
  bench::ShapeCheck(increasing, "median f(u) increases with u");
  // u = 0 buckets center on zero (no phantom effect).
  bench::ShapeCheck(buckets.front().quantiles[1] < 0.005 &&
                        buckets.front().quantiles[1] > -0.005,
                    "f(0) is centered at zero");
  // The spread (p75-p25) is substantial relative to the median — the
  // statistical control operates under high variance, which is why the
  // paper pairs the linear model with RHC error correction.
  const auto& top = buckets.back();
  bench::ShapeCheck(top.quantiles[2] - top.quantiles[0] > 0.2 * top.quantiles[1],
                    "per-sample effect is noisy (RHC is needed)");
}

}  // namespace
}  // namespace ampere

int main() {
  ampere::Main();
  return 0;
}
