// Baseline: power-aware scheduling integrated into the scheduler (§3.1,
// §5.2).
//
// "One straightforward design would be making the scheduler power
// distribution aware. However it is not practical mainly due to the
// complexity of incorporating the information into different scheduling
// policies." This bench implements that rejected design (the
// kPowerAwareSpread placement policy: prefer the coldest row, refuse rows
// above a safety ceiling) and compares it with Ampere's loose coupling on
// the same over-provisioned fleet:
//   * no-control       — violations happen freely (the reference);
//   * power-aware sched — protection from inside the scheduler;
//   * Ampere            — the same protection from OUTSIDE, via two APIs.
// Expected shape: both mechanisms eliminate most violations with similar
// throughput — quantitative support for the paper's claim that the simple
// freeze/unfreeze interface gives up essentially nothing.
//
// The three arms are independent day-long simulations and run in parallel
// through the scenario harness.

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/controller.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160502;
constexpr int kRows = 4;
constexpr int kServersPerRow = 60;
constexpr double kRo = 0.17;

enum class Arm { kNoControl, kPowerAwareScheduler, kAmpere };

struct ArmResult {
  int violations = 0;
  uint64_t completed = 0;
  double p_max = 0.0;
};

ArmResult RunArm(Arm arm) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = kRows;
  topo.racks_per_row = 4;
  topo.servers_per_rack = kServersPerRow / 4;
  double row_budget = kServersPerRow * 250.0 / (1.0 + kRo);
  topo.row_budget_watts = row_budget;  // Scaled budgets per Eq. (16).
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;

  SchedulerConfig sched_config;
  if (arm == Arm::kPowerAwareScheduler) {
    sched_config.policy = PlacementPolicy::kPowerAwareSpread;
    sched_config.concentrate_power_ceiling = 0.97;
  }
  Scheduler scheduler(&dc, sched_config, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  for (int32_t r = 0; r < kRows; ++r) {
    monitor.RegisterGroup("row" + std::to_string(r),
                          {dc.servers_in_row(RowId(r)).begin(),
                           dc.servers_in_row(RowId(r)).end()});
  }

  // Heterogeneous demand — the precondition for ANY cross-row mechanism:
  // four row-pinned "products" at staggered levels plus a large flexible
  // stream that the mechanism can steer. Uncontrolled, the flexible share
  // spreads uniformly and pushes the hottest row over its budget.
  JobIdAllocator ids;
  std::vector<std::unique_ptr<BatchWorkload>> workloads;
  const double kAffineRates[kRows] = {17.9, 12.3, 6.6, 1.6};
  for (int32_t r = 0; r < kRows; ++r) {
    BatchWorkloadParams params;
    params.arrivals.base_rate_per_min = kAffineRates[r];
    params.arrivals.ar_sigma = 0.015;
    params.row_affinity = RowId(r);
    workloads.push_back(std::make_unique<BatchWorkload>(
        params, &sim, &scheduler, &ids, rng.Fork(10 + static_cast<uint64_t>(r))));
  }
  BatchWorkloadParams flexible;
  flexible.arrivals.base_rate_per_min = 60.0;
  flexible.arrivals.ar_sigma = 0.015;
  workloads.push_back(std::make_unique<BatchWorkload>(
      flexible, &sim, &scheduler, &ids, rng.Fork(20)));

  std::unique_ptr<AmpereController> controller;
  if (arm == Arm::kAmpere) {
    AmpereControllerConfig config;
    config.effect = FreezeEffectModel(0.013);
    config.et = EtEstimator::Constant(0.02);
    controller = std::make_unique<AmpereController>(&scheduler, &monitor,
                                                    config);
    for (int32_t r = 0; r < kRows; ++r) {
      controller->AddDomain({"row" + std::to_string(r),
                             {dc.servers_in_row(RowId(r)).begin(),
                              dc.servers_in_row(RowId(r)).end()},
                             row_budget});
    }
    controller->Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  }

  for (auto& workload : workloads) {
    workload->Start(SimTime());
  }
  monitor.Start(SimTime::Minutes(1));

  struct Acc {
    int violations = 0;
    double p_max = 0.0;
    uint64_t completed_at_start = 0;
  };
  Acc acc;
  sim.ScheduleAt(SimTime::Hours(2), [&] {
    acc.completed_at_start = scheduler.jobs_completed();
  });
  sim.SchedulePeriodic(
      SimTime::Hours(2) + SimTime::Seconds(2), SimTime::Minutes(1),
      [&](SimTime) {
        for (int32_t r = 0; r < kRows; ++r) {
          double watts = monitor.LatestGroupWatts("row" + std::to_string(r));
          double p = watts / row_budget;
          acc.p_max = std::max(acc.p_max, p);
          if (p > 1.0) {
            ++acc.violations;
          }
        }
      });
  sim.RunUntil(SimTime::Hours(2 + 24));

  ArmResult result;
  result.violations = acc.violations;
  result.completed = scheduler.jobs_completed() - acc.completed_at_start;
  result.p_max = acc.p_max;
  return result;
}

void Main(const harness::HarnessArgs& args) {
  bench::Header("Baseline: power-aware scheduler vs Ampere (§5.2)",
                "the same protection from inside vs outside the scheduler",
                kSeed);

  struct ArmSpec {
    const char* name;
    Arm arm;
  };
  const std::vector<ArmSpec> arms = {
      {"no-control", Arm::kNoControl},
      {"power-aware-sched", Arm::kPowerAwareScheduler},
      {"ampere", Arm::kAmpere},
  };
  auto grid = bench::RunGrid(
      args, arms,
      [](const ArmSpec& spec, size_t) {
        return harness::GridMeta{spec.name, kSeed};
      },
      [](const ArmSpec& spec, harness::RunContext& context) {
        ArmResult r = RunArm(spec.arm);
        context.Metric("violations", r.violations);
        context.Metric("completed", static_cast<double>(r.completed));
        context.Metric("P_max", r.p_max);
        return r;
      });

  bench::Section("24 h, 4 rows x 60 servers at rO=0.17, flexible stream steerable");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const ArmResult& none = grid.values[0];
  const ArmResult& aware = grid.values[1];
  const ArmResult& ampere = grid.values[2];

  bench::Section("shape checks (the loose-coupling claim)");
  bench::ShapeCheck(none.violations > 100,
                    "without any mechanism, the over-provisioned fleet "
                    "violates routinely");
  bench::ShapeCheck(aware.violations < none.violations / 3,
                    "integrating power into the scheduler works...");
  bench::ShapeCheck(ampere.violations < none.violations / 3,
                    "...and Ampere protects comparably from outside");
  double thru_ratio = static_cast<double>(ampere.completed) /
                      static_cast<double>(aware.completed);
  bench::ShapeCheck(thru_ratio > 0.97 && thru_ratio < 1.03,
                    "the two mechanisms cost about the same throughput — "
                    "the simple freeze/unfreeze interface gives up nothing");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
