// Shared setup and printing helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper. Benches
// print self-describing text: a header naming the paper artifact, the
// configuration (including the RNG seed for bit-exact reruns), the series or
// rows, and a SHAPE CHECK paragraph stating which qualitative property of
// the paper's result should hold.

// Grid-shaped benches (sweeps, ablations, A/B arms) run their independent
// day-long simulations in PARALLEL through the scenario harness
// (src/harness): bench::RunGrid fans the runs out over a work-stealing
// pool (hardware_concurrency workers; --jobs=N or AMPERE_JOBS override),
// captures per-run detail into result rows instead of interleaved stdout,
// and returns both the typed results (for shape checks) and a ResultTable
// (for --csv / --json emission). Results are bit-identical to a serial
// run: every scenario owns its Simulation and RNG streams.
//
// Observability: every bench also accepts `--log-level=debug|info|warning|
// error|off` (or the AMPERE_LOG_LEVEL environment variable; the flag wins)
// to reach the controller's kDebug decision lines without recompiling, and
// `--obs` to capture a per-run obs section — metrics snapshot, span
// profile, journal summary gauges — into the --json output. Both are
// handled by harness::ParseHarnessArgs; see docs/observability.md.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/experiment.h"
#include "src/harness/grid.h"
#include "src/harness/runner.h"

namespace ampere {
namespace bench {

// The paper's controlled-experiment row: 400+ homogeneous servers (§4.1.1).
inline TopologyConfig PaperRowTopology() {
  TopologyConfig config;
  config.num_rows = 1;
  config.racks_per_row = 10;
  config.servers_per_rack = 42;  // 420 servers.
  config.server_capacity = Resources{16.0, 64.0};
  config.power_model.rated_watts = 250.0;
  config.power_model.idle_fraction = 0.65;
  return config;
}

// Baseline experiment configuration used by the §4 benches; individual
// benches override the workload level and rO.
inline ExperimentConfig PaperExperimentConfig(uint64_t seed,
                                              double target_power,
                                              double ro) {
  ExperimentConfig config;
  config.seed = seed;
  config.topology = PaperRowTopology();
  config.over_provision_ratio = ro;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, target_power, ro);
  config.warmup = SimTime::Hours(2);
  config.duration = SimTime::Hours(24);
  return config;
}

// Runs the Fig. 5 calibration procedure on a fresh harness and returns the
// fitted effect model. This is the kr every closed-loop bench deploys, so
// the pipeline mirrors production: measure f(u), fit, control. Silent by
// default so it can run inside parallel grid scenarios; callers report the
// fit through their RunContext (or printf it themselves when serial).
inline FreezeEffectModel CalibrateEffectModel(uint64_t seed,
                                              double target_power,
                                              double ro,
                                              bool verbose = false) {
  ExperimentConfig config = PaperExperimentConfig(seed, target_power, ro);
  config.enable_ampere = false;
  config.warmup = SimTime::Hours(1);
  ControlledExperiment calibration(config);
  std::vector<double> levels{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  auto samples = calibration.RunFuCalibration(levels, SimTime::Minutes(5),
                                              SimTime::Minutes(25),
                                              SimTime::Hours(24));
  FreezeEffectModel model = FreezeEffectModel::Fit(samples);
  if (verbose) {
    std::printf("calibration: fitted f(u) = %.4f * u  (R^2 = %.3f, n = %zu)\n",
                model.kr(), model.fit_r_squared(), samples.size());
  }
  return model;
}

inline void Header(const std::string& artifact, const std::string& title,
                   uint64_t seed) {
  std::printf("=================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), title.c_str());
  std::printf("(Ampere reproduction; seed=%llu)\n",
              static_cast<unsigned long long>(seed));
  std::printf("=================================================================\n");
}

inline void Section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

// Copies the harness --trace / --postmortem-dir destinations into one run's
// ExperimentConfig::obs, turning the flight recorder on for that run. The
// trace path is run-suffixed (ArtifactPathForRun) so parallel grids never
// clobber one file; `run_label` names the run inside the artifacts. No-op
// when neither flag was given, keeping flag-free output byte-identical.
inline void ApplyObsArgs(ExperimentConfig& config,
                         const harness::HarnessArgs& args,
                         const std::string& run_label, size_t run_index,
                         size_t total_runs) {
  if (args.trace_path.empty() && args.postmortem_dir.empty()) {
    return;
  }
  config.obs.flight_recorder = true;
  config.obs.run_label = run_label;
  if (!args.trace_path.empty()) {
    config.obs.trace_path =
        harness::ArtifactPathForRun(args.trace_path, run_index, total_runs);
  }
  config.obs.postmortem_dir = args.postmortem_dir;
}

// Copies the harness --budget-schedule spec into one run's
// ExperimentConfig::budget_schedule. No-op when the flag was absent (the
// schedule stays constant and adds no simulation events); a malformed spec
// aborts the bench up front with the parser's message.
inline void ApplyBudgetScheduleArg(ExperimentConfig& config,
                                   const harness::HarnessArgs& args) {
  if (args.budget_schedule_spec.empty()) {
    return;
  }
  std::string error;
  BudgetSchedule schedule;
  AMPERE_CHECK(
      ParseBudgetSchedule(args.budget_schedule_spec, &schedule, &error))
      << "--budget-schedule: " << error;
  config.budget_schedule = schedule;
}

// Copies the harness --replay / --record workload-trace destinations into
// one run's ExperimentConfig::trace, plus the --budget-schedule spec. The
// record path is run-suffixed (ArtifactPathForRun) so parallel grids never
// clobber one file. No-op when none of the flags were given, keeping
// flag-free output byte-identical.
inline void ApplyTraceArgs(ExperimentConfig& config,
                           const harness::HarnessArgs& args, size_t run_index,
                           size_t total_runs) {
  ApplyBudgetScheduleArg(config, args);
  if (!args.replay_trace_path.empty()) {
    config.trace.replay_path = args.replay_trace_path;
  }
  if (!args.record_trace_path.empty()) {
    config.trace.record = true;
    config.trace.record_path = harness::ArtifactPathForRun(
        args.record_trace_path, run_index, total_runs);
  }
}

// Copies the harness --store-dir / --hot-budget flags into one run's
// ExperimentConfig::storage, attaching the persistent telemetry cold tier
// for that run. The store directory is run-suffixed (ArtifactPathForRun) so
// parallel grids never share a store. No-op when --store-dir was absent,
// keeping flag-free output byte-identical (and RAM-only).
inline void ApplyStorageArgs(ExperimentConfig& config,
                             const harness::HarnessArgs& args,
                             size_t run_index, size_t total_runs) {
  if (args.store_dir.empty()) {
    return;
  }
  config.storage.store_dir =
      harness::ArtifactPathForRun(args.store_dir, run_index, total_runs);
  if (args.hot_budget_samples > 0) {
    config.storage.hot_budget_samples = args.hot_budget_samples;
  }
}

// Reports every artifact path a run wrote into its ResultRow.
inline void ReportArtifacts(harness::RunContext& context,
                            std::span<const std::string> artifacts) {
  for (const std::string& path : artifacts) {
    context.Artifact(path);
  }
}

// Prints (x, y) pairs as two columns.
inline void PrintXy(const std::string& x_label, const std::string& y_label,
                    std::span<const std::pair<double, double>> points) {
  std::printf("%14s %14s\n", x_label.c_str(), y_label.c_str());
  for (const auto& [x, y] : points) {
    std::printf("%14.4f %14.4f\n", x, y);
  }
}

// Prints a series as one row per `stride` samples.
inline void PrintSeries(const std::string& x_label,
                        const std::string& y_label,
                        std::span<const double> values, int stride = 1,
                        double x_scale = 1.0) {
  std::printf("%14s %14s\n", x_label.c_str(), y_label.c_str());
  for (size_t i = 0; i < values.size(); i += static_cast<size_t>(stride)) {
    std::printf("%14.2f %14.4f\n", static_cast<double>(i) * x_scale,
                values[i]);
  }
}

inline void ShapeCheck(bool ok, const std::string& claim) {
  std::printf("SHAPE CHECK [%s]: %s\n", ok ? "PASS" : "FAIL", claim.c_str());
}

// --- Parallel grid execution (the harness-backed sweep loop) ---

// Runs `fn(item, RunContext&) -> R` over every item in parallel and returns
// {table, values}. `meta(item, index)` names and seeds each run. Worker
// count comes from args.runner (--jobs / AMPERE_JOBS / hardware).
template <typename Items, typename MetaFn, typename Fn>
auto RunGrid(const harness::HarnessArgs& args, const Items& items,
             MetaFn&& meta, Fn&& fn) {
  return harness::RunGridOver(items, std::forward<MetaFn>(meta),
                              std::forward<Fn>(fn), args.runner);
}

// Prints the assembled table (submission order), then each run's captured
// notes, then honours --csv / --json. Returns false if any run failed.
inline bool EmitResults(const harness::ResultTable& table,
                        const harness::HarnessArgs& args) {
  std::printf("[harness] %zu runs, jobs=%d, total %.0f ms\n\n", table.size(),
              table.jobs(), table.total_wall_ms());
  std::printf("%s", table.ToText().c_str());
  bool all_ok = true;
  for (const harness::ResultRow& row : table.rows()) {
    if (!row.ok) {
      std::printf("RUN FAILED %s: %s\n", row.scenario.c_str(),
                  row.error.c_str());
      all_ok = false;
    }
  }
  if (args.print_notes) {
    for (const harness::ResultRow& row : table.rows()) {
      if (!row.notes.empty()) {
        std::printf("\n--- %s ---\n%s", row.scenario.c_str(),
                    row.notes.c_str());
      }
    }
  }
  if (!args.csv_path.empty()) {
    harness::WriteFile(args.csv_path, table.ToCsv());
    std::printf("wrote %s\n", args.csv_path.c_str());
  }
  if (!args.json_path.empty()) {
    harness::WriteFile(args.json_path, table.ToJson());
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return all_ok;
}

// printf-style append to a RunContext's notes. The format string is always
// a literal at the call sites; the template indirection hides that from the
// compiler's checker, hence the local diagnostic suppression.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
template <typename... Args>
void NoteF(harness::RunContext& context, const char* format, Args... args) {
  char buffer[1024];
  std::snprintf(buffer, sizeof(buffer), format, args...);
  context.Note(buffer);
}
#pragma GCC diagnostic pop

}  // namespace bench
}  // namespace ampere

#endif  // BENCH_BENCH_COMMON_H_
