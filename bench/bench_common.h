// Shared setup and printing helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper. Benches
// print self-describing text: a header naming the paper artifact, the
// configuration (including the RNG seed for bit-exact reruns), the series or
// rows, and a SHAPE CHECK paragraph stating which qualitative property of
// the paper's result should hold.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/core/experiment.h"

namespace ampere {
namespace bench {

// The paper's controlled-experiment row: 400+ homogeneous servers (§4.1.1).
inline TopologyConfig PaperRowTopology() {
  TopologyConfig config;
  config.num_rows = 1;
  config.racks_per_row = 10;
  config.servers_per_rack = 42;  // 420 servers.
  config.server_capacity = Resources{16.0, 64.0};
  config.power_model.rated_watts = 250.0;
  config.power_model.idle_fraction = 0.65;
  return config;
}

// Baseline experiment configuration used by the §4 benches; individual
// benches override the workload level and rO.
inline ExperimentConfig PaperExperimentConfig(uint64_t seed,
                                              double target_power,
                                              double ro) {
  ExperimentConfig config;
  config.seed = seed;
  config.topology = PaperRowTopology();
  config.over_provision_ratio = ro;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, target_power, ro);
  config.warmup = SimTime::Hours(2);
  config.duration = SimTime::Hours(24);
  return config;
}

// Runs the Fig. 5 calibration procedure on a fresh harness and returns the
// fitted effect model. This is the kr every closed-loop bench deploys, so
// the pipeline mirrors production: measure f(u), fit, control.
inline FreezeEffectModel CalibrateEffectModel(uint64_t seed,
                                              double target_power,
                                              double ro,
                                              bool verbose = true) {
  ExperimentConfig config = PaperExperimentConfig(seed, target_power, ro);
  config.enable_ampere = false;
  config.warmup = SimTime::Hours(1);
  ControlledExperiment calibration(config);
  std::vector<double> levels{0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  auto samples = calibration.RunFuCalibration(levels, SimTime::Minutes(5),
                                              SimTime::Minutes(25),
                                              SimTime::Hours(24));
  FreezeEffectModel model = FreezeEffectModel::Fit(samples);
  if (verbose) {
    std::printf("calibration: fitted f(u) = %.4f * u  (R^2 = %.3f, n = %zu)\n",
                model.kr(), model.fit_r_squared(), samples.size());
  }
  return model;
}

inline void Header(const std::string& artifact, const std::string& title,
                   uint64_t seed) {
  std::printf("=================================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), title.c_str());
  std::printf("(Ampere reproduction; seed=%llu)\n",
              static_cast<unsigned long long>(seed));
  std::printf("=================================================================\n");
}

inline void Section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

// Prints (x, y) pairs as two columns.
inline void PrintXy(const std::string& x_label, const std::string& y_label,
                    std::span<const std::pair<double, double>> points) {
  std::printf("%14s %14s\n", x_label.c_str(), y_label.c_str());
  for (const auto& [x, y] : points) {
    std::printf("%14.4f %14.4f\n", x, y);
  }
}

// Prints a series as one row per `stride` samples.
inline void PrintSeries(const std::string& x_label,
                        const std::string& y_label,
                        std::span<const double> values, int stride = 1,
                        double x_scale = 1.0) {
  std::printf("%14s %14s\n", x_label.c_str(), y_label.c_str());
  for (size_t i = 0; i < values.size(); i += static_cast<size_t>(stride)) {
    std::printf("%14.2f %14.4f\n", static_cast<double>(i) * x_scale,
                values[i]);
  }
}

inline void ShapeCheck(bool ok, const std::string& claim) {
  std::printf("SHAPE CHECK [%s]: %s\n", ok ? "PASS" : "FAIL", claim.c_str());
}

}  // namespace bench
}  // namespace ampere

#endif  // BENCH_BENCH_COMMON_H_
