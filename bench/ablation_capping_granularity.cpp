// Ablation: RAPL capping granularity — coordinated row-uniform throttling
// vs static per-server limits (row budget / n per server).
//
// §4.3 reports that without Ampere "54.34 % of servers are power capped for
// roughly 15 % of the total time": a per-server statistic, implying per-
// server limits. This bench quantifies the coordination gap the capping
// literature predicts and the paper's row-level viewpoint exploits:
//   * with per-server limits, hot servers are throttled even when the row
//     as a whole is under budget (a cold server's unused share cannot help
//     a hot one) — stranded slack;
//   * coordinated row-uniform capping only engages when the row total
//     violates, so at the same demand it throttles far less.
//
// The four (mode x demand) combinations are independent half-day
// simulations and run in parallel through the scenario harness.

#include <vector>

#include "bench/bench_common.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160429;

struct ModeSpec {
  const char* name;
  CappingMode mode;
  double demand_norm;
};

struct GranularityResult {
  double mean_capped_fraction = 0.0;  // Mean fraction of servers capped.
  double capped_time_fraction = 0.0;  // Fraction of time any server capped.
  double mean_power_norm = 0.0;       // Row power / budget.
  double over_budget_fraction = 0.0;  // Fraction of samples over budget.
  uint64_t jobs_completed = 0;
};

GranularityResult RunMode(CappingMode mode, double demand_norm) {
  Rng rng(kSeed);
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 1;
  topo.racks_per_row = 4;
  topo.servers_per_rack = 20;  // 80 servers.
  topo.capping_enabled = true;
  topo.capping_mode = mode;
  DataCenter dc(topo, &sim);
  double budget = 80 * 250.0 / 1.25;  // rO = 0.25.
  dc.SetRowCappingBudget(RowId(0), budget);

  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      topo, params, demand_norm, 0.25);
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(2));
  workload.Start(SimTime());

  struct Acc {
    double capped_fraction_sum = 0.0;
    double power_sum = 0.0;
    int over_budget = 0;
    int samples = 0;
  };
  Acc acc;
  sim.SchedulePeriodic(SimTime::Hours(2), SimTime::Minutes(1),
                       [&](SimTime) {
                         ++acc.samples;
                         acc.capped_fraction_sum +=
                             dc.FractionOfServersCapped(RowId(0));
                         double p = dc.row_power_watts(RowId(0));
                         acc.power_sum += p;
                         if (p > budget) {
                           ++acc.over_budget;
                         }
                       });
  SimTime capped_before;
  sim.ScheduleAt(SimTime::Hours(2),
                 [&] { capped_before = dc.row_capped_time(RowId(0)); });
  sim.RunUntil(SimTime::Hours(2 + 12));

  GranularityResult result;
  result.mean_capped_fraction = acc.capped_fraction_sum / acc.samples;
  result.capped_time_fraction =
      (dc.row_capped_time(RowId(0)) - capped_before).seconds() /
      SimTime::Hours(12).seconds();
  result.mean_power_norm = acc.power_sum / acc.samples / budget;
  result.over_budget_fraction =
      static_cast<double>(acc.over_budget) / acc.samples;
  result.jobs_completed = scheduler.jobs_completed();
  return result;
}

void Main(const harness::HarnessArgs& args) {
  bench::Header("Ablation: capping granularity",
                "row-uniform vs per-server RAPL limits", kSeed);

  const std::vector<ModeSpec> specs = {
      {"row-uniform demand=0.96", CappingMode::kRowUniform, 0.96},
      {"per-server demand=0.96", CappingMode::kPerServer, 0.96},
      {"row-uniform demand=1.05", CappingMode::kRowUniform, 1.05},
      {"per-server demand=1.05", CappingMode::kPerServer, 1.05},
  };
  auto grid = bench::RunGrid(
      args, specs,
      [](const ModeSpec& spec, size_t) {
        return harness::GridMeta{spec.name, kSeed};
      },
      [](const ModeSpec& spec, harness::RunContext& context) {
        GranularityResult r = RunMode(spec.mode, spec.demand_norm);
        context.Metric("demand", spec.demand_norm);
        context.Metric("capped_frac", r.mean_capped_fraction);
        context.Metric("capped_time", r.capped_time_fraction);
        context.Metric("power_over_budget", r.mean_power_norm);
        context.Metric("over_budget_frac", r.over_budget_fraction);
        context.Metric("completed", static_cast<double>(r.jobs_completed));
        return r;
      });

  bench::Section("12 h runs, demand ~0.96 (diurnal peaks) and ~1.05 "
                 "(sustained overload) of budget");
  if (!bench::EmitResults(grid.table, args)) {
    return;
  }
  const GranularityResult& uniform_ok = grid.values[0];
  const GranularityResult& server_ok = grid.values[1];
  const GranularityResult& uniform_hot = grid.values[2];
  const GranularityResult& server_hot = grid.values[3];

  bench::Section("shape checks");
  bench::ShapeCheck(server_ok.mean_capped_fraction >
                        3.0 * uniform_ok.mean_capped_fraction,
                    "per-server limits strand slack: hot servers throttle "
                    "even while the row aggregate is fine (the §4.3 world); "
                    "coordinated capping engages only at diurnal peaks");
  bench::ShapeCheck(server_ok.mean_capped_fraction > 0.05,
                    "a large fraction of servers is capped a large fraction "
                    "of time without Ampere (paper: 54% of servers, ~15% of "
                    "time)");
  bench::ShapeCheck(server_ok.jobs_completed < uniform_ok.jobs_completed,
                    "stranded slack costs batch throughput");
  bench::ShapeCheck(uniform_hot.mean_capped_fraction >
                        server_hot.mean_capped_fraction,
                    "under true overload, uniform capping throttles "
                    "everyone while per-server touches only the hot tail");
  // At saturation the DVFS floor (min step 0.5) bounds what ANY capping
  // mode can shave: power may exceed budget by up to (idle + 0.5*dyn_max)
  // — hardware reality, and exactly why a breaker tolerance exists.
  bench::ShapeCheck(uniform_hot.mean_power_norm < 1.04 &&
                        server_hot.mean_power_norm < 1.04,
                    "both modes hold the row within the DVFS floor's reach "
                    "of the budget under saturation");
}

}  // namespace
}  // namespace ampere

int main(int argc, char** argv) {
  ampere::Main(ampere::harness::ParseHarnessArgs(argc, argv));
  return 0;
}
