# Empty compiler generated dependencies file for fig04_freeze_power_drain.
# This may be replaced when dependencies are built.
