file(REMOVE_RECURSE
  "../bench/fig04_freeze_power_drain"
  "../bench/fig04_freeze_power_drain.pdb"
  "CMakeFiles/fig04_freeze_power_drain.dir/fig04_freeze_power_drain.cpp.o"
  "CMakeFiles/fig04_freeze_power_drain.dir/fig04_freeze_power_drain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_freeze_power_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
