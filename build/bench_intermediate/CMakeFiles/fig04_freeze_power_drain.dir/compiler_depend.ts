# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig04_freeze_power_drain.
