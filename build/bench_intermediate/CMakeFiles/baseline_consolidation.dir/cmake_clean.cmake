file(REMOVE_RECURSE
  "../bench/baseline_consolidation"
  "../bench/baseline_consolidation.pdb"
  "CMakeFiles/baseline_consolidation.dir/baseline_consolidation.cpp.o"
  "CMakeFiles/baseline_consolidation.dir/baseline_consolidation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
