# Empty dependencies file for baseline_consolidation.
# This may be replaced when dependencies are built.
