# Empty dependencies file for table3_gtpw_sweep.
# This may be replaced when dependencies are built.
