file(REMOVE_RECURSE
  "../bench/table3_gtpw_sweep"
  "../bench/table3_gtpw_sweep.pdb"
  "CMakeFiles/table3_gtpw_sweep.dir/table3_gtpw_sweep.cpp.o"
  "CMakeFiles/table3_gtpw_sweep.dir/table3_gtpw_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gtpw_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
