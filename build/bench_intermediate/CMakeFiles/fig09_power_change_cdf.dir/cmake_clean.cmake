file(REMOVE_RECURSE
  "../bench/fig09_power_change_cdf"
  "../bench/fig09_power_change_cdf.pdb"
  "CMakeFiles/fig09_power_change_cdf.dir/fig09_power_change_cdf.cpp.o"
  "CMakeFiles/fig09_power_change_cdf.dir/fig09_power_change_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_power_change_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
