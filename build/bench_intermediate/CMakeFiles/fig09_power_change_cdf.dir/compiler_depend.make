# Empty compiler generated dependencies file for fig09_power_change_cdf.
# This may be replaced when dependencies are built.
