file(REMOVE_RECURSE
  "../bench/ablation_et_estimator"
  "../bench/ablation_et_estimator.pdb"
  "CMakeFiles/ablation_et_estimator.dir/ablation_et_estimator.cpp.o"
  "CMakeFiles/ablation_et_estimator.dir/ablation_et_estimator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_et_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
