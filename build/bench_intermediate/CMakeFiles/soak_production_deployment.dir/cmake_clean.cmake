file(REMOVE_RECURSE
  "../bench/soak_production_deployment"
  "../bench/soak_production_deployment.pdb"
  "CMakeFiles/soak_production_deployment.dir/soak_production_deployment.cpp.o"
  "CMakeFiles/soak_production_deployment.dir/soak_production_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soak_production_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
