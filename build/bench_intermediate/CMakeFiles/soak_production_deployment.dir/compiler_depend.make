# Empty compiler generated dependencies file for soak_production_deployment.
# This may be replaced when dependencies are built.
