# Empty dependencies file for deployment_headline.
# This may be replaced when dependencies are built.
