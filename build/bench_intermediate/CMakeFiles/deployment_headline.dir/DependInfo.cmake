
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/deployment_headline.cpp" "bench_intermediate/CMakeFiles/deployment_headline.dir/deployment_headline.cpp.o" "gcc" "bench_intermediate/CMakeFiles/deployment_headline.dir/deployment_headline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ampere_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/ampere_control.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/ampere_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ampere_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ampere_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ampere_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ampere_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ampere_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ampere_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ampere_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
