file(REMOVE_RECURSE
  "../bench/deployment_headline"
  "../bench/deployment_headline.pdb"
  "CMakeFiles/deployment_headline.dir/deployment_headline.cpp.o"
  "CMakeFiles/deployment_headline.dir/deployment_headline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
