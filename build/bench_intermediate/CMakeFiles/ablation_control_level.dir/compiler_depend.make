# Empty compiler generated dependencies file for ablation_control_level.
# This may be replaced when dependencies are built.
