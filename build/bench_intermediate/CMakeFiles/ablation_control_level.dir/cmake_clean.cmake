file(REMOVE_RECURSE
  "../bench/ablation_control_level"
  "../bench/ablation_control_level.pdb"
  "CMakeFiles/ablation_control_level.dir/ablation_control_level.cpp.o"
  "CMakeFiles/ablation_control_level.dir/ablation_control_level.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
