# Empty compiler generated dependencies file for baseline_power_aware_sched.
# This may be replaced when dependencies are built.
