file(REMOVE_RECURSE
  "../bench/baseline_power_aware_sched"
  "../bench/baseline_power_aware_sched.pdb"
  "CMakeFiles/baseline_power_aware_sched.dir/baseline_power_aware_sched.cpp.o"
  "CMakeFiles/baseline_power_aware_sched.dir/baseline_power_aware_sched.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_power_aware_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
