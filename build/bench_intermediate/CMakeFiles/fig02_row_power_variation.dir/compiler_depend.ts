# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02_row_power_variation.
