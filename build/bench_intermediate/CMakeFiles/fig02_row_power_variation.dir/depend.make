# Empty dependencies file for fig02_row_power_variation.
# This may be replaced when dependencies are built.
