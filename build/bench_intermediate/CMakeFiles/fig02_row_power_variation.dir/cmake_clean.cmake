file(REMOVE_RECURSE
  "../bench/fig02_row_power_variation"
  "../bench/fig02_row_power_variation.pdb"
  "CMakeFiles/fig02_row_power_variation.dir/fig02_row_power_variation.cpp.o"
  "CMakeFiles/fig02_row_power_variation.dir/fig02_row_power_variation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_row_power_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
