# Empty dependencies file for fig10_table2_controller_effectiveness.
# This may be replaced when dependencies are built.
