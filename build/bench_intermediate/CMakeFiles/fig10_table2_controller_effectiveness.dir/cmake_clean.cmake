file(REMOVE_RECURSE
  "../bench/fig10_table2_controller_effectiveness"
  "../bench/fig10_table2_controller_effectiveness.pdb"
  "CMakeFiles/fig10_table2_controller_effectiveness.dir/fig10_table2_controller_effectiveness.cpp.o"
  "CMakeFiles/fig10_table2_controller_effectiveness.dir/fig10_table2_controller_effectiveness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_table2_controller_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
