file(REMOVE_RECURSE
  "../bench/ablation_max_freeze"
  "../bench/ablation_max_freeze.pdb"
  "CMakeFiles/ablation_max_freeze.dir/ablation_max_freeze.cpp.o"
  "CMakeFiles/ablation_max_freeze.dir/ablation_max_freeze.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_max_freeze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
