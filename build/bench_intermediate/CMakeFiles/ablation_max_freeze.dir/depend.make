# Empty dependencies file for ablation_max_freeze.
# This may be replaced when dependencies are built.
