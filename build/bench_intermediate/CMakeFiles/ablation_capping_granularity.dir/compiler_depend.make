# Empty compiler generated dependencies file for ablation_capping_granularity.
# This may be replaced when dependencies are built.
