file(REMOVE_RECURSE
  "../bench/ablation_capping_granularity"
  "../bench/ablation_capping_granularity.pdb"
  "CMakeFiles/ablation_capping_granularity.dir/ablation_capping_granularity.cpp.o"
  "CMakeFiles/ablation_capping_granularity.dir/ablation_capping_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_capping_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
