# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig08_row_power_24h.
