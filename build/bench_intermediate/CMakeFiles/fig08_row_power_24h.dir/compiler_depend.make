# Empty compiler generated dependencies file for fig08_row_power_24h.
# This may be replaced when dependencies are built.
