file(REMOVE_RECURSE
  "../bench/fig08_row_power_24h"
  "../bench/fig08_row_power_24h.pdb"
  "CMakeFiles/fig08_row_power_24h.dir/fig08_row_power_24h.cpp.o"
  "CMakeFiles/fig08_row_power_24h.dir/fig08_row_power_24h.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_row_power_24h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
