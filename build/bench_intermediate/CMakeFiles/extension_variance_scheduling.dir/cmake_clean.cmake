file(REMOVE_RECURSE
  "../bench/extension_variance_scheduling"
  "../bench/extension_variance_scheduling.pdb"
  "CMakeFiles/extension_variance_scheduling.dir/extension_variance_scheduling.cpp.o"
  "CMakeFiles/extension_variance_scheduling.dir/extension_variance_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_variance_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
