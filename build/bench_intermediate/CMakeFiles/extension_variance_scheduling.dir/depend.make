# Empty dependencies file for extension_variance_scheduling.
# This may be replaced when dependencies are built.
