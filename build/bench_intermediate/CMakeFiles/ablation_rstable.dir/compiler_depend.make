# Empty compiler generated dependencies file for ablation_rstable.
# This may be replaced when dependencies are built.
