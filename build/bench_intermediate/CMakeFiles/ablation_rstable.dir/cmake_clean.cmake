file(REMOVE_RECURSE
  "../bench/ablation_rstable"
  "../bench/ablation_rstable.pdb"
  "CMakeFiles/ablation_rstable.dir/ablation_rstable.cpp.o"
  "CMakeFiles/ablation_rstable.dir/ablation_rstable.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rstable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
