file(REMOVE_RECURSE
  "../bench/fig01_power_utilization_cdf"
  "../bench/fig01_power_utilization_cdf.pdb"
  "CMakeFiles/fig01_power_utilization_cdf.dir/fig01_power_utilization_cdf.cpp.o"
  "CMakeFiles/fig01_power_utilization_cdf.dir/fig01_power_utilization_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_power_utilization_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
