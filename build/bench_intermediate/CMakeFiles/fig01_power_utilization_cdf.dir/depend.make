# Empty dependencies file for fig01_power_utilization_cdf.
# This may be replaced when dependencies are built.
