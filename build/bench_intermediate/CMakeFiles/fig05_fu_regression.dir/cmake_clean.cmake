file(REMOVE_RECURSE
  "../bench/fig05_fu_regression"
  "../bench/fig05_fu_regression.pdb"
  "CMakeFiles/fig05_fu_regression.dir/fig05_fu_regression.cpp.o"
  "CMakeFiles/fig05_fu_regression.dir/fig05_fu_regression.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fu_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
