# Empty dependencies file for fig05_fu_regression.
# This may be replaced when dependencies are built.
