# Empty dependencies file for ablation_heterogeneous_fleet.
# This may be replaced when dependencies are built.
