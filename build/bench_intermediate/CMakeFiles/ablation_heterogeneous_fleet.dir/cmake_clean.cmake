file(REMOVE_RECURSE
  "../bench/ablation_heterogeneous_fleet"
  "../bench/ablation_heterogeneous_fleet.pdb"
  "CMakeFiles/ablation_heterogeneous_fleet.dir/ablation_heterogeneous_fleet.cpp.o"
  "CMakeFiles/ablation_heterogeneous_fleet.dir/ablation_heterogeneous_fleet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterogeneous_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
