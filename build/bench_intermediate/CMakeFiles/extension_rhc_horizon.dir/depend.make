# Empty dependencies file for extension_rhc_horizon.
# This may be replaced when dependencies are built.
