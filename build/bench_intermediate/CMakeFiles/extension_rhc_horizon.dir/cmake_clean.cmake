file(REMOVE_RECURSE
  "../bench/extension_rhc_horizon"
  "../bench/extension_rhc_horizon.pdb"
  "CMakeFiles/extension_rhc_horizon.dir/extension_rhc_horizon.cpp.o"
  "CMakeFiles/extension_rhc_horizon.dir/extension_rhc_horizon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_rhc_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
