# Empty dependencies file for extension_online_predictor.
# This may be replaced when dependencies are built.
