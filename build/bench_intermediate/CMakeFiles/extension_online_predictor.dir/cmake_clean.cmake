file(REMOVE_RECURSE
  "../bench/extension_online_predictor"
  "../bench/extension_online_predictor.pdb"
  "CMakeFiles/extension_online_predictor.dir/extension_online_predictor.cpp.o"
  "CMakeFiles/extension_online_predictor.dir/extension_online_predictor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_online_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
