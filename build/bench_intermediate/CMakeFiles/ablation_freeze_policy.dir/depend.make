# Empty dependencies file for ablation_freeze_policy.
# This may be replaced when dependencies are built.
