file(REMOVE_RECURSE
  "../bench/ablation_freeze_policy"
  "../bench/ablation_freeze_policy.pdb"
  "CMakeFiles/ablation_freeze_policy.dir/ablation_freeze_policy.cpp.o"
  "CMakeFiles/ablation_freeze_policy.dir/ablation_freeze_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_freeze_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
