# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_capping_vs_ampere_latency.
