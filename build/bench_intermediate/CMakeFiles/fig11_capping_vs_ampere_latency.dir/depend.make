# Empty dependencies file for fig11_capping_vs_ampere_latency.
# This may be replaced when dependencies are built.
