# Empty dependencies file for fig12_tpw_intuition.
# This may be replaced when dependencies are built.
