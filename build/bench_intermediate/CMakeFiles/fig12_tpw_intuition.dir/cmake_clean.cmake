file(REMOVE_RECURSE
  "../bench/fig12_tpw_intuition"
  "../bench/fig12_tpw_intuition.pdb"
  "CMakeFiles/fig12_tpw_intuition.dir/fig12_tpw_intuition.cpp.o"
  "CMakeFiles/fig12_tpw_intuition.dir/fig12_tpw_intuition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tpw_intuition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
