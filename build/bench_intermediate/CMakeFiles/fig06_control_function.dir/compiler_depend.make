# Empty compiler generated dependencies file for fig06_control_function.
# This may be replaced when dependencies are built.
