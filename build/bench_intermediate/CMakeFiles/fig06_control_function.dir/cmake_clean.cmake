file(REMOVE_RECURSE
  "../bench/fig06_control_function"
  "../bench/fig06_control_function.pdb"
  "CMakeFiles/fig06_control_function.dir/fig06_control_function.cpp.o"
  "CMakeFiles/fig06_control_function.dir/fig06_control_function.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_control_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
