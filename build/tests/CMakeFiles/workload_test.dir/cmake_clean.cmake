file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload_arrival_process_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload_arrival_process_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload_batch_workload_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload_batch_workload_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload_duration_model_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload_duration_model_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload_interactive_service_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload_interactive_service_test.cpp.o.d"
  "CMakeFiles/workload_test.dir/workload_trace_test.cpp.o"
  "CMakeFiles/workload_test.dir/workload_trace_test.cpp.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
