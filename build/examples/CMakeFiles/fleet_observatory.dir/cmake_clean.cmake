file(REMOVE_RECURSE
  "CMakeFiles/fleet_observatory.dir/fleet_observatory.cpp.o"
  "CMakeFiles/fleet_observatory.dir/fleet_observatory.cpp.o.d"
  "fleet_observatory"
  "fleet_observatory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_observatory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
