# Empty dependencies file for fleet_observatory.
# This may be replaced when dependencies are built.
