# Empty dependencies file for latency_guard.
# This may be replaced when dependencies are built.
