file(REMOVE_RECURSE
  "CMakeFiles/latency_guard.dir/latency_guard.cpp.o"
  "CMakeFiles/latency_guard.dir/latency_guard.cpp.o.d"
  "latency_guard"
  "latency_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
