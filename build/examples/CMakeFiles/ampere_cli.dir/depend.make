# Empty dependencies file for ampere_cli.
# This may be replaced when dependencies are built.
