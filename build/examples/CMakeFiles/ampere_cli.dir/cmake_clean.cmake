file(REMOVE_RECURSE
  "CMakeFiles/ampere_cli.dir/ampere_cli.cpp.o"
  "CMakeFiles/ampere_cli.dir/ampere_cli.cpp.o.d"
  "ampere_cli"
  "ampere_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
