# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning" "0.95")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_latency_guard "/root/repo/build/examples/latency_guard")
set_tests_properties(example_latency_guard PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fleet_observatory "/root/repo/build/examples/fleet_observatory" "1")
set_tests_properties(example_fleet_observatory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_replay "/root/repo/build/examples/trace_replay" "/tmp/ampere_smoke_trace.csv" "/tmp/ampere_smoke_power.csv")
set_tests_properties(example_trace_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_experiment "/root/repo/build/examples/ampere_cli" "--mode=experiment" "--servers=60" "--hours=2" "--ro=0.17" "--target=0.95")
set_tests_properties(example_cli_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_fleet "/root/repo/build/examples/ampere_cli" "--mode=fleet" "--rows=2" "--days=0.25" "--servers=80")
set_tests_properties(example_cli_fleet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
