file(REMOVE_RECURSE
  "libampere_core.a"
)
