# Empty dependencies file for ampere_core.
# This may be replaced when dependencies are built.
