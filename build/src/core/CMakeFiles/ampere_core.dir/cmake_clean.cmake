file(REMOVE_RECURSE
  "CMakeFiles/ampere_core.dir/consolidation.cc.o"
  "CMakeFiles/ampere_core.dir/consolidation.cc.o.d"
  "CMakeFiles/ampere_core.dir/controller.cc.o"
  "CMakeFiles/ampere_core.dir/controller.cc.o.d"
  "CMakeFiles/ampere_core.dir/experiment.cc.o"
  "CMakeFiles/ampere_core.dir/experiment.cc.o.d"
  "CMakeFiles/ampere_core.dir/fleet.cc.o"
  "CMakeFiles/ampere_core.dir/fleet.cc.o.d"
  "CMakeFiles/ampere_core.dir/metrics.cc.o"
  "CMakeFiles/ampere_core.dir/metrics.cc.o.d"
  "libampere_core.a"
  "libampere_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
