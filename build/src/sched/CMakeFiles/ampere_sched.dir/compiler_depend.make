# Empty compiler generated dependencies file for ampere_sched.
# This may be replaced when dependencies are built.
