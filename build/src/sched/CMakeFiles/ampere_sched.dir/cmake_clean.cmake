file(REMOVE_RECURSE
  "CMakeFiles/ampere_sched.dir/resource_manager.cc.o"
  "CMakeFiles/ampere_sched.dir/resource_manager.cc.o.d"
  "CMakeFiles/ampere_sched.dir/scheduler.cc.o"
  "CMakeFiles/ampere_sched.dir/scheduler.cc.o.d"
  "libampere_sched.a"
  "libampere_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
