file(REMOVE_RECURSE
  "libampere_sched.a"
)
