file(REMOVE_RECURSE
  "libampere_cluster.a"
)
