file(REMOVE_RECURSE
  "CMakeFiles/ampere_cluster.dir/datacenter.cc.o"
  "CMakeFiles/ampere_cluster.dir/datacenter.cc.o.d"
  "CMakeFiles/ampere_cluster.dir/server.cc.o"
  "CMakeFiles/ampere_cluster.dir/server.cc.o.d"
  "libampere_cluster.a"
  "libampere_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
