# Empty compiler generated dependencies file for ampere_cluster.
# This may be replaced when dependencies are built.
