# Empty compiler generated dependencies file for ampere_common.
# This may be replaced when dependencies are built.
