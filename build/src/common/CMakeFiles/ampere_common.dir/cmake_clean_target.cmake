file(REMOVE_RECURSE
  "libampere_common.a"
)
