file(REMOVE_RECURSE
  "CMakeFiles/ampere_common.dir/check.cc.o"
  "CMakeFiles/ampere_common.dir/check.cc.o.d"
  "CMakeFiles/ampere_common.dir/log.cc.o"
  "CMakeFiles/ampere_common.dir/log.cc.o.d"
  "CMakeFiles/ampere_common.dir/rng.cc.o"
  "CMakeFiles/ampere_common.dir/rng.cc.o.d"
  "CMakeFiles/ampere_common.dir/time.cc.o"
  "CMakeFiles/ampere_common.dir/time.cc.o.d"
  "libampere_common.a"
  "libampere_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
