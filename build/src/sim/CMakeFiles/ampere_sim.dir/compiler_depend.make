# Empty compiler generated dependencies file for ampere_sim.
# This may be replaced when dependencies are built.
