file(REMOVE_RECURSE
  "CMakeFiles/ampere_sim.dir/simulation.cc.o"
  "CMakeFiles/ampere_sim.dir/simulation.cc.o.d"
  "libampere_sim.a"
  "libampere_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
