file(REMOVE_RECURSE
  "libampere_sim.a"
)
