file(REMOVE_RECURSE
  "libampere_stats.a"
)
