file(REMOVE_RECURSE
  "CMakeFiles/ampere_stats.dir/correlation.cc.o"
  "CMakeFiles/ampere_stats.dir/correlation.cc.o.d"
  "CMakeFiles/ampere_stats.dir/descriptive.cc.o"
  "CMakeFiles/ampere_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/ampere_stats.dir/histogram.cc.o"
  "CMakeFiles/ampere_stats.dir/histogram.cc.o.d"
  "CMakeFiles/ampere_stats.dir/percentile.cc.o"
  "CMakeFiles/ampere_stats.dir/percentile.cc.o.d"
  "CMakeFiles/ampere_stats.dir/regression.cc.o"
  "CMakeFiles/ampere_stats.dir/regression.cc.o.d"
  "CMakeFiles/ampere_stats.dir/timeseries_ops.cc.o"
  "CMakeFiles/ampere_stats.dir/timeseries_ops.cc.o.d"
  "libampere_stats.a"
  "libampere_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
