# Empty dependencies file for ampere_stats.
# This may be replaced when dependencies are built.
