file(REMOVE_RECURSE
  "libampere_control.a"
)
