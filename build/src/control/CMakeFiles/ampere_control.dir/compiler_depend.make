# Empty compiler generated dependencies file for ampere_control.
# This may be replaced when dependencies are built.
