file(REMOVE_RECURSE
  "CMakeFiles/ampere_control.dir/et_estimator.cc.o"
  "CMakeFiles/ampere_control.dir/et_estimator.cc.o.d"
  "CMakeFiles/ampere_control.dir/freeze_effect.cc.o"
  "CMakeFiles/ampere_control.dir/freeze_effect.cc.o.d"
  "CMakeFiles/ampere_control.dir/online_predictor.cc.o"
  "CMakeFiles/ampere_control.dir/online_predictor.cc.o.d"
  "CMakeFiles/ampere_control.dir/pcp.cc.o"
  "CMakeFiles/ampere_control.dir/pcp.cc.o.d"
  "CMakeFiles/ampere_control.dir/spcp.cc.o"
  "CMakeFiles/ampere_control.dir/spcp.cc.o.d"
  "libampere_control.a"
  "libampere_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
