
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/et_estimator.cc" "src/control/CMakeFiles/ampere_control.dir/et_estimator.cc.o" "gcc" "src/control/CMakeFiles/ampere_control.dir/et_estimator.cc.o.d"
  "/root/repo/src/control/freeze_effect.cc" "src/control/CMakeFiles/ampere_control.dir/freeze_effect.cc.o" "gcc" "src/control/CMakeFiles/ampere_control.dir/freeze_effect.cc.o.d"
  "/root/repo/src/control/online_predictor.cc" "src/control/CMakeFiles/ampere_control.dir/online_predictor.cc.o" "gcc" "src/control/CMakeFiles/ampere_control.dir/online_predictor.cc.o.d"
  "/root/repo/src/control/pcp.cc" "src/control/CMakeFiles/ampere_control.dir/pcp.cc.o" "gcc" "src/control/CMakeFiles/ampere_control.dir/pcp.cc.o.d"
  "/root/repo/src/control/spcp.cc" "src/control/CMakeFiles/ampere_control.dir/spcp.cc.o" "gcc" "src/control/CMakeFiles/ampere_control.dir/spcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ampere_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ampere_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
