# Empty dependencies file for ampere_power.
# This may be replaced when dependencies are built.
