file(REMOVE_RECURSE
  "libampere_power.a"
)
