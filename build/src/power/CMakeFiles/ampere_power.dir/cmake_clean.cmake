file(REMOVE_RECURSE
  "CMakeFiles/ampere_power.dir/breaker.cc.o"
  "CMakeFiles/ampere_power.dir/breaker.cc.o.d"
  "CMakeFiles/ampere_power.dir/dvfs.cc.o"
  "CMakeFiles/ampere_power.dir/dvfs.cc.o.d"
  "CMakeFiles/ampere_power.dir/power_model.cc.o"
  "CMakeFiles/ampere_power.dir/power_model.cc.o.d"
  "libampere_power.a"
  "libampere_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
