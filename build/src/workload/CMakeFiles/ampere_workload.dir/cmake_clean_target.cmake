file(REMOVE_RECURSE
  "libampere_workload.a"
)
