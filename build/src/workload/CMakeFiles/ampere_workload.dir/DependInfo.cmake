
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrival_process.cc" "src/workload/CMakeFiles/ampere_workload.dir/arrival_process.cc.o" "gcc" "src/workload/CMakeFiles/ampere_workload.dir/arrival_process.cc.o.d"
  "/root/repo/src/workload/batch_workload.cc" "src/workload/CMakeFiles/ampere_workload.dir/batch_workload.cc.o" "gcc" "src/workload/CMakeFiles/ampere_workload.dir/batch_workload.cc.o.d"
  "/root/repo/src/workload/duration_model.cc" "src/workload/CMakeFiles/ampere_workload.dir/duration_model.cc.o" "gcc" "src/workload/CMakeFiles/ampere_workload.dir/duration_model.cc.o.d"
  "/root/repo/src/workload/interactive_service.cc" "src/workload/CMakeFiles/ampere_workload.dir/interactive_service.cc.o" "gcc" "src/workload/CMakeFiles/ampere_workload.dir/interactive_service.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/ampere_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/ampere_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ampere_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ampere_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ampere_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ampere_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ampere_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
