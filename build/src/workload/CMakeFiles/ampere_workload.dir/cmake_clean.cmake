file(REMOVE_RECURSE
  "CMakeFiles/ampere_workload.dir/arrival_process.cc.o"
  "CMakeFiles/ampere_workload.dir/arrival_process.cc.o.d"
  "CMakeFiles/ampere_workload.dir/batch_workload.cc.o"
  "CMakeFiles/ampere_workload.dir/batch_workload.cc.o.d"
  "CMakeFiles/ampere_workload.dir/duration_model.cc.o"
  "CMakeFiles/ampere_workload.dir/duration_model.cc.o.d"
  "CMakeFiles/ampere_workload.dir/interactive_service.cc.o"
  "CMakeFiles/ampere_workload.dir/interactive_service.cc.o.d"
  "CMakeFiles/ampere_workload.dir/trace.cc.o"
  "CMakeFiles/ampere_workload.dir/trace.cc.o.d"
  "libampere_workload.a"
  "libampere_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
