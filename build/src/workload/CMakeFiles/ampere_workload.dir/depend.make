# Empty dependencies file for ampere_workload.
# This may be replaced when dependencies are built.
