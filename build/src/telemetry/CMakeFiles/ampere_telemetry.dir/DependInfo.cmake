
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/csv_export.cc" "src/telemetry/CMakeFiles/ampere_telemetry.dir/csv_export.cc.o" "gcc" "src/telemetry/CMakeFiles/ampere_telemetry.dir/csv_export.cc.o.d"
  "/root/repo/src/telemetry/power_monitor.cc" "src/telemetry/CMakeFiles/ampere_telemetry.dir/power_monitor.cc.o" "gcc" "src/telemetry/CMakeFiles/ampere_telemetry.dir/power_monitor.cc.o.d"
  "/root/repo/src/telemetry/timeseries_db.cc" "src/telemetry/CMakeFiles/ampere_telemetry.dir/timeseries_db.cc.o" "gcc" "src/telemetry/CMakeFiles/ampere_telemetry.dir/timeseries_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ampere_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ampere_common.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ampere_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ampere_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
