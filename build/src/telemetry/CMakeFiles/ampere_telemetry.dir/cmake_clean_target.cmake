file(REMOVE_RECURSE
  "libampere_telemetry.a"
)
