# Empty dependencies file for ampere_telemetry.
# This may be replaced when dependencies are built.
