file(REMOVE_RECURSE
  "CMakeFiles/ampere_telemetry.dir/csv_export.cc.o"
  "CMakeFiles/ampere_telemetry.dir/csv_export.cc.o.d"
  "CMakeFiles/ampere_telemetry.dir/power_monitor.cc.o"
  "CMakeFiles/ampere_telemetry.dir/power_monitor.cc.o.d"
  "CMakeFiles/ampere_telemetry.dir/timeseries_db.cc.o"
  "CMakeFiles/ampere_telemetry.dir/timeseries_db.cc.o.d"
  "libampere_telemetry.a"
  "libampere_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ampere_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
