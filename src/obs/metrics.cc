#include "src/obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "src/common/check.h"

namespace ampere {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Metric-name domains -------------------------------------------------

namespace internal {
thread_local DomainId t_current_domain = 0;
}  // namespace internal

namespace {

// Append-only intern table of domain prefixes. Slot 0 is the root (empty
// prefix). Strings live in immortal node storage so DomainPrefix() views
// stay valid forever; the table itself is never freed.
struct DomainTable {
  std::mutex mu;
  std::vector<std::unique_ptr<std::string>> prefixes;

  DomainTable() { prefixes.push_back(std::make_unique<std::string>()); }
};

DomainTable& Domains() {
  static DomainTable* table = new DomainTable();  // Never freed.
  return *table;
}

}  // namespace

DomainId InternDomain(std::string_view prefix) {
  if (prefix.empty()) return 0;
  DomainTable& table = Domains();
  std::lock_guard<std::mutex> lock(table.mu);
  for (size_t i = 0; i < table.prefixes.size(); ++i) {
    if (*table.prefixes[i] == prefix) {
      return static_cast<DomainId>(i);
    }
  }
  table.prefixes.push_back(std::make_unique<std::string>(prefix));
  return static_cast<DomainId>(table.prefixes.size() - 1);
}

std::string_view DomainPrefix(DomainId id) {
  DomainTable& table = Domains();
  std::lock_guard<std::mutex> lock(table.mu);
  AMPERE_CHECK(id < table.prefixes.size()) << "unknown metrics domain " << id;
  return *table.prefixes[id];
}

namespace {

// Thread-local scratch for domain-prefixed names: assigning into a warm
// std::string re-uses its buffer, so prefixing is allocation-free in steady
// state. Leaked (one per thread) so it stays usable during thread teardown.
std::string& DomainScratch() {
  static thread_local std::string* scratch = new std::string();
  return *scratch;
}

// The current domain's prefix applied to `name` — `name` itself for the
// root domain, a view of the thread-local scratch otherwise.
std::string_view ApplyDomain(std::string_view name) {
  const DomainId domain = internal::t_current_domain;
  if (domain == 0) return name;
  std::string& scratch = DomainScratch();
  scratch.assign(DomainPrefix(domain));
  scratch.append(name);
  return scratch;
}

}  // namespace

namespace {

// Shortest round-trip formatting for doubles, matching the harness result
// table so obs JSON diffs cleanly across runs.
std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric names: '.' and other non-alphanumerics become '_'.
std::string PrometheusName(std::string_view name) {
  std::string out = "ampere_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

template <typename T>
using NameMap = std::unordered_map<std::string, T, StringHash, StringEq>;

// Finds or inserts map[name] without constructing a std::string on the
// (common) hit path.
template <typename T>
T& FindOrInsert(NameMap<T>& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), T{}).first;
  }
  return it->second;
}

// Global sequence for gauge Set() ordering: the merge rule "latest Set wins"
// needs an order that is consistent across shards and registries.
std::atomic<uint64_t> g_gauge_sequence{0};

// Process-unique registry ids; never reused, so a stale thread-local shard
// cache entry can never alias a new registry.
std::atomic<uint64_t> g_next_registry_id{1};

struct GaugeCell {
  double value = 0.0;
  uint64_t sequence = 0;
};

struct HistCell {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1.
  uint64_t count = 0;
  double sum = 0.0;
};

struct SpanCell {
  uint64_t count = 0;
  double total_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  std::array<uint64_t, kSpanBuckets> buckets{};
};

size_t Log2Bucket(double duration_ns) {
  if (!(duration_ns >= 1.0)) return 0;
  const double l = std::log2(duration_ns);
  const size_t b = static_cast<size_t>(l);
  return b >= kSpanBuckets ? kSpanBuckets - 1 : b;
}

template <typename T>
typename std::vector<T>::iterator LowerBoundByName(std::vector<T>& v,
                                                   const std::string& name) {
  return std::lower_bound(
      v.begin(), v.end(), name,
      [](const T& item, const std::string& n) { return item.name < n; });
}

}  // namespace

// --- Snapshot value helpers ----------------------------------------------

double HistogramValue::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lo;  // Open overflow bucket.
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double SpanStats::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  double result = max_ns;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double lo = std::exp2(static_cast<double>(i));
      const double hi = std::exp2(static_cast<double>(i + 1));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      result = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      break;
    }
    seen += in_bucket;
  }
  return std::clamp(result, min_ns, max_ns);
}

const uint64_t* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c.value;
  }
  return nullptr;
}

const double* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g.value;
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const SpanStats* MetricsSnapshot::FindSpan(std::string_view name) const {
  for (const auto& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& c : other.counters) {
    auto it = LowerBoundByName(counters, c.name);
    if (it != counters.end() && it->name == c.name) {
      it->value += c.value;
    } else {
      counters.insert(it, c);
    }
  }
  for (const auto& g : other.gauges) {
    auto it = LowerBoundByName(gauges, g.name);
    if (it != gauges.end() && it->name == g.name) {
      if (g.sequence >= it->sequence) *it = g;
    } else {
      gauges.insert(it, g);
    }
  }
  for (const auto& h : other.histograms) {
    auto it = LowerBoundByName(histograms, h.name);
    if (it != histograms.end() && it->name == h.name) {
      AMPERE_CHECK(it->counts.size() == h.counts.size())
          << "histogram '" << h.name << "' bucket layout mismatch on merge";
      for (size_t i = 0; i < h.counts.size(); ++i) {
        it->counts[i] += h.counts[i];
      }
      it->count += h.count;
      it->sum += h.sum;
    } else {
      histograms.insert(it, h);
    }
  }
  for (const auto& s : other.spans) {
    auto it = LowerBoundByName(spans, s.name);
    if (it != spans.end() && it->name == s.name) {
      if (it->count == 0) {
        *it = s;
      } else if (s.count > 0) {
        it->min_ns = std::min(it->min_ns, s.min_ns);
        it->max_ns = std::max(it->max_ns, s.max_ns);
        it->count += s.count;
        it->total_ns += s.total_ns;
        for (size_t i = 0; i < kSpanBuckets; ++i) {
          it->buckets[i] += s.buckets[i];
        }
      }
    } else {
      spans.insert(it, s);
    }
  }
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  for (const auto& c : counters) {
    const std::string n = PrometheusName(c.name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    const std::string n = PrometheusName(g.name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + FormatDouble(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    const std::string n = PrometheusName(h.name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += n + "_bucket{le=\"" + FormatDouble(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + FormatDouble(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  for (const auto& s : spans) {
    const std::string n = PrometheusName(s.name) + "_seconds";
    out += "# TYPE " + n + " summary\n";
    out += n + "{quantile=\"0.5\"} " + FormatDouble(s.p50_ns() * 1e-9) + "\n";
    out += n + "{quantile=\"0.99\"} " + FormatDouble(s.p99_ns() * 1e-9) + "\n";
    out += n + "_sum " + FormatDouble(s.total_ns * 1e-9) + "\n";
    out += n + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(c.name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(g.name);
    out += "\":";
    out += FormatDouble(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += FormatDouble(h.sum);
    out += ",\"mean\":";
    out += FormatDouble(h.mean());
    out += ",\"p50\":";
    out += FormatDouble(h.Quantile(0.50));
    out += ",\"p99\":";
    out += FormatDouble(h.Quantile(0.99));
    out += "}";
  }
  out += "},\"spans\":{";
  first = true;
  for (const auto& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(s.name);
    out += "\":{\"count\":";
    out += std::to_string(s.count);
    out += ",\"total_ns\":";
    out += FormatDouble(s.total_ns);
    out += ",\"mean_ns\":";
    out += FormatDouble(s.mean_ns());
    out += ",\"min_ns\":";
    out += FormatDouble(s.min_ns);
    out += ",\"max_ns\":";
    out += FormatDouble(s.max_ns);
    out += ",\"p50_ns\":";
    out += FormatDouble(s.p50_ns());
    out += ",\"p99_ns\":";
    out += FormatDouble(s.p99_ns());
    out += "}";
  }
  out += "}}";
  return out;
}

// --- Registry ------------------------------------------------------------

std::span<const double> DefaultHistogramBounds() {
  // Roughly 1-2.5-5 per decade over 1e-3 .. 1e3 — wide enough for seconds,
  // ratios, and watt-scale residuals alike.
  static constexpr double kBounds[] = {
      0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
      1.0,   2.5,    5.0,   10.0, 25.0,  50.0, 100.0, 250.0, 500.0, 1000.0};
  return std::span<const double>(kBounds);
}

struct MetricsRegistry::Shard {
  std::mutex mu;
  NameMap<uint64_t> counters;
  NameMap<GaugeCell> gauges;
  NameMap<HistCell> histograms;
  NameMap<SpanCell> spans;
};

namespace {

// Single-slot thread-local cache: the common case is one registry touched
// repeatedly from one thread (a harness run). Keyed by the process-unique
// registry id so entries for destroyed registries can never be mistaken for
// live ones.
struct ShardCache {
  uint64_t registry_id = 0;
  MetricsRegistry::Shard* shard = nullptr;
};
thread_local ShardCache t_shard_cache;

// Secondary map for threads that interleave writes to several registries.
thread_local std::unordered_map<uint64_t, MetricsRegistry::Shard*>*
    t_shard_map = nullptr;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  if (t_shard_cache.registry_id == id_) {
    return *t_shard_cache.shard;
  }
  if (t_shard_map != nullptr) {
    auto it = t_shard_map->find(id_);
    if (it != t_shard_map->end()) {
      t_shard_cache = {id_, it->second};
      return *it->second;
    }
  }
  Shard* shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    shard = shards_.back().get();
  }
  if (t_shard_cache.shard != nullptr) {
    // Evicting a live cache entry: keep it reachable via the map so the
    // thread does not create a second shard for that registry later.
    if (t_shard_map == nullptr) {
      static thread_local std::unordered_map<uint64_t, Shard*> map_storage;
      t_shard_map = &map_storage;
    }
    (*t_shard_map)[t_shard_cache.registry_id] = t_shard_cache.shard;
  }
  if (t_shard_map != nullptr) (*t_shard_map)[id_] = shard;
  t_shard_cache = {id_, shard};
  return *shard;
}

void MetricsRegistry::CounterAdd(std::string_view name, uint64_t delta) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  FindOrInsert(shard.counters, name) += delta;
}

uint64_t* MetricsRegistry::CounterCell(std::string_view name) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  return &FindOrInsert(shard.counters, name);
}

void CounterSite::Rebind(MetricsRegistry& registry) {
  // Read the epoch before resolving the cell: if a Reset() lands in
  // between, the cached epoch is already stale and the next Add() simply
  // rebinds again — the site can cache an old cell for at most one call.
  // The cell is resolved under the *current domain's* prefixed name; the
  // registry copies the name into its map, so no prefixed storage needs to
  // outlive this call.
  const uint64_t epoch = registry.epoch();
  const DomainId domain = internal::t_current_domain;
  cell_ = registry.CounterCell(ApplyDomain(name_));
  registry_id_ = registry.id();
  epoch_ = epoch;
  domain_ = domain;
}

void MetricsRegistry::GaugeSet(std::string_view name, double value) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  GaugeCell& cell = FindOrInsert(shard.gauges, name);
  cell.value = value;
  cell.sequence = g_gauge_sequence.fetch_add(1, std::memory_order_relaxed) + 1;
}

void MetricsRegistry::HistogramObserve(std::string_view name, double value,
                                       std::span<const double> bounds) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  HistCell& cell = FindOrInsert(shard.histograms, name);
  if (cell.counts.empty()) {
    cell.bounds.assign(bounds.begin(), bounds.end());
    cell.counts.assign(bounds.size() + 1, 0);
  } else {
    AMPERE_CHECK(cell.bounds.size() == bounds.size())
        << "histogram '" << name << "' observed with a different bucket count";
  }
  const auto it =
      std::lower_bound(cell.bounds.begin(), cell.bounds.end(), value);
  cell.counts[static_cast<size_t>(it - cell.bounds.begin())] += 1;
  cell.count += 1;
  cell.sum += value;
}

void MetricsRegistry::SpanRecord(std::string_view name, double duration_ns) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mu);
  SpanCell& cell = FindOrInsert(shard.spans, name);
  if (cell.count == 0) {
    cell.min_ns = duration_ns;
    cell.max_ns = duration_ns;
  } else {
    cell.min_ns = std::min(cell.min_ns, duration_ns);
    cell.max_ns = std::max(cell.max_ns, duration_ns);
  }
  cell.count += 1;
  cell.total_ns += duration_ns;
  cell.buckets[Log2Bucket(duration_ns)] += 1;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    MetricsSnapshot part;
    {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      part.counters.reserve(shard->counters.size());
      for (auto& [name, value] : shard->counters) {
        // CounterSite increments bypass the shard mutex; read through
        // atomic_ref so this cross-thread read is race-free.
        part.counters.push_back(CounterValue{
            name, std::atomic_ref<uint64_t>(value).load(
                      std::memory_order_relaxed)});
      }
      part.gauges.reserve(shard->gauges.size());
      for (const auto& [name, cell] : shard->gauges) {
        part.gauges.push_back(GaugeValue{name, cell.value, cell.sequence});
      }
      part.histograms.reserve(shard->histograms.size());
      for (const auto& [name, cell] : shard->histograms) {
        HistogramValue h;
        h.name = name;
        h.bounds = cell.bounds;
        h.counts = cell.counts;
        h.count = cell.count;
        h.sum = cell.sum;
        part.histograms.push_back(std::move(h));
      }
      part.spans.reserve(shard->spans.size());
      for (const auto& [name, cell] : shard->spans) {
        SpanStats s;
        s.name = name;
        s.count = cell.count;
        s.total_ns = cell.total_ns;
        s.min_ns = cell.min_ns;
        s.max_ns = cell.max_ns;
        s.buckets.assign(cell.buckets.begin(), cell.buckets.end());
        part.spans.push_back(std::move(s));
      }
    }
    auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
    std::sort(part.counters.begin(), part.counters.end(), by_name);
    std::sort(part.gauges.begin(), part.gauges.end(), by_name);
    std::sort(part.histograms.begin(), part.histograms.end(), by_name);
    std::sort(part.spans.begin(), part.spans.end(), by_name);
    snapshot.MergeFrom(part);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  // Invalidate every cached CounterCell() pointer before freeing the nodes.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->counters.clear();
    shard->gauges.clear();
    shard->histograms.clear();
    shard->spans.clear();
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never freed.
  return *registry;
}

// --- Current-registry scoping -------------------------------------------

namespace {
thread_local MetricsRegistry* t_current_registry = nullptr;
}  // namespace

MetricsRegistry* CurrentMetrics() {
  return t_current_registry != nullptr ? t_current_registry
                                       : &MetricsRegistry::Default();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* registry)
    : previous_(t_current_registry) {
  t_current_registry = registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  t_current_registry = previous_;
}

// --- Domain-aware free functions -----------------------------------------

void CounterAdd(std::string_view name, uint64_t delta) {
  CurrentMetrics()->CounterAdd(ApplyDomain(name), delta);
}

void GaugeSet(std::string_view name, double value) {
  CurrentMetrics()->GaugeSet(ApplyDomain(name), value);
}

void HistogramObserve(std::string_view name, double value) {
  CurrentMetrics()->HistogramObserve(ApplyDomain(name), value);
}

void HistogramObserve(std::string_view name, double value,
                      std::span<const double> bounds) {
  CurrentMetrics()->HistogramObserve(ApplyDomain(name), value, bounds);
}

void SpanRecord(std::string_view name, double duration_ns) {
  CurrentMetrics()->SpanRecord(ApplyDomain(name), duration_ns);
}

}  // namespace obs
}  // namespace ampere
