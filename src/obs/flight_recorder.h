// Flight recorder: a bounded timeline of structured simulation events.
//
// The metrics registry answers "how many times did X happen" and the
// decision journal answers "what did the controller decide each minute" —
// neither answers "what happened in the ten minutes before this near-trip".
// The flight recorder is that third pillar: a bounded ring buffer of small
// POD timeline events (controller tick edges, freeze/unfreeze RPCs,
// breaker-margin crossings, degraded-mode transitions, fault-window edges,
// campus re-plans, cross-DC spillover batches), stamped with *simulation*
// time, that the trace exporter (src/obs/trace_export.h) renders as a
// Perfetto/Chrome timeline and the postmortem builder snapshots when an
// anomaly fires.
//
// Hot-path contract: Append() is a slot index bump plus a handful of POD
// stores into preallocated storage — no locks, no allocation, no hashing.
// The recorder is single-writer by construction (every instrumented site
// runs on the simulation thread of one run; the thread-local
// CurrentRecorder() scoping mirrors ScopedMetricsRegistry), so "lock-free"
// costs nothing to guarantee. Readers (trace export, postmortems) run on
// the same thread between or after events.
//
// Determinism contract: the recorder only *observes*. It never schedules
// simulation events, touches RNG streams, or feeds back into control
// decisions — the event queue's (time, seq) order, and therefore every
// simulation result, is bit-identical with the recorder attached or not.
// The anomaly sink may perform I/O (writing a postmortem artifact), which
// is likewise invisible to the simulation.
//
// Cost control: emit through AMPERE_TIMELINE / AMPERE_TIMELINE_D, which
// compile away under AMPERE_OBS_DISABLED and otherwise gate on the obs
// runtime switch plus a thread-local null check — the disabled-path
// residual is a couple of loads (measured in bench/micro_components).

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"

namespace ampere {
namespace obs {

// Every kind of timeline event the instrumented layers emit. Payload field
// semantics (a, b, c) are per-type; see the emit sites and the table in
// docs/observability.md.
enum class TimelineEventType : uint8_t {
  kTickBegin = 0,       // a=observed watts, b=budget watts, c=domain index.
  kTickEnd,             // a=E_t (effective), b=freeze ratio u, c=n_freeze.
  kFreezeRpc,           // a=attempts, b=ok (1/0), c=server id.
  kUnfreezeRpc,         // a=attempts, b=ok (1/0), c=server id.
  kBreakerMarginEnter,  // a=row watts, b=row budget watts, c=row index.
  kBreakerMarginExit,   // a=row watts, b=row budget watts, c=row index.
  kBreakerTrip,         // a=row watts, b=row budget watts, c=row index.
  kCapacityViolation,   // a=normalized power, b=budget watts, c=domain idx.
  kDegradedEnter,       // a=mode (DegradedMode), b=reading age min, c=dom.
  kDegradedExit,        // a=previous mode, c=domain index.
  kFaultWindowBegin,    // c=row index (row feed went dark).
  kFaultWindowEnd,      // c=row index (row feed recovered).
  kTelemetryStall,      // a=total stalled passes so far.
  kCampusReplan,        // a=new budget watts, b=observed watts, c=dc index.
  kSpillover,           // a=jobs moved, b=target headroom watts,
                        // c=(from_dc << 32) | to_dc.
};

// Stable lower_snake name for serialization ("tick_begin", ...).
std::string_view TimelineEventTypeName(TimelineEventType type);

// Which conceptual component emits this type — the trace exporter's track
// suffix ("controller", "monitor", "power", "campus").
std::string_view TimelineEventSource(TimelineEventType type);

// One timeline event. POD; 48 bytes.
struct TimelineEvent {
  uint64_t seq = 0;      // Monotonic append index; survives eviction.
  SimTime time;          // Simulation-time stamp.
  TimelineEventType type = TimelineEventType::kTickBegin;
  DomainId domain = 0;   // Interned metrics domain current at emit.
  double a = 0.0;        // Payload; semantics per type (see enum).
  double b = 0.0;
  uint64_t c = 0;
};

// Which event types fire the postmortem sink, and how often. Cooldown is
// simulation time: a violation that persists for an hour produces one
// artifact per cooldown window, not sixty.
struct AnomalyPolicy {
  bool on_breaker_trip = true;
  bool on_capacity_violation = true;
  bool on_degraded_enter = true;
  uint32_t max_postmortems = 4;             // Per run; 0 disables the sink.
  SimTime cooldown = SimTime::Minutes(10);  // Minimum gap between firings.
};

class FlightRecorder {
 public:
  // The ring holds the most recent `capacity` events. 16384 * 48 B = 768 KiB
  // covers several hours of minute-cadence instrumentation plus RPC bursts.
  explicit FlightRecorder(size_t capacity = 16384);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one event under the calling thread's current metrics domain.
  // Lock-free, allocation-free; evicts the oldest event when full. Fires
  // the anomaly sink (if armed) for trigger types, post-append.
  void Append(SimTime time, TimelineEventType type, double a = 0.0,
              double b = 0.0, uint64_t c = 0) {
    AppendWithDomain(CurrentDomainId(), time, type, a, b, c);
  }
  // Same, with an explicit domain (for emitters that hold a DomainId but
  // run outside any ScopedMetricsDomain, e.g. the DataCenter's breaker).
  void AppendWithDomain(DomainId domain, SimTime time, TimelineEventType type,
                        double a = 0.0, double b = 0.0, uint64_t c = 0);

  size_t capacity() const { return capacity_; }
  size_t size() const {
    return next_seq_ < capacity_ ? static_cast<size_t>(next_seq_) : capacity_;
  }
  bool empty() const { return next_seq_ == 0; }
  uint64_t total_appended() const { return next_seq_; }

  // Live events in chronological (append) order.
  std::vector<TimelineEvent> All() const;
  // The most recent `n` live events, oldest first.
  std::vector<TimelineEvent> Tail(size_t n) const;
  // Live events with begin <= time <= end, in append order.
  std::vector<TimelineEvent> Window(SimTime begin, SimTime end) const;
  // Visits live events in append order (no materialization).
  void ForEach(const std::function<void(const TimelineEvent&)>& fn) const;

  // --- Anomaly triggering ---
  // The sink runs synchronously inside Append (post-append, so the trigger
  // event itself is part of the window). It must not emit further timeline
  // events or mutate simulation state.
  void SetAnomalyPolicy(const AnomalyPolicy& policy) { policy_ = policy; }
  const AnomalyPolicy& anomaly_policy() const { return policy_; }
  void SetAnomalySink(std::function<void(const TimelineEvent&)> sink) {
    sink_ = std::move(sink);
  }
  uint64_t anomalies_fired() const { return anomalies_fired_; }

  void Clear();

 private:
  bool IsAnomalyTrigger(TimelineEventType type) const;

  const size_t capacity_;
  uint64_t next_seq_ = 0;
  std::vector<TimelineEvent> ring_;  // Preallocated to capacity_.
  AnomalyPolicy policy_;
  std::function<void(const TimelineEvent&)> sink_;
  uint64_t anomalies_fired_ = 0;
  bool anomaly_ever_fired_ = false;
  SimTime last_anomaly_time_;
};

// --- Current-recorder scoping --------------------------------------------

namespace internal {
extern thread_local FlightRecorder* t_current_recorder;
}  // namespace internal

// The recorder instrumentation on this thread currently appends to, or
// nullptr (recording disabled — the default).
inline FlightRecorder* CurrentRecorder() {
  return internal::t_current_recorder;
}

// Installs `recorder` as the calling thread's current recorder for the
// scope's lifetime. Scopes nest; strictly thread-local, exactly like
// ScopedMetricsRegistry. Passing nullptr suspends recording in the scope.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder* recorder)
      : previous_(internal::t_current_recorder) {
    internal::t_current_recorder = recorder;
  }
  ~ScopedFlightRecorder() { internal::t_current_recorder = previous_; }

  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* previous_;
};

// --- Postmortem artifacts ------------------------------------------------

struct PostmortemConfig {
  // Event window preceding (and including) the trigger.
  SimTime window = SimTime::Minutes(10);
  // Most recent decision records included from the journal (0 = none).
  size_t journal_tail = 64;
};

// Serializes one event as a JSON object (the postmortem "events" / trace
// tooling building block; exposed for tests).
std::string TimelineEventToJson(const TimelineEvent& event);

// Builds the self-describing postmortem JSON artifact for `trigger`:
// schema tag, run label, the trigger event, the recorder's event window
// ending at the trigger, a full metrics snapshot, and the journal tail.
// `journal` may be null (emits an empty tail). Pure function of its inputs;
// the caller owns writing it to disk.
std::string BuildPostmortemJson(const TimelineEvent& trigger,
                                const FlightRecorder& recorder,
                                const MetricsSnapshot& metrics,
                                const DecisionJournal* journal,
                                const PostmortemConfig& config,
                                std::string_view run_label);

}  // namespace obs
}  // namespace ampere

// --- Instrumentation macros ----------------------------------------------

#ifndef AMPERE_OBS_DISABLED

// Appends a timeline event to the current recorder, if one is installed and
// obs is runtime-enabled. `time` is a SimTime; trailing args are the
// (a, b, c) payload.
#define AMPERE_TIMELINE(time, type, ...)                               \
  do {                                                                 \
    if (::ampere::obs::Enabled()) {                                    \
      ::ampere::obs::FlightRecorder* ampere_obs_rec =                  \
          ::ampere::obs::CurrentRecorder();                            \
      if (ampere_obs_rec != nullptr) {                                 \
        ampere_obs_rec->Append((time), (type)__VA_OPT__(, )            \
                                   __VA_ARGS__);                       \
      }                                                                \
    }                                                                  \
  } while (0)

// Same, with an explicit ::ampere::obs::DomainId first.
#define AMPERE_TIMELINE_D(domain, time, type, ...)                     \
  do {                                                                 \
    if (::ampere::obs::Enabled()) {                                    \
      ::ampere::obs::FlightRecorder* ampere_obs_rec =                  \
          ::ampere::obs::CurrentRecorder();                            \
      if (ampere_obs_rec != nullptr) {                                 \
        ampere_obs_rec->AppendWithDomain((domain), (time),             \
                                         (type)__VA_OPT__(, )          \
                                             __VA_ARGS__);             \
      }                                                                \
    }                                                                  \
  } while (0)

#else  // AMPERE_OBS_DISABLED

#define AMPERE_TIMELINE(time, type, ...) ((void)0)
#define AMPERE_TIMELINE_D(domain, time, type, ...) ((void)0)

#endif  // AMPERE_OBS_DISABLED

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
