// Scoped wall-clock trace spans for the observability layer.
//
// AMPERE_SPAN("controller.tick") starts a steady_clock timer that records
// its elapsed nanoseconds into the current MetricsRegistry (src/obs/metrics.h)
// when the enclosing scope exits. Per-name aggregates (count / total /
// min / max / p50 / p99 from log2 buckets) come back via
// MetricsRegistry::Snapshot().
//
// Cost: one relaxed atomic load when obs is disabled at runtime; two
// steady_clock reads plus one shard-local map update when enabled. With
// AMPERE_OBS_DISABLED defined the macro compiles away entirely.
//
// Spans measure wall time, so their values are inherently nondeterministic;
// the harness keeps them out of ResultRow::SameData and CSV output for that
// reason. Only the obs JSON section carries them.

#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <chrono>
#include <string_view>

#include "src/obs/metrics.h"

namespace ampere {
namespace obs {

// Times the scope between construction and destruction. Arms only if obs is
// runtime-enabled at construction; a span constructed while disabled stays
// disarmed even if obs is re-enabled before it closes (keeps half-timed
// intervals out of the profile).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name)
      : name_(name), armed_(Enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (!armed_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    SpanRecord(name_,
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                       .count()));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string_view name_;  // Caller keeps the name alive (string literals).
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace ampere

#ifndef AMPERE_OBS_DISABLED

#define AMPERE_OBS_SPAN_CONCAT_INNER(a, b) a##b
#define AMPERE_OBS_SPAN_CONCAT(a, b) AMPERE_OBS_SPAN_CONCAT_INNER(a, b)
// Times the rest of the enclosing scope under `name` (a string literal).
#define AMPERE_SPAN(name)                                      \
  ::ampere::obs::ScopedSpan AMPERE_OBS_SPAN_CONCAT(ampere_span_, \
                                                   __LINE__)(name)

#else  // AMPERE_OBS_DISABLED

#define AMPERE_SPAN(name) \
  do {                    \
  } while (0)

#endif  // AMPERE_OBS_DISABLED

#endif  // SRC_OBS_SPAN_H_
