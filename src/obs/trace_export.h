// Chrome/Perfetto trace_event export for the flight recorder.
//
// Converts a FlightRecorder's timeline into the Chrome trace_event JSON
// object format ({"traceEvents":[...]}) that Perfetto's UI
// (https://ui.perfetto.dev) and chrome://tracing load directly. Mapping:
//
//   - Track = one (metrics domain, source component) pair — e.g. a 4-DC
//     campus run gets "dc0/controller", "dc0/monitor", ..., "dc3/power",
//     plus a root "campus" track for re-plans and spillover. Tracks are
//     emitted as thread_name metadata records on pid 1, with tids assigned
//     in order of first appearance (stable for a deterministic run).
//   - Controller ticks (kTickBegin / kTickEnd) become "B"/"E" duration
//     slices named "tick", so tick latency-in-sim-time renders as a span.
//   - Every other event becomes a thread-scoped instant ("ph":"i","s":"t").
//   - Timestamps are the events' *simulation* micros, so the rendered
//     timeline is the simulated day, not wall clock. Events are emitted in
//     ring order (global append order), which makes per-track timestamps
//     monotonic by construction.
//   - The (a, b, c) payload and the event type name ride in "args".

#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <string>
#include <string_view>

#include "src/obs/flight_recorder.h"

namespace ampere {
namespace obs {

// Full track name ("dc2/controller") for one event: the event's interned
// domain prefix + TimelineEventSource. Exposed for tests and dashboards.
std::string TrackNameFor(const TimelineEvent& event);

// Renders the recorder's live events as a Chrome trace_event JSON object.
// Pure; deterministic byte output for a deterministic run.
std::string BuildChromeTraceJson(const FlightRecorder& recorder,
                                 std::string_view run_label = {});

// BuildChromeTraceJson + atomic-enough file write (write then close; no
// temp-rename dance — trace files are per-run artifacts, not shared state).
// Returns false if the file could not be opened or fully written.
bool WriteChromeTraceFile(const FlightRecorder& recorder,
                          const std::string& path,
                          std::string_view run_label = {});

}  // namespace obs
}  // namespace ampere

#endif  // SRC_OBS_TRACE_EXPORT_H_
