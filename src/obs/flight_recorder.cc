#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"

namespace ampere {
namespace obs {

namespace internal {
thread_local FlightRecorder* t_current_recorder = nullptr;
}  // namespace internal

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string_view TimelineEventTypeName(TimelineEventType type) {
  switch (type) {
    case TimelineEventType::kTickBegin:
      return "tick_begin";
    case TimelineEventType::kTickEnd:
      return "tick_end";
    case TimelineEventType::kFreezeRpc:
      return "freeze_rpc";
    case TimelineEventType::kUnfreezeRpc:
      return "unfreeze_rpc";
    case TimelineEventType::kBreakerMarginEnter:
      return "breaker_margin_enter";
    case TimelineEventType::kBreakerMarginExit:
      return "breaker_margin_exit";
    case TimelineEventType::kBreakerTrip:
      return "breaker_trip";
    case TimelineEventType::kCapacityViolation:
      return "capacity_violation";
    case TimelineEventType::kDegradedEnter:
      return "degraded_enter";
    case TimelineEventType::kDegradedExit:
      return "degraded_exit";
    case TimelineEventType::kFaultWindowBegin:
      return "fault_window_begin";
    case TimelineEventType::kFaultWindowEnd:
      return "fault_window_end";
    case TimelineEventType::kTelemetryStall:
      return "telemetry_stall";
    case TimelineEventType::kCampusReplan:
      return "campus_replan";
    case TimelineEventType::kSpillover:
      return "spillover";
  }
  return "unknown";
}

std::string_view TimelineEventSource(TimelineEventType type) {
  switch (type) {
    case TimelineEventType::kTickBegin:
    case TimelineEventType::kTickEnd:
    case TimelineEventType::kFreezeRpc:
    case TimelineEventType::kUnfreezeRpc:
    case TimelineEventType::kCapacityViolation:
    case TimelineEventType::kDegradedEnter:
    case TimelineEventType::kDegradedExit:
      return "controller";
    case TimelineEventType::kBreakerMarginEnter:
    case TimelineEventType::kBreakerMarginExit:
    case TimelineEventType::kBreakerTrip:
      return "power";
    case TimelineEventType::kFaultWindowBegin:
    case TimelineEventType::kFaultWindowEnd:
    case TimelineEventType::kTelemetryStall:
      return "monitor";
    case TimelineEventType::kCampusReplan:
    case TimelineEventType::kSpillover:
      return "campus";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity) {
  AMPERE_CHECK(capacity_ > 0) << "FlightRecorder capacity must be > 0";
  ring_.resize(capacity_);
}

void FlightRecorder::AppendWithDomain(DomainId domain, SimTime time,
                                      TimelineEventType type, double a,
                                      double b, uint64_t c) {
  TimelineEvent& slot = ring_[static_cast<size_t>(next_seq_ % capacity_)];
  slot.seq = next_seq_;
  slot.time = time;
  slot.type = type;
  slot.domain = domain;
  slot.a = a;
  slot.b = b;
  slot.c = c;
  ++next_seq_;
  if (sink_ && IsAnomalyTrigger(type)) {
    const bool cooled =
        !anomaly_ever_fired_ || time >= last_anomaly_time_ + policy_.cooldown;
    if (cooled && anomalies_fired_ < policy_.max_postmortems) {
      anomaly_ever_fired_ = true;
      last_anomaly_time_ = time;
      ++anomalies_fired_;
      // Copy: the sink may append (it should not, but a dangling reference
      // into the ring must not be the failure mode if it does).
      const TimelineEvent trigger = slot;
      sink_(trigger);
    }
  }
}

bool FlightRecorder::IsAnomalyTrigger(TimelineEventType type) const {
  switch (type) {
    case TimelineEventType::kBreakerTrip:
      return policy_.on_breaker_trip;
    case TimelineEventType::kCapacityViolation:
      return policy_.on_capacity_violation;
    case TimelineEventType::kDegradedEnter:
      return policy_.on_degraded_enter;
    default:
      return false;
  }
}

std::vector<TimelineEvent> FlightRecorder::All() const {
  std::vector<TimelineEvent> out;
  out.reserve(size());
  ForEach([&out](const TimelineEvent& e) { out.push_back(e); });
  return out;
}

std::vector<TimelineEvent> FlightRecorder::Tail(size_t n) const {
  const size_t live = size();
  const size_t take = std::min(n, live);
  std::vector<TimelineEvent> out;
  out.reserve(take);
  const uint64_t first = next_seq_ - take;
  for (uint64_t seq = first; seq < next_seq_; ++seq) {
    out.push_back(ring_[static_cast<size_t>(seq % capacity_)]);
  }
  return out;
}

std::vector<TimelineEvent> FlightRecorder::Window(SimTime begin,
                                                  SimTime end) const {
  std::vector<TimelineEvent> out;
  ForEach([&](const TimelineEvent& e) {
    if (e.time >= begin && e.time <= end) out.push_back(e);
  });
  return out;
}

void FlightRecorder::ForEach(
    const std::function<void(const TimelineEvent&)>& fn) const {
  const size_t live = size();
  const uint64_t first = next_seq_ - live;
  for (uint64_t seq = first; seq < next_seq_; ++seq) {
    fn(ring_[static_cast<size_t>(seq % capacity_)]);
  }
}

void FlightRecorder::Clear() {
  next_seq_ = 0;
  anomalies_fired_ = 0;
  anomaly_ever_fired_ = false;
  last_anomaly_time_ = SimTime();
}

std::string TimelineEventToJson(const TimelineEvent& event) {
  std::string out = "{\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"time_us\":";
  out += std::to_string(event.time.micros());
  out += ",\"type\":\"";
  out += TimelineEventTypeName(event.type);
  out += "\",\"source\":\"";
  out += TimelineEventSource(event.type);
  out += "\",\"domain\":\"";
  out += JsonEscape(DomainPrefix(event.domain));
  out += "\",\"a\":";
  out += FormatDouble(event.a);
  out += ",\"b\":";
  out += FormatDouble(event.b);
  out += ",\"c\":";
  out += std::to_string(event.c);
  out += "}";
  return out;
}

std::string BuildPostmortemJson(const TimelineEvent& trigger,
                                const FlightRecorder& recorder,
                                const MetricsSnapshot& metrics,
                                const DecisionJournal* journal,
                                const PostmortemConfig& config,
                                std::string_view run_label) {
  std::string out = "{\"schema\":\"ampere.postmortem.v1\"";
  out += ",\"run\":\"";
  out += JsonEscape(run_label);
  out += "\",\"trigger\":";
  out += TimelineEventToJson(trigger);
  out += ",\"window_us\":";
  out += std::to_string(config.window.micros());
  out += ",\"events\":[";
  const SimTime begin = trigger.time.micros() > config.window.micros()
                            ? SimTime::Micros(trigger.time.micros() -
                                              config.window.micros())
                            : SimTime::Micros(0);
  bool first = true;
  recorder.ForEach([&](const TimelineEvent& e) {
    if (e.time < begin || e.time > trigger.time || e.seq > trigger.seq) return;
    if (!first) out += ",";
    first = false;
    out += TimelineEventToJson(e);
  });
  out += "],\"metrics\":";
  out += metrics.ToJson();
  out += ",\"journal_tail\":[";
  if (journal != nullptr && config.journal_tail > 0) {
    const std::vector<DecisionRecord> tail = journal->Tail(config.journal_tail);
    for (size_t i = 0; i < tail.size(); ++i) {
      if (i > 0) out += ",";
      AppendDecisionRecordJson(out, tail[i]);
    }
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace ampere
