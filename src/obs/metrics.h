// Low-overhead metrics registry for the observability layer.
//
// The production Ampere daemon exports continuous telemetry about the
// controller itself — tick latency, prediction error, actuation counts —
// alongside the power telemetry it consumes. This registry is the in-process
// half of that: named counters, gauges, and fixed-bucket histograms, plus
// wall-clock trace spans (src/obs/span.h) aggregated per name.
//
// Concurrency model: the registry is sharded per thread. Each writing
// thread owns a private shard (created lazily on first touch), so hot-path
// writes never contend with other threads; Snapshot() merges every shard
// under the shard mutexes (uncontended except during the snapshot itself).
// Merge rules: counters and histogram buckets sum; a gauge resolves to the
// most recent Set (a global sequence stamp breaks ties deterministically);
// span statistics combine count/total/min/max and log2 latency buckets.
//
// Scoping: instrumented code writes to the *current* registry —
// a thread-local override installed by ScopedMetricsRegistry, falling back
// to the process-wide Default() registry. The parallel scenario runner
// installs one private registry per run (like ScopedLogCapture), so every
// harness run gets an isolated snapshot regardless of the job count.
//
// Cost control: call sites use the AMPERE_COUNTER_ADD / AMPERE_GAUGE_SET /
// AMPERE_HISTOGRAM_OBSERVE macros below (and AMPERE_SPAN from span.h).
// With AMPERE_OBS_DISABLED defined they compile to nothing; otherwise each
// site costs one relaxed atomic load when obs::SetEnabled(false) is in
// effect — the runtime kill switch the obs_overhead micro bench uses to
// approximate the compiled-out build inside one binary.
//
// Determinism contract: the registry only *observes*. It never touches RNG
// streams or simulation state, so instrumented runs produce bit-identical
// simulation results to uninstrumented ones.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ampere {
namespace obs {

// --- Runtime kill switch -------------------------------------------------

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

// True unless SetEnabled(false) was called. Checked by the instrumentation
// macros before doing any work, so a disabled process pays one predictable
// branch per site.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// --- Metric-name domains -------------------------------------------------
//
// A domain is an interned metric-name prefix ("dc0/") applied to every
// write that goes through the free functions / macros below while it is
// current on the calling thread. It mirrors the TimeSeriesDb "campus/dcK/"
// series convention: a campus run installs one domain per data center
// around each DC component's work, so four controllers' "controller.ticks"
// land as dc0/controller.ticks .. dc3/controller.ticks instead of merging
// into one indistinguishable counter. The registry itself stays
// domain-unaware — its direct methods never prefix — so single-DC runs
// (domain 0, the root) are byte-identical to the pre-domain behavior.
//
// Prefixes are interned process-wide into immortal storage: a DomainId is a
// cheap POD handle, comparisons are integer compares, and the hot-path cost
// of domain awareness is one thread-local load per instrumented write.

using DomainId = uint32_t;  // 0 = root: no prefix.

namespace internal {
extern thread_local DomainId t_current_domain;
}  // namespace internal

// Interns `prefix` (e.g. "dc0/") and returns its handle; repeated calls
// with the same string return the same id. The empty prefix is id 0.
// Thread-safe; interned strings are never freed.
DomainId InternDomain(std::string_view prefix);

// The prefix string for a handle ("" for the root). The returned view
// points into immortal interned storage.
std::string_view DomainPrefix(DomainId id);

// The calling thread's current domain (root unless a ScopedMetricsDomain
// is live).
inline DomainId CurrentDomainId() { return internal::t_current_domain; }

// Installs `domain` as the calling thread's current domain for the scope's
// lifetime. Scopes nest; strictly thread-local, like ScopedMetricsRegistry.
class ScopedMetricsDomain {
 public:
  explicit ScopedMetricsDomain(DomainId domain)
      : previous_(internal::t_current_domain) {
    internal::t_current_domain = domain;
  }
  ~ScopedMetricsDomain() { internal::t_current_domain = previous_; }

  ScopedMetricsDomain(const ScopedMetricsDomain&) = delete;
  ScopedMetricsDomain& operator=(const ScopedMetricsDomain&) = delete;

 private:
  DomainId previous_;
};

// --- Snapshot types ------------------------------------------------------

struct CounterValue {
  std::string name;
  uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
  uint64_t sequence = 0;  // Global Set() order; latest wins on merge.
};

struct HistogramValue {
  std::string name;
  std::vector<double> bounds;    // Ascending upper bounds; +inf is implicit.
  std::vector<uint64_t> counts;  // bounds.size() + 1 buckets.
  uint64_t count = 0;
  double sum = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  // Linear interpolation inside the containing bucket; the open overflow
  // bucket reports its lower bound.
  double Quantile(double q) const;
};

// Number of log2 duration buckets a span keeps: bucket i holds samples in
// [2^i, 2^{i+1}) nanoseconds, so 40 buckets span 1 ns .. ~18 minutes.
inline constexpr size_t kSpanBuckets = 40;

struct SpanStats {
  std::string name;
  uint64_t count = 0;
  double total_ns = 0.0;
  double min_ns = 0.0;
  double max_ns = 0.0;
  std::vector<uint64_t> buckets;  // kSpanBuckets log2 buckets.

  double mean_ns() const {
    return count > 0 ? total_ns / static_cast<double>(count) : 0.0;
  }
  // Interpolated from the log2 buckets, clamped to [min_ns, max_ns].
  double Quantile(double q) const;
  double p50_ns() const { return Quantile(0.50); }
  double p99_ns() const { return Quantile(0.99); }
};

// A merged, name-sorted view of a registry (or of several snapshots).
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<SpanStats> spans;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           spans.empty();
  }

  const uint64_t* FindCounter(std::string_view name) const;
  const double* FindGauge(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;
  const SpanStats* FindSpan(std::string_view name) const;

  // Folds `other` into this snapshot using the registry merge rules
  // (counters/buckets sum, gauges latest-sequence-wins).
  void MergeFrom(const MetricsSnapshot& other);

  // Prometheus text exposition. Metric names have '.' rewritten to '_' and
  // get an "ampere_" prefix; histograms emit _bucket{le=...}/_sum/_count,
  // spans emit summary-style quantiles in seconds.
  std::string ToPrometheusText() const;
  // Compact JSON object: {"counters":{...},"gauges":{...},
  // "histograms":{...},"spans":{...}}. Deterministic field order.
  std::string ToJson() const;
};

// --- Registry ------------------------------------------------------------

// Default histogram bucket upper bounds for ad-hoc observations (roughly
// 1-2.5-5 per decade over 1e-3 .. 1e3).
std::span<const double> DefaultHistogramBounds();

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void CounterAdd(std::string_view name, uint64_t delta = 1);
  void GaugeSet(std::string_view name, double value);

  // Process-unique registry id and Reset() epoch. Call-site caches
  // (CounterSite below) compare both to detect, in O(1), that a cached cell
  // pointer belongs to a different registry or predates a Reset().
  uint64_t id() const { return id_; }
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Stable address of the calling thread's counter cell for `name` (the
  // shard maps are node-based, so the address survives rehashing). Valid
  // until the next Reset() — observable as an epoch() change — or until the
  // registry is destroyed.
  uint64_t* CounterCell(std::string_view name);
  // The first observation of a name fixes its bucket layout; later calls
  // must pass a bounds span of the same size (contents are trusted).
  void HistogramObserve(std::string_view name, double value,
                        std::span<const double> bounds);
  void HistogramObserve(std::string_view name, double value) {
    HistogramObserve(name, value, DefaultHistogramBounds());
  }
  void SpanRecord(std::string_view name, double duration_ns);

  // Merges every thread shard into one name-sorted snapshot.
  MetricsSnapshot Snapshot() const;

  // Clears all shards (names and values) and advances epoch(), invalidating
  // every cached CounterCell() pointer. Must not race with writers: callers
  // reset between runs, at points where no instrumented code is executing
  // against this registry (the harness already guarantees this).
  void Reset();

  // The process-wide registry instrumentation writes to when no scoped
  // registry is installed on the calling thread.
  static MetricsRegistry& Default();

  // Opaque per-thread shard; defined in metrics.cc. Public only so the
  // thread-local shard cache there can name it.
  struct Shard;

 private:
  Shard& LocalShard();

  const uint64_t id_;  // Process-unique; never reused.
  std::atomic<uint64_t> epoch_{0};  // Bumped by Reset().
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// --- Current-registry scoping -------------------------------------------

// The registry instrumentation on this thread currently writes to:
// the innermost live ScopedMetricsRegistry, else Default().
MetricsRegistry* CurrentMetrics();

// Redirects the calling thread's instrumentation into `registry` for the
// scope's lifetime. Scopes nest; the previous target is restored on exit.
// Strictly thread-local, exactly like ScopedLogCapture.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry* registry);
  ~ScopedMetricsRegistry();

  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* previous_;
};

// Convenience free functions routing to CurrentMetrics(), with the current
// domain's prefix applied to the name (via a thread-local scratch buffer,
// allocation-free once warm). Prefer the macros below at instrumentation
// sites (they honour AMPERE_OBS_DISABLED and the runtime switch).
void CounterAdd(std::string_view name, uint64_t delta = 1);
void GaugeSet(std::string_view name, double value);
void HistogramObserve(std::string_view name, double value);
void HistogramObserve(std::string_view name, double value,
                      std::span<const double> bounds);
void SpanRecord(std::string_view name, double duration_ns);

// --- Counter call-site cache ---------------------------------------------
//
// The generic CounterAdd pays a thread-local shard lookup, a mutex lock and
// a string hash probe on every call — fine at minute cadence, too heavy for
// per-event sites inside the simulation loop (job submitted, task placed).
// A CounterSite caches the resolved cell pointer per (call site, thread):
// the steady-state Add() is two loads, two compares and a relaxed
// increment, with no lock and no hashing. The AMPERE_COUNTER_ADD macro
// below declares one `static thread_local` site per expansion.
//
// Correctness: shards are single-writer (the owning thread), so the
// unlocked increment cannot lose updates; Snapshot() on another thread
// reads the cell through std::atomic_ref, making the unlocked write/read
// pair race-free. A registry switch (ScopedMetricsRegistry), a Reset(), or
// a domain switch (ScopedMetricsDomain) is detected by comparing the cached
// registry id, epoch, and domain, after which the site rebinds through the
// normal locked path — a site caches the cell of its *domain-prefixed*
// name, so "controller.ticks" emitted under domain "dc0/" lands in
// dc0/controller.ticks.
//
// `name` must point at storage that outlives the site (string literals at
// the macro sites).
class CounterSite {
 public:
  constexpr explicit CounterSite(std::string_view name) : name_(name) {}

  void Add(uint64_t delta) {
    MetricsRegistry* registry = CurrentMetrics();
    if (registry->id() != registry_id_ || registry->epoch() != epoch_ ||
        internal::t_current_domain != domain_) [[unlikely]] {
      Rebind(*registry);
    }
    std::atomic_ref<uint64_t> cell(*cell_);
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

 private:
  void Rebind(MetricsRegistry& registry);

  std::string_view name_;
  uint64_t* cell_ = nullptr;
  uint64_t registry_id_ = 0;  // 0 is never a live registry id.
  uint64_t epoch_ = 0;
  DomainId domain_ = 0;
};

}  // namespace obs
}  // namespace ampere

// --- Instrumentation macros ----------------------------------------------

#ifndef AMPERE_OBS_DISABLED

// `name` must be a string literal (or otherwise have static storage
// duration): each expansion declares a thread-local CounterSite that keeps
// the name by reference for rebinding after registry switches.
#define AMPERE_COUNTER_ADD(name, delta)                       \
  do {                                                        \
    if (::ampere::obs::Enabled()) {                           \
      static thread_local ::ampere::obs::CounterSite          \
          ampere_obs_counter_site{(name)};                    \
      ampere_obs_counter_site.Add((delta));                   \
    }                                                         \
  } while (0)

#define AMPERE_GAUGE_SET(name, value)            \
  do {                                           \
    if (::ampere::obs::Enabled()) {              \
      ::ampere::obs::GaugeSet((name), (value));  \
    }                                            \
  } while (0)

#define AMPERE_HISTOGRAM_OBSERVE(name, value)              \
  do {                                                     \
    if (::ampere::obs::Enabled()) {                        \
      ::ampere::obs::HistogramObserve((name), (value));    \
    }                                                      \
  } while (0)

#define AMPERE_OBS_DOMAIN_CONCAT_INNER(a, b) a##b
#define AMPERE_OBS_DOMAIN_CONCAT(a, b) AMPERE_OBS_DOMAIN_CONCAT_INNER(a, b)
// Installs `domain_id` (an ::ampere::obs::DomainId) as the current metrics
// domain for the rest of the enclosing scope. Compiles away with
// AMPERE_OBS_DISABLED, so instrumented components can scope their work
// unconditionally.
#define AMPERE_METRICS_DOMAIN(domain_id)           \
  ::ampere::obs::ScopedMetricsDomain               \
      AMPERE_OBS_DOMAIN_CONCAT(ampere_obs_domain_, \
                               __LINE__)(domain_id)

#else  // AMPERE_OBS_DISABLED

#define AMPERE_COUNTER_ADD(name, delta) ((void)0)
#define AMPERE_GAUGE_SET(name, value) ((void)0)
#define AMPERE_HISTOGRAM_OBSERVE(name, value) ((void)0)
#define AMPERE_METRICS_DOMAIN(domain_id) ((void)0)

#endif  // AMPERE_OBS_DISABLED

#endif  // SRC_OBS_METRICS_H_
