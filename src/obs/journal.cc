#include "src/obs/journal.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/common/check.h"

namespace ampere {
namespace obs {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// CSV fields never contain commas in practice (domain names are simple
// identifiers), but quote defensively if one does.
std::string CsvField(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string_view> SplitLine(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseI64(std::string_view s, int64_t* out) {
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  uint64_t v;
  if (!ParseU64(s, &v)) return false;
  *out = negative ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  return true;
}

bool ParseF64(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(std::string_view s, bool* out) {
  if (s == "1") {
    *out = true;
    return true;
  }
  if (s == "0") {
    *out = false;
    return true;
  }
  return false;
}

constexpr char kCsvHeader[] =
    "seq,time_us,domain,observed_watts,budget_watts,normalized_power,et,"
    "violation,predicted_next,realized_next,realized_valid,u,cap_engaged,"
    "n_freeze,n_servers,freeze_ops,unfreeze_ops,pool_size,p_threshold,"
    "degraded,reading_age_us,et_effective,rpc_failures,rpc_giveups";
constexpr size_t kCsvFields = 24;

}  // namespace

// --- JournalSummary ------------------------------------------------------

const JournalDomainSummary* JournalSummary::FindDomain(
    std::string_view name) const {
  for (const auto& d : domains) {
    if (d.domain == name) return &d;
  }
  return nullptr;
}

std::string JournalSummary::ToJson() const {
  std::string out = "{\"records\":";
  out += std::to_string(records);
  out += ",\"total_appended\":";
  out += std::to_string(total_appended);
  out += ",\"domains\":{";
  bool first = true;
  for (const auto& d : domains) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(d.domain);
    out += "\":{\"ticks\":";
    out += std::to_string(d.ticks);
    out += ",\"violations\":";
    out += std::to_string(d.violations);
    out += ",\"capped_ticks\":";
    out += std::to_string(d.capped_ticks);
    out += ",\"u_mean\":";
    out += FormatDouble(d.u_mean);
    out += ",\"u_max\":";
    out += FormatDouble(d.u_max);
    out += ",\"p_mean\":";
    out += FormatDouble(d.p_mean);
    out += ",\"p_max\":";
    out += FormatDouble(d.p_max);
    out += ",\"degraded_ticks\":";
    out += std::to_string(d.degraded_ticks);
    out += ",\"blackout_skips\":";
    out += std::to_string(d.blackout_skips);
    out += ",\"rpc_failures\":";
    out += std::to_string(d.rpc_failures);
    out += ",\"rpc_giveups\":";
    out += std::to_string(d.rpc_giveups);
    out += "}";
  }
  out += "}}";
  return out;
}

// --- DecisionJournal -----------------------------------------------------

DecisionJournal::DecisionJournal(size_t capacity) : capacity_(capacity) {
  AMPERE_CHECK(capacity_ > 0) << "DecisionJournal capacity must be positive";
  records_.reserve(std::min<size_t>(capacity_, 1024));
}

uint64_t DecisionJournal::Append(DecisionRecord record) {
  record.seq = next_seq_++;
  if (records_.size() < capacity_) {
    records_.push_back(std::move(record));
  } else {
    records_[head_] = std::move(record);
    head_ = (head_ + 1) % capacity_;
  }
  return next_seq_ - 1;
}

size_t DecisionJournal::IndexOfSeq(uint64_t seq) const {
  if (seq >= next_seq_) return records_.size();
  const uint64_t oldest = next_seq_ - records_.size();
  if (seq < oldest) return records_.size();  // Evicted.
  return (head_ + static_cast<size_t>(seq - oldest)) % capacity_;
}

bool DecisionJournal::SetRealized(uint64_t seq, double realized_next) {
  const size_t index = IndexOfSeq(seq);
  if (index >= records_.size()) return false;
  records_[index].realized_next = realized_next;
  records_[index].realized_valid = true;
  return true;
}

const DecisionRecord* DecisionJournal::FindBySeq(uint64_t seq) const {
  const size_t index = IndexOfSeq(seq);
  return index < records_.size() ? &records_[index] : nullptr;
}

std::vector<DecisionRecord> DecisionJournal::Query(
    SimTime begin, SimTime end, std::string_view domain) const {
  std::vector<DecisionRecord> out;
  const size_t n = records_.size();
  for (size_t i = 0; i < n; ++i) {
    const DecisionRecord& r = records_[(head_ + i) % capacity_];
    if (r.time < begin || r.time >= end) continue;
    if (!domain.empty() && r.domain != domain) continue;
    out.push_back(r);
  }
  return out;
}

std::vector<DecisionRecord> DecisionJournal::Tail(
    size_t n, std::string_view domain) const {
  std::vector<DecisionRecord> out;
  const size_t live = records_.size();
  // Walk backwards collecting up to n matches, then reverse to oldest-first.
  for (size_t i = live; i-- > 0 && out.size() < n;) {
    const DecisionRecord& r = records_[(head_ + i) % capacity_];
    if (!domain.empty() && r.domain != domain) continue;
    out.push_back(r);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

JournalSummary DecisionJournal::Summarize() const {
  JournalSummary summary;
  summary.records = records_.size();
  summary.total_appended = next_seq_;

  // Accumulate sums per domain in append order — the same order and
  // arithmetic as GroupReport::Finalize (sum over minutes, then divide),
  // so the results are bit-identical to a recorder that saw the same ticks.
  struct Accum {
    uint64_t ticks = 0;
    uint64_t violations = 0;
    uint64_t capped = 0;
    double u_sum = 0.0;
    double u_max = 0.0;
    double p_sum = 0.0;
    double p_max = 0.0;
    uint64_t degraded = 0;
    uint64_t blackout_skips = 0;
    uint64_t rpc_failures = 0;
    uint64_t rpc_giveups = 0;
  };
  std::map<std::string, Accum> accums;  // Name-sorted for free.
  const size_t n = records_.size();
  for (size_t i = 0; i < n; ++i) {
    const DecisionRecord& r = records_[(head_ + i) % capacity_];
    Accum& a = accums[r.domain];
    a.ticks += 1;
    if (r.violation) a.violations += 1;
    if (r.cap_engaged) a.capped += 1;
    // Aggregate the *realized* freeze ratio n_freeze / n_servers — the exact
    // division MinutePoint.freeze_ratio performs — not the solved u_t. After
    // reconciliation the frozen set always has exactly n_freeze members, so
    // this is the quantity GroupReport's u_mean / u_max are built from.
    const double realized_u =
        r.n_servers > 0 ? static_cast<double>(r.n_freeze) /
                              static_cast<double>(r.n_servers)
                        : 0.0;
    a.u_sum += realized_u;
    a.u_max = std::max(a.u_max, realized_u);
    a.p_sum += r.normalized_power;
    a.p_max = std::max(a.p_max, r.normalized_power);
    if (r.degraded != DegradedMode::kNone) a.degraded += 1;
    if (r.degraded == DegradedMode::kBlackoutSkip) a.blackout_skips += 1;
    a.rpc_failures += r.rpc_failures;
    a.rpc_giveups += r.rpc_giveups;
  }
  summary.domains.reserve(accums.size());
  for (const auto& [name, a] : accums) {
    JournalDomainSummary d;
    d.domain = name;
    d.ticks = a.ticks;
    d.violations = a.violations;
    d.capped_ticks = a.capped;
    d.u_mean = a.ticks > 0 ? a.u_sum / static_cast<double>(a.ticks) : 0.0;
    d.u_max = a.u_max;
    d.p_mean = a.ticks > 0 ? a.p_sum / static_cast<double>(a.ticks) : 0.0;
    d.p_max = a.p_max;
    d.degraded_ticks = a.degraded;
    d.blackout_skips = a.blackout_skips;
    d.rpc_failures = a.rpc_failures;
    d.rpc_giveups = a.rpc_giveups;
    summary.domains.push_back(std::move(d));
  }
  return summary;
}

std::optional<double> DecisionJournal::RollingModelRmse(
    size_t window, std::string_view domain) const {
  double sum_sq = 0.0;
  size_t count = 0;
  const size_t live = records_.size();
  for (size_t i = live; i-- > 0 && count < window;) {
    const DecisionRecord& r = records_[(head_ + i) % capacity_];
    if (!r.realized_valid) continue;
    if (!domain.empty() && r.domain != domain) continue;
    const double err = r.predicted_next - r.realized_next;
    sum_sq += err * err;
    count += 1;
  }
  if (count == 0) return std::nullopt;
  return std::sqrt(sum_sq / static_cast<double>(count));
}

std::optional<double> DecisionJournal::RollingEtMarginUtilization(
    size_t window, std::string_view domain) const {
  double sum = 0.0;
  size_t count = 0;
  const size_t live = records_.size();
  for (size_t i = live; i-- > 0 && count < window;) {
    const DecisionRecord& r = records_[(head_ + i) % capacity_];
    if (!r.realized_valid || r.et == 0.0) continue;
    if (!domain.empty() && r.domain != domain) continue;
    sum += 1.0 + (r.realized_next - r.predicted_next) / r.et;
    count += 1;
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

const char* DecisionJournal::CsvHeader() { return kCsvHeader; }

std::string DecisionJournal::ToCsv() const {
  std::string out = kCsvHeader;
  out += '\n';
  const size_t n = records_.size();
  for (size_t i = 0; i < n; ++i) {
    const DecisionRecord& r = records_[(head_ + i) % capacity_];
    out += std::to_string(r.seq);
    out += ',' + std::to_string(r.time.micros());
    out += ',' + CsvField(r.domain);
    out += ',' + FormatDouble(r.observed_watts);
    out += ',' + FormatDouble(r.budget_watts);
    out += ',' + FormatDouble(r.normalized_power);
    out += ',' + FormatDouble(r.et);
    out += r.violation ? ",1" : ",0";
    out += ',' + FormatDouble(r.predicted_next);
    out += ',' + FormatDouble(r.realized_next);
    out += r.realized_valid ? ",1" : ",0";
    out += ',' + FormatDouble(r.u);
    out += r.cap_engaged ? ",1" : ",0";
    out += ',' + std::to_string(r.n_freeze);
    out += ',' + std::to_string(r.n_servers);
    out += ',' + std::to_string(r.freeze_ops);
    out += ',' + std::to_string(r.unfreeze_ops);
    out += ',' + std::to_string(r.pool_size);
    out += ',' + FormatDouble(r.p_threshold);
    out += ',' + std::to_string(static_cast<uint32_t>(r.degraded));
    out += ',' + std::to_string(r.reading_age_us);
    out += ',' + FormatDouble(r.et_effective);
    out += ',' + std::to_string(r.rpc_failures);
    out += ',' + std::to_string(r.rpc_giveups);
    out += '\n';
  }
  return out;
}

std::string DecisionRecordToJson(const DecisionRecord& r) {
  std::string out;
  AppendDecisionRecordJson(out, r);
  return out;
}

void AppendDecisionRecordJson(std::string& out, const DecisionRecord& r) {
  {
    out += "{\"seq\":";
    out += std::to_string(r.seq);
    out += ",\"time_us\":";
    out += std::to_string(r.time.micros());
    out += ",\"domain\":\"";
    out += JsonEscape(r.domain);
    out += "\",\"observed_watts\":";
    out += FormatDouble(r.observed_watts);
    out += ",\"budget_watts\":";
    out += FormatDouble(r.budget_watts);
    out += ",\"normalized_power\":";
    out += FormatDouble(r.normalized_power);
    out += ",\"et\":";
    out += FormatDouble(r.et);
    out += ",\"violation\":";
    out += r.violation ? "true" : "false";
    out += ",\"predicted_next\":";
    out += FormatDouble(r.predicted_next);
    out += ",\"realized_next\":";
    out += FormatDouble(r.realized_next);
    out += ",\"realized_valid\":";
    out += r.realized_valid ? "true" : "false";
    out += ",\"u\":";
    out += FormatDouble(r.u);
    out += ",\"cap_engaged\":";
    out += r.cap_engaged ? "true" : "false";
    out += ",\"n_freeze\":";
    out += std::to_string(r.n_freeze);
    out += ",\"n_servers\":";
    out += std::to_string(r.n_servers);
    out += ",\"freeze_ops\":";
    out += std::to_string(r.freeze_ops);
    out += ",\"unfreeze_ops\":";
    out += std::to_string(r.unfreeze_ops);
    out += ",\"pool_size\":";
    out += std::to_string(r.pool_size);
    out += ",\"p_threshold\":";
    out += FormatDouble(r.p_threshold);
    out += ",\"degraded\":";
    out += std::to_string(static_cast<uint32_t>(r.degraded));
    out += ",\"reading_age_us\":";
    out += std::to_string(r.reading_age_us);
    out += ",\"et_effective\":";
    out += FormatDouble(r.et_effective);
    out += ",\"rpc_failures\":";
    out += std::to_string(r.rpc_failures);
    out += ",\"rpc_giveups\":";
    out += std::to_string(r.rpc_giveups);
    out += "}";
  }
}

std::string DecisionJournal::ToJson() const {
  std::string out = "[";
  const size_t n = records_.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ",";
    AppendDecisionRecordJson(out, records_[(head_ + i) % capacity_]);
  }
  out += "]";
  return out;
}

std::optional<std::vector<DecisionRecord>> DecisionJournal::ParseCsv(
    std::string_view csv) {
  std::vector<DecisionRecord> out;
  size_t line_start = 0;
  bool saw_header = false;
  while (line_start < csv.size()) {
    size_t line_end = csv.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = csv.size();
    const std::string_view line = csv.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kCsvHeader) return std::nullopt;
      saw_header = true;
      continue;
    }
    const auto fields = SplitLine(line);
    if (fields.size() != kCsvFields) return std::nullopt;
    DecisionRecord r;
    int64_t time_us = 0;
    int64_t reading_age_us = 0;
    uint64_t n_freeze, n_servers, freeze_ops, unfreeze_ops, pool_size;
    uint64_t degraded, rpc_failures, rpc_giveups;
    const bool ok =
        ParseU64(fields[0], &r.seq) && ParseI64(fields[1], &time_us) &&
        ParseF64(fields[3], &r.observed_watts) &&
        ParseF64(fields[4], &r.budget_watts) &&
        ParseF64(fields[5], &r.normalized_power) &&
        ParseF64(fields[6], &r.et) && ParseBool(fields[7], &r.violation) &&
        ParseF64(fields[8], &r.predicted_next) &&
        ParseF64(fields[9], &r.realized_next) &&
        ParseBool(fields[10], &r.realized_valid) &&
        ParseF64(fields[11], &r.u) && ParseBool(fields[12], &r.cap_engaged) &&
        ParseU64(fields[13], &n_freeze) && ParseU64(fields[14], &n_servers) &&
        ParseU64(fields[15], &freeze_ops) &&
        ParseU64(fields[16], &unfreeze_ops) &&
        ParseU64(fields[17], &pool_size) &&
        ParseF64(fields[18], &r.p_threshold) &&
        ParseU64(fields[19], &degraded) && degraded <= 2 &&
        ParseI64(fields[20], &reading_age_us) &&
        ParseF64(fields[21], &r.et_effective) &&
        ParseU64(fields[22], &rpc_failures) &&
        ParseU64(fields[23], &rpc_giveups);
    if (!ok) return std::nullopt;
    r.time = SimTime::Micros(time_us);
    r.domain = std::string(fields[2]);
    r.n_freeze = static_cast<uint32_t>(n_freeze);
    r.n_servers = static_cast<uint32_t>(n_servers);
    r.freeze_ops = static_cast<uint32_t>(freeze_ops);
    r.unfreeze_ops = static_cast<uint32_t>(unfreeze_ops);
    r.pool_size = static_cast<uint32_t>(pool_size);
    r.degraded = static_cast<DegradedMode>(degraded);
    r.reading_age_us = reading_age_us;
    r.rpc_failures = static_cast<uint32_t>(rpc_failures);
    r.rpc_giveups = static_cast<uint32_t>(rpc_giveups);
    out.push_back(std::move(r));
  }
  if (!saw_header) return std::nullopt;
  return out;
}

void DecisionJournal::Clear() {
  records_.clear();
  head_ = 0;
  // next_seq_ keeps counting: sequence numbers are never reused.
}

}  // namespace obs
}  // namespace ampere
