#include "src/obs/trace_export.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

namespace ampere {
namespace obs {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Assigns stable tids to tracks in order of first appearance.
class TrackTable {
 public:
  int TidFor(const std::string& track) {
    auto [it, inserted] = tids_.try_emplace(track, next_tid_);
    if (inserted) {
      names_.push_back(track);
      ++next_tid_;
    }
    return it->second;
  }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, int> tids_;
  std::vector<std::string> names_;
  int next_tid_ = 1;
};

void AppendEventArgs(std::string& out, const TimelineEvent& e) {
  out += "\"args\":{\"type\":\"";
  out += TimelineEventTypeName(e.type);
  out += "\",\"a\":";
  out += FormatDouble(e.a);
  out += ",\"b\":";
  out += FormatDouble(e.b);
  out += ",\"c\":";
  out += std::to_string(e.c);
  out += ",\"seq\":";
  out += std::to_string(e.seq);
  out += "}";
}

}  // namespace

std::string TrackNameFor(const TimelineEvent& event) {
  std::string track(DomainPrefix(event.domain));
  track += TimelineEventSource(event.type);
  return track;
}

std::string BuildChromeTraceJson(const FlightRecorder& recorder,
                                 std::string_view run_label) {
  TrackTable tracks;
  std::string events;
  recorder.ForEach([&](const TimelineEvent& e) {
    const int tid = tracks.TidFor(TrackNameFor(e));
    if (!events.empty()) events += ",\n";
    events += "{\"name\":\"";
    const char* ph = "i";
    if (e.type == TimelineEventType::kTickBegin) {
      ph = "B";
      events += "tick";
    } else if (e.type == TimelineEventType::kTickEnd) {
      ph = "E";
      events += "tick";
    } else {
      events += TimelineEventTypeName(e.type);
    }
    events += "\",\"ph\":\"";
    events += ph;
    events += "\"";
    if (*ph == 'i') events += ",\"s\":\"t\"";
    events += ",\"ts\":";
    events += std::to_string(e.time.micros());
    events += ",\"pid\":1,\"tid\":";
    events += std::to_string(tid);
    events += ",";
    AppendEventArgs(events, e);
    events += "}";
  });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":"
                    "\"ampere.trace.v1\",\"run\":\"";
  out += JsonEscape(run_label);
  out += "\"},\"traceEvents\":[\n";
  // Track metadata first so viewers label threads before any slice arrives.
  const std::vector<std::string>& names = tracks.names();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",\n";
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(static_cast<int>(i) + 1);
    out += ",\"args\":{\"name\":\"";
    out += JsonEscape(names[i]);
    out += "\"}}";
  }
  if (!events.empty()) {
    if (!names.empty()) out += ",\n";
    out += events;
  }
  out += "\n]}";
  return out;
}

bool WriteChromeTraceFile(const FlightRecorder& recorder,
                          const std::string& path,
                          std::string_view run_label) {
  const std::string json = BuildChromeTraceJson(recorder, run_label);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (written != json.size()) std::fclose(f);
  return ok;
}

}  // namespace obs
}  // namespace ampere
