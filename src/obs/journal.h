// DecisionJournal: a bounded, queryable audit log of controller decisions.
//
// The paper's production daemon "logs controller decisions for audit". This
// is that log, structured: one DecisionRecord per controller minute-tick per
// power domain, capturing everything Algorithm 1 saw and chose — observed row
// power against budget, the hourly E_t margin, the freeze ratio u_t it
// solved for, how many servers actually froze or thawed, the r_stable
// hysteresis pool state, and whether the max_freeze_ratio safety net capped
// the solution. The next tick backfills the *realized* next-minute power, so
// every resolved record carries a (predicted, realized) pair for the
// f(u) = kr·u effect model.
//
// Records live in a bounded ring buffer (oldest evicted first) addressed by
// a monotonically increasing sequence number that survives eviction — seq i
// is either retrievable or provably gone, never silently reused. On top of
// the ring:
//   - Query(): time-range + optional-domain scans,
//   - Summarize(): per-domain tick/violation/u/p aggregates using the exact
//     summation order of GroupReport::Finalize, so a journal kept alongside
//     a ControlledExperiment reproduces Table-2 counts bit-for-bit,
//   - RollingModelRmse() / RollingEtMarginUtilization(): model-drift
//     statistics over the last N resolved records, which the controller
//     re-exports as obs gauges each tick,
//   - ToCsv()/ToJson() with a ParseCsv() inverse for offline analysis.
//
// Thread-compatibility: like the controller that feeds it, the journal is
// confined to one thread (a harness run); it does no locking of its own.

#ifndef SRC_OBS_JOURNAL_H_
#define SRC_OBS_JOURNAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace ampere {
namespace obs {

// How much a controller tick had to degrade because of faulty telemetry.
enum class DegradedMode : uint32_t {
  kNone = 0,        // Fresh reading; normal Algorithm-1 tick.
  kStaleFallback = 1,  // Reading older than the control interval: the tick
                       // used last-known-good power with a widened E_t.
  kBlackoutSkip = 2,   // Domain feed blacked out (or never sampled): the
                       // tick held the frozen set rather than guess.
};
struct DecisionRecord {
  uint64_t seq = 0;       // Assigned by DecisionJournal::Append.
  SimTime time;           // Tick time.
  std::string domain;     // Power-domain (group) name.

  // What the controller observed.
  double observed_watts = 0.0;     // Latest aggregated domain power.
  double budget_watts = 0.0;       // Domain power budget (PM · budget).
  double normalized_power = 0.0;   // observed / budget = P_t / PM.
  double et = 0.0;                 // Hourly margin E_t (normalized).
  bool violation = false;          // normalized_power > 1.0.

  // What it predicted and what happened. predicted_next is the one-step
  // model bound P_t + E_t − kr·u_t; realized_next is filled in by the next
  // tick for the same domain (realized_valid says whether it arrived).
  double predicted_next = 0.0;
  double realized_next = 0.0;
  bool realized_valid = false;

  // What it chose and what that did.
  double u = 0.0;           // Chosen freeze ratio u_t ∈ [0, max_freeze].
  bool cap_engaged = false; // Safety net: u hit max_freeze_ratio.
  uint32_t n_freeze = 0;    // Target frozen-server count ⌈u·n⌉.
  uint32_t n_servers = 0;   // Domain population.
  uint32_t freeze_ops = 0;  // Servers newly frozen this tick.
  uint32_t unfreeze_ops = 0;  // Servers newly thawed this tick.

  // r_stable hysteresis state at selection time.
  uint32_t pool_size = 0;     // Candidate pool after the r_stable filter.
  double p_threshold = 0.0;   // Power threshold defining the pool (watts).

  // Fault/degradation state (all zero on a healthy tick, so fault-free
  // journals are unchanged apart from the wider schema).
  DegradedMode degraded = DegradedMode::kNone;
  int64_t reading_age_us = 0;  // Age of the power reading the tick used.
  double et_effective = 0.0;   // E_t after stale widening (== et when fresh).
  uint32_t rpc_failures = 0;   // Failed freeze/unfreeze RPC attempts.
  uint32_t rpc_giveups = 0;    // Ops abandoned after retry exhaustion.
};

// Per-domain aggregate over journal records, summed in append order with the
// same arithmetic as GroupReport::Finalize (Table 2 columns). u_mean / u_max
// aggregate the realized freeze ratio n_freeze / n_servers — the quantity
// MinutePoint.freeze_ratio records — not the solved u_t in DecisionRecord::u.
struct JournalDomainSummary {
  std::string domain;
  uint64_t ticks = 0;
  uint64_t violations = 0;
  uint64_t capped_ticks = 0;
  double u_mean = 0.0;
  double u_max = 0.0;
  double p_mean = 0.0;  // Mean normalized power.
  double p_max = 0.0;   // Max normalized power.
  // Fault bookkeeping: ticks that ran degraded, split by mode, plus the
  // RPC adversity the domain absorbed.
  uint64_t degraded_ticks = 0;   // Any mode != kNone.
  uint64_t blackout_skips = 0;   // Mode == kBlackoutSkip.
  uint64_t rpc_failures = 0;     // Summed failed RPC attempts.
  uint64_t rpc_giveups = 0;      // Summed retry-exhausted operations.
};

// Whole-journal summary: per-domain rows (name-sorted) plus the totals the
// harness surfaces per run.
struct JournalSummary {
  uint64_t records = 0;        // Live records at summary time.
  uint64_t total_appended = 0; // Including evicted.
  std::vector<JournalDomainSummary> domains;

  const JournalDomainSummary* FindDomain(std::string_view name) const;
  // Compact JSON object, deterministic field order.
  std::string ToJson() const;
};

class DecisionJournal {
 public:
  // Capacity must be > 0; the ring holds the most recent `capacity` records.
  // 4096 comfortably covers a fig10-style day (1440 minute-ticks per domain,
  // two domains) without eviction.
  explicit DecisionJournal(size_t capacity = 4096);

  size_t capacity() const { return capacity_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  uint64_t total_appended() const { return next_seq_; }

  // Appends a record (evicting the oldest if full) and returns its assigned
  // sequence number. `record.seq` is overwritten.
  uint64_t Append(DecisionRecord record);

  // Backfills realized next-minute power on an earlier record. Returns false
  // if the record was already evicted.
  bool SetRealized(uint64_t seq, double realized_next);

  // Returns the live record with this sequence number, or nullptr if it was
  // evicted (or never appended).
  const DecisionRecord* FindBySeq(uint64_t seq) const;

  // All live records with begin <= time < end, in append order. An empty
  // `domain` matches every domain.
  std::vector<DecisionRecord> Query(SimTime begin, SimTime end,
                                    std::string_view domain = {}) const;

  // Most recent `n` live records (optionally domain-filtered), oldest first.
  std::vector<DecisionRecord> Tail(size_t n,
                                   std::string_view domain = {}) const;

  // Aggregates live records per domain in append order; replicates the
  // GroupReport::Finalize summation so the counts line up bit-for-bit with
  // a ControlledExperiment over the same window.
  JournalSummary Summarize() const;

  // Root-mean-square error of predicted vs realized normalized power over
  // the last `window` *resolved* records for `domain` (empty = all
  // domains). nullopt if no resolved records exist.
  std::optional<double> RollingModelRmse(size_t window,
                                         std::string_view domain = {}) const;

  // Mean E_t margin utilization over the same window: for each resolved
  // record, 1 + (realized − predicted) / E_t — i.e. the fraction of the
  // hourly margin the next minute actually consumed (1.0 = exactly the
  // model bound, > 1 = hotter than predicted). Records with E_t == 0 are
  // skipped. nullopt if nothing qualifies.
  std::optional<double> RollingEtMarginUtilization(
      size_t window, std::string_view domain = {}) const;

  // CSV with a fixed header (see kCsvHeader); doubles use shortest
  // round-trip formatting so ParseCsv(ToCsv()) is lossless.
  static const char* CsvHeader();
  std::string ToCsv() const;
  // JSON array of record objects, deterministic field order.
  std::string ToJson() const;

  // Parses ToCsv() output back into records (header required). Returns
  // nullopt on malformed input.
  static std::optional<std::vector<DecisionRecord>> ParseCsv(
      std::string_view csv);

  void Clear();

 private:
  size_t IndexOfSeq(uint64_t seq) const;  // records_.size() if not live.

  const size_t capacity_;
  uint64_t next_seq_ = 0;      // Seq of the next Append.
  size_t head_ = 0;            // Ring index of the oldest live record.
  std::vector<DecisionRecord> records_;  // Ring storage, size <= capacity_.
};

// One record as a compact JSON object, field-for-field identical to an
// element of DecisionJournal::ToJson() — shared with the flight recorder's
// postmortem artifacts so journal tails parse the same everywhere.
std::string DecisionRecordToJson(const DecisionRecord& record);
// Appends the same object to `out` without intermediate allocation.
void AppendDecisionRecordJson(std::string& out, const DecisionRecord& record);

}  // namespace obs
}  // namespace ampere

#endif  // SRC_OBS_JOURNAL_H_
