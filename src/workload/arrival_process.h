// Diurnal job arrival process.
//
// §4.1.1: arrival rate in the production cluster is 400-600 jobs/minute and
// "varies a lot over time"; Fig. 8 shows hour-scale swings plus minute-scale
// spikes. We model a non-homogeneous Poisson process whose rate combines a
// sinusoidal diurnal profile with a slow mean-reverting (AR(1)) modulation,
// plus rare short bursts that produce the spiky behaviour Fig. 9 quantifies.

#ifndef SRC_WORKLOAD_ARRIVAL_PROCESS_H_
#define SRC_WORKLOAD_ARRIVAL_PROCESS_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace ampere {

struct ArrivalProcessParams {
  double base_rate_per_min = 500.0;
  // Fractional diurnal swing: rate multiplier spans [1-a, 1+a] over the day.
  double diurnal_amplitude = 0.15;
  double peak_hour = 14.0;  // Hour of day with the highest rate.
  // Slow AR(1) modulation (per-minute step): x' = rho*x + N(0, s);
  // multiplier = exp(x). Gives each row/product its own wandering load.
  double ar_rho = 0.98;
  double ar_sigma = 0.01;
  // Burst model: with probability `burst_prob` per minute, the rate is
  // multiplied by `burst_factor` for that minute.
  double burst_prob = 0.01;
  double burst_factor = 1.6;
};

class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalProcessParams& params, Rng rng);

  // Instantaneous nominal rate (jobs/min) at `t` before Poisson sampling;
  // deterministic in the diurnal component, stochastic in AR/burst state.
  double CurrentRatePerMin(SimTime t) const;

  // Samples arrival offsets (relative to `minute_start`) for one 1-minute
  // window and advances the AR/burst state. Offsets are sorted.
  std::vector<SimTime> SampleMinute(SimTime minute_start);

 private:
  ArrivalProcessParams params_;
  mutable Rng rng_;
  double ar_state_ = 0.0;
  bool burst_active_ = false;
};

}  // namespace ampere

#endif  // SRC_WORKLOAD_ARRIVAL_PROCESS_H_
