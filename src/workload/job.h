// Batch job model and the sink interface through which generated jobs reach
// the scheduler.

#ifndef SRC_WORKLOAD_JOB_H_
#define SRC_WORKLOAD_JOB_H_

#include <optional>

#include "src/cluster/resources.h"
#include "src/common/ids.h"
#include "src/common/time.h"

namespace ampere {

struct JobSpec {
  JobId id;
  Resources demand;
  // Work at full frequency; equals wall-clock duration on an unthrottled
  // server (Fig. 7's "job duration").
  SimTime duration;
  // If set, the job must be placed on servers of this row. Models the
  // "different rows mainly focus on running different sets of products"
  // observation (§2.2) when reproducing Figs. 1-2.
  std::optional<RowId> row_affinity;
};

// Destination for generated jobs (implemented by the scheduler).
class JobSink {
 public:
  virtual ~JobSink() = default;
  virtual void Submit(const JobSpec& job) = 0;
};

}  // namespace ampere

#endif  // SRC_WORKLOAD_JOB_H_
