// Batch workload generator: drives Poisson job arrivals into the scheduler.
//
// One generator models one "product" (§2.2: different rows mainly run
// different products). Multi-row experiments instantiate one generator per
// row with distinct rates/phases so cross-row power is weakly correlated, as
// Fig. 2 requires.

#ifndef SRC_WORKLOAD_BATCH_WORKLOAD_H_
#define SRC_WORKLOAD_BATCH_WORKLOAD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulation.h"
#include "src/workload/arrival_process.h"
#include "src/workload/duration_model.h"
#include "src/workload/job.h"

namespace ampere {

// Monotonic JobId source shared by all generators in one experiment.
class JobIdAllocator {
 public:
  JobId Next() { return JobId(next_++); }

 private:
  int32_t next_ = 0;
};

// A job size class and its sampling weight.
struct DemandProfile {
  Resources demand;
  double weight = 1.0;
};

struct BatchWorkloadParams {
  ArrivalProcessParams arrivals;
  DurationModelParams durations;
  // Defaults (set in the constructor if empty): 40 % 1-core, 40 % 2-core,
  // 20 % 4-core containers -> mean 2.0 cores, matching §4.1.3's "each job has
  // similar average resource requirements".
  std::vector<DemandProfile> demands;
  std::optional<RowId> row_affinity;
};

class BatchWorkload {
 public:
  // `sim`, `sink`, and `ids` must outlive the workload.
  BatchWorkload(const BatchWorkloadParams& params, Simulation* sim,
                JobSink* sink, JobIdAllocator* ids, Rng rng);

  // Begins generating at `at`, one minute-batch at a time, forever.
  void Start(SimTime at);

  uint64_t jobs_generated() const { return jobs_generated_; }

 private:
  void GenerateMinute(SimTime minute_start);
  Resources SampleDemand();

  BatchWorkloadParams params_;
  Simulation* sim_;
  JobSink* sink_;
  JobIdAllocator* ids_;
  Rng rng_;
  ArrivalProcess arrivals_;
  DurationModel durations_;
  double total_weight_ = 0.0;
  uint64_t jobs_generated_ = 0;
};

}  // namespace ampere

#endif  // SRC_WORKLOAD_BATCH_WORKLOAD_H_
