// Versioned binary workload-trace format (ampere.trace.v1) with
// record/replay.
//
// The CSV trace in trace.h is the human-exchange format; this is the
// machine contract: a length-prefixed binary layout that captures exactly
// what the synthetic generator fed the scheduler — arrival instants at
// microsecond resolution, per-job demand, duration, row affinity, and the
// demand-class ("op mix") index — so a recorded run can be replayed
// byte-identically: same JobIds, same submission instants, same event-queue
// ordering, therefore the same ResultTable/DecisionJournal/TimeSeriesDb
// bytes.
//
// Layout (all integers little-endian):
//   magic[8]  = "AMPTRACE"
//   u32       version            (1 for ampere.trace.v1)
//   u32       header_len         (bytes of header payload that follow)
//   header payload:
//     u64     seed               (the recording run's master seed)
//     u64     job_count
//     u32     class_count        (the demand mix; may be 0)
//     class_count x { f64 cpu_cores, f64 memory_gb, f64 weight }
//   job_count records, each length-prefixed:
//     u32     record_len         (payload bytes; >= 38 in v1)
//     i64     submit_us          (non-decreasing across records)
//     i64     duration_us        (> 0)
//     f64     cpu_cores          (> 0, finite)
//     f64     memory_gb          (>= 0, finite)
//     i32     row_affinity       (-1 = schedule anywhere)
//     u16     class_id           (index into classes; 0xffff = custom)
//     ... record_len - 38 bytes a v1 reader skips (forward compatibility:
//         a v1.x writer may append fields without breaking old readers)
//   u32       end marker 0xA19E57E1 (truncation tripwire)
//
// Versioning rules (docs/traces.md): same-version readers must accept
// longer records (skip the tail); any layout change that old readers cannot
// skip bumps `version`, and readers reject unknown versions with
// TraceError::kVersionSkew rather than guessing.
//
// The parser NEVER throws or CHECK-fails on malformed input — a trace file
// is external data. Every failure mode maps to a structured TraceError with
// a byte offset, which the fuzz suite (tests/fuzz_invariants_test.cpp)
// pins under ASan/UBSan.

#ifndef SRC_WORKLOAD_TRACE_FORMAT_H_
#define SRC_WORKLOAD_TRACE_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulation.h"
#include "src/workload/batch_workload.h"
#include "src/workload/job.h"

namespace ampere {

// One demand class of the recorded op mix (mirrors DemandProfile).
struct TraceClass {
  double cpu_cores = 0.0;
  double memory_gb = 0.0;
  double weight = 0.0;
};

// 0xffff in TraceJob::class_id: demand did not match any recorded class.
inline constexpr uint16_t kTraceCustomClass = 0xffff;

struct TraceJob {
  int64_t submit_us = 0;
  int64_t duration_us = 0;
  double cpu_cores = 0.0;
  double memory_gb = 0.0;
  int32_t row_affinity = -1;  // -1 = schedule anywhere.
  uint16_t class_id = kTraceCustomClass;
};

struct TraceData {
  uint64_t seed = 0;
  std::vector<TraceClass> classes;  // The op mix (may be empty).
  std::vector<TraceJob> jobs;       // Non-decreasing submit_us.
};

enum class TraceError : int {
  kNone = 0,
  kIo,             // File unreadable / unwritable.
  kBadMagic,       // Not an AMPTRACE file.
  kVersionSkew,    // Version this reader does not understand.
  kTruncated,      // File ends before the declared content.
  kCorruptLength,  // A length prefix is impossible (too small / absurd).
  kBadRecord,      // A field fails validation (range / NaN / class id).
  kOutOfOrder,     // submit_us decreases between records.
  kBadTrailer,     // End marker wrong, or trailing bytes after it.
};

const char* TraceErrorName(TraceError error);

// Structured parse outcome. `trace` is meaningful only when ok().
struct TraceParseResult {
  TraceError error = TraceError::kNone;
  std::string message;     // Human-readable, includes the byte offset.
  size_t byte_offset = 0;  // Where parsing stopped.
  TraceData trace;

  bool ok() const { return error == TraceError::kNone; }
};

// Serializes to the v1 byte layout above. Pure function of `trace`.
std::string SerializeTrace(const TraceData& trace);

// Parses bytes; never throws, never CHECK-fails (see TraceError).
TraceParseResult ParseTrace(std::string_view bytes);

// File wrappers. WriteTraceFile returns false (and logs) on I/O failure;
// ReadTraceFile reports unreadable files as TraceError::kIo.
bool WriteTraceFile(const std::string& path, const TraceData& trace);
TraceParseResult ReadTraceFile(const std::string& path);

// --- Recording -----------------------------------------------------------

// JobSink decorator: forwards every job unchanged to `next` while logging
// it into a TraceData. Interposed between the generator and the scheduler
// it is invisible to the run (same JobSpecs, same instants), so the
// recording run IS the run being captured.
class TraceRecorder : public JobSink {
 public:
  // `sim` and `next` must outlive the recorder.
  TraceRecorder(Simulation* sim, JobSink* next);

  void Submit(const JobSpec& job) override;

  void set_seed(uint64_t seed) { trace_.seed = seed; }
  // Records the op mix in the header and enables class_id tagging. Pass the
  // effective demand profiles (empty = BatchWorkload's default mix).
  void SetClasses(const std::vector<DemandProfile>& demands);

  uint64_t jobs_recorded() const { return trace_.jobs.size(); }
  const TraceData& trace() const { return trace_; }

 private:
  Simulation* sim_;
  JobSink* next_;
  TraceData trace_;
};

// --- Replay --------------------------------------------------------------

// Drop-in arrival source that replays a trace through a JobSink. Mirrors
// BatchWorkload's event pattern exactly — one periodic per-minute batch
// task that allocates JobIds at the minute boundary and schedules each
// submission at its recorded instant — so a replayed run's event-queue seq
// numbers (and thus all tie-breaking) match the recording run's.
class TraceArrivalProcess {
 public:
  // `sim`, `sink`, and `ids` must outlive the process. `trace` must have
  // non-decreasing submit_us (guaranteed by ParseTrace / TraceRecorder).
  TraceArrivalProcess(std::shared_ptr<const TraceData> trace,
                      Simulation* sim, JobSink* sink, JobIdAllocator* ids);

  // Begins replaying at `at`; records before `at` are an error.
  void Start(SimTime at);

  size_t jobs_total() const { return trace_->jobs.size(); }
  uint64_t jobs_submitted() const { return jobs_submitted_; }

 private:
  void SubmitMinute(SimTime minute_start);

  std::shared_ptr<const TraceData> trace_;
  Simulation* sim_;
  JobSink* sink_;
  JobIdAllocator* ids_;
  size_t cursor_ = 0;
  uint64_t jobs_submitted_ = 0;
  bool started_ = false;
};

// --- Adversarial trace generation ----------------------------------------

// Seeded generators for the input sequences the synthetic distribution
// never produces — the cases an online controller is weakest against.
struct AdversarialTraceParams {
  enum class Kind : int {
    kBursts = 0,        // Minute-scale rate spikes (burst_factor x).
    kSynchronized = 1,  // Thundering herds: sync_batch jobs at one instant.
    kHeavyTail = 2,     // Pareto durations: a few jobs pin servers for hours.
  };
  Kind kind = Kind::kBursts;
  uint64_t seed = 1;
  SimTime duration = SimTime::Hours(4);
  double base_rate_per_min = 100.0;
  // kBursts: with burst_prob per minute the rate is multiplied.
  double burst_prob = 0.08;
  double burst_factor = 6.0;
  // kSynchronized: every sync_period, sync_batch jobs arrive at the same
  // microsecond (cron-style synchronized clients).
  SimTime sync_period = SimTime::Minutes(10);
  int sync_batch = 256;
  // kHeavyTail: Pareto(alpha) durations scaled to mean_minutes, clamped to
  // max_duration_minutes.
  double heavy_tail_alpha = 1.3;
  double mean_minutes = 12.0;
  double max_duration_minutes = 600.0;
  // Demand mix; empty = BatchWorkload's default mix.
  std::vector<DemandProfile> demands;
};

TraceData GenerateAdversarialTrace(const AdversarialTraceParams& params);

}  // namespace ampere

#endif  // SRC_WORKLOAD_TRACE_FORMAT_H_
