#include "src/workload/duration_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/check.h"

namespace ampere {

DurationModel::DurationModel(const DurationModelParams& params)
    : params_(params) {
  AMPERE_CHECK(params.log_sigma > 0.0);
  AMPERE_CHECK(params.min_minutes > 0.0);
  AMPERE_CHECK(params.max_minutes > params.min_minutes);
}

SimTime DurationModel::Sample(Rng& rng) const {
  double minutes = rng.LogNormal(params_.log_mean_minutes, params_.log_sigma);
  minutes = std::clamp(minutes, params_.min_minutes, params_.max_minutes);
  return SimTime::Minutes(minutes);
}

double DurationModel::UntruncatedMeanMinutes() const {
  return std::exp(params_.log_mean_minutes +
                  params_.log_sigma * params_.log_sigma / 2.0);
}

namespace {
// Standard normal CDF.
double Phi(double x) { return 0.5 * std::erfc(-x / std::numbers::sqrt2); }
}  // namespace

double DurationModel::TruncatedMeanMinutes() const {
  // E[clamp(X, a, b)] = a*P(X<a) + b*P(X>b) + E[X; a<=X<=b] for lognormal X:
  // E[X; X<=t] = exp(mu + s^2/2) * Phi((ln t - mu)/s - s).
  const double mu = params_.log_mean_minutes;
  const double s = params_.log_sigma;
  const double a = params_.min_minutes;
  const double b = params_.max_minutes;
  double alpha = (std::log(a) - mu) / s;
  double beta = (std::log(b) - mu) / s;
  double body = UntruncatedMeanMinutes() * (Phi(beta - s) - Phi(alpha - s));
  return a * Phi(alpha) + b * (1.0 - Phi(beta)) + body;
}

}  // namespace ampere
