#include "src/workload/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/check.h"

namespace ampere {

ArrivalProcess::ArrivalProcess(const ArrivalProcessParams& params, Rng rng)
    : params_(params), rng_(rng) {
  AMPERE_CHECK(params.base_rate_per_min >= 0.0);
  AMPERE_CHECK(params.diurnal_amplitude >= 0.0 &&
               params.diurnal_amplitude < 1.0);
  AMPERE_CHECK(params.ar_rho >= 0.0 && params.ar_rho < 1.0);
}

double ArrivalProcess::CurrentRatePerMin(SimTime t) const {
  double hours = t.hours();
  double phase =
      2.0 * std::numbers::pi * (hours - params_.peak_hour) / 24.0;
  double diurnal = 1.0 + params_.diurnal_amplitude * std::cos(phase);
  double modulation = std::exp(ar_state_);
  double burst = burst_active_ ? params_.burst_factor : 1.0;
  return params_.base_rate_per_min * diurnal * modulation * burst;
}

std::vector<SimTime> ArrivalProcess::SampleMinute(SimTime minute_start) {
  // Advance the slow modulation once per minute.
  ar_state_ = params_.ar_rho * ar_state_ +
              rng_.Normal(0.0, params_.ar_sigma);
  burst_active_ = rng_.Bernoulli(params_.burst_prob);

  double rate = CurrentRatePerMin(minute_start);
  int64_t n = rng_.Poisson(rate);
  std::vector<SimTime> offsets;
  offsets.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    offsets.push_back(SimTime::Seconds(rng_.Uniform(0.0, 60.0)));
  }
  std::sort(offsets.begin(), offsets.end());
  return offsets;
}

}  // namespace ampere
