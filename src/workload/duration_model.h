// Job duration distribution, calibrated to Fig. 7 of the paper.
//
// The paper's batch jobs have mean duration ≈ 9 minutes with ~40 % finishing
// within 2 minutes and ~97 % within 50 minutes. A lognormal clamped to
// [0.1, 120] minutes with log-mean 1.091 and log-sigma 1.57 reproduces all
// three points (the log-mean is chosen so the clamp keeps the *truncated*
// mean at ~9 min):
//   P(X <= 2 min)  = Φ((ln 2 − 1.091)/1.57)   ≈ 0.40
//   E[clamp(X)]    ≈ 9.1 min
//   P(X <= 50 min) = Φ((ln 50 − 1.091)/1.57)  ≈ 0.96
// The clamp keeps pathological tail samples from distorting drain
// experiments; it moves < 1 % of the mass.

#ifndef SRC_WORKLOAD_DURATION_MODEL_H_
#define SRC_WORKLOAD_DURATION_MODEL_H_

#include "src/common/rng.h"
#include "src/common/time.h"

namespace ampere {

struct DurationModelParams {
  double log_mean_minutes = 1.091;  // mu of ln(duration in minutes).
  double log_sigma = 1.57;
  double min_minutes = 0.1;
  double max_minutes = 120.0;
};

class DurationModel {
 public:
  DurationModel() : DurationModel(DurationModelParams{}) {}
  explicit DurationModel(const DurationModelParams& params);

  SimTime Sample(Rng& rng) const;

  // Analytic mean of the *untruncated* lognormal, for calibration checks.
  double UntruncatedMeanMinutes() const;

  // Analytic mean of the clamped distribution actually sampled — what
  // Little's-law workload calibration must use.
  double TruncatedMeanMinutes() const;

 private:
  DurationModelParams params_;
};

}  // namespace ampere

#endif  // SRC_WORKLOAD_DURATION_MODEL_H_
