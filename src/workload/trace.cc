#include "src/workload/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/check.h"
#include "src/workload/arrival_process.h"
#include "src/workload/duration_model.h"

namespace ampere {
namespace {

constexpr char kHeader[] = "submit_min,duration_min,cpu_cores,memory_gb,row";

}  // namespace

void WriteJobTrace(std::ostream& out, const std::vector<TraceRecord>& trace) {
  out << kHeader << "\n";
  char line[160];
  for (const TraceRecord& r : trace) {
    std::snprintf(line, sizeof(line), "%.6f,%.6f,%.3f,%.3f,%d\n",
                  r.submit_minutes, r.duration_minutes, r.cpu_cores,
                  r.memory_gb, r.row_affinity);
    out << line;
  }
}

std::vector<TraceRecord> ReadJobTrace(std::istream& in) {
  std::vector<TraceRecord> trace;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (line_number == 1) {
      AMPERE_CHECK(line == kHeader)
          << "bad trace header at line 1: '" << line << "'";
      continue;
    }
    TraceRecord r;
    std::istringstream fields(line);
    std::string field;
    double* targets[4] = {&r.submit_minutes, &r.duration_minutes,
                          &r.cpu_cores, &r.memory_gb};
    for (double* target : targets) {
      AMPERE_CHECK(std::getline(fields, field, ','))
          << "trace line " << line_number << ": too few fields";
      try {
        *target = std::stod(field);
      } catch (const std::exception&) {
        AMPERE_CHECK(false) << "trace line " << line_number
                            << ": non-numeric field '" << field << "'";
      }
    }
    AMPERE_CHECK(std::getline(fields, field, ','))
        << "trace line " << line_number << ": missing row field";
    try {
      r.row_affinity = std::stoi(field);
    } catch (const std::exception&) {
      AMPERE_CHECK(false) << "trace line " << line_number
                          << ": non-numeric row '" << field << "'";
    }
    AMPERE_CHECK(r.submit_minutes >= 0.0 && r.duration_minutes > 0.0 &&
                 r.cpu_cores > 0.0 && r.memory_gb >= 0.0)
        << "trace line " << line_number << ": out-of-range values";
    trace.push_back(r);
  }
  return trace;
}

void WriteJobTraceFile(const std::string& path,
                       const std::vector<TraceRecord>& trace) {
  std::ofstream out(path);
  AMPERE_CHECK(out.good()) << "cannot open " << path << " for writing";
  WriteJobTrace(out, trace);
  AMPERE_CHECK(out.good()) << "write to " << path << " failed";
}

std::vector<TraceRecord> ReadJobTraceFile(const std::string& path) {
  std::ifstream in(path);
  AMPERE_CHECK(in.good()) << "cannot open " << path;
  return ReadJobTrace(in);
}

std::vector<TraceRecord> SampleTrace(const BatchWorkloadParams& params,
                                     SimTime duration, Rng rng) {
  // Mirror BatchWorkload's sampling, but into records instead of a sink.
  std::vector<DemandProfile> demands = params.demands;
  if (demands.empty()) {
    demands = {{Resources{1.0, 2.0}, 0.4},
               {Resources{2.0, 4.0}, 0.4},
               {Resources{4.0, 8.0}, 0.2}};
  }
  double total_weight = 0.0;
  for (const DemandProfile& d : demands) {
    total_weight += d.weight;
  }
  ArrivalProcess arrivals(params.arrivals, rng.Fork(1));
  DurationModel durations(params.durations);
  Rng local = rng.Fork(2);

  std::vector<TraceRecord> trace;
  int64_t minutes = static_cast<int64_t>(duration.minutes());
  for (int64_t m = 0; m < minutes; ++m) {
    SimTime minute_start = SimTime::Minutes(static_cast<double>(m));
    for (SimTime offset : arrivals.SampleMinute(minute_start)) {
      TraceRecord r;
      r.submit_minutes = (minute_start + offset).minutes();
      r.duration_minutes = durations.Sample(local).minutes();
      double pick = local.Uniform(0.0, total_weight);
      double acc = 0.0;
      const DemandProfile* chosen = &demands.back();
      for (const DemandProfile& d : demands) {
        acc += d.weight;
        if (pick <= acc) {
          chosen = &d;
          break;
        }
      }
      r.cpu_cores = chosen->demand.cpu_cores;
      r.memory_gb = chosen->demand.memory_gb;
      r.row_affinity =
          params.row_affinity.has_value() ? params.row_affinity->value() : -1;
      trace.push_back(r);
    }
  }
  return trace;
}

TraceWorkload::TraceWorkload(std::vector<TraceRecord> trace, Simulation* sim,
                             JobSink* sink, JobIdAllocator* ids)
    : trace_(std::move(trace)), sim_(sim), sink_(sink), ids_(ids) {
  AMPERE_CHECK(sim != nullptr && sink != nullptr && ids != nullptr);
}

void TraceWorkload::Start() {
  AMPERE_CHECK(!started_) << "trace already started";
  started_ = true;
  for (const TraceRecord& r : trace_) {
    SimTime at = SimTime::Minutes(r.submit_minutes);
    AMPERE_CHECK(at >= sim_->now())
        << "trace record submits in the past: " << r.submit_minutes << " min";
    JobSpec job;
    job.id = ids_->Next();
    job.demand = Resources{r.cpu_cores, r.memory_gb};
    job.duration = SimTime::Minutes(r.duration_minutes);
    if (r.row_affinity >= 0) {
      job.row_affinity = RowId(r.row_affinity);
    }
    sim_->ScheduleAt(at, [this, job] {
      ++jobs_submitted_;
      sink_->Submit(job);
    });
  }
}

}  // namespace ampere
