#include "src/workload/interactive_service.h"

#include "src/common/check.h"

namespace ampere {

const char* RedisOpName(RedisOp op) {
  switch (op) {
    case RedisOp::kSet:
      return "SET";
    case RedisOp::kGet:
      return "GET";
    case RedisOp::kLpush:
      return "LPUSH";
    case RedisOp::kLpop:
      return "LPOP";
    case RedisOp::kLrange600:
      return "LRANGE_600";
    case RedisOp::kMset:
      return "MSET";
  }
  return "?";
}

double RedisOpBaseServiceMicros(RedisOp op) {
  switch (op) {
    case RedisOp::kSet:
      return 70.0;
    case RedisOp::kGet:
      return 60.0;
    case RedisOp::kLpush:
      return 75.0;
    case RedisOp::kLpop:
      return 75.0;
    case RedisOp::kLrange600:
      return 600.0;
    case RedisOp::kMset:
      return 180.0;
  }
  return 100.0;
}

InteractiveService::InteractiveService(const InteractiveServiceParams& params,
                                       Simulation* sim, DataCenter* dc,
                                       Rng rng)
    : params_(params), sim_(sim), dc_(dc), rng_(rng) {
  AMPERE_CHECK(sim != nullptr && dc != nullptr);
  AMPERE_CHECK(!params.servers.empty());
  AMPERE_CHECK(params.requests_per_sec_per_server > 0.0);
  histograms_.reserve(kNumRedisOps);
  for (int i = 0; i < kNumRedisOps; ++i) {
    histograms_.emplace_back(0.0, params.histogram_max_ms,
                             params.histogram_bins);
    op_base_us_[static_cast<size_t>(i)] =
        RedisOpBaseServiceMicros(static_cast<RedisOp>(i));
  }
  instances_.reserve(params.servers.size());
  for (ServerId id : params.servers) {
    instances_.push_back(Instance{id, {}, false});
  }
}

void InteractiveService::Run(SimTime start, SimTime until,
                             SimTime measure_from) {
  AMPERE_CHECK(until > start);
  until_ = until;
  measure_from_ = measure_from;
  for (size_t i = 0; i < instances_.size(); ++i) {
    // Pin the resident service task: effectively permanent (it outlives the
    // experiment window by a wide margin).
    TaskSpec resident;
    resident.job = JobId(-1000 - static_cast<int32_t>(i));
    resident.demand = params_.resident_demand;
    resident.work = SimTime::Hours(24 * 365);
    AMPERE_CHECK(dc_->PlaceTask(instances_[i].server, resident))
        << "resident service task does not fit on server "
        << instances_[i].server.value();
  }
  // Seed every instance's first arrival in one batch over the server list
  // rather than bouncing through one starter event per instance: the (gap,
  // op) draws happen here in instance order — exactly the order the starter
  // events would have fired in at `start` — so the rng_ sequence is
  // unchanged, and N heap pushes + pops of trampoline events disappear.
  const double mean_gap_us = 1e6 / params_.requests_per_sec_per_server;
  for (size_t i = 0; i < instances_.size(); ++i) {
    SimTime gap = SimTime::Micros(
        static_cast<int64_t>(rng_.Exponential(mean_gap_us)) + 1);
    SimTime at = start + gap;
    if (at > until_) {
      continue;  // Window too short for this instance's first request.
    }
    auto op = static_cast<RedisOp>(rng_.UniformInt(0, kNumRedisOps - 1));
    sim_->ScheduleAt(at, [this, i, at, op] {
      OnArrival(i, at, op);
      ScheduleNextArrival(i);
    });
  }
}

void InteractiveService::ScheduleNextArrival(size_t instance_idx) {
  double mean_gap_us = 1e6 / params_.requests_per_sec_per_server;
  SimTime gap = SimTime::Micros(
      static_cast<int64_t>(rng_.Exponential(mean_gap_us)) + 1);
  SimTime at = sim_->now() + gap;
  if (at > until_) {
    return;  // Benchmark window over; stop this instance's arrivals.
  }
  auto op = static_cast<RedisOp>(rng_.UniformInt(0, kNumRedisOps - 1));
  sim_->ScheduleAt(at, [this, instance_idx, at, op] {
    OnArrival(instance_idx, at, op);
    ScheduleNextArrival(instance_idx);
  });
}

void InteractiveService::OnArrival(size_t instance_idx, SimTime arrival,
                                   RedisOp op) {
  Instance& inst = instances_[instance_idx];
  if (inst.busy) {
    inst.queue.emplace_back(arrival, op);
    return;
  }
  BeginService(instance_idx, arrival, op);
}

void InteractiveService::BeginService(size_t instance_idx, SimTime arrival,
                                      RedisOp op) {
  Instance& inst = instances_[instance_idx];
  inst.busy = true;
  // Service rate scales with the server's current DVFS frequency: a capped
  // CPU processes the same request more slowly.
  double freq = dc_->server(inst.server).frequency();
  double jitter = rng_.LogNormal(0.0, params_.service_jitter_sigma);
  double service_us = op_base_us_[static_cast<size_t>(op)] * jitter / freq;
  SimTime done = sim_->now() + SimTime::Micros(
                                   static_cast<int64_t>(service_us) + 1);
  sim_->ScheduleAt(done, [this, instance_idx, arrival, op, done] {
    Instance& instance = instances_[instance_idx];
    ++requests_served_;
    if (arrival >= measure_from_) {
      double latency_ms = (done - arrival).millis();
      histograms_[static_cast<size_t>(op)].Add(latency_ms);
    }
    instance.busy = false;
    if (!instance.queue.empty()) {
      auto [next_arrival, next_op] = instance.queue.front();
      instance.queue.pop_front();
      BeginService(instance_idx, next_arrival, next_op);
    }
  });
}

}  // namespace ampere
