#include "src/workload/batch_workload.h"

#include "src/common/check.h"

namespace ampere {

BatchWorkload::BatchWorkload(const BatchWorkloadParams& params,
                             Simulation* sim, JobSink* sink,
                             JobIdAllocator* ids, Rng rng)
    : params_(params), sim_(sim), sink_(sink), ids_(ids), rng_(rng),
      arrivals_(params.arrivals, rng_.Fork(1)),
      durations_(params.durations) {
  AMPERE_CHECK(sim != nullptr && sink != nullptr && ids != nullptr);
  if (params_.demands.empty()) {
    params_.demands = {
        {Resources{1.0, 2.0}, 0.4},
        {Resources{2.0, 4.0}, 0.4},
        {Resources{4.0, 8.0}, 0.2},
    };
  }
  for (const DemandProfile& d : params_.demands) {
    AMPERE_CHECK(d.weight > 0.0);
    total_weight_ += d.weight;
  }
}

void BatchWorkload::Start(SimTime at) {
  sim_->SchedulePeriodic(at, SimTime::Minutes(1),
                         [this](SimTime t) { GenerateMinute(t); });
}

void BatchWorkload::GenerateMinute(SimTime minute_start) {
  for (SimTime offset : arrivals_.SampleMinute(minute_start)) {
    JobSpec job;
    job.id = ids_->Next();
    job.demand = SampleDemand();
    job.duration = durations_.Sample(rng_);
    job.row_affinity = params_.row_affinity;
    ++jobs_generated_;
    sim_->ScheduleAt(minute_start + offset,
                     [this, job] { sink_->Submit(job); });
  }
}

Resources BatchWorkload::SampleDemand() {
  double pick = rng_.Uniform(0.0, total_weight_);
  double acc = 0.0;
  for (const DemandProfile& d : params_.demands) {
    acc += d.weight;
    if (pick <= acc) {
      return d.demand;
    }
  }
  return params_.demands.back().demand;
}

}  // namespace ampere
