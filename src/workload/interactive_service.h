// Latency-critical interactive service (Redis-like), used to reproduce the
// Fig. 11 comparison between hardware power capping and Ampere.
//
// Each participating server hosts one single-threaded service instance
// (Redis is single-threaded and CPU-bound, §4.3) modeled as a resident task
// plus a FIFO request queue. Requests arrive open-loop (Poisson) and are
// served at a rate proportional to the server's current DVFS frequency, so
// row-level capping directly stretches service times and builds queues —
// the paper's explanation for the ~2x p99.9 latency inflation.

#ifndef SRC_WORKLOAD_INTERACTIVE_SERVICE_H_
#define SRC_WORKLOAD_INTERACTIVE_SERVICE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/stats/histogram.h"

namespace ampere {

// The redis-benchmark operations the paper reports (Fig. 11), with base
// service costs at full frequency. LRANGE_600 walks 600 list entries and is
// an order of magnitude more expensive than point ops; MSET writes 10 keys.
enum class RedisOp : int {
  kSet = 0,
  kGet = 1,
  kLpush = 2,
  kLpop = 3,
  kLrange600 = 4,
  kMset = 5,
};
inline constexpr int kNumRedisOps = 6;

const char* RedisOpName(RedisOp op);
double RedisOpBaseServiceMicros(RedisOp op);

struct InteractiveServiceParams {
  std::vector<ServerId> servers;
  // Open-loop arrival rate per server, all ops combined. The default puts a
  // single-threaded instance at ~35 % utilization at full frequency, leaving
  // headroom that throttling erodes.
  double requests_per_sec_per_server = 2500.0;
  // Resources held by the resident service task on each server.
  Resources resident_demand{6.0, 24.0};
  // Multiplicative lognormal jitter on service times.
  double service_jitter_sigma = 0.2;
  // Latency histogram layout.
  double histogram_max_ms = 200.0;
  int histogram_bins = 20000;
};

class InteractiveService {
 public:
  // `sim` and `dc` must outlive the service.
  InteractiveService(const InteractiveServiceParams& params, Simulation* sim,
                     DataCenter* dc, Rng rng);

  // Places the resident task on every participating server (they must have
  // capacity) and generates requests from `start` to `until`. Latencies are
  // recorded only for requests arriving in [measure_from, until].
  void Run(SimTime start, SimTime until, SimTime measure_from);

  const Histogram& latency_histogram(RedisOp op) const {
    return histograms_[static_cast<size_t>(op)];
  }
  uint64_t requests_served() const { return requests_served_; }

 private:
  struct Instance {
    ServerId server;
    std::deque<std::pair<SimTime, RedisOp>> queue;  // (arrival, op)
    bool busy = false;
  };

  void ScheduleNextArrival(size_t instance_idx);
  void OnArrival(size_t instance_idx, SimTime arrival, RedisOp op);
  void BeginService(size_t instance_idx, SimTime arrival, RedisOp op);

  InteractiveServiceParams params_;
  Simulation* sim_;
  DataCenter* dc_;
  Rng rng_;
  // Base service cost per op, built once in the constructor so the hot
  // BeginService path is a table load instead of a switch.
  std::array<double, kNumRedisOps> op_base_us_{};
  std::vector<Instance> instances_;
  std::vector<Histogram> histograms_;
  SimTime until_;
  SimTime measure_from_;
  uint64_t requests_served_ = 0;
};

}  // namespace ampere

#endif  // SRC_WORKLOAD_INTERACTIVE_SERVICE_H_
