#include "src/workload/trace_format.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/workload/duration_model.h"

namespace ampere {
namespace {

constexpr char kMagic[8] = {'A', 'M', 'P', 'T', 'R', 'A', 'C', 'E'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndMarker = 0xA19E57E1u;
// Fixed header payload: seed + job_count + class_count.
constexpr size_t kHeaderFixedBytes = 8 + 8 + 4;
constexpr size_t kClassBytes = 3 * 8;
// v1 job record payload: submit + duration + cpu + mem + row + class.
constexpr size_t kJobRecordBytes = 8 + 8 + 8 + 8 + 4 + 2;
// A length prefix beyond this is corruption, not a future extension: even
// generous v1.x record growth stays far below it.
constexpr uint32_t kMaxRecordBytes = 4096;
constexpr uint32_t kMaxClasses = 4096;

// --- Little-endian encoding (explicit, so traces are host-independent) ---

void Put16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void Put32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Put64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  Put64(out, std::bit_cast<uint64_t>(v));
}

void PutI64(std::string* out, int64_t v) {
  Put64(out, static_cast<uint64_t>(v));
}

// Bounds-checked cursor over the input bytes. Read* return false instead of
// overrunning; the caller maps that to a structured error.
struct Reader {
  std::string_view bytes;
  size_t pos = 0;

  size_t remaining() const { return bytes.size() - pos; }

  bool Read16(uint16_t* v) {
    if (remaining() < 2) return false;
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
    *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
    pos += 2;
    return true;
  }

  bool Read32(uint32_t* v) {
    if (remaining() < 4) return false;
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos += 4;
    return true;
  }

  bool Read64(uint64_t* v) {
    if (remaining() < 8) return false;
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(p[i]) << (8 * i);
    }
    *v = out;
    pos += 8;
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t bits = 0;
    if (!Read64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t bits = 0;
    if (!Read64(&bits)) return false;
    *v = static_cast<int64_t>(bits);
    return true;
  }
};

TraceParseResult Fail(TraceError error, size_t offset, std::string message) {
  TraceParseResult result;
  result.error = error;
  result.byte_offset = offset;
  result.message = std::string(TraceErrorName(error)) + " at byte " +
                   std::to_string(offset) + ": " + std::move(message);
  return result;
}

std::vector<DemandProfile> EffectiveDemands(
    const std::vector<DemandProfile>& demands) {
  if (!demands.empty()) {
    return demands;
  }
  // BatchWorkload's default mix (kept in sync with its constructor).
  return {{Resources{1.0, 2.0}, 0.4},
          {Resources{2.0, 4.0}, 0.4},
          {Resources{4.0, 8.0}, 0.2}};
}

}  // namespace

const char* TraceErrorName(TraceError error) {
  switch (error) {
    case TraceError::kNone: return "ok";
    case TraceError::kIo: return "io-error";
    case TraceError::kBadMagic: return "bad-magic";
    case TraceError::kVersionSkew: return "version-skew";
    case TraceError::kTruncated: return "truncated";
    case TraceError::kCorruptLength: return "corrupt-length";
    case TraceError::kBadRecord: return "bad-record";
    case TraceError::kOutOfOrder: return "out-of-order";
    case TraceError::kBadTrailer: return "bad-trailer";
  }
  return "unknown";
}

std::string SerializeTrace(const TraceData& trace) {
  std::string out;
  out.reserve(24 + kHeaderFixedBytes + trace.classes.size() * kClassBytes +
              trace.jobs.size() * (4 + kJobRecordBytes) + 4);
  out.append(kMagic, sizeof(kMagic));
  Put32(&out, kVersion);
  Put32(&out, static_cast<uint32_t>(kHeaderFixedBytes +
                                    trace.classes.size() * kClassBytes));
  Put64(&out, trace.seed);
  Put64(&out, static_cast<uint64_t>(trace.jobs.size()));
  Put32(&out, static_cast<uint32_t>(trace.classes.size()));
  for (const TraceClass& c : trace.classes) {
    PutF64(&out, c.cpu_cores);
    PutF64(&out, c.memory_gb);
    PutF64(&out, c.weight);
  }
  for (const TraceJob& job : trace.jobs) {
    Put32(&out, static_cast<uint32_t>(kJobRecordBytes));
    PutI64(&out, job.submit_us);
    PutI64(&out, job.duration_us);
    PutF64(&out, job.cpu_cores);
    PutF64(&out, job.memory_gb);
    Put32(&out, static_cast<uint32_t>(job.row_affinity));
    Put16(&out, job.class_id);
  }
  Put32(&out, kEndMarker);
  return out;
}

TraceParseResult ParseTrace(std::string_view bytes) {
  Reader in{bytes};
  if (in.remaining() < sizeof(kMagic)) {
    return Fail(TraceError::kTruncated, in.pos,
                "file shorter than the magic");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Fail(TraceError::kBadMagic, 0, "expected AMPTRACE");
  }
  in.pos = sizeof(kMagic);

  uint32_t version = 0;
  if (!in.Read32(&version)) {
    return Fail(TraceError::kTruncated, in.pos, "missing version");
  }
  if (version != kVersion) {
    return Fail(TraceError::kVersionSkew, in.pos - 4,
                "version " + std::to_string(version) + ", reader speaks " +
                    std::to_string(kVersion));
  }

  uint32_t header_len = 0;
  if (!in.Read32(&header_len)) {
    return Fail(TraceError::kTruncated, in.pos, "missing header length");
  }
  if (header_len < kHeaderFixedBytes) {
    return Fail(TraceError::kCorruptLength, in.pos - 4,
                "header length " + std::to_string(header_len) + " below " +
                    std::to_string(kHeaderFixedBytes));
  }
  if (header_len > in.remaining()) {
    return Fail(TraceError::kTruncated, in.pos,
                "header length " + std::to_string(header_len) +
                    " overruns the file");
  }
  const size_t header_end = in.pos + header_len;

  TraceParseResult result;
  TraceData& trace = result.trace;
  uint64_t job_count = 0;
  uint32_t class_count = 0;
  in.Read64(&trace.seed);        // Bounds guaranteed by the header_len check.
  in.Read64(&job_count);
  in.Read32(&class_count);
  if (class_count > kMaxClasses) {
    return Fail(TraceError::kCorruptLength, in.pos - 4,
                "class count " + std::to_string(class_count));
  }
  if (kHeaderFixedBytes + static_cast<size_t>(class_count) * kClassBytes >
      header_len) {
    return Fail(TraceError::kTruncated, in.pos,
                "classes overrun the declared header");
  }
  // An absurd job count (larger than the file could possibly hold) is a
  // corrupt length, not a short file.
  if (job_count > bytes.size() / 4) {
    return Fail(TraceError::kCorruptLength, sizeof(kMagic) + 16,
                "job count " + std::to_string(job_count) +
                    " impossible for a " + std::to_string(bytes.size()) +
                    "-byte file");
  }
  trace.classes.reserve(class_count);
  for (uint32_t c = 0; c < class_count; ++c) {
    TraceClass cls;
    in.ReadF64(&cls.cpu_cores);
    in.ReadF64(&cls.memory_gb);
    in.ReadF64(&cls.weight);
    if (!std::isfinite(cls.cpu_cores) || cls.cpu_cores <= 0.0 ||
        !std::isfinite(cls.memory_gb) || cls.memory_gb < 0.0 ||
        !std::isfinite(cls.weight) || cls.weight <= 0.0) {
      return Fail(TraceError::kBadRecord, in.pos - kClassBytes,
                  "class " + std::to_string(c) + " out of range");
    }
    trace.classes.push_back(cls);
  }
  in.pos = header_end;  // Skip header bytes a v1 reader does not know.

  trace.jobs.reserve(job_count);
  int64_t prev_submit = 0;
  for (uint64_t j = 0; j < job_count; ++j) {
    const size_t prefix_at = in.pos;
    uint32_t record_len = 0;
    if (!in.Read32(&record_len)) {
      return Fail(TraceError::kTruncated, prefix_at,
                  "file ends inside record " + std::to_string(j) +
                      "'s length prefix");
    }
    if (record_len < kJobRecordBytes || record_len > kMaxRecordBytes) {
      return Fail(TraceError::kCorruptLength, prefix_at,
                  "record " + std::to_string(j) + " length " +
                      std::to_string(record_len));
    }
    if (record_len > in.remaining()) {
      return Fail(TraceError::kTruncated, in.pos,
                  "file ends inside record " + std::to_string(j));
    }
    const size_t record_end = in.pos + record_len;
    TraceJob job;
    uint32_t row_bits = 0;
    in.ReadI64(&job.submit_us);
    in.ReadI64(&job.duration_us);
    in.ReadF64(&job.cpu_cores);
    in.ReadF64(&job.memory_gb);
    in.Read32(&row_bits);
    in.Read16(&job.class_id);
    job.row_affinity = static_cast<int32_t>(row_bits);
    if (job.submit_us < 0 || job.duration_us <= 0 ||
        !std::isfinite(job.cpu_cores) || job.cpu_cores <= 0.0 ||
        !std::isfinite(job.memory_gb) || job.memory_gb < 0.0 ||
        job.row_affinity < -1 ||
        (job.class_id != kTraceCustomClass &&
         job.class_id >= trace.classes.size())) {
      return Fail(TraceError::kBadRecord, prefix_at,
                  "record " + std::to_string(j) + " fails validation");
    }
    if (job.submit_us < prev_submit) {
      return Fail(TraceError::kOutOfOrder, prefix_at,
                  "record " + std::to_string(j) + " submits at " +
                      std::to_string(job.submit_us) + " us after " +
                      std::to_string(prev_submit) + " us");
    }
    prev_submit = job.submit_us;
    trace.jobs.push_back(job);
    in.pos = record_end;  // Skip v1.x extension bytes, if any.
  }

  uint32_t marker = 0;
  if (!in.Read32(&marker)) {
    return Fail(TraceError::kTruncated, in.pos, "missing end marker");
  }
  if (marker != kEndMarker) {
    return Fail(TraceError::kBadTrailer, in.pos - 4, "end marker mismatch");
  }
  if (in.remaining() != 0) {
    return Fail(TraceError::kBadTrailer, in.pos,
                std::to_string(in.remaining()) +
                    " trailing bytes after the end marker");
  }
  return result;
}

bool WriteTraceFile(const std::string& path, const TraceData& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    AMPERE_LOG(kWarning) << "cannot open trace " << path << " for writing";
    return false;
  }
  const std::string bytes = SerializeTrace(trace);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    AMPERE_LOG(kWarning) << "write to trace " << path << " failed";
    return false;
  }
  return true;
}

TraceParseResult ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    TraceParseResult result;
    result.error = TraceError::kIo;
    result.message = "io-error: cannot open " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTrace(buffer.str());
}

// --- TraceRecorder -------------------------------------------------------

TraceRecorder::TraceRecorder(Simulation* sim, JobSink* next)
    : sim_(sim), next_(next) {
  AMPERE_CHECK(sim != nullptr && next != nullptr);
}

void TraceRecorder::SetClasses(const std::vector<DemandProfile>& demands) {
  trace_.classes.clear();
  for (const DemandProfile& d : EffectiveDemands(demands)) {
    trace_.classes.push_back(
        TraceClass{d.demand.cpu_cores, d.demand.memory_gb, d.weight});
  }
}

void TraceRecorder::Submit(const JobSpec& job) {
  TraceJob record;
  record.submit_us = sim_->now().micros();
  record.duration_us = job.duration.micros();
  record.cpu_cores = job.demand.cpu_cores;
  record.memory_gb = job.demand.memory_gb;
  record.row_affinity =
      job.row_affinity.has_value() ? job.row_affinity->value() : -1;
  for (size_t c = 0; c < trace_.classes.size(); ++c) {
    if (trace_.classes[c].cpu_cores == record.cpu_cores &&
        trace_.classes[c].memory_gb == record.memory_gb) {
      record.class_id = static_cast<uint16_t>(c);
      break;
    }
  }
  trace_.jobs.push_back(record);
  next_->Submit(job);
}

// --- TraceArrivalProcess -------------------------------------------------

TraceArrivalProcess::TraceArrivalProcess(
    std::shared_ptr<const TraceData> trace, Simulation* sim, JobSink* sink,
    JobIdAllocator* ids)
    : trace_(std::move(trace)), sim_(sim), sink_(sink), ids_(ids) {
  AMPERE_CHECK(trace_ != nullptr && sim != nullptr && sink != nullptr &&
               ids != nullptr);
}

void TraceArrivalProcess::Start(SimTime at) {
  AMPERE_CHECK(!started_) << "trace replay already started";
  started_ = true;
  if (!trace_->jobs.empty()) {
    AMPERE_CHECK(trace_->jobs.front().submit_us >= at.micros())
        << "trace submits before the replay start";
  }
  sim_->SchedulePeriodic(at, SimTime::Minutes(1),
                         [this](SimTime t) { SubmitMinute(t); });
}

void TraceArrivalProcess::SubmitMinute(SimTime minute_start) {
  // Allocate JobIds here, at the minute boundary, exactly as BatchWorkload's
  // GenerateMinute does — that keeps replayed JobIds identical to the
  // recording run's (jobs submit within their generation minute, so
  // submission order equals generation order equals id order).
  const int64_t minute_end_us =
      (minute_start + SimTime::Minutes(1)).micros();
  while (cursor_ < trace_->jobs.size() &&
         trace_->jobs[cursor_].submit_us < minute_end_us) {
    const TraceJob& record = trace_->jobs[cursor_];
    ++cursor_;
    JobSpec job;
    job.id = ids_->Next();
    job.demand = Resources{record.cpu_cores, record.memory_gb};
    job.duration = SimTime::Micros(record.duration_us);
    if (record.row_affinity >= 0) {
      job.row_affinity = RowId(record.row_affinity);
    }
    sim_->ScheduleAt(SimTime::Micros(record.submit_us), [this, job] {
      ++jobs_submitted_;
      sink_->Submit(job);
    });
  }
}

// --- Adversarial generation ----------------------------------------------

TraceData GenerateAdversarialTrace(const AdversarialTraceParams& params) {
  AMPERE_CHECK(params.base_rate_per_min > 0.0);
  AMPERE_CHECK(params.duration > SimTime());
  TraceData trace;
  trace.seed = params.seed;
  const std::vector<DemandProfile> demands =
      EffectiveDemands(params.demands);
  double total_weight = 0.0;
  for (const DemandProfile& d : demands) {
    trace.classes.push_back(
        TraceClass{d.demand.cpu_cores, d.demand.memory_gb, d.weight});
    total_weight += d.weight;
  }

  Rng rng(params.seed);
  Rng arrival_rng = rng.Fork(1);
  Rng shape_rng = rng.Fork(2);
  DurationModel durations{DurationModelParams{}};

  auto sample_class = [&](Rng& r) -> uint16_t {
    double pick = r.Uniform(0.0, total_weight);
    double acc = 0.0;
    for (size_t c = 0; c < demands.size(); ++c) {
      acc += demands[c].weight;
      if (pick <= acc) {
        return static_cast<uint16_t>(c);
      }
    }
    return static_cast<uint16_t>(demands.size() - 1);
  };
  auto sample_duration_us = [&](Rng& r) -> int64_t {
    if (params.kind == AdversarialTraceParams::Kind::kHeavyTail) {
      // Pareto(alpha) with unit minimum, scaled so the mean (for alpha > 1)
      // lands at mean_minutes; the tail puts hours-long jobs in the mix.
      const double alpha = params.heavy_tail_alpha;
      const double u = std::max(r.NextDouble(), 1e-12);
      double minutes = std::pow(u, -1.0 / alpha);
      if (alpha > 1.0) {
        minutes *= params.mean_minutes * (alpha - 1.0) / alpha;
      } else {
        minutes *= params.mean_minutes;
      }
      minutes = std::min(std::max(minutes, 0.1),
                         params.max_duration_minutes);
      return SimTime::Minutes(minutes).micros();
    }
    return durations.Sample(r).micros();
  };
  auto push_job = [&](int64_t submit_us, Rng& r) {
    TraceJob job;
    job.submit_us = submit_us;
    job.duration_us = sample_duration_us(shape_rng);
    job.class_id = sample_class(r);
    job.cpu_cores = demands[job.class_id].demand.cpu_cores;
    job.memory_gb = demands[job.class_id].demand.memory_gb;
    trace.jobs.push_back(job);
  };

  const int64_t minutes = params.duration.micros() / SimTime::Minutes(1).micros();
  const int64_t sync_minutes =
      std::max<int64_t>(1, params.sync_period.micros() /
                               SimTime::Minutes(1).micros());
  for (int64_t m = 0; m < minutes; ++m) {
    const int64_t minute_us = SimTime::Minutes(static_cast<double>(m)).micros();
    double rate = params.base_rate_per_min;
    if (params.kind == AdversarialTraceParams::Kind::kBursts &&
        arrival_rng.Bernoulli(params.burst_prob)) {
      rate *= params.burst_factor;
    }
    if (params.kind == AdversarialTraceParams::Kind::kSynchronized &&
        m % sync_minutes == 0) {
      // The herd lands on one microsecond at the top of the minute — the
      // pathological synchronized-cron arrival the Poisson model excludes.
      for (int k = 0; k < params.sync_batch; ++k) {
        push_job(minute_us, arrival_rng);
      }
      rate *= 0.25;  // Quiet between herds: feast-or-famine load.
    }
    const int64_t n = arrival_rng.Poisson(rate);
    std::vector<int64_t> offsets;
    offsets.reserve(static_cast<size_t>(n));
    for (int64_t k = 0; k < n; ++k) {
      offsets.push_back(
          SimTime::Seconds(arrival_rng.Uniform(0.0, 60.0)).micros());
    }
    std::sort(offsets.begin(), offsets.end());
    for (int64_t offset : offsets) {
      push_job(minute_us + offset, arrival_rng);
    }
  }
  return trace;
}

}  // namespace ampere
