// Job-trace capture and replay.
//
// The paper's experiments run live production workload; a public release
// needs a way to exchange workloads as data. A trace is a list of job
// records (submit time, duration, demand, optional row affinity) with CSV
// serialization. TraceWorkload replays a trace through the same JobSink
// interface the synthetic generator uses, so any experiment can run from a
// file instead of a distribution; SampleTrace materializes a synthetic
// trace from the calibrated models for sharing.

#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulation.h"
#include "src/workload/batch_workload.h"
#include "src/workload/job.h"

namespace ampere {

struct TraceRecord {
  double submit_minutes = 0.0;
  double duration_minutes = 0.0;
  double cpu_cores = 0.0;
  double memory_gb = 0.0;
  int32_t row_affinity = -1;  // -1 = schedule anywhere.
};

// CSV with header "submit_min,duration_min,cpu_cores,memory_gb,row".
// Reading validates field count and numeric ranges; malformed input throws
// CheckFailure with the offending line number.
void WriteJobTrace(std::ostream& out, const std::vector<TraceRecord>& trace);
std::vector<TraceRecord> ReadJobTrace(std::istream& in);
void WriteJobTraceFile(const std::string& path,
                       const std::vector<TraceRecord>& trace);
std::vector<TraceRecord> ReadJobTraceFile(const std::string& path);

// Materializes `duration` worth of the synthetic workload as a trace.
std::vector<TraceRecord> SampleTrace(const BatchWorkloadParams& params,
                                     SimTime duration, Rng rng);

// Replays a trace into a JobSink on the simulation clock. Records may be in
// any order; submissions are scheduled at their submit times (which must be
// >= the current simulation time when Start is called).
class TraceWorkload {
 public:
  // `sim`, `sink`, and `ids` must outlive the workload.
  TraceWorkload(std::vector<TraceRecord> trace, Simulation* sim,
                JobSink* sink, JobIdAllocator* ids);

  void Start();

  size_t jobs_total() const { return trace_.size(); }
  uint64_t jobs_submitted() const { return jobs_submitted_; }

 private:
  std::vector<TraceRecord> trace_;
  Simulation* sim_;
  JobSink* sink_;
  JobIdAllocator* ids_;
  uint64_t jobs_submitted_ = 0;
  bool started_ = false;
};

}  // namespace ampere

#endif  // SRC_WORKLOAD_TRACE_H_
