#include "src/cluster/campus.h"

#include <algorithm>

#include "src/common/check.h"

namespace ampere {

Campus::Campus(const CampusConfig& config, Simulation* sim) : sim_(sim) {
  AMPERE_CHECK(sim != nullptr);
  AMPERE_CHECK(config.num_datacenters >= 1);
  dcs_.reserve(static_cast<size_t>(config.num_datacenters));
  dc_contract_watts_.reserve(static_cast<size_t>(config.num_datacenters));
  for (int d = 0; d < config.num_datacenters; ++d) {
    dcs_.push_back(std::make_unique<DataCenter>(config.datacenter, sim));
    // Contract resolution: explicit positive value, last-value-repeats for
    // short vectors, rated provisioning (the DC's provisioned budget total)
    // for missing or non-positive entries.
    double contract = 0.0;
    if (!config.dc_contract_watts.empty()) {
      const size_t i = std::min(static_cast<size_t>(d),
                                config.dc_contract_watts.size() - 1);
      contract = config.dc_contract_watts[i];
    }
    if (contract <= 0.0) {
      contract = dcs_.back()->total_budget_watts();
    }
    dc_contract_watts_.push_back(contract);
  }
  if (config.campus_contract_watts > 0.0) {
    campus_contract_watts_ = config.campus_contract_watts;
  } else {
    for (double w : dc_contract_watts_) {
      campus_contract_watts_ += w;
    }
  }
  AMPERE_CHECK(campus_contract_watts_ > 0.0);
}

int Campus::total_servers() const {
  int total = 0;
  for (const auto& dc : dcs_) {
    total += dc->num_servers();
  }
  return total;
}

double Campus::TotalPowerWatts() const {
  double total = 0.0;
  for (const auto& dc : dcs_) {
    total += dc->total_power_watts();
  }
  return total;
}

double Campus::ExactTotalPowerWatts() const {
  double total = 0.0;
  for (const auto& dc : dcs_) {
    total += dc->ExactTotalPowerWatts();
  }
  return total;
}

void Campus::ResummatePowerAggregates() {
  for (const auto& dc : dcs_) {
    dc->ResummatePowerAggregates();
  }
}

bool Campus::AnyBreakerTripped() const {
  for (const auto& dc : dcs_) {
    if (dc->AnyBreakerTripped()) {
      return true;
    }
  }
  return false;
}

void Campus::SetThreadPool(ThreadPool* pool) {
  for (const auto& dc : dcs_) {
    dc->SetThreadPool(pool);
  }
}

}  // namespace ampere
