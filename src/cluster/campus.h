// The campus model: N data centers under one shared utility contract.
//
// The paper runs one Ampere instance over one data center, but an
// MSRI-scale deployment is a campus of DCs splitting a single power
// contract. Campus promotes the topology one level: it owns N DataCenter
// instances bound to ONE shared Simulation (so cross-DC control decisions
// and spillover happen at well-ordered simulated instants) and aggregates
// power across them. Each DC keeps its own SoA power core, its own RAPL
// safety net, and its own breaker; the campus layer adds only id scoping,
// contract bookkeeping, and cross-DC summation — per-DC inner loops are
// unchanged.
//
// Power contracts: each DC has a contract (its share ceiling of the campus
// feed) and the campus has a total contract. Zeros mean "rated
// provisioning", mirroring TopologyConfig's budget convention: a DC's
// default contract is its rated total, and the campus default is the sum of
// the DC contracts.

#ifndef SRC_CLUSTER_CAMPUS_H_
#define SRC_CLUSTER_CAMPUS_H_

#include <memory>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/ids.h"
#include "src/common/thread_pool.h"
#include "src/sim/simulation.h"

namespace ampere {

struct CampusConfig {
  int num_datacenters = 4;
  // Every DC shares one topology shape (a campus is built in identical
  // phases). Heterogeneity across DCs enters through workload targets and
  // contracts, not rack counts.
  TopologyConfig datacenter;
  // Per-DC contract ceilings in watts. Shorter than num_datacenters: the
  // last value repeats; empty: rated provisioning per DC. Values <= 0 also
  // mean rated provisioning for that DC.
  std::vector<double> dc_contract_watts;
  // Campus-wide contract; 0 = sum of the per-DC contracts.
  double campus_contract_watts = 0.0;
};

class Campus {
 public:
  // `sim` must outlive the Campus. All DCs share it.
  Campus(const CampusConfig& config, Simulation* sim);

  Campus(const Campus&) = delete;
  Campus& operator=(const Campus&) = delete;

  int num_datacenters() const { return static_cast<int>(dcs_.size()); }
  DataCenter& dc(DataCenterId id) { return *dcs_[id.index()]; }
  const DataCenter& dc(DataCenterId id) const { return *dcs_[id.index()]; }

  // Campus-wide topology totals (every DC has the same shape).
  int total_servers() const;
  int servers_per_datacenter() const { return dcs_[0]->num_servers(); }

  // Resolved contracts (zeros already replaced by rated provisioning).
  double dc_contract_watts(DataCenterId id) const {
    return dc_contract_watts_[id.index()];
  }
  double campus_contract_watts() const { return campus_contract_watts_; }

  // Campus power: sum of the per-DC incremental totals (O(num_datacenters)
  // — each DC's total is already maintained incrementally), and the exact
  // freshly-summed counterpart for drift checks.
  double TotalPowerWatts() const;
  double ExactTotalPowerWatts() const;
  // Snaps every DC's incremental aggregates (serial, DC id order).
  void ResummatePowerAggregates();

  // True if any DC's breaker tripped.
  bool AnyBreakerTripped() const;

  // Attaches one pool to every DC's batch passes (see
  // DataCenter::SetThreadPool); null detaches.
  void SetThreadPool(ThreadPool* pool);

  Simulation* sim() const { return sim_; }

 private:
  Simulation* sim_;
  // DataCenter is non-copyable and holds interior pointers; own by pointer.
  std::vector<std::unique_ptr<DataCenter>> dcs_;
  std::vector<double> dc_contract_watts_;
  double campus_contract_watts_ = 0.0;
};

}  // namespace ampere

#endif  // SRC_CLUSTER_CAMPUS_H_
