#include "src/cluster/datacenter.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/common/span_kernels.h"
#include "src/obs/flight_recorder.h"

namespace ampere {

DataCenter::DataCenter(const TopologyConfig& config, Simulation* sim)
    : sim_(sim), ladder_(config.ladder),
      capping_enabled_(config.capping_enabled),
      capping_mode_(config.capping_mode),
      sleep_watts_(config.power_model.rated_watts * config.sleep_fraction),
      wake_latency_(config.wake_latency) {
  AMPERE_CHECK(sim != nullptr);
  AMPERE_CHECK(config.num_rows >= 1);
  AMPERE_CHECK(config.racks_per_row >= 1);
  AMPERE_CHECK(config.servers_per_rack >= 1);

  // Build the generation models; servers keep pointers into models_, so it
  // must never be resized after this block.
  if (config.server_generations.empty()) {
    models_.emplace_back(config.power_model);
  } else {
    models_.reserve(config.server_generations.size());
    for (const PowerModelParams& params : config.server_generations) {
      models_.emplace_back(params);
    }
  }
  for (const ServerPowerModel& model : models_) {
    AMPERE_CHECK(sleep_watts_ < model.idle_watts())
        << "sleep floor must be below every generation's idle power";
  }

  const size_t total_servers = static_cast<size_t>(config.num_rows) *
                               static_cast<size_t>(config.racks_per_row) *
                               static_cast<size_t>(config.servers_per_rack);
  servers_.reserve(total_servers);

  int32_t next_server = 0;
  int32_t next_rack = 0;
  double total_idle = 0.0;
  for (int32_t r = 0; r < config.num_rows; ++r) {
    RowId row_id(r);
    RowState row;
    row.breaker = CircuitBreaker(config.breaker);
    row.server_range.begin = static_cast<size_t>(next_server);
    double row_rated = 0.0;
    for (int k = 0; k < config.racks_per_row; ++k) {
      RackId rack_id(next_rack++);
      // Racks are homogeneous; generations cycle across racks.
      const ServerPowerModel& model =
          models_[static_cast<size_t>(rack_id.value()) % models_.size()];
      RackState rack;
      rack.row = row_id;
      rack.server_range.begin = static_cast<size_t>(next_server);
      for (int s = 0; s < config.servers_per_rack; ++s) {
        ServerId server_id(next_server++);
        servers_.emplace_back(server_id, rack_id, row_id,
                              config.server_capacity, &model);
        servers_.back().sleep_watts_ = sleep_watts_;
        rack.servers.push_back(server_id);
        row.servers.push_back(server_id);
      }
      rack.server_range.end = static_cast<size_t>(next_server);
      double rack_rated = static_cast<double>(config.servers_per_rack) *
                          model.rated_watts();
      rack.budget_watts = config.rack_budget_watts > 0.0
                              ? config.rack_budget_watts
                              : rack_rated;
      rack.power_watts = static_cast<double>(config.servers_per_rack) *
                         model.idle_watts();
      row_rated += rack_rated;
      row.idle_sum_watts += rack.power_watts;
      row.racks.push_back(rack_id);
      racks_.push_back(std::move(rack));
    }
    row.server_range.end = static_cast<size_t>(next_server);
    row.budget_watts = config.row_budget_watts > 0.0
                           ? config.row_budget_watts
                           : row_rated;
    row.capping_budget_watts = row.budget_watts;
    row.power_watts = row.idle_sum_watts;
    row.dynamic_full_sum_watts = 0.0;
    total_idle += row.idle_sum_watts;
    rows_.push_back(std::move(row));
  }
  total_power_watts_ = total_idle;

  // Wire the SoA power core: size the arrays once (never resized again, so
  // the slot pointers below stay valid for the DataCenter's lifetime), hand
  // every server its slots, and seed the cached values at the initial
  // operating point (idle, full frequency, awake).
  AMPERE_CHECK(servers_.size() == total_servers);
  soa_power_watts_.assign(total_servers, 0.0);
  soa_dynamic_full_watts_.assign(total_servers, 0.0);
  soa_utilization_.assign(total_servers, 0.0);
  for (size_t i = 0; i < total_servers; ++i) {
    servers_[i].AttachSoaSlots(&soa_power_watts_[i],
                               &soa_dynamic_full_watts_[i],
                               &soa_utilization_[i]);
    servers_[i].RecomputePowerCache();
  }
}

bool DataCenter::PlaceTask(ServerId id, const TaskSpec& spec) {
  AMPERE_CHECK(id.valid() && id.index() < servers_.size());
  Server& server = servers_[id.index()];
  if (server.asleep_ || !server.CanFit(spec.demand)) {
    return false;
  }
  AMPERE_CHECK(spec.work > SimTime()) << "task with non-positive work";

  double old_power = server.power_watts();
  double old_dynamic = server.dynamic_watts_at_full_freq();

  Server::RunningTask task;
  task.demand = spec.demand;
  task.remaining_work = spec.work;
  task.last_update = sim_->now();
  SimTime wall = spec.work * (1.0 / server.frequency());
  task.completion = sim_->ScheduleAfter(
      wall, [this, id, job = spec.job] { CompleteTask(id, job); });
  // Single probe: TryEmplace both detects the duplicate (was a separate
  // contains() before) and appends.
  const bool inserted = server.tasks_.TryEmplace(spec.job, std::move(task));
  AMPERE_CHECK(inserted) << "job " << spec.job.value()
                         << " already on server " << id.value();
  server.allocated_ += spec.demand;
  AMPERE_CHECK(server.capacity_.Fits(server.allocated_));

  RefreshServerPower(id, old_power, old_dynamic);
  EnforceServerCap(id);
  EnforceRowCap(server.row());
  return true;
}

void DataCenter::CompleteTask(ServerId id, JobId job) {
  Server& server = servers_[id.index()];
  const size_t slot = server.tasks_.Find(job);
  AMPERE_CHECK(slot != Server::TaskTable::kNotFound);

  double old_power = server.power_watts();
  double old_dynamic = server.dynamic_watts_at_full_freq();

  server.allocated_ -= server.tasks_.task_at(slot).demand;
  AMPERE_CHECK(server.allocated_.NonNegative());
  server.tasks_.EraseAt(slot);

  RefreshServerPower(id, old_power, old_dynamic);
  EnforceServerCap(id);
  EnforceRowCap(server.row());
  if (completion_listener_) {
    completion_listener_(id, job);
  }
}

void DataCenter::SetFrozen(ServerId id, bool frozen) {
  servers_[id.index()].frozen_ = frozen;
}

void DataCenter::SetReserved(ServerId id, bool reserved) {
  servers_[id.index()].reserved_ = reserved;
}

void DataCenter::SleepServer(ServerId id) {
  Server& server = servers_[id.index()];
  AMPERE_CHECK(server.tasks_.empty())
      << "cannot sleep server " << id.value() << " with running tasks";
  if (server.asleep_ && !server.waking_) {
    return;
  }
  double old_power = server.power_watts();
  double old_dynamic = server.dynamic_watts_at_full_freq();
  server.wake_completion_.Cancel();  // Abort an in-flight wake, if any.
  if (!server.asleep_) {
    ++asleep_servers_;
  }
  server.asleep_ = true;
  server.waking_ = false;
  server.sleep_watts_ = sleep_watts_;  // Clear any boot-draw override.
  RefreshServerPower(id, old_power, old_dynamic);
  EnforceRowCap(server.row());
}

void DataCenter::WakeServer(ServerId id) {
  Server& server = servers_[id.index()];
  if (!server.asleep_ || server.waking_) {
    return;
  }
  double old_power = server.power_watts();
  double old_dynamic = server.dynamic_watts_at_full_freq();
  server.waking_ = true;
  // Boot draw: the machine burns idle power while it comes up, which is
  // why aggressive consolidation has a power (and latency) cost on wake.
  server.sleep_watts_ = server.idle_watts();
  RefreshServerPower(id, old_power, old_dynamic);
  server.wake_completion_ =
      sim_->ScheduleAfter(wake_latency_, [this, id] {
        Server& s = servers_[id.index()];
        double before_power = s.power_watts();
        double before_dynamic = s.dynamic_watts_at_full_freq();
        AMPERE_CHECK(asleep_servers_ > 0);
        --asleep_servers_;
        s.asleep_ = false;
        s.waking_ = false;
        s.sleep_watts_ = sleep_watts_;
        RefreshServerPower(id, before_power, before_dynamic);
        EnforceRowCap(s.row());
      });
  EnforceRowCap(server.row());
}

void DataCenter::RefreshServerPower(ServerId id, double old_power,
                                    double old_dynamic) {
  Server& server = servers_[id.index()];
  // Re-evaluate the power model once per mutation; every reader between now
  // and the next mutation (telemetry, capping, ranking) gets the cached
  // value — bit-identical to evaluating the model on demand.
  server.RecomputePowerCache();
  double power_delta = server.power_watts() - old_power;
  double dynamic_delta = server.dynamic_watts_at_full_freq() - old_dynamic;
  racks_[server.rack().index()].power_watts += power_delta;
  RowState& row = rows_[server.row().index()];
  row.power_watts += power_delta;
  row.dynamic_full_sum_watts += dynamic_delta;
  total_power_watts_ += power_delta;
  // Each incremental fold can introduce one rounding error; snap the
  // aggregates back to the exact sums periodically so drift stays bounded
  // regardless of run length. The trigger is a pure function of the event
  // sequence, so resummation points are deterministic.
  if (++power_mutations_since_resum_ >= kResumIntervalMutations) {
    ResummatePowerAggregates();
  }
}

double DataCenter::ExactRackPowerWatts(RackId id) const {
  // Linear scan of the SoA power array over the rack's contiguous index
  // range — same elements in the same ascending order as the per-server
  // walk this replaces (server ids are row-major), so the sum is
  // bit-identical.
  const RackState& rack = racks_[id.index()];
  return span_kernels::SumSequential(
      soa_power_watts_.data() + rack.server_range.begin,
      rack.server_range.size());
}

double DataCenter::ExactRowPowerWatts(RowId id) const {
  // Summed rack-by-rack (not server-by-server) so the value matches what
  // ResummatePowerAggregates writes into the row aggregate bit-for-bit.
  double sum = 0.0;
  for (RackId rid : rows_[id.index()].racks) {
    sum += ExactRackPowerWatts(rid);
  }
  return sum;
}

double DataCenter::ExactRowDynamicFullWatts(RowId id) const {
  const RowState& row = rows_[id.index()];
  return span_kernels::SumSequential(
      soa_dynamic_full_watts_.data() + row.server_range.begin,
      row.server_range.size());
}

double DataCenter::ExactTotalPowerWatts() const {
  double sum = 0.0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    sum += ExactRowPowerWatts(RowId(static_cast<int32_t>(r)));
  }
  return sum;
}

void DataCenter::ResummatePowerAggregates() {
  // Streams the SoA arrays directly: server ids are assigned row-major, so
  // each rack/row owns a contiguous index range and the per-rack inner loop
  // is a linear scan over one cache-resident span instead of a pointer-chase
  // across Server objects.
  //
  // The per-row phase shards across the thread pool (one row per shard —
  // rows write disjoint RackState/RowState fields, so there is no sharing).
  // Summation order inside a row is identical to the serial loop: servers in
  // ascending id within each rack, racks in ascending order within the row.
  // The cross-row total folds serially in row order AFTER the join, so the
  // result is bit-identical at any thread count (including pool_ == nullptr,
  // which takes the exact serial path through the ParallelFor guard).
  const double* power = soa_power_watts_.data();
  const double* dynamic_full = soa_dynamic_full_watts_.data();
  ParallelFor(
      pool_, 0, rows_.size(), /*grain=*/1,
      [this, power, dynamic_full](size_t row_begin, size_t row_end) {
        for (size_t r = row_begin; r < row_end; ++r) {
          RowState& row = rows_[r];
          double row_sum = 0.0;
          for (RackId rid : row.racks) {
            RackState& rack = racks_[rid.index()];
            // SumSequential IS the historical left-to-right order the
            // goldens pin; see span_kernels.h.
            const double rack_sum = span_kernels::SumSequential(
                power + rack.server_range.begin, rack.server_range.size());
            rack.power_watts = rack_sum;
            row_sum += rack_sum;
          }
          row.power_watts = row_sum;
          row.dynamic_full_sum_watts = span_kernels::SumSequential(
              dynamic_full + row.server_range.begin, row.server_range.size());
        }
      });
  double total = 0.0;
  for (const RowState& row : rows_) {
    total += row.power_watts;
  }
  total_power_watts_ = total;
  power_mutations_since_resum_ = 0;
}

void DataCenter::SetServerFrequency(ServerId id, double freq) {
  Server& server = servers_[id.index()];
  AMPERE_CHECK(freq > 0.0 && freq <= 1.0);
  if (server.frequency_ == freq) {
    return;
  }
  // Maintain the row's capped-server count and capped-time clock on 1.0
  // crossings.
  RowState& row_state = rows_[server.row().index()];
  if (server.frequency_ == 1.0 && freq < 1.0) {
    if (row_state.capped_server_count == 0) {
      row_state.capped_since = sim_->now();
    }
    ++row_state.capped_server_count;
  } else if (server.frequency_ < 1.0 && freq == 1.0) {
    AMPERE_CHECK(row_state.capped_server_count > 0);
    --row_state.capped_server_count;
    if (row_state.capped_server_count == 0) {
      row_state.capped_total += sim_->now() - row_state.capped_since;
    }
  }
  double old_freq = server.frequency_;
  double old_power = server.power_watts();
  double old_dynamic = server.dynamic_watts_at_full_freq();
  SimTime now = sim_->now();
  // Reconcile each task's remaining full-speed work consumed at the old
  // frequency, then reschedule its completion at the new frequency. The
  // walk is in task-table insertion order (placement order), so the
  // rescheduled completions' tie-break order is deterministic.
  for (size_t t = 0; t < server.tasks_.size(); ++t) {
    Server::RunningTask& task = server.tasks_.task_at(t);
    SimTime consumed = (now - task.last_update) * old_freq;
    task.remaining_work =
        std::max(SimTime(), task.remaining_work - consumed);
    task.last_update = now;
    task.completion.Cancel();
    SimTime wall = task.remaining_work * (1.0 / freq);
    // A task whose remaining work rounds to zero completes immediately
    // (strictly after this event, preserving causality).
    task.completion = sim_->ScheduleAfter(
        wall, [this, id, job_id = server.tasks_.job_at(t)] {
          CompleteTask(id, job_id);
        });
  }
  server.frequency_ = freq;
  RefreshServerPower(id, old_power, old_dynamic);
}

void DataCenter::ApplyRowFrequency(RowId row_id, double freq) {
  AMPERE_CHECK(freq > 0.0 && freq <= 1.0);
  RowState& row = rows_[row_id.index()];
  if (asleep_servers_ > 0) {
    // A sleeping/waking server draws its sleep floor, not the model's
    // output, so the uniform span evaluation below would clobber it. Sleep
    // transitions are rare; take the exact per-server path.
    for (ServerId id : row.servers) {
      SetServerFrequency(id, freq);
    }
    return;
  }

  // Pass 1 — per-server bookkeeping, ascending id order exactly like the
  // per-server loop this replaces: capped-count 1.0-crossings, task
  // reconciliation, completion rescheduling. ScheduleAfter is called in the
  // same order as before, so event sequence numbers (and thus tie-breaks)
  // are unchanged.
  const SimTime now = sim_->now();
  uint64_t n_changed = 0;
  for (ServerId id : row.servers) {
    Server& server = servers_[id.index()];
    if (server.frequency_ == freq) {
      continue;
    }
    if (server.frequency_ == 1.0 && freq < 1.0) {
      if (row.capped_server_count == 0) {
        row.capped_since = now;
      }
      ++row.capped_server_count;
    } else if (server.frequency_ < 1.0 && freq == 1.0) {
      AMPERE_CHECK(row.capped_server_count > 0);
      --row.capped_server_count;
      if (row.capped_server_count == 0) {
        row.capped_total += now - row.capped_since;
      }
    }
    const double old_freq = server.frequency_;
    for (size_t t = 0; t < server.tasks_.size(); ++t) {
      Server::RunningTask& task = server.tasks_.task_at(t);
      SimTime consumed = (now - task.last_update) * old_freq;
      task.remaining_work =
          std::max(SimTime(), task.remaining_work - consumed);
      task.last_update = now;
      task.completion.Cancel();
      SimTime wall = task.remaining_work * (1.0 / freq);
      task.completion = sim_->ScheduleAfter(
          wall, [this, id, job_id = server.tasks_.job_at(t)] {
            CompleteTask(id, job_id);
          });
    }
    server.frequency_ = freq;
    ++n_changed;
  }
  if (n_changed == 0) {
    return;
  }

  // Pass 2 — batched power refresh, one power-model evaluation per rack
  // over the rack's contiguous SoA span (racks are homogeneous, so one
  // model and one frequency serve the whole span). The dynamic-at-full
  // lane is re-written with bit-identical values (frequency does not enter
  // DynamicPowerAt(u, 1.0)), so row.dynamic_full_sum_watts stays valid
  // untouched. Rack sums rebuild with the fixed blocked-order reduction;
  // the row folds its racks in ascending order like the resummation pass.
  double* __restrict power = soa_power_watts_.data();
  double* __restrict dynamic_full = soa_dynamic_full_watts_.data();
  const double* __restrict util = soa_utilization_.data();
  const double row_old = row.power_watts;
  double row_new = 0.0;
  for (RackId rid : row.racks) {
    RackState& rack = racks_[rid.index()];
    const size_t begin = rack.server_range.begin;
    const size_t n = rack.server_range.size();
    const ServerPowerModel& model = *servers_[begin].power_model_;
    model.PowerSpanUniformFreq(util + begin, freq, power + begin,
                               dynamic_full + begin, n);
    rack.power_watts = span_kernels::SumBlocked4(power + begin, n);
    row_new += rack.power_watts;
  }
  row.power_watts = row_new;
  total_power_watts_ += row_new - row_old;
  // One threshold check for the whole batch; the counter is still a pure
  // function of the event sequence, so resummation points stay
  // deterministic.
  power_mutations_since_resum_ += n_changed;
  if (power_mutations_since_resum_ >= kResumIntervalMutations) {
    ResummatePowerAggregates();
  }
}

void DataCenter::EnforceRowCap(RowId row_id) {
  RowState& row = rows_[row_id.index()];
  SimTime now = sim_->now();
  // Breaker sees the true (post-capping) draw.
  if (row.breaker.Observe(now, row.power_watts, row.budget_watts)) {
    AMPERE_TIMELINE_D(obs_domain_, now, obs::TimelineEventType::kBreakerTrip,
                      row.power_watts, row.budget_watts,
                      static_cast<uint64_t>(row_id.value()));
  }
  if (!capping_enabled_ || capping_mode_ != CappingMode::kRowUniform) {
    return;
  }
  CapDecision decision =
      ComputeRowCap(row.idle_sum_watts, row.dynamic_full_sum_watts,
                    row.capping_budget_watts, ladder_);
  if (decision.throttle == row.throttle) {
    return;
  }
  AMPERE_LOG(kDebug) << "row " << row_id.value() << " throttle "
                     << row.throttle << " -> " << decision.throttle;
  row.throttle = decision.throttle;
  ApplyRowFrequency(row_id, decision.throttle);
  if (row.breaker.Observe(now, row.power_watts, row.budget_watts)) {
    AMPERE_TIMELINE_D(obs_domain_, now, obs::TimelineEventType::kBreakerTrip,
                      row.power_watts, row.budget_watts,
                      static_cast<uint64_t>(row_id.value()));
  }
}

void DataCenter::EnforceServerCap(ServerId id) {
  if (!capping_enabled_ || capping_mode_ != CappingMode::kPerServer) {
    return;
  }
  const Server& server = servers_[id.index()];
  const RowState& row = rows_[server.row().index()];
  double cap = PerServerCapWatts(row);
  double idle = server.idle_watts();
  double dynamic_full = server.dynamic_watts_at_full_freq();
  double freq;
  if (idle + dynamic_full <= cap) {
    freq = 1.0;
  } else if (cap <= idle || dynamic_full <= 0.0) {
    freq = ladder_.min_multiplier();
  } else {
    freq = ladder_.ClampDown((cap - idle) / dynamic_full);
  }
  SetServerFrequency(id, freq);
}

void DataCenter::SetCappingEnabled(bool enabled) {
  capping_enabled_ = enabled;
  for (size_t r = 0; r < rows_.size(); ++r) {
    RowId row_id(static_cast<int32_t>(r));
    RowState& row = rows_[r];
    if (enabled) {
      EnforceRowCap(row_id);
      if (capping_mode_ == CappingMode::kPerServer) {
        for (ServerId id : row.servers) {
          EnforceServerCap(id);
        }
      }
    } else {
      // Release all throttles (clock bookkeeping happens per server inside
      // ApplyRowFrequency).
      row.throttle = 1.0;
      ApplyRowFrequency(row_id, 1.0);
    }
  }
}

void DataCenter::SetRowCappingBudget(RowId id, double watts) {
  AMPERE_CHECK(watts > 0.0);
  rows_[id.index()].capping_budget_watts = watts;
  EnforceRowCap(id);
  if (capping_enabled_ && capping_mode_ == CappingMode::kPerServer) {
    for (ServerId sid : rows_[id.index()].servers) {
      EnforceServerCap(sid);
    }
  }
}

double DataCenter::FractionOfServersCapped(RowId id) const {
  const RowState& row = rows_[id.index()];
  return static_cast<double>(row.capped_server_count) /
         static_cast<double>(row.servers.size());
}

SimTime DataCenter::row_capped_time(RowId id) const {
  const RowState& row = rows_[id.index()];
  SimTime total = row.capped_total;
  if (row.capped_server_count > 0) {
    total += sim_->now() - row.capped_since;
  }
  return total;
}

double DataCenter::PowerOfServers(std::span<const ServerId> ids) const {
  double sum = 0.0;
  for (ServerId id : ids) {
    sum += servers_[id.index()].power_watts();
  }
  return sum;
}

double DataCenter::total_budget_watts() const {
  double sum = 0.0;
  for (const RowState& row : rows_) {
    sum += row.budget_watts;
  }
  return sum;
}

bool DataCenter::AnyBreakerTripped() const {
  return std::any_of(rows_.begin(), rows_.end(),
                     [](const RowState& r) { return r.breaker.tripped(); });
}

}  // namespace ampere
