// Multi-dimensional resource vectors (CPU cores, memory).
//
// The paper's scheduler "tracks the utilization of various resources
// including CPU, memory and storage" (§2.1). Two dimensions are enough to
// exercise the multi-resource fit logic; power is deliberately NOT a resource
// here — that is the whole point of the paper's design.

#ifndef SRC_CLUSTER_RESOURCES_H_
#define SRC_CLUSTER_RESOURCES_H_

namespace ampere {

struct Resources {
  double cpu_cores = 0.0;
  double memory_gb = 0.0;

  constexpr Resources operator+(const Resources& o) const {
    return {cpu_cores + o.cpu_cores, memory_gb + o.memory_gb};
  }
  constexpr Resources operator-(const Resources& o) const {
    return {cpu_cores - o.cpu_cores, memory_gb - o.memory_gb};
  }
  constexpr Resources& operator+=(const Resources& o) {
    cpu_cores += o.cpu_cores;
    memory_gb += o.memory_gb;
    return *this;
  }
  constexpr Resources& operator-=(const Resources& o) {
    cpu_cores -= o.cpu_cores;
    memory_gb -= o.memory_gb;
    return *this;
  }

  // True if a demand of `o` fits in this remaining capacity.
  constexpr bool Fits(const Resources& o) const {
    return o.cpu_cores <= cpu_cores + kEpsilon &&
           o.memory_gb <= memory_gb + kEpsilon;
  }

  constexpr bool NonNegative() const {
    return cpu_cores >= -kEpsilon && memory_gb >= -kEpsilon;
  }

 private:
  static constexpr double kEpsilon = 1e-9;
};

}  // namespace ampere

#endif  // SRC_CLUSTER_RESOURCES_H_
