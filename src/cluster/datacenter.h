// The data-center model: rows of racks of servers, task execution, power
// aggregation, and the RAPL safety net.
//
// DataCenter is the single mutation point for servers so that per-rack,
// per-row and total power stay incrementally consistent (O(1) per event).
// The scheduler places tasks through PlaceTask and consults frozen(); the
// telemetry monitor reads the power accessors; the capping model reacts to
// every power-affecting event within the same simulated instant, mirroring
// RAPL's sub-millisecond reaction (§2.1).

#ifndef SRC_CLUSTER_DATACENTER_H_
#define SRC_CLUSTER_DATACENTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/cluster/server.h"
#include "src/common/ids.h"
#include "src/common/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/power/breaker.h"
#include "src/power/dvfs.h"
#include "src/power/power_model.h"
#include "src/sim/simulation.h"

namespace ampere {

// How the RAPL safety net divides a row's enforcement budget.
enum class CappingMode : int {
  // One uniform DVFS step for every server in the row whenever the row
  // total exceeds its budget (coordinated row-level capping).
  kRowUniform = 0,
  // Each server gets a static share (row budget / n servers) and is
  // individually throttled when its own draw exceeds that share — how
  // fleet RAPL deployments actually assign limits, and what makes the
  // paper's "54 % of servers capped" statistic per-server meaningful.
  kPerServer = 1,
};

struct TopologyConfig {
  int num_rows = 1;
  int racks_per_row = 10;
  int servers_per_rack = 42;  // ~420 per row, matching the 400+ server row.
  Resources server_capacity{16.0, 64.0};
  PowerModelParams power_model;
  // Optional mixed-generation fleet: racks cycle through these power models
  // (racks are purchased and racked as homogeneous units; rows accumulate
  // generations over years). Empty = homogeneous fleet using `power_model`.
  std::vector<PowerModelParams> server_generations;
  // Power budgets; 0 means "rated provisioning": budget = n * rated watts
  // (the conservative baseline the paper starts from, rO = 0).
  double row_budget_watts = 0.0;
  double rack_budget_watts = 0.0;
  // Hardware power capping (the safety net). Disabled by default: the
  // paper's controlled experiments switch it off to observe true demand.
  bool capping_enabled = false;
  CappingMode capping_mode = CappingMode::kRowUniform;
  DvfsLadder ladder;
  BreakerParams breaker;
  // Sleep-state model (§5.1 baseline): draw while asleep as a fraction of
  // rated power, and the boot time from sleep to schedulable.
  double sleep_fraction = 0.06;
  SimTime wake_latency = SimTime::Seconds(30);
};

class DataCenter {
 public:
  // `sim` must outlive the DataCenter.
  DataCenter(const TopologyConfig& config, Simulation* sim);

  DataCenter(const DataCenter&) = delete;
  DataCenter& operator=(const DataCenter&) = delete;

  // --- Topology ---
  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_racks() const { return static_cast<int>(racks_.size()); }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  const Server& server(ServerId id) const { return servers_[id.index()]; }
  std::span<const ServerId> servers_in_row(RowId row) const {
    return rows_[row.index()].servers;
  }
  std::span<const ServerId> servers_in_rack(RackId rack) const {
    return racks_[rack.index()].servers;
  }
  std::span<const RackId> racks_in_row(RowId row) const {
    return rows_[row.index()].racks;
  }
  RowId row_of(ServerId id) const { return servers_[id.index()].row(); }

  // --- SoA power core ---
  // The per-server hot state (current draw, dynamic-at-full-frequency draw,
  // utilization) lives in contiguous arrays indexed by server id; Server
  // objects hold slot pointers into them (see Server::AttachSoaSlots).
  // Topology construction assigns server ids row-major (row 0's racks, then
  // row 1's, ...), so every row and every rack owns one CONTIGUOUS index
  // range — a parallel shard over a row range touches cache lines no other
  // shard writes. Batch consumers (the sharded telemetry sampler, the exact
  // resummation pass) stream these spans instead of walking Server objects.
  std::span<const double> server_power_soa() const { return soa_power_watts_; }
  std::span<const double> server_dynamic_full_soa() const {
    return soa_dynamic_full_watts_;
  }
  std::span<const double> server_utilization_soa() const {
    return soa_utilization_;
  }
  // Half-open [begin, end) server-index ranges; CHECKed contiguous at
  // construction.
  struct IndexRange {
    size_t begin = 0;
    size_t end = 0;
    size_t size() const { return end - begin; }
  };
  IndexRange server_range_of_row(RowId id) const {
    return rows_[id.index()].server_range;
  }
  IndexRange server_range_of_rack(RackId id) const {
    return racks_[id.index()].server_range;
  }

  // Attaches a thread pool for the batch passes (currently the periodic
  // exact resummation); null (the default) or a single-threaded pool keeps
  // the exact serial path. Results are bit-identical either way: shards
  // compute per-row/per-rack sums in the same element order, and the final
  // cross-row reduction stays serial in row order. `pool` must outlive the
  // DataCenter or be detached first.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  // --- Task execution ---
  // Places a task; returns false (and does nothing) if it does not fit.
  // Placement on a frozen server is allowed at this layer — respecting the
  // frozen flag is the scheduler's contract, and keeping the layers honest
  // lets tests verify the scheduler actually honors it.
  bool PlaceTask(ServerId id, const TaskSpec& spec);

  // Marks/unmarks a server as frozen. Purely advisory state read by the
  // scheduler's low level; running tasks are unaffected (§3.4).
  void SetFrozen(ServerId id, bool frozen);

  // Dedicates a server to a static service; the scheduler skips it.
  void SetReserved(ServerId id, bool reserved);

  // --- Sleep states (§5.1 PowerNap-style baseline) ---
  // Puts an idle server to sleep (requires no running tasks; throws
  // otherwise). Power drops to the sleep floor immediately.
  void SleepServer(ServerId id);
  // Begins waking a sleeping server: power rises to idle immediately (boot
  // draw) and the server becomes schedulable after wake_latency. No-op if
  // the server is already awake or waking.
  void WakeServer(ServerId id);

  // Invoked whenever a task completes; receives (server, job).
  void SetTaskCompletionListener(std::function<void(ServerId, JobId)> cb) {
    completion_listener_ = std::move(cb);
  }

  // --- Power ---
  double server_power_watts(ServerId id) const {
    return servers_[id.index()].power_watts();
  }
  double rack_power_watts(RackId id) const {
    return racks_[id.index()].power_watts;
  }
  double row_power_watts(RowId id) const { return rows_[id.index()].power_watts; }
  double total_power_watts() const { return total_power_watts_; }
  double PowerOfServers(std::span<const ServerId> ids) const;

  // Exact (freshly summed) counterparts of the incremental aggregates above.
  // The incremental values drift from these by accumulated float rounding —
  // one ulp-scale error per mutation — which the periodic resummation
  // (ResummatePowerAggregates) snaps away; tests compare the two to bound
  // the drift between snaps.
  double ExactRackPowerWatts(RackId id) const;
  double ExactRowPowerWatts(RowId id) const;
  double ExactRowDynamicFullWatts(RowId id) const;
  double ExactTotalPowerWatts() const;
  // Recomputes every rack/row/total aggregate exactly from the per-server
  // power caches. Called automatically every kResumIntervalMutations
  // power-affecting mutations; public so tests (and long-running drivers)
  // can snap on demand. Summation order is fixed (servers in id order
  // within rack, racks in id order within row, rows in id order), so the
  // result is deterministic.
  void ResummatePowerAggregates();
  // Number of power-affecting mutations folded into the aggregates since
  // the last resummation (diagnostic; exposed for the drift test).
  uint64_t power_mutations_since_resum() const {
    return power_mutations_since_resum_;
  }
  // Aggregates are resummed exactly every this many incremental updates.
  // At ~65k mutations the worst-case accumulated drift on a row aggregate
  // is orders of magnitude below the 1e-9 W tolerance the drift test
  // asserts, while the resummation cost (one pass over the fleet) amortizes
  // to well under a nanosecond per mutation.
  static constexpr uint64_t kResumIntervalMutations = 1ULL << 16;

  double row_budget_watts(RowId id) const { return rows_[id.index()].budget_watts; }
  double rack_budget_watts(RackId id) const {
    return racks_[id.index()].budget_watts;
  }
  double total_budget_watts() const;

  // --- Capping (RAPL safety net) ---
  void SetCappingEnabled(bool enabled);
  // Overrides the enforcement budget of one row (e.g. scaled budgets in the
  // over-provisioning emulation of §4.1.2).
  void SetRowCappingBudget(RowId id, double watts);
  double row_throttle(RowId id) const { return rows_[id.index()].throttle; }
  bool IsServerCapped(ServerId id) const {
    return servers_[id.index()].frequency() < 1.0;
  }
  // Fraction of a row's servers currently throttled (§4.3's statistic).
  double FractionOfServersCapped(RowId id) const;
  // Cumulative simulated time this row spent throttled (any step < 1.0 for
  // kRowUniform; any server < 1.0 counts the row as capped for kPerServer).
  SimTime row_capped_time(RowId id) const;

  // --- Breaker ---
  // True if any row's breaker has tripped (sustained overload with capping
  // off or insufficient).
  bool AnyBreakerTripped() const;

  // Metrics/timeline domain for this DC's instrumentation ("dc1/" in a
  // campus; root, 0, standalone). Observation-only: it labels flight
  // recorder breaker events, never alters simulation behaviour.
  void SetObsDomain(obs::DomainId domain) { obs_domain_ = domain; }
  obs::DomainId obs_domain() const { return obs_domain_; }

  Simulation* sim() const { return sim_; }
  // The primary (first-generation) power model. Heterogeneous fleets have
  // per-server models; use server(id) accessors for those.
  const ServerPowerModel& power_model() const { return models_.front(); }
  size_t num_generations() const { return models_.size(); }

 private:
  struct RackState {
    std::vector<ServerId> servers;
    RowId row;
    IndexRange server_range;  // Contiguous ids, ascending.
    double power_watts = 0.0;
    double budget_watts = 0.0;
  };
  struct RowState {
    std::vector<ServerId> servers;
    std::vector<RackId> racks;
    IndexRange server_range;  // Contiguous ids, ascending.
    double power_watts = 0.0;
    double budget_watts = 0.0;           // Physical / provisioned.
    double capping_budget_watts = 0.0;   // Enforcement target for RAPL.
    double idle_sum_watts = 0.0;         // Static.
    double dynamic_full_sum_watts = 0.0; // Sum of dynamic draw at f = 1.0.
    double throttle = 1.0;               // kRowUniform step.
    size_t capped_server_count = 0;
    CircuitBreaker breaker;
    SimTime capped_since;
    SimTime capped_total;
  };

  void CompleteTask(ServerId id, JobId job);
  // Recomputes a server's power and folds the delta into aggregates.
  void RefreshServerPower(ServerId id, double old_power, double old_dynamic);
  // Applies the RAPL decision for a row if its throttle step changed
  // (kRowUniform) and feeds the breaker; in kPerServer mode only the
  // breaker observes here.
  void EnforceRowCap(RowId row_id);
  // kPerServer enforcement for one server against its static share.
  void EnforceServerCap(ServerId id);
  // Sets a server's frequency, reconciling all running tasks' remaining work
  // and rescheduling their completions; maintains the row's capped-server
  // count and capped-time clock.
  void SetServerFrequency(ServerId id, double freq);
  // Bulk counterpart of SetServerFrequency for a whole row at one uniform
  // frequency — the shape of every kRowUniform enforcement step and of the
  // capping release path. Per-server bookkeeping (capped-count crossings,
  // task reconciliation, completion rescheduling) runs in the same ascending
  // id order as the per-server loop it replaces, so the event sequence is
  // unchanged; the power refresh then happens per RACK as one batched
  // power-model evaluation over the rack's contiguous SoA span, with rack
  // sums rebuilt by the fixed blocked-order reduction (span_kernels.h).
  // Falls back to per-server SetServerFrequency whenever any server in the
  // fleet is asleep/waking (their draw is the sleep floor, not the model's
  // output). Aggregates may differ from the incremental path by float
  // rounding only (different association order) — never observed by a
  // golden, and bounded by the periodic resummation like every other path.
  void ApplyRowFrequency(RowId row_id, double freq);
  double PerServerCapWatts(const RowState& row) const {
    return row.capping_budget_watts /
           static_cast<double>(row.servers.size());
  }

  Simulation* sim_;
  ThreadPool* pool_ = nullptr;  // Not owned; see SetThreadPool.
  // Owns one model per generation; servers point into this vector, which is
  // never resized after construction.
  std::vector<ServerPowerModel> models_;
  // SoA power core (see the accessor block above). Sized once at
  // construction; never resized, so Server slot pointers stay valid.
  std::vector<double> soa_power_watts_;
  std::vector<double> soa_dynamic_full_watts_;
  std::vector<double> soa_utilization_;
  DvfsLadder ladder_;
  bool capping_enabled_;
  CappingMode capping_mode_;
  double sleep_watts_ = 0.0;
  SimTime wake_latency_;
  std::vector<Server> servers_;
  std::vector<RackState> racks_;
  std::vector<RowState> rows_;
  double total_power_watts_ = 0.0;
  uint64_t power_mutations_since_resum_ = 0;
  // Servers currently asleep or waking (their cached power is the sleep
  // floor, not a model evaluation). Nonzero routes ApplyRowFrequency onto
  // its exact per-server fallback.
  size_t asleep_servers_ = 0;
  obs::DomainId obs_domain_ = 0;
  std::function<void(ServerId, JobId)> completion_listener_;
};

}  // namespace ampere

#endif  // SRC_CLUSTER_DATACENTER_H_
