#include "src/cluster/server.h"

namespace ampere {

Server::Server(ServerId id, RackId rack, RowId row, Resources capacity,
               const ServerPowerModel* power_model)
    : id_(id), rack_(rack), row_(row), capacity_(capacity),
      power_model_(power_model) {
  // Power-cache slots are not attached yet: the owning DataCenter calls
  // AttachSoaSlots + RecomputePowerCache once its SoA arrays are sized.
}

}  // namespace ampere
