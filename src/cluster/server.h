// A single server: resource capacity, running tasks, DVFS state, power draw.
//
// Mutations (task placement/completion, freezing, frequency changes) go
// through DataCenter so that rack/row power aggregates stay consistent;
// Server itself only exposes read access plus bookkeeping used by its owner.

#ifndef SRC_CLUSTER_SERVER_H_
#define SRC_CLUSTER_SERVER_H_

#include <unordered_map>

#include "src/cluster/resources.h"
#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/power/power_model.h"
#include "src/sim/simulation.h"

namespace ampere {

// A unit of work bound for one server. `work` is the task's duration at full
// frequency; DVFS throttling stretches wall-clock completion accordingly.
struct TaskSpec {
  JobId job;
  Resources demand;
  SimTime work;
};

class DataCenter;

class Server {
 public:
  Server(ServerId id, RackId rack, RowId row, Resources capacity,
         const ServerPowerModel* power_model);

  ServerId id() const { return id_; }
  RackId rack() const { return rack_; }
  RowId row() const { return row_; }

  const Resources& capacity() const { return capacity_; }
  const Resources& allocated() const { return allocated_; }
  Resources Available() const { return capacity_ - allocated_; }
  bool CanFit(const Resources& demand) const {
    return Available().Fits(demand);
  }

  // CPU utilization in [0, 1]; this drives the power model.
  double utilization() const {
    return capacity_.cpu_cores > 0.0
               ? allocated_.cpu_cores / capacity_.cpu_cores
               : 0.0;
  }

  bool frozen() const { return frozen_; }
  // Reserved servers host dedicated services (e.g. the Fig. 11 Redis pool)
  // and are excluded from the batch scheduler's candidate list.
  bool reserved() const { return reserved_; }
  // Sleep states (the §5.1 PowerNap-style baseline): an asleep server draws
  // only its sleep floor and cannot host tasks; a waking server already
  // draws idle power but is not yet schedulable.
  bool asleep() const { return asleep_; }
  bool waking() const { return waking_; }
  // Convenience: can the scheduler's low level offer this server?
  bool SchedulableState() const {
    return !frozen_ && !reserved_ && !asleep_ && !waking_;
  }
  double frequency() const { return frequency_; }
  size_t num_tasks() const { return tasks_.size(); }

  // Instantaneous draw at the current operating point.
  double power_watts() const {
    if (asleep_) {
      return sleep_watts_;
    }
    return power_model_->PowerAt(utilization(), frequency_);
  }
  // Dynamic (above-idle) draw the server would have at full frequency; row
  // capping decisions aggregate this.
  double dynamic_watts_at_full_freq() const {
    if (asleep_) {
      return 0.0;
    }
    return power_model_->DynamicPowerAt(utilization(), 1.0);
  }
  double idle_watts() const { return power_model_->idle_watts(); }
  double rated_watts() const { return power_model_->rated_watts(); }

 private:
  friend class DataCenter;

  struct RunningTask {
    Resources demand;
    SimTime remaining_work;  // At full frequency.
    SimTime last_update;     // When remaining_work was last reconciled.
    Simulation::EventHandle completion;
  };

  ServerId id_;
  RackId rack_;
  RowId row_;
  Resources capacity_;
  Resources allocated_;
  const ServerPowerModel* power_model_;  // Not owned; outlives the server.
  bool frozen_ = false;
  bool reserved_ = false;
  bool asleep_ = false;
  bool waking_ = false;
  double frequency_ = 1.0;
  double sleep_watts_ = 0.0;  // Set by the owning DataCenter.
  Simulation::EventHandle wake_completion_;
  std::unordered_map<JobId, RunningTask> tasks_;
};

}  // namespace ampere

#endif  // SRC_CLUSTER_SERVER_H_
