// A single server: resource capacity, running tasks, DVFS state, power draw.
//
// Mutations (task placement/completion, freezing, frequency changes) go
// through DataCenter so that rack/row power aggregates stay consistent;
// Server itself only exposes read access plus bookkeeping used by its owner.

#ifndef SRC_CLUSTER_SERVER_H_
#define SRC_CLUSTER_SERVER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/cluster/resources.h"
#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/power/power_model.h"
#include "src/sim/simulation.h"

namespace ampere {

// A unit of work bound for one server. `work` is the task's duration at full
// frequency; DVFS throttling stretches wall-clock completion accordingly.
struct TaskSpec {
  JobId job;
  Resources demand;
  SimTime work;
};

class DataCenter;

class Server {
 public:
  Server(ServerId id, RackId rack, RowId row, Resources capacity,
         const ServerPowerModel* power_model);

  ServerId id() const { return id_; }
  RackId rack() const { return rack_; }
  RowId row() const { return row_; }

  const Resources& capacity() const { return capacity_; }
  const Resources& allocated() const { return allocated_; }
  Resources Available() const { return capacity_ - allocated_; }
  bool CanFit(const Resources& demand) const {
    return Available().Fits(demand);
  }

  // CPU utilization in [0, 1]; this drives the power model.
  double utilization() const {
    return capacity_.cpu_cores > 0.0
               ? allocated_.cpu_cores / capacity_.cpu_cores
               : 0.0;
  }

  bool frozen() const { return frozen_; }
  // Reserved servers host dedicated services (e.g. the Fig. 11 Redis pool)
  // and are excluded from the batch scheduler's candidate list.
  bool reserved() const { return reserved_; }
  // Sleep states (the §5.1 PowerNap-style baseline): an asleep server draws
  // only its sleep floor and cannot host tasks; a waking server already
  // draws idle power but is not yet schedulable.
  bool asleep() const { return asleep_; }
  bool waking() const { return waking_; }
  // Convenience: can the scheduler's low level offer this server?
  bool SchedulableState() const {
    return !frozen_ && !reserved_ && !asleep_ && !waking_;
  }
  double frequency() const { return frequency_; }
  size_t num_tasks() const { return tasks_.size(); }

  // Instantaneous draw at the current operating point. Cached: recomputed by
  // the owning DataCenter (RecomputePowerCache) on every power-affecting
  // mutation, so the telemetry monitor's per-server read is one load instead
  // of a power-model evaluation. The cached value is the same pure function
  // of (asleep, utilization, frequency) the model would return on demand.
  //
  // Storage is structure-of-arrays: the value lives in the owning
  // DataCenter's contiguous per-server power array (indexed by server id),
  // and the server holds a handle (slot pointer) into it. Batch consumers —
  // the sharded telemetry sampler, the periodic exact resummation — stream
  // the arrays directly instead of hopping across Server objects (which are
  // large: the task table dominates); these accessors are the AoS-style
  // view for everyone else.
  double power_watts() const { return *soa_power_watts_; }
  // Dynamic (above-idle) draw the server would have at full frequency; row
  // capping decisions aggregate this. Cached alongside power_watts().
  double dynamic_watts_at_full_freq() const {
    return *soa_dynamic_full_watts_;
  }
  double idle_watts() const { return power_model_->idle_watts(); }
  double rated_watts() const { return power_model_->rated_watts(); }

 private:
  friend class DataCenter;

  // Points this server's cached-power/dynamic/utilization reads at its
  // slots in the owning DataCenter's SoA arrays. Called once after the
  // DataCenter has sized the arrays (they never resize afterwards, so the
  // pointers stay valid for the server's lifetime).
  void AttachSoaSlots(double* power, double* dynamic_full,
                      double* utilization) {
    soa_power_watts_ = power;
    soa_dynamic_full_watts_ = dynamic_full;
    soa_utilization_ = utilization;
  }

  // Re-evaluates the power model at the current operating point. Called by
  // DataCenter after every mutation of asleep_/waking_/sleep_watts_/
  // allocated_/frequency_ (all of which funnel through DataCenter).
  void RecomputePowerCache() {
    const double u = utilization();
    *soa_utilization_ = u;
    if (asleep_) {
      *soa_power_watts_ = sleep_watts_;
      *soa_dynamic_full_watts_ = 0.0;
      return;
    }
    *soa_power_watts_ = power_model_->PowerAt(u, frequency_);
    *soa_dynamic_full_watts_ = power_model_->DynamicPowerAt(u, 1.0);
  }

  struct RunningTask {
    Resources demand;
    SimTime remaining_work;  // At full frequency.
    SimTime last_update;     // When remaining_work was last reconciled.
    Simulation::EventHandle completion;
  };

  // Insertion-ordered running-task table on flat storage. A server hosts a
  // handful of tasks (batch containers plus at most one resident service),
  // so a linear scan over a dense key array beats a hash table: lookup
  // touches one or two cache lines of keys instead of a bucket array plus a
  // chained node, insertion is a push_back, and the whole table is two
  // contiguous blocks instead of a node forest — which also shrinks the
  // Server object itself, the dominant cache footprint at fleet scale.
  // Iteration order is insertion order: stable, deterministic, and
  // independent of key values, which the frequency-reconcile walk in
  // DataCenter::SetServerFrequency relies on for reproducible completion
  // rescheduling.
  class TaskTable {
   public:
    static constexpr size_t kNotFound = static_cast<size_t>(-1);

    size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    size_t Find(JobId job) const {
      for (size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i] == job) {
          return i;
        }
      }
      return kNotFound;
    }

    // Appends (job, task); returns false (and drops the task) if the job is
    // already present.
    bool TryEmplace(JobId job, RunningTask&& task) {
      if (Find(job) != kNotFound) {
        return false;
      }
      jobs_.push_back(job);
      tasks_.push_back(std::move(task));
      return true;
    }

    JobId job_at(size_t i) const { return jobs_[i]; }
    RunningTask& task_at(size_t i) { return tasks_[i]; }
    const RunningTask& task_at(size_t i) const { return tasks_[i]; }

    // Removes entry `i`, preserving the insertion order of the rest.
    void EraseAt(size_t i) {
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
      tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(i));
    }

   private:
    std::vector<JobId> jobs_;
    std::vector<RunningTask> tasks_;
  };

  ServerId id_;
  RackId rack_;
  RowId row_;
  Resources capacity_;
  Resources allocated_;
  const ServerPowerModel* power_model_;  // Not owned; outlives the server.
  bool frozen_ = false;
  bool reserved_ = false;
  bool asleep_ = false;
  bool waking_ = false;
  double frequency_ = 1.0;
  double sleep_watts_ = 0.0;  // Set by the owning DataCenter.
  // Slots into the owning DataCenter's SoA arrays (set by AttachSoaSlots
  // right after topology construction; never null once the DataCenter
  // constructor returns).
  double* soa_power_watts_ = nullptr;
  double* soa_dynamic_full_watts_ = nullptr;
  double* soa_utilization_ = nullptr;
  Simulation::EventHandle wake_completion_;
  TaskTable tasks_;
};

}  // namespace ampere

#endif  // SRC_CLUSTER_SERVER_H_
