#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace ampere {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / num_bins),
      bins_(static_cast<size_t>(num_bins), 0) {
  AMPERE_CHECK(hi > lo);
  AMPERE_CHECK(num_bins >= 1);
}

void Histogram::Add(double x) {
  ++count_;
  sum_ += x;
  max_seen_ = count_ == 1 ? x : std::max(max_seen_, x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<size_t>((x - lo_) / bin_width_);
  if (bin >= bins_.size()) {
    bin = bins_.size() - 1;  // Floating-point edge at hi_.
  }
  ++bins_[bin];
}

void Histogram::Merge(const Histogram& other) {
  AMPERE_CHECK(other.lo_ == lo_ && other.hi_ == hi_ &&
               other.bins_.size() == bins_.size())
      << "histogram layouts differ";
  for (size_t i = 0; i < bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

double Histogram::Quantile(double q) const {
  AMPERE_CHECK(count_ > 0) << "quantile of empty histogram";
  AMPERE_CHECK(q >= 0.0 && q <= 1.0);
  double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) {
    return lo_;
  }
  for (size_t i = 0; i < bins_.size(); ++i) {
    double next = cum + static_cast<double>(bins_[i]);
    if (target <= next && bins_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(bins_[i]);
      return lo_ + (static_cast<double>(i) + frac) * bin_width_;
    }
    cum = next;
  }
  // Target falls in the overflow mass: report the max observed value.
  return max_seen_;
}

}  // namespace ampere
