// Least-squares fits used to calibrate the controller.
//
// The paper approximates the freezing-effect function f(u) with a linear
// model y = kr * u fitted to controlled-experiment samples (§3.4, Fig. 5).
// We provide both the through-origin fit the paper uses and a general
// simple-linear fit for diagnostics, plus per-bucket quantile summaries used
// to regenerate Fig. 5's percentile bands.

#ifndef SRC_STATS_REGRESSION_H_
#define SRC_STATS_REGRESSION_H_

#include <span>
#include <vector>

namespace ampere {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  size_t count = 0;
};

// Ordinary least squares y = slope * x + intercept. Requires >= 2 points and
// non-constant x.
LinearFit FitLinear(std::span<const double> x, std::span<const double> y);

// Least squares through the origin, y = slope * x (the paper's f(u) = kr*u).
// Requires >= 1 point with nonzero x.
LinearFit FitThroughOrigin(std::span<const double> x,
                           std::span<const double> y);

// Quantile-by-bucket summary: groups (x, y) pairs into `num_buckets` equal
// x-width buckets over [x_min, x_max] and reports the requested y-quantiles
// per non-empty bucket. Regenerates Fig. 5's 25/50/75th-percentile curves.
struct BucketQuantiles {
  double x_center = 0.0;
  size_t count = 0;
  std::vector<double> quantiles;  // Parallel to the `qs` argument.
};

std::vector<BucketQuantiles> QuantilesByBucket(std::span<const double> x,
                                               std::span<const double> y,
                                               int num_buckets,
                                               std::span<const double> qs);

}  // namespace ampere

#endif  // SRC_STATS_REGRESSION_H_
