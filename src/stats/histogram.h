// Fixed-bin histogram for latency and power distributions.
//
// Used to track per-operation latency distributions for the Fig. 11
// redis-benchmark comparison (p99.9 of millions of requests) without storing
// every sample.

#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ampere {

// Linear-bin histogram over [lo, hi) with overflow/underflow tracking.
// Quantiles interpolate within the containing bin, so resolution is bounded
// by the bin width.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_bins);

  void Add(double x);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double Quantile(double q) const;  // Requires count() > 0.
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  double max_seen() const { return max_seen_; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t num_bins() const { return bins_.size(); }
  uint64_t bin_count(size_t i) const { return bins_[i]; }

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<uint64_t> bins_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace ampere

#endif  // SRC_STATS_HISTOGRAM_H_
