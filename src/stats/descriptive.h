// Descriptive statistics: batch summaries and Welford online accumulation.

#ifndef SRC_STATS_DESCRIPTIVE_H_
#define SRC_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <span>

namespace ampere {

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // Sample variance (n - 1 denominator).
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

// Computes a one-pass summary of `values`. Empty input yields a
// zero-initialized Summary with count == 0.
Summary Summarize(std::span<const double> values);

// Numerically stable online mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance; zero until two observations arrive.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace ampere

#endif  // SRC_STATS_DESCRIPTIVE_H_
