// Correlation measures.
//
// §2.2 of the paper reports that cross-row power traces are weakly correlated
// (80 % of pairwise coefficients below 0.33), which is the statistical slack
// Ampere exploits; §4.1.2 validates the controlled-experiment split with a
// 0.946 correlation between group power traces.

#ifndef SRC_STATS_CORRELATION_H_
#define SRC_STATS_CORRELATION_H_

#include <span>
#include <vector>

namespace ampere {

// Pearson correlation coefficient of two equal-length series.
// Returns 0 when either series is constant. Requires >= 2 points.
double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y);

// All pairwise Pearson coefficients among `series` (upper triangle, i < j).
std::vector<double> PairwiseCorrelations(
    std::span<const std::vector<double>> series);

}  // namespace ampere

#endif  // SRC_STATS_CORRELATION_H_
