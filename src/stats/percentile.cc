#include "src/stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace ampere {
namespace {

double InterpolateSorted(std::span<const double> sorted, double q) {
  AMPERE_CHECK(!sorted.empty()) << "quantile of empty sample";
  AMPERE_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  if (lo >= sorted.size() - 1) {
    return sorted.back();
  }
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double Percentile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return InterpolateSorted(sorted, q);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> values)
    : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::Evaluate(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  return InterpolateSorted(sorted_, q);
}

std::vector<std::pair<double, double>> EmpiricalCdf::PlotPoints(int n) const {
  AMPERE_CHECK(!sorted_.empty());
  AMPERE_CHECK(n >= 2);
  std::vector<std::pair<double, double>> points;
  points.reserve(static_cast<size_t>(n));
  double lo = min();
  double hi = max();
  for (int i = 0; i < n; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(n - 1);
    points.emplace_back(x, Evaluate(x));
  }
  return points;
}

}  // namespace ampere
