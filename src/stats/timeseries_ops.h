// Time-series transforms used by the evaluation and the E_t estimator.
//
// Fig. 9's methodology: "for the k-minute scale, we compute a sequence of the
// maximum power for every k minutes, and then plot the CDF of the first order
// differences of the power sequence." The E_t estimator (§3.6) computes, per
// hour-of-day, the 99.5th percentile of one-minute power increases.

#ifndef SRC_STATS_TIMESERIES_OPS_H_
#define SRC_STATS_TIMESERIES_OPS_H_

#include <array>
#include <span>
#include <vector>

namespace ampere {

// Consecutive differences x[i+1] - x[i].
std::vector<double> FirstOrderDifferences(std::span<const double> values);

// Max of each consecutive window of `k` samples (the tail window may be
// shorter). Requires k >= 1.
std::vector<double> WindowedMax(std::span<const double> values, int k);

// Fig. 9 transform: first-order differences of the per-k-minute max sequence.
std::vector<double> ScaledPowerChanges(std::span<const double> per_minute,
                                       int k_minutes);

// Per-hour-of-day quantile profile of one-minute increases. `per_minute` is a
// minute-indexed series starting at `start_minute_of_day` (0 = midnight);
// increases are attributed to the hour of their left endpoint. Hours with no
// data get `fallback`.
std::array<double, 24> HourlyIncreaseQuantile(
    std::span<const double> per_minute, int start_minute_of_day, double q,
    double fallback);

}  // namespace ampere

#endif  // SRC_STATS_TIMESERIES_OPS_H_
