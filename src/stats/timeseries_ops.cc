#include "src/stats/timeseries_ops.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/stats/percentile.h"

namespace ampere {

std::vector<double> FirstOrderDifferences(std::span<const double> values) {
  std::vector<double> diffs;
  if (values.size() < 2) {
    return diffs;
  }
  diffs.reserve(values.size() - 1);
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    diffs.push_back(values[i + 1] - values[i]);
  }
  return diffs;
}

std::vector<double> WindowedMax(std::span<const double> values, int k) {
  AMPERE_CHECK(k >= 1);
  std::vector<double> out;
  size_t window = static_cast<size_t>(k);
  for (size_t i = 0; i < values.size(); i += window) {
    size_t end = std::min(i + window, values.size());
    double m = values[i];
    for (size_t j = i + 1; j < end; ++j) {
      m = std::max(m, values[j]);
    }
    out.push_back(m);
  }
  return out;
}

std::vector<double> ScaledPowerChanges(std::span<const double> per_minute,
                                       int k_minutes) {
  return FirstOrderDifferences(WindowedMax(per_minute, k_minutes));
}

std::array<double, 24> HourlyIncreaseQuantile(
    std::span<const double> per_minute, int start_minute_of_day, double q,
    double fallback) {
  AMPERE_CHECK(start_minute_of_day >= 0);
  std::array<std::vector<double>, 24> buckets;
  for (size_t i = 0; i + 1 < per_minute.size(); ++i) {
    int minute_of_day =
        (start_minute_of_day + static_cast<int>(i % (24 * 60))) % (24 * 60);
    int hour = minute_of_day / 60;
    buckets[static_cast<size_t>(hour)].push_back(per_minute[i + 1] -
                                                 per_minute[i]);
  }
  std::array<double, 24> out{};
  for (size_t h = 0; h < 24; ++h) {
    out[h] = buckets[h].empty() ? fallback : Percentile(buckets[h], q);
  }
  return out;
}

}  // namespace ampere
