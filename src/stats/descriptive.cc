#include "src/stats/descriptive.h"

#include <cmath>

namespace ampere {

Summary Summarize(std::span<const double> values) {
  OnlineStats acc;
  for (double v : values) {
    acc.Add(v);
  }
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance = acc.variance();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.sum = acc.sum();
  return s;
}

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ampere
