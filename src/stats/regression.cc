#include "src/stats/regression.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/stats/percentile.h"

namespace ampere {
namespace {

double ResidualRSquared(std::span<const double> x, std::span<const double> y,
                        double slope, double intercept) {
  double y_mean = 0.0;
  for (double v : y) {
    y_mean += v;
  }
  y_mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    double pred = slope * x[i] + intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - y_mean) * (y[i] - y_mean);
  }
  if (ss_tot <= 0.0) {
    return ss_res <= 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

LinearFit FitLinear(std::span<const double> x, std::span<const double> y) {
  AMPERE_CHECK(x.size() == y.size());
  AMPERE_CHECK(x.size() >= 2) << "need at least two points";
  double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  AMPERE_CHECK(denom > 0.0) << "x values are constant";
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  fit.count = x.size();
  fit.r_squared = ResidualRSquared(x, y, fit.slope, fit.intercept);
  return fit;
}

LinearFit FitThroughOrigin(std::span<const double> x,
                           std::span<const double> y) {
  AMPERE_CHECK(x.size() == y.size());
  AMPERE_CHECK(!x.empty());
  double sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  AMPERE_CHECK(sxx > 0.0) << "all x are zero";
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = 0.0;
  fit.count = x.size();
  fit.r_squared = ResidualRSquared(x, y, fit.slope, 0.0);
  return fit;
}

std::vector<BucketQuantiles> QuantilesByBucket(std::span<const double> x,
                                               std::span<const double> y,
                                               int num_buckets,
                                               std::span<const double> qs) {
  AMPERE_CHECK(x.size() == y.size());
  AMPERE_CHECK(num_buckets >= 1);
  if (x.empty()) {
    return {};
  }
  auto [min_it, max_it] = std::minmax_element(x.begin(), x.end());
  double lo = *min_it;
  double hi = *max_it;
  double width = (hi - lo) / static_cast<double>(num_buckets);
  if (width <= 0.0) {
    width = 1.0;  // Degenerate: every point lands in bucket 0.
  }
  std::vector<std::vector<double>> groups(static_cast<size_t>(num_buckets));
  for (size_t i = 0; i < x.size(); ++i) {
    auto b = static_cast<size_t>((x[i] - lo) / width);
    if (b >= groups.size()) {
      b = groups.size() - 1;
    }
    groups[b].push_back(y[i]);
  }
  std::vector<BucketQuantiles> out;
  for (size_t b = 0; b < groups.size(); ++b) {
    if (groups[b].empty()) {
      continue;
    }
    BucketQuantiles bq;
    bq.x_center = lo + (static_cast<double>(b) + 0.5) * width;
    bq.count = groups[b].size();
    for (double q : qs) {
      bq.quantiles.push_back(Percentile(groups[b], q));
    }
    out.push_back(std::move(bq));
  }
  return out;
}

}  // namespace ampere
