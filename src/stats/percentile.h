// Percentiles and empirical CDFs.
//
// The paper leans heavily on quantiles: the E_t estimator uses the per-hour
// 99.5th percentile of one-minute power increases (§3.6), Fig. 5 reports the
// 25/50/75th percentiles of f(u), and Figs. 1/7/9 are CDF plots.

#ifndef SRC_STATS_PERCENTILE_H_
#define SRC_STATS_PERCENTILE_H_

#include <span>
#include <vector>

namespace ampere {

// Returns the q-quantile (q in [0, 1]) of `values` using linear interpolation
// between order statistics (type-7, the numpy/R default). Requires a
// non-empty input.
double Percentile(std::span<const double> values, double q);

// As above but for a percentile rank in [0, 100].
inline double PercentileRank(std::span<const double> values, double rank) {
  return Percentile(values, rank / 100.0);
}

// An immutable empirical CDF over a sample.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> values);

  // Fraction of the sample <= x.
  double Evaluate(double x) const;

  // Inverse CDF with interpolation; q in [0, 1].
  double Quantile(double q) const;

  size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

  // Evenly spaced (x, F(x)) points for plotting, `n` of them spanning
  // [min, max]. Requires a non-empty sample and n >= 2.
  std::vector<std::pair<double, double>> PlotPoints(int n) const;

  const std::vector<double>& sorted_values() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace ampere

#endif  // SRC_STATS_PERCENTILE_H_
