#include "src/stats/correlation.h"

#include <cmath>

#include "src/common/check.h"

namespace ampere {

double PearsonCorrelation(std::span<const double> x,
                          std::span<const double> y) {
  AMPERE_CHECK(x.size() == y.size());
  AMPERE_CHECK(x.size() >= 2);
  double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  double mx = sx / n;
  double my = sy / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> PairwiseCorrelations(
    std::span<const std::vector<double>> series) {
  std::vector<double> out;
  for (size_t i = 0; i < series.size(); ++i) {
    for (size_t j = i + 1; j < series.size(); ++j) {
      out.push_back(PearsonCorrelation(series[i], series[j]));
    }
  }
  return out;
}

}  // namespace ampere
