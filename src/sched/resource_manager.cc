#include "src/sched/resource_manager.h"

#include "src/common/check.h"

namespace ampere {

ResourceManager::ResourceManager(DataCenter* dc) : dc_(dc) {
  AMPERE_CHECK(dc != nullptr);
}

void ResourceManager::Freeze(ServerId id) {
  ++freeze_calls_;
  dc_->SetFrozen(id, true);
}

void ResourceManager::Unfreeze(ServerId id) {
  ++unfreeze_calls_;
  dc_->SetFrozen(id, false);
}

bool ResourceManager::ClaimContainer(ServerId id, const TaskSpec& spec) {
  if (!IsCandidate(id)) {
    return false;
  }
  if (!dc_->PlaceTask(id, spec)) {
    return false;
  }
  ++containers_claimed_;
  return true;
}

}  // namespace ampere
