// The scheduler's low level (§2.1).
//
// "It is a two-level scheduler. The low level tracks the status of
// resources, bundles them into abstract resource containers and provides
// the containers to the upper level. ... Freeze and unfreeze are two APIs
// provided by the lower level of the job scheduler."
//
// ResourceManager owns exactly that role: the candidate list (which servers
// may be offered), container claims (binding a job's resources to a
// server), and the freeze/unfreeze interface Ampere consumes. Upper-level
// placement policies (see Scheduler) only ever ask "is this server a
// candidate?" and "claim this container" — they never mutate server state
// directly.

#ifndef SRC_SCHED_RESOURCE_MANAGER_H_
#define SRC_SCHED_RESOURCE_MANAGER_H_

#include <cstdint>

#include "src/cluster/datacenter.h"

namespace ampere {

class ResourceManager {
 public:
  // `dc` must outlive the manager.
  explicit ResourceManager(DataCenter* dc);

  // --- The power-control interface (the paper's two APIs) ---
  // Freezing removes a server from the candidate list; running containers
  // are unaffected. Unfreezing restores it.
  void Freeze(ServerId id);
  void Unfreeze(ServerId id);
  bool IsFrozen(ServerId id) const { return dc_->server(id).frozen(); }

  // --- Candidate list ---
  // A candidate is schedulable: not frozen, not reserved for a dedicated
  // service, awake, and fully booted.
  bool IsCandidate(ServerId id) const {
    return dc_->server(id).SchedulableState();
  }
  // Candidate AND has room for `demand`.
  bool CanHost(ServerId id, const Resources& demand) const {
    const Server& server = dc_->server(id);
    return server.SchedulableState() && server.CanFit(demand);
  }

  // --- Container claims ---
  // Binds the container described by `spec` to `id` and starts execution.
  // Returns false if the server is not a candidate or lacks resources.
  bool ClaimContainer(ServerId id, const TaskSpec& spec);

  uint64_t containers_claimed() const { return containers_claimed_; }
  uint64_t freeze_calls() const { return freeze_calls_; }
  uint64_t unfreeze_calls() const { return unfreeze_calls_; }

  DataCenter& dc() { return *dc_; }
  const DataCenter& dc() const { return *dc_; }

 private:
  DataCenter* dc_;
  uint64_t containers_claimed_ = 0;
  uint64_t freeze_calls_ = 0;
  uint64_t unfreeze_calls_ = 0;
};

}  // namespace ampere

#endif  // SRC_SCHED_RESOURCE_MANAGER_H_
