#include "src/sched/scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {

Scheduler::Scheduler(DataCenter* dc, const SchedulerConfig& config, Rng rng)
    : dc_(dc), rm_(dc), config_(config), rng_(rng),
      row_placements_(static_cast<size_t>(dc->num_rows()), 0) {
  AMPERE_CHECK(dc != nullptr);
  AMPERE_CHECK(config.sample_attempts >= 1);
  AMPERE_CHECK(config.least_loaded_choices >= 1);
  dc_->SetTaskCompletionListener(
      [this](ServerId server, JobId job) { OnTaskCompleted(server, job); });
}

void Scheduler::Submit(const JobSpec& job) {
  AMPERE_METRICS_DOMAIN(obs_domain_);
  ++jobs_submitted_;
  AMPERE_COUNTER_ADD("sched.jobs_submitted", 1);
  if (!TryPlace(job)) {
    pending_.push_back(job);
    AMPERE_COUNTER_ADD("sched.jobs_queued", 1);
  }
}

std::vector<JobSpec> Scheduler::TakePending(size_t max_jobs) {
  AMPERE_METRICS_DOMAIN(obs_domain_);
  std::vector<JobSpec> taken;
  if (max_jobs == 0 || pending_.empty()) {
    return taken;
  }
  taken.reserve(std::min(max_jobs, pending_.size()));
  // One pass over the queue, oldest first: movable jobs are taken (up to the
  // budget), row-pinned jobs and the post-budget tail are kept in their
  // original relative order.
  std::deque<JobSpec> kept;
  while (!pending_.empty()) {
    JobSpec job = pending_.front();
    pending_.pop_front();
    if (taken.size() < max_jobs && !job.row_affinity.has_value()) {
      taken.push_back(job);
      ++jobs_spilled_out_;
      AMPERE_COUNTER_ADD("sched.jobs_spilled_out", 1);
    } else {
      kept.push_back(job);
    }
  }
  pending_ = std::move(kept);
  return taken;
}

void Scheduler::Freeze(ServerId id) { rm_.Freeze(id); }

void Scheduler::Unfreeze(ServerId id) {
  rm_.Unfreeze(id);
  // A server just returned to the candidate list; queued jobs may now fit.
  DrainQueue();
}

RpcResult Scheduler::RunRpc() {
  RpcResult result;
  if (injector_ == nullptr) {
    return result;  // Infallible, instantaneous.
  }
  const int max_attempts = std::max(1, injector_->rpc_max_attempts());
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    faults::RpcAttempt draw = injector_->DrawRpcAttempt();
    result.attempts = attempt + 1;
    result.latency += draw.latency;
    if (draw.ok) {
      result.ok = true;
      return result;
    }
    AMPERE_COUNTER_ADD("faults.rpc_failed_attempts", 1);
    // Exponential backoff before the next attempt (accounted latency only).
    if (attempt + 1 < max_attempts) {
      result.latency += injector_->rpc_backoff_base() * std::pow(2.0, attempt);
      AMPERE_COUNTER_ADD("faults.rpc_retries", 1);
    }
  }
  result.ok = false;
  AMPERE_COUNTER_ADD("faults.rpc_exhausted", 1);
  return result;
}

RpcResult Scheduler::TryFreeze(ServerId id) {
  RpcResult result = RunRpc();
  if (result.ok) {
    Freeze(id);
  }
  return result;
}

RpcResult Scheduler::TryUnfreeze(ServerId id) {
  RpcResult result = RunRpc();
  if (result.ok) {
    Unfreeze(id);
  }
  return result;
}

bool Scheduler::Eligible(const Server& server, const JobSpec& job) const {
  // The low level's candidate list plus the job's own constraints.
  if (!rm_.CanHost(server.id(), job.demand)) {
    return false;
  }
  return !job.row_affinity.has_value() || server.row() == *job.row_affinity;
}

ServerId Scheduler::ScanFrom(size_t start, const JobSpec& job) const {
  size_t n = static_cast<size_t>(dc_->num_servers());
  for (size_t i = 0; i < n; ++i) {
    ServerId id(static_cast<int32_t>((start + i) % n));
    if (Eligible(dc_->server(id), job)) {
      return id;
    }
  }
  return ServerId();
}

ServerId Scheduler::PickRandomFit(const JobSpec& job) {
  int64_t n = dc_->num_servers();
  for (int attempt = 0; attempt < config_.sample_attempts; ++attempt) {
    ServerId id(static_cast<int32_t>(rng_.UniformInt(0, n - 1)));
    if (Eligible(dc_->server(id), job)) {
      return id;
    }
  }
  // Random probing failed (cluster nearly full or mostly frozen); fall back
  // to a scan from a random origin so placement stays work-conserving
  // without biasing toward low server ids.
  return ScanFrom(static_cast<size_t>(rng_.UniformInt(0, n - 1)), job);
}

ServerId Scheduler::PickLeastLoaded(const JobSpec& job) {
  int64_t n = dc_->num_servers();
  ServerId best;
  double best_util = 2.0;
  int found = 0;
  // Sample-with-replacement probing: examine up to `choices` eligible
  // candidates drawn uniformly, keep the least CPU-utilized.
  for (int attempt = 0;
       attempt < config_.sample_attempts * config_.least_loaded_choices &&
       found < config_.least_loaded_choices;
       ++attempt) {
    ServerId id(static_cast<int32_t>(rng_.UniformInt(0, n - 1)));
    const Server& server = dc_->server(id);
    if (!Eligible(server, job)) {
      continue;
    }
    ++found;
    if (server.utilization() < best_util) {
      best_util = server.utilization();
      best = id;
    }
  }
  if (best.valid()) {
    return best;
  }
  return ScanFrom(static_cast<size_t>(rng_.UniformInt(0, n - 1)), job);
}

ServerId Scheduler::PickRoundRobin(const JobSpec& job) {
  size_t n = static_cast<size_t>(dc_->num_servers());
  ServerId id = ScanFrom(rotate_cursor_, job);
  if (id.valid()) {
    rotate_cursor_ = (id.index() + 1) % n;
  }
  return id;
}

ServerId Scheduler::PickRowOrdered(const JobSpec& job, bool hottest_first) {
  // Rank rows by power, skipping rows already above the power ceiling;
  // place on a random eligible server of the best admissible row. If every
  // row is above the ceiling (or nothing fits), fall back to random-fit so
  // the policy stays work-conserving.
  std::vector<RowId> rows;
  for (int32_t r = 0; r < dc_->num_rows(); ++r) {
    rows.push_back(RowId(r));
  }
  std::sort(rows.begin(), rows.end(),
            [this, hottest_first](RowId a, RowId b) {
              double pa = dc_->row_power_watts(a);
              double pb = dc_->row_power_watts(b);
              return hottest_first ? pa > pb : pa < pb;
            });
  for (RowId row : rows) {
    if (job.row_affinity.has_value() && row != *job.row_affinity) {
      continue;
    }
    if (dc_->row_power_watts(row) >
        config_.concentrate_power_ceiling * dc_->row_budget_watts(row)) {
      continue;
    }
    auto servers = dc_->servers_in_row(row);
    auto n = static_cast<int64_t>(servers.size());
    for (int attempt = 0; attempt < config_.sample_attempts; ++attempt) {
      ServerId id = servers[static_cast<size_t>(rng_.UniformInt(0, n - 1))];
      if (Eligible(dc_->server(id), job)) {
        return id;
      }
    }
  }
  return PickRandomFit(job);
}

ServerId Scheduler::PickServer(const JobSpec& job) {
  switch (config_.policy) {
    case PlacementPolicy::kRandomFit:
      return PickRandomFit(job);
    case PlacementPolicy::kLeastLoaded:
      return PickLeastLoaded(job);
    case PlacementPolicy::kRoundRobin:
      return PickRoundRobin(job);
    case PlacementPolicy::kConcentrateRows:
      return PickRowOrdered(job, /*hottest_first=*/true);
    case PlacementPolicy::kPowerAwareSpread:
      return PickRowOrdered(job, /*hottest_first=*/false);
  }
  return ServerId();
}

bool Scheduler::TryPlace(const JobSpec& job) {
  // No span here: placement runs once per job event, which is far too hot
  // for per-call wall-clock instrumentation (the same rationale as the
  // event loop in Simulation::RunUntil, which spans the drain rather than
  // each event). The sched.placements counter below remains the per-call
  // signal; tick-level latency is covered by controller.tick/sim.run_until.
  ServerId id = PickServer(job);
  if (!id.valid()) {
    return false;
  }
  AMPERE_COUNTER_ADD("sched.placements", 1);
  TaskSpec spec{job.id, job.demand, job.duration};
  bool placed = rm_.ClaimContainer(id, spec);
  AMPERE_CHECK(placed) << "picked server could not host the container";
  ++jobs_placed_;
  ++row_placements_[dc_->row_of(id).index()];
  if (placement_listener_) {
    placement_listener_(job, id);
  }
  return true;
}

void Scheduler::DrainQueue() {
  size_t examined = 0;
  size_t failures = 0;
  for (auto it = pending_.begin();
       it != pending_.end() && examined < config_.queue_scan_limit &&
       failures < config_.drain_failure_limit;
       ++examined) {
    if (TryPlace(*it)) {
      it = pending_.erase(it);
    } else {
      ++failures;
      ++it;
    }
  }
}

void Scheduler::OnTaskCompleted(ServerId server, JobId job) {
  AMPERE_METRICS_DOMAIN(obs_domain_);
  // Resident service tasks carry negative ids and are not scheduler jobs.
  if (job.value() >= 0) {
    ++jobs_completed_;
  }
  if (completion_listener_) {
    completion_listener_(server, job);
  }
  DrainQueue();
}

}  // namespace ampere
