// Two-level job scheduler with the paper's freeze/unfreeze interface.
//
// §2.1: the production scheduler is Omega-like and two-level — the low level
// tracks resource status, bundles resources into containers and maintains a
// candidate list; the upper level decides placement with an
// application-specific policy. Ampere interacts with it through exactly two
// operations: Freeze(server) removes a server from the candidate list
// (running tasks are untouched), Unfreeze(server) restores it. That minimal
// surface is the paper's central design claim, so this class exposes nothing
// else to the controller.
//
// Placement is statistical: randomized policies spread jobs over the
// candidate list, so "the number of jobs scheduled to a row is roughly
// proportional to the number of available servers of the row" (§3.4) — the
// property Ampere's indirect control relies on.

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/faults/fault_injector.h"
#include "src/sched/resource_manager.h"
#include "src/workload/job.h"

namespace ampere {

// Outcome of one fallible freeze/unfreeze RPC (TryFreeze / TryUnfreeze),
// after the scheduler's bounded retry/backoff policy ran its course.
struct RpcResult {
  bool ok = true;
  int attempts = 1;  // RPC attempts consumed (1 = first try succeeded).
  // Total accounted latency: per-attempt latencies plus backoff between
  // retries. Accounted (journal/metrics), not injected into the event queue:
  // at 1/min control cadence sub-second RPC lag never reorders decisions.
  SimTime latency;
};

enum class PlacementPolicy : int {
  // Random eligible server (power-of-d probing with scan fallback).
  kRandomFit = 0,
  // Least CPU-utilized among d random eligible candidates.
  kLeastLoaded = 1,
  // Rotating pointer over the server list.
  kRoundRobin = 2,
  // Extension (paper §6 future work): concentrate load on already-busy rows
  // (up to a power ceiling) so cross-row power variance grows, leaving cold
  // rows with large contiguous unused power for Ampere to cultivate.
  kConcentrateRows = 3,
  // Baseline comparator (§5.2): the "straightforward design" the paper
  // rejects — make the scheduler itself power-aware by preferring the
  // coldest row and refusing rows above the power ceiling. Protects like
  // Ampere but requires the power feed inside every placement decision.
  kPowerAwareSpread = 4,
};

struct SchedulerConfig {
  PlacementPolicy policy = PlacementPolicy::kRandomFit;
  // Random probes before falling back to a full scan.
  int sample_attempts = 16;
  // Candidates examined by kLeastLoaded.
  int least_loaded_choices = 8;
  // Pending-queue entries examined per drain pass (bounds head-of-line
  // blocking without unbounded work per event).
  size_t queue_scan_limit = 64;
  // A drain pass also stops after this many failed placement attempts: when
  // the cluster is saturated, almost every queued job fails with a full
  // scan each, and one completion frees room for at most a few jobs anyway.
  size_t drain_failure_limit = 2;
  // kConcentrateRows stops packing a row once its power exceeds this
  // fraction of the row budget.
  double concentrate_power_ceiling = 0.92;
};

class Scheduler : public JobSink {
 public:
  // `dc` must outlive the scheduler. The scheduler installs itself as the
  // data center's task-completion listener.
  Scheduler(DataCenter* dc, const SchedulerConfig& config, Rng rng);

  // --- Job intake (upper level) ---
  void Submit(const JobSpec& job) override;

  // Removes and returns up to `max_jobs` pending jobs, oldest first — the
  // campus spillover hook: when frozen capacity starves this DC's queue, a
  // federation coordinator takes queued work and re-Submits it to a sibling
  // DC's scheduler. Jobs with a row affinity are pinned to this DC's rows
  // and are skipped (they stay queued in their original order). Counted in
  // jobs_spilled_out(); a re-Submit elsewhere increments that scheduler's
  // jobs_submitted(), so campus-level accounting reports spill counts
  // alongside the per-DC submit totals.
  std::vector<JobSpec> TakePending(size_t max_jobs);
  uint64_t jobs_spilled_out() const { return jobs_spilled_out_; }

  // Metrics domain this scheduler's counters are scoped under ("dc0/" in a
  // campus; root, 0, standalone). Controller-driven freeze/unfreeze RPCs
  // inherit the controller's scope instead. Observation-only.
  void SetObsDomain(obs::DomainId domain) { obs_domain_ = domain; }
  obs::DomainId obs_domain() const { return obs_domain_; }

  // --- The power-control interface (the paper's two APIs) ---
  // Thin passthroughs to the low level (ResourceManager), which owns them;
  // Unfreeze additionally re-drains the pending queue since capacity
  // returned to the candidate list.
  void Freeze(ServerId id);
  void Unfreeze(ServerId id);
  bool IsFrozen(ServerId id) const { return rm_.IsFrozen(id); }

  // Fallible variants for fault-aware callers: each RPC attempt may fail per
  // the attached injector's plan; the scheduler retries up to the plan's
  // rpc_max_attempts with exponential backoff (rpc_backoff_base * 2^k after
  // the k-th failure). On overall failure the freeze/unfreeze does NOT take
  // effect and the caller decides how to degrade. Without an injector these
  // are exactly Freeze/Unfreeze: first attempt, zero latency.
  RpcResult TryFreeze(ServerId id);
  RpcResult TryUnfreeze(ServerId id);

  // Attaches a fault injector driving TryFreeze/TryUnfreeze failures (null
  // detaches). `injector` must outlive the scheduler.
  void AttachFaultInjector(faults::FaultInjector* injector) {
    injector_ = injector;
  }

  // The low level, for callers that want the §2.1 split explicitly.
  ResourceManager& resource_manager() { return rm_; }

  // --- Introspection / metrics ---
  uint64_t jobs_submitted() const { return jobs_submitted_; }
  uint64_t jobs_placed() const { return jobs_placed_; }
  uint64_t jobs_completed() const { return jobs_completed_; }
  size_t queue_length() const { return pending_.size(); }
  uint64_t placements_in_row(RowId row) const {
    return row_placements_[row.index()];
  }

  // Invoked on every successful placement with (job, server).
  void SetPlacementListener(std::function<void(const JobSpec&, ServerId)> cb) {
    placement_listener_ = std::move(cb);
  }
  // Invoked on every task completion with (server, job).
  void SetCompletionListener(std::function<void(ServerId, JobId)> cb) {
    completion_listener_ = std::move(cb);
  }

 private:
  // Runs one RPC through the injector's failure/latency model with the
  // bounded retry/backoff policy. Always succeeds without an injector.
  RpcResult RunRpc();
  bool Eligible(const Server& server, const JobSpec& job) const;
  // Returns the chosen server or an invalid id.
  ServerId PickServer(const JobSpec& job);
  ServerId PickRandomFit(const JobSpec& job);
  ServerId PickLeastLoaded(const JobSpec& job);
  ServerId PickRoundRobin(const JobSpec& job);
  ServerId PickRowOrdered(const JobSpec& job, bool hottest_first);
  ServerId ScanFrom(size_t start, const JobSpec& job) const;
  bool TryPlace(const JobSpec& job);
  void DrainQueue();
  void OnTaskCompleted(ServerId server, JobId job);

  DataCenter* dc_;
  ResourceManager rm_;
  SchedulerConfig config_;
  Rng rng_;
  faults::FaultInjector* injector_ = nullptr;
  obs::DomainId obs_domain_ = 0;
  std::deque<JobSpec> pending_;
  size_t rotate_cursor_ = 0;
  uint64_t jobs_submitted_ = 0;
  uint64_t jobs_placed_ = 0;
  uint64_t jobs_completed_ = 0;
  uint64_t jobs_spilled_out_ = 0;
  std::vector<uint64_t> row_placements_;
  std::function<void(const JobSpec&, ServerId)> placement_listener_;
  std::function<void(ServerId, JobId)> completion_listener_;
};

}  // namespace ampere

#endif  // SRC_SCHED_SCHEDULER_H_
