// Named fault presets for benches, tests, and the harness --faults flag.
//
// The presets bracket the fault regimes discussed in the Ampere paper's
// production deployment and the chaos grid in bench/: `light` is routine
// telemetry jitter, `moderate` is the acceptance-criteria regime (>=5%
// sample dropout, >=1% freeze-RPC failure) the controller must ride out
// with zero breaker trips, and `heavy` is an adversarial stress profile
// used to probe graceful degradation, not a safety guarantee.

#ifndef SRC_FAULTS_PRESETS_H_
#define SRC_FAULTS_PRESETS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/faults/fault_plan.h"

namespace ampere {
namespace faults {

// Returns the config for a named preset ("none", "light", "moderate",
// "heavy"), or nullopt for an unknown name. The returned config carries the
// preset's default seed; callers typically override `seed` per run.
std::optional<FaultPlanConfig> PresetByName(std::string_view name);

// All preset names, in severity order. For help text and grid sweeps.
const std::vector<std::string>& PresetNames();

}  // namespace faults
}  // namespace ampere

#endif  // SRC_FAULTS_PRESETS_H_
