#include "src/faults/presets.h"

namespace ampere {
namespace faults {

std::optional<FaultPlanConfig> PresetByName(std::string_view name) {
  FaultPlanConfig c;
  if (name == "none") {
    return c;  // All-zero: FaultPlanConfig{}.any() == false.
  }
  if (name == "light") {
    // Routine telemetry jitter: occasional dropped readings and small
    // sensor spikes, no structural outages.
    c.sample_dropout_prob = 0.01;
    c.noise_spike_prob = 0.005;
    c.noise_spike_sigma_watts = 8.0;
    c.stale_windows_per_hour = 0.1;
    c.stale_window_mean = SimTime::Minutes(2);
    c.rpc_failure_prob = 0.002;
    return c;
  }
  if (name == "moderate") {
    // Acceptance-criteria regime: >=5% per-reading dropout and >=1%
    // freeze/unfreeze RPC failure, plus hourly-scale pipeline stalls and
    // occasional row-monitor blackouts.
    c.sample_dropout_prob = 0.05;
    c.noise_spike_prob = 0.01;
    c.noise_spike_sigma_watts = 15.0;
    c.sensor_bias_watts = 1.0;
    c.stale_windows_per_hour = 0.5;
    c.stale_window_mean = SimTime::Minutes(3);
    c.blackouts_per_hour = 0.25;
    c.blackout_mean = SimTime::Minutes(8);
    c.blackout_channels = 4;
    c.rpc_failure_prob = 0.02;
    c.rpc_latency_mean = SimTime::Millis(10);
    return c;
  }
  if (name == "heavy") {
    // Adversarial stress: frequent stalls and blackouts, lossy RPCs.
    // Probes graceful degradation; safety margins widen but capacity
    // throughput is expected to suffer.
    c.sample_dropout_prob = 0.20;
    c.noise_spike_prob = 0.05;
    c.noise_spike_sigma_watts = 40.0;
    c.sensor_bias_watts = 5.0;
    c.stale_windows_per_hour = 2.0;
    c.stale_window_mean = SimTime::Minutes(4);
    c.blackouts_per_hour = 1.0;
    c.blackout_mean = SimTime::Minutes(12);
    c.blackout_channels = 4;
    c.rpc_failure_prob = 0.10;
    c.rpc_latency_mean = SimTime::Millis(25);
    c.rpc_max_attempts = 4;
    return c;
  }
  return std::nullopt;
}

const std::vector<std::string>& PresetNames() {
  static const std::vector<std::string> names = {"none", "light", "moderate",
                                                 "heavy"};
  return names;
}

}  // namespace faults
}  // namespace ampere
