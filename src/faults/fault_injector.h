// Runtime fault injection driven by a FaultPlan.
//
// A FaultInjector owns the per-event randomness of a fault profile: sample
// dropout draws, noise spikes, and RPC failure/latency draws. Window-shaped
// faults (telemetry stalls, channel blackouts) are pure lookups against the
// plan's pre-generated schedule, so they cost nothing when the schedule is
// empty. All draw streams are forked from the plan seed independently per
// fault category, so enabling one fault dimension never perturbs another's
// stream, and a run that asks the same questions in the same order is
// bit-reproducible.
//
// The injector also keeps event counters so experiments can report exactly
// how much adversity a run actually experienced (as opposed to what the plan
// made merely possible).

#ifndef SRC_FAULTS_FAULT_INJECTOR_H_
#define SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string_view>
#include <utility>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/faults/fault_plan.h"

namespace ampere {
namespace faults {

// Result of one simulated freeze/unfreeze RPC attempt.
struct RpcAttempt {
  bool ok = true;
  SimTime latency;  // Accounted latency for this attempt (not event-injected).
};

// Aggregate fault-event counters for one run.
struct FaultCounts {
  uint64_t telemetry_stalls = 0;  // Sample passes skipped by stale windows.
  uint64_t dropped_samples = 0;   // Per-server readings dropped.
  uint64_t noise_spikes = 0;      // Readings that carried an injected spike.
  uint64_t blackout_reads = 0;    // Reads that hit a blacked-out channel.
  uint64_t rpc_attempts = 0;      // Freeze/unfreeze RPC attempts drawn.
  uint64_t rpc_failures = 0;      // Attempts that failed.

  friend bool operator==(const FaultCounts&, const FaultCounts&) = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  // --- Telemetry faults ---

  // True if the whole aggregation pipeline is stalled at `now` (no sample
  // pass should land). Counts one stall event per positive answer.
  bool TelemetryStalled(SimTime now);

  // Draws whether one per-server reading is dropped this pass. Cheap no-op
  // (no RNG advance) when the dropout probability is zero.
  bool DropServerSample();

  // Additive watts adjustment for a reading that did arrive: constant sensor
  // bias plus an occasional zero-mean noise spike. Advances the noise stream
  // only when the spike probability is positive.
  double SensorAdjustWatts();

  // True if the named channel's monitor feed is blacked out at `now`.
  // Pure schedule lookup; counts one blackout read per positive answer.
  bool ChannelBlackedOut(std::string_view channel, SimTime now);

  // True if no telemetry fault can touch a sample pass at `now`: zero
  // dropout and spike probabilities, zero sensor bias, and no blackout
  // window anywhere in the schedule covering `now`. Pure query — no draws,
  // no counters — so the sampler may take its parallel clean path when this
  // holds (the faulted pass would perform the identical arithmetic with no
  // RNG advance and no fault events).
  bool TelemetryQuiescentAt(SimTime now) const {
    const FaultPlanConfig& c = plan_.config();
    return c.sample_dropout_prob <= 0.0 && c.noise_spike_prob <= 0.0 &&
           c.sensor_bias_watts == 0.0 && !plan_.AnyBlackoutAt(now);
  }

  // --- Scheduler RPC faults ---

  // Draws one freeze/unfreeze RPC attempt: success/failure plus an
  // exponential latency with the plan's mean. When rpc_failure_prob is zero
  // and latency mean is zero the draw short-circuits (no RNG advance).
  RpcAttempt DrawRpcAttempt();

  // Retry/backoff policy knobs from the plan.
  int rpc_max_attempts() const { return plan_.config().rpc_max_attempts; }
  SimTime rpc_backoff_base() const { return plan_.config().rpc_backoff_base; }

  const FaultCounts& counts() const { return counts_; }

 private:
  FaultPlan plan_;
  // Independent draw streams per fault category (forked from the plan seed)
  // so activating one fault dimension doesn't shift another's sequence.
  Rng dropout_rng_;
  Rng noise_rng_;
  Rng rpc_rng_;
  FaultCounts counts_;
};

}  // namespace faults
}  // namespace ampere

#endif  // SRC_FAULTS_FAULT_INJECTOR_H_
