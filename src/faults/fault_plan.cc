#include "src/faults/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ampere {
namespace faults {

namespace {

// Shortest round-trip double formatting (same contract as the journal's
// CSV emitter: strtod(Format(x)) == x).
std::string FormatDouble(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

// Draws a Poisson-process window schedule: exponential gaps at
// `rate_per_hour`, exponential durations with mean `mean`, channels uniform
// in [0, channels) (or kAllChannels when channels == 0).
std::vector<FaultWindow> DrawWindows(Rng* rng, double rate_per_hour,
                                     SimTime mean, uint32_t channels,
                                     SimTime horizon) {
  std::vector<FaultWindow> out;
  if (rate_per_hour <= 0.0 || mean <= SimTime() || horizon <= SimTime()) {
    return out;
  }
  const double mean_gap_minutes = 60.0 / rate_per_hour;
  SimTime t;
  while (true) {
    t += SimTime::Minutes(rng->Exponential(mean_gap_minutes));
    if (t >= horizon) break;
    SimTime duration =
        SimTime::Seconds(rng->Exponential(mean.seconds()));
    // At least one second so a window is never empty.
    if (duration < SimTime::Seconds(1)) duration = SimTime::Seconds(1);
    FaultWindow w;
    w.begin = t;
    w.end = std::min(t + duration, horizon);
    w.channel = channels == 0
                    ? kAllChannels
                    : static_cast<uint32_t>(rng->UniformInt(
                          0, static_cast<int64_t>(channels) - 1));
    out.push_back(w);
    t = w.end;
  }
  return FaultPlan::Normalize(std::move(out));
}

bool CoveredBy(const std::vector<FaultWindow>& windows, uint32_t channel,
               SimTime t) {
  for (const FaultWindow& w : windows) {
    if ((w.channel == channel || w.channel == kAllChannels) && w.Contains(t)) {
      return true;
    }
  }
  return false;
}

bool ParseU64Field(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseI64Field(std::string_view s, int64_t* out) {
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  uint64_t v;
  if (!ParseU64Field(s, &v)) return false;
  *out = negative ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  return true;
}

bool ParseF64Field(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

}  // namespace

FaultPlan FaultPlan::Generate(const FaultPlanConfig& config, SimTime horizon) {
  AMPERE_CHECK(config.sample_dropout_prob >= 0.0 &&
               config.sample_dropout_prob <= 1.0);
  AMPERE_CHECK(config.noise_spike_prob >= 0.0 &&
               config.noise_spike_prob <= 1.0);
  AMPERE_CHECK(config.rpc_failure_prob >= 0.0 &&
               config.rpc_failure_prob <= 1.0);
  AMPERE_CHECK(config.rpc_max_attempts >= 1);
  AMPERE_CHECK(config.blackout_channels >= 1);

  FaultPlan plan;
  plan.config_ = config;
  plan.horizon_ = horizon;
  // Distinct forked streams per window kind, so changing one rate never
  // shifts the other kind's schedule.
  Rng root(config.seed);
  Rng stale_rng = root.Fork(0x57a1e);
  Rng blackout_rng = root.Fork(0xb1ac0);
  plan.stale_windows_ =
      DrawWindows(&stale_rng, config.stale_windows_per_hour,
                  config.stale_window_mean, /*channels=*/0, horizon);
  plan.blackout_windows_ =
      DrawWindows(&blackout_rng, config.blackouts_per_hour,
                  config.blackout_mean, config.blackout_channels, horizon);
  return plan;
}

std::vector<FaultWindow> FaultPlan::Normalize(
    std::vector<FaultWindow> windows) {
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              if (a.channel != b.channel) return a.channel < b.channel;
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.end < b.end;
            });
  std::vector<FaultWindow> out;
  for (const FaultWindow& w : windows) {
    if (w.end <= w.begin) continue;  // Drop empty windows.
    if (!out.empty() && out.back().channel == w.channel &&
        w.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, w.end);
    } else {
      out.push_back(w);
    }
  }
  return out;
}

FaultPlan FaultPlan::Compose(const FaultPlan& a, const FaultPlan& b) {
  auto hazard = [](double pa, double pb) {
    return 1.0 - (1.0 - pa) * (1.0 - pb);
  };
  FaultPlan plan;
  FaultPlanConfig& c = plan.config_;
  const FaultPlanConfig& ca = a.config_;
  const FaultPlanConfig& cb = b.config_;
  // SplitMix-style mix so the composed injector streams differ from both
  // parents even when one seed is zero.
  c.seed = ca.seed * 0x9e3779b97f4a7c15ull + cb.seed + 0xbf58476d1ce4e5b9ull;
  c.sample_dropout_prob = hazard(ca.sample_dropout_prob,
                                 cb.sample_dropout_prob);
  c.noise_spike_prob = hazard(ca.noise_spike_prob, cb.noise_spike_prob);
  c.noise_spike_sigma_watts =
      std::max(ca.noise_spike_sigma_watts, cb.noise_spike_sigma_watts);
  c.sensor_bias_watts = ca.sensor_bias_watts + cb.sensor_bias_watts;
  c.stale_windows_per_hour =
      ca.stale_windows_per_hour + cb.stale_windows_per_hour;
  c.stale_window_mean = std::max(ca.stale_window_mean, cb.stale_window_mean);
  c.blackouts_per_hour = ca.blackouts_per_hour + cb.blackouts_per_hour;
  c.blackout_mean = std::max(ca.blackout_mean, cb.blackout_mean);
  c.blackout_channels = std::max(ca.blackout_channels, cb.blackout_channels);
  c.rpc_failure_prob = hazard(ca.rpc_failure_prob, cb.rpc_failure_prob);
  c.rpc_latency_mean = std::max(ca.rpc_latency_mean, cb.rpc_latency_mean);
  c.rpc_max_attempts = std::max(ca.rpc_max_attempts, cb.rpc_max_attempts);
  c.rpc_backoff_base = std::max(ca.rpc_backoff_base, cb.rpc_backoff_base);

  plan.horizon_ = std::max(a.horizon_, b.horizon_);
  std::vector<FaultWindow> stale = a.stale_windows_;
  stale.insert(stale.end(), b.stale_windows_.begin(), b.stale_windows_.end());
  plan.stale_windows_ = Normalize(std::move(stale));
  std::vector<FaultWindow> black = a.blackout_windows_;
  black.insert(black.end(), b.blackout_windows_.begin(),
               b.blackout_windows_.end());
  plan.blackout_windows_ = Normalize(std::move(black));
  return plan;
}

bool FaultPlan::InStaleWindow(SimTime t) const {
  return CoveredBy(stale_windows_, kAllChannels, t);
}

bool FaultPlan::InBlackout(uint32_t channel, SimTime t) const {
  return CoveredBy(blackout_windows_, channel, t);
}

uint32_t FaultPlan::ChannelIndex(std::string_view name,
                                 uint32_t num_channels) {
  // FNV-1a 32-bit: stable across platforms and library versions (std::hash
  // is not), so a plan generated on one machine replays anywhere.
  uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return num_channels == 0 ? 0 : h % num_channels;
}

std::string FaultPlan::Serialize() const {
  std::string out = "faultplan v1\n";
  auto kv = [&out](std::string_view key, const std::string& value) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  };
  kv("seed", std::to_string(config_.seed));
  kv("horizon_us", std::to_string(horizon_.micros()));
  kv("sample_dropout_prob", FormatDouble(config_.sample_dropout_prob));
  kv("noise_spike_prob", FormatDouble(config_.noise_spike_prob));
  kv("noise_spike_sigma_watts",
     FormatDouble(config_.noise_spike_sigma_watts));
  kv("sensor_bias_watts", FormatDouble(config_.sensor_bias_watts));
  kv("stale_windows_per_hour", FormatDouble(config_.stale_windows_per_hour));
  kv("stale_window_mean_us",
     std::to_string(config_.stale_window_mean.micros()));
  kv("blackouts_per_hour", FormatDouble(config_.blackouts_per_hour));
  kv("blackout_mean_us", std::to_string(config_.blackout_mean.micros()));
  kv("blackout_channels", std::to_string(config_.blackout_channels));
  kv("rpc_failure_prob", FormatDouble(config_.rpc_failure_prob));
  kv("rpc_latency_mean_us",
     std::to_string(config_.rpc_latency_mean.micros()));
  kv("rpc_max_attempts", std::to_string(config_.rpc_max_attempts));
  kv("rpc_backoff_base_us",
     std::to_string(config_.rpc_backoff_base.micros()));
  for (const FaultWindow& w : stale_windows_) {
    out += "stale " + std::to_string(w.begin.micros()) + ' ' +
           std::to_string(w.end.micros()) + '\n';
  }
  for (const FaultWindow& w : blackout_windows_) {
    out += "blackout " + std::to_string(w.begin.micros()) + ' ' +
           std::to_string(w.end.micros()) + ' ' + std::to_string(w.channel) +
           '\n';
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::Parse(std::string_view text) {
  FaultPlan plan;
  bool saw_magic = false;
  size_t line_start = 0;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = text.size();
    std::string_view line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty()) continue;
    if (!saw_magic) {
      if (line != "faultplan v1") return std::nullopt;
      saw_magic = true;
      continue;
    }
    if (line.substr(0, 6) == "stale " || line.substr(0, 9) == "blackout ") {
      const bool is_stale = line.front() == 's';
      std::string_view rest = line.substr(is_stale ? 6 : 9);
      size_t sp1 = rest.find(' ');
      if (sp1 == std::string_view::npos) return std::nullopt;
      int64_t begin_us, end_us;
      if (!ParseI64Field(rest.substr(0, sp1), &begin_us)) return std::nullopt;
      std::string_view tail = rest.substr(sp1 + 1);
      FaultWindow w;
      if (is_stale) {
        if (!ParseI64Field(tail, &end_us)) return std::nullopt;
        w.channel = kAllChannels;
      } else {
        size_t sp2 = tail.find(' ');
        if (sp2 == std::string_view::npos) return std::nullopt;
        if (!ParseI64Field(tail.substr(0, sp2), &end_us)) return std::nullopt;
        uint64_t channel;
        if (!ParseU64Field(tail.substr(sp2 + 1), &channel)) {
          return std::nullopt;
        }
        w.channel = static_cast<uint32_t>(channel);
      }
      w.begin = SimTime::Micros(begin_us);
      w.end = SimTime::Micros(end_us);
      (is_stale ? plan.stale_windows_ : plan.blackout_windows_).push_back(w);
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    std::string_view key = line.substr(0, eq);
    std::string_view value = line.substr(eq + 1);
    FaultPlanConfig& c = plan.config_;
    bool ok = true;
    int64_t i64 = 0;
    uint64_t u64 = 0;
    if (key == "seed") {
      ok = ParseU64Field(value, &c.seed);
    } else if (key == "horizon_us") {
      ok = ParseI64Field(value, &i64);
      plan.horizon_ = SimTime::Micros(i64);
    } else if (key == "sample_dropout_prob") {
      ok = ParseF64Field(value, &c.sample_dropout_prob);
    } else if (key == "noise_spike_prob") {
      ok = ParseF64Field(value, &c.noise_spike_prob);
    } else if (key == "noise_spike_sigma_watts") {
      ok = ParseF64Field(value, &c.noise_spike_sigma_watts);
    } else if (key == "sensor_bias_watts") {
      ok = ParseF64Field(value, &c.sensor_bias_watts);
    } else if (key == "stale_windows_per_hour") {
      ok = ParseF64Field(value, &c.stale_windows_per_hour);
    } else if (key == "stale_window_mean_us") {
      ok = ParseI64Field(value, &i64);
      c.stale_window_mean = SimTime::Micros(i64);
    } else if (key == "blackouts_per_hour") {
      ok = ParseF64Field(value, &c.blackouts_per_hour);
    } else if (key == "blackout_mean_us") {
      ok = ParseI64Field(value, &i64);
      c.blackout_mean = SimTime::Micros(i64);
    } else if (key == "blackout_channels") {
      ok = ParseU64Field(value, &u64);
      c.blackout_channels = static_cast<uint32_t>(u64);
    } else if (key == "rpc_failure_prob") {
      ok = ParseF64Field(value, &c.rpc_failure_prob);
    } else if (key == "rpc_latency_mean_us") {
      ok = ParseI64Field(value, &i64);
      c.rpc_latency_mean = SimTime::Micros(i64);
    } else if (key == "rpc_max_attempts") {
      ok = ParseI64Field(value, &i64);
      c.rpc_max_attempts = static_cast<int>(i64);
    } else if (key == "rpc_backoff_base_us") {
      ok = ParseI64Field(value, &i64);
      c.rpc_backoff_base = SimTime::Micros(i64);
    } else {
      return std::nullopt;  // Unknown key: refuse rather than drop data.
    }
    if (!ok) return std::nullopt;
  }
  if (!saw_magic) return std::nullopt;
  return plan;
}

}  // namespace faults
}  // namespace ampere
