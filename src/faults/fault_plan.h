// Deterministic fault plans for chaos-style robustness runs.
//
// Production telemetry is not the clean feed the simulator has offered so
// far: IPMI samples drop, the streaming aggregation pipeline stalls, BMC
// sensors spike or drift, whole-row monitors go dark during maintenance,
// and the scheduler's freeze/unfreeze RPCs fail or lag. A FaultPlan is a
// *declarative, seeded* description of exactly which of those faults a run
// will experience: the window-shaped faults (pipeline stalls, per-channel
// monitor blackouts) are pre-generated into an explicit schedule at
// construction time, and the per-event faults (sample dropout, noise
// spikes, RPC failures) are described by probabilities that the runtime
// FaultInjector draws against with its own forked RNG streams.
//
// Determinism contract: Generate(config, horizon) is a pure function of
// (config, horizon) — the same seed always yields the identical fault
// schedule — and plans serialize losslessly (Serialize/Parse round-trip),
// so a production incident's fault profile can be replayed bit-for-bit.
// Plans compose: Compose(a, b) unions the window schedules and combines the
// per-event probabilities as independent hazards.

#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace ampere {
namespace faults {

// A half-open [begin, end) fault window. `channel` scopes per-channel
// faults (monitor blackouts): a window applies to the channel whose stable
// hash maps onto it. Window kinds that are global (telemetry stalls) keep
// channel == kAllChannels.
struct FaultWindow {
  SimTime begin;
  SimTime end;
  uint32_t channel = 0;

  bool Contains(SimTime t) const { return t >= begin && t < end; }
  friend bool operator==(const FaultWindow&, const FaultWindow&) = default;
};

inline constexpr uint32_t kAllChannels = 0xffffffffu;

struct FaultPlanConfig {
  // Seeds the window-schedule generation and the injector's per-event
  // draw streams. Independent from the simulation seed so the same fault
  // profile can be replayed against different workloads.
  uint64_t seed = 1;

  // --- Telemetry faults ---
  // Probability that one per-server reading is dropped in one sample pass
  // (the monitor keeps the server's last-known reading, stale-tagged).
  double sample_dropout_prob = 0.0;
  // Probability that a reading that did arrive carries a noise spike of
  // sigma `noise_spike_sigma_watts` on top of the regular sensor noise.
  double noise_spike_prob = 0.0;
  double noise_spike_sigma_watts = 0.0;
  // Constant per-reading sensor bias (miscalibrated BMC firmware), watts.
  double sensor_bias_watts = 0.0;
  // Whole-pipeline stale windows: the aggregation pipeline stalls and no
  // sample lands at all (every consumer sees aging data). Windows arrive at
  // `stale_windows_per_hour` with exponential mean `stale_window_mean`.
  double stale_windows_per_hour = 0.0;
  SimTime stale_window_mean = SimTime::Minutes(3);

  // --- Per-channel monitor blackouts ---
  // A blacked-out channel (a row's or group's monitor feed) returns nothing:
  // readings under it are not refreshed for the whole window. Windows arrive
  // at `blackouts_per_hour`, each hitting one of `blackout_channels`
  // hash-buckets, with exponential mean `blackout_mean`.
  double blackouts_per_hour = 0.0;
  SimTime blackout_mean = SimTime::Minutes(10);
  uint32_t blackout_channels = 4;

  // --- Scheduler RPC faults ---
  // Probability one freeze/unfreeze RPC attempt fails.
  double rpc_failure_prob = 0.0;
  // Simulated per-attempt RPC latency (exponential with this mean) and the
  // retry/backoff policy the controller applies: up to `rpc_max_attempts`
  // attempts, backing off `rpc_backoff_base * 2^k` after the k-th failure.
  // Latency and backoff are accounted (journal + metrics), not injected
  // into the event queue — the control cadence is 1/min, so sub-second RPC
  // lag never reorders decisions, it only consumes tick budget.
  SimTime rpc_latency_mean = SimTime::Millis(5);
  int rpc_max_attempts = 3;
  SimTime rpc_backoff_base = SimTime::Millis(10);

  // True if any fault dimension is active.
  bool any() const {
    return sample_dropout_prob > 0.0 || noise_spike_prob > 0.0 ||
           sensor_bias_watts != 0.0 || stale_windows_per_hour > 0.0 ||
           blackouts_per_hour > 0.0 || rpc_failure_prob > 0.0;
  }

  friend bool operator==(const FaultPlanConfig&,
                         const FaultPlanConfig&) = default;
};

class FaultPlan {
 public:
  // An empty plan: no faults ever fire.
  FaultPlan() = default;

  // Pre-generates the window schedule over [0, horizon) from config.seed.
  // Pure function of its arguments: same (config, horizon) -> identical
  // plan, bit for bit.
  static FaultPlan Generate(const FaultPlanConfig& config, SimTime horizon);

  // Union of two plans: window schedules are merged (overlapping windows of
  // the same kind/channel coalesce) and per-event probabilities combine as
  // independent hazards (1 - (1-pa)(1-pb)); biases add; means/attempt
  // budgets take the more adverse of the two. The composed seed mixes both
  // seeds so injector streams differ from either parent.
  static FaultPlan Compose(const FaultPlan& a, const FaultPlan& b);

  // Sorts by (channel, begin) and coalesces overlapping or touching windows
  // of the same channel. Exposed for tests.
  static std::vector<FaultWindow> Normalize(std::vector<FaultWindow> windows);

  const FaultPlanConfig& config() const { return config_; }
  SimTime horizon() const { return horizon_; }
  const std::vector<FaultWindow>& stale_windows() const {
    return stale_windows_;
  }
  const std::vector<FaultWindow>& blackout_windows() const {
    return blackout_windows_;
  }

  // Is the telemetry pipeline stalled at `t`?
  bool InStaleWindow(SimTime t) const;
  // Is channel index `channel` blacked out at `t`?
  bool InBlackout(uint32_t channel, SimTime t) const;
  // Stable (platform-independent) FNV-1a channel index for a named feed.
  static uint32_t ChannelIndex(std::string_view name, uint32_t num_channels);
  // Convenience: blackout lookup by feed name.
  bool ChannelBlackedOut(std::string_view name, SimTime t) const {
    if (blackout_windows_.empty()) return false;
    return InBlackout(ChannelIndex(name, config_.blackout_channels), t);
  }
  // True if *any* channel's blackout window contains `t` — the cheap
  // all-clear the sampler needs to prove a pass cannot observe a blackout
  // without hashing every feed name.
  bool AnyBlackoutAt(SimTime t) const {
    for (const FaultWindow& w : blackout_windows_) {
      if (w.Contains(t)) return true;
    }
    return false;
  }

  // Lossless text serialization (key=value lines + window lines).
  std::string Serialize() const;
  static std::optional<FaultPlan> Parse(std::string_view text);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  FaultPlanConfig config_;
  SimTime horizon_;
  std::vector<FaultWindow> stale_windows_;     // channel == kAllChannels.
  std::vector<FaultWindow> blackout_windows_;  // channel in [0, channels).
};

}  // namespace faults
}  // namespace ampere

#endif  // SRC_FAULTS_FAULT_PLAN_H_
