#include "src/faults/fault_injector.h"

namespace ampere {
namespace faults {

namespace {
// Stream ids for the injector's forked draw streams. Distinct from the
// window-generation streams used by FaultPlan::Generate so a plan and its
// injector never share a sequence.
constexpr uint64_t kDropoutStream = 0xd201u;
constexpr uint64_t kNoiseStream = 0x01f3u;
constexpr uint64_t kRpcStream = 0x49cu;
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      dropout_rng_(Rng(plan_.config().seed).Fork(kDropoutStream)),
      noise_rng_(Rng(plan_.config().seed).Fork(kNoiseStream)),
      rpc_rng_(Rng(plan_.config().seed).Fork(kRpcStream)) {}

bool FaultInjector::TelemetryStalled(SimTime now) {
  if (!plan_.InStaleWindow(now)) return false;
  ++counts_.telemetry_stalls;
  return true;
}

bool FaultInjector::DropServerSample() {
  const double p = plan_.config().sample_dropout_prob;
  if (p <= 0.0) return false;
  if (!dropout_rng_.Bernoulli(p)) return false;
  ++counts_.dropped_samples;
  return true;
}

double FaultInjector::SensorAdjustWatts() {
  const FaultPlanConfig& c = plan_.config();
  double adjust = c.sensor_bias_watts;
  if (c.noise_spike_prob > 0.0 && noise_rng_.Bernoulli(c.noise_spike_prob)) {
    adjust += noise_rng_.Normal(0.0, c.noise_spike_sigma_watts);
    ++counts_.noise_spikes;
  }
  return adjust;
}

bool FaultInjector::ChannelBlackedOut(std::string_view channel, SimTime now) {
  if (!plan_.ChannelBlackedOut(channel, now)) return false;
  ++counts_.blackout_reads;
  return true;
}

RpcAttempt FaultInjector::DrawRpcAttempt() {
  const FaultPlanConfig& c = plan_.config();
  RpcAttempt attempt;
  if (c.rpc_failure_prob <= 0.0 && c.rpc_latency_mean <= SimTime()) {
    // Quiescent fast path: no RNG advance, no accounting churn.
    return attempt;
  }
  ++counts_.rpc_attempts;
  if (c.rpc_latency_mean > SimTime()) {
    attempt.latency = SimTime::Micros(static_cast<int64_t>(
        rpc_rng_.Exponential(static_cast<double>(c.rpc_latency_mean.micros()))));
  }
  if (c.rpc_failure_prob > 0.0 && rpc_rng_.Bernoulli(c.rpc_failure_prob)) {
    attempt.ok = false;
    ++counts_.rpc_failures;
  }
  return attempt;
}

}  // namespace faults
}  // namespace ampere
