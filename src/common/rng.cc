#include "src/common/rng.h"

#include <cmath>

namespace ampere {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) {
    w = SplitMix64(sm);
  }
  has_cached_normal_ = false;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the current state with the stream id; the child is seeded through
  // SplitMix64 so correlated parents still yield well-mixed children.
  uint64_t mix = s_[0] ^ Rotl(s_[1], 17) ^ Rotl(s_[2], 31) ^ s_[3];
  return Rng(mix ^ (0xA0761D6478BD642FULL * (stream_id + 1)));
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full-range request: [INT64_MIN, INT64_MAX].
    return static_cast<int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias. The rejection limit is a pure
  // function of the range; memoizing it serves the dominant pattern (the
  // scheduler drawing over a fixed server count on every call) one 64-bit
  // division cheaper, with a draw sequence identical to recomputing it.
  if (range != cached_range_) {
    cached_range_ = range;
    cached_limit_ = ~uint64_t{0} - (~uint64_t{0} % range);
  }
  const uint64_t limit = cached_limit_;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::StandardNormal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

namespace counter_rng {

NormalPair StandardNormalPair(uint64_t key) {
  // Two independent uniforms from the key. The key is itself a Mix64
  // finalizer output (fully avalanched), so it serves as the first word
  // directly; the second is one further mix of a golden-ratio-offset copy
  // (distinct bijections of the same key are independent enough for
  // Box-Muller's purposes).
  const uint64_t a = key;
  const uint64_t b = Mix64(key ^ 0x9E3779B97F4A7C15ULL);
  // u1 in (0, 1] so the log is finite; u2 in [0, 1).
  const double u1 =
      1.0 - static_cast<double>(a >> 11) * 0x1.0p-53;  // (0, 1].
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  return NormalPair{r * std::cos(theta), r * std::sin(theta)};
}

double StandardNormal(uint64_t key) { return StandardNormalPair(key).z0; }

void StandardNormalSpan(uint64_t base, uint64_t first_stream,
                        size_t num_pairs, double* z) {
  // Strip-mined into three passes over a fixed-size block so each stage is
  // a flat loop over contiguous staging arrays:
  //   1. integer key mixing + uniform conversion (shifts/xors/multiplies —
  //      auto-vectorizable, and independent per lane),
  //   2. radius r = sqrt(-2 log u1) (the log stays a scalar libm call so
  //      every bit matches StandardNormalPair; sqrt is IEEE-exact either
  //      way),
  //   3. angle + projection (sin/cos likewise stay scalar libm; GCC merges
  //      the pair into one sincos call).
  // Every element goes through the same expressions, in the same operand
  // order, as the per-pair path — so the output is bit-identical, just
  // without per-pair call overhead and with the mixing loop open to SIMD.
  constexpr size_t kBlock = 64;
  double u1[kBlock];
  double u2[kBlock];
  double r[kBlock];
  double* __restrict out = z;
  while (num_pairs > 0) {
    const size_t n = num_pairs < kBlock ? num_pairs : kBlock;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t key = StreamKey(base, first_stream + i);
      const uint64_t a = key;
      const uint64_t b = Mix64(key ^ 0x9E3779B97F4A7C15ULL);
      u1[i] = 1.0 - static_cast<double>(a >> 11) * 0x1.0p-53;  // (0, 1].
      u2[i] = static_cast<double>(b >> 11) * 0x1.0p-53;        // [0, 1).
    }
    for (size_t i = 0; i < n; ++i) {
      r[i] = std::sqrt(-2.0 * std::log(u1[i]));
    }
    for (size_t i = 0; i < n; ++i) {
      const double theta = 2.0 * std::numbers::pi * u2[i];
      out[2 * i] = r[i] * std::cos(theta);
      out[2 * i + 1] = r[i] * std::sin(theta);
    }
    out += 2 * n;
    first_stream += n;
    num_pairs -= n;
  }
}

}  // namespace counter_rng

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction, clamped at zero.
    double v = Normal(mean, std::sqrt(mean)) + 0.5;
    return v < 0.0 ? 0 : static_cast<int64_t>(v);
  }
  double l = std::exp(-mean);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

}  // namespace ampere
