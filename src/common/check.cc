#include "src/common/check.h"

#include <cstdio>

namespace ampere {

void FailCheck(const char* condition, const char* file, int line,
               const std::string& message) {
  std::ostringstream out;
  out << "CHECK failed: " << condition << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw CheckFailure(out.str());
}

}  // namespace ampere
