// Work-stealing thread pool for running independent scenarios in parallel.
//
// The harness layer runs one `Simulation` per worker; simulations never
// share mutable state, so the pool only needs cheap task distribution, not
// fine-grained synchronization. Each worker owns a deque: it pushes/pops its
// own work at the back and steals from the front of a victim's deque when
// its own runs dry. External `Submit` calls distribute round-robin across
// the worker deques so a grid of N scenarios starts out evenly spread.
//
// Semantics:
//   * Tasks may submit further tasks (they land on the submitting worker's
//     own deque, LIFO — good locality for recursive decomposition).
//   * `Wait()` blocks until every task submitted so far has finished.
//   * The destructor drains: all queued tasks run before the threads join.
//     (Tests rely on this: shutdown with queued work loses nothing.)
//
// The pool is intentionally small and exception-strict: a task that throws
// terminates (simulation tasks are expected to catch their own failures and
// report them as data — see harness::ScenarioRunner).

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ampere {

class ThreadPool {
 public:
  // `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);

  // Drains all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Thread-safe; callable from workers and from outside.
  void Submit(std::function<void()> task);

  // Blocks until all tasks submitted before the call have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Index of the calling worker thread in [0, num_threads), or -1 when
  // called from a non-worker thread. Harness workers use this to pick
  // per-worker scratch state without a map lookup.
  static int CurrentWorkerIndex();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops from own back, else steals from another queue's front.
  bool TryGetTask(size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wait_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::atomic<size_t> pending_{0};   // Submitted but not yet finished.
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace ampere

#endif  // SRC_COMMON_THREAD_POOL_H_
