// Work-stealing thread pool for running independent scenarios in parallel.
//
// The harness layer runs one `Simulation` per worker; simulations never
// share mutable state, so the pool only needs cheap task distribution, not
// fine-grained synchronization. Each worker owns a deque: it pushes/pops its
// own work at the back and steals from the front of a victim's deque when
// its own runs dry. External `Submit` calls distribute round-robin across
// the worker deques so a grid of N scenarios starts out evenly spread.
//
// Semantics:
//   * Tasks may submit further tasks (they land on the submitting worker's
//     own deque, LIFO — good locality for recursive decomposition).
//   * `Wait()` blocks until every task submitted so far has finished.
//   * The destructor drains: all queued tasks run before the threads join.
//     (Tests rely on this: shutdown with queued work loses nothing.)
//
// The pool is intentionally small and exception-strict: a task that throws
// terminates (simulation tasks are expected to catch their own failures and
// report them as data — see harness::ScenarioRunner).
//
// ParallelFor: besides coarse task distribution, the pool exposes a
// fork-join parallel-for with STATIC partitioning for intra-run data
// parallelism (the sharded telemetry sampler, the power resummation pass).
// Design constraints it satisfies:
//   * Deterministic partition: the shard boundaries are a pure function of
//     (range, grain, lane count), never of claim timing; shard bodies write
//     disjoint data, so results are bit-identical at any thread count.
//   * Allocation-free dispatch: the region is published through fixed
//     atomic slots (raw function pointer + context pointer), not through
//     the std::function deques, so a steady-state sample pass performs zero
//     heap allocations end to end.
//   * Serial guard: with a null pool (or one lane, or a range under the
//     grain) the free-function ParallelFor below calls the body directly on
//     the caller's stack — the exact serial code path, no pool machinery.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ampere {

class ThreadPool {
 public:
  // `num_threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);

  // Drains all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Thread-safe; callable from workers and from outside.
  void Submit(std::function<void()> task);

  // Blocks until all tasks submitted before the call have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Index of the calling worker thread in [0, num_threads), or -1 when
  // called from a non-worker thread. Harness workers use this to pick
  // per-worker scratch state without a map lookup.
  static int CurrentWorkerIndex();

  // Fork-join parallel-for over [begin, end) with static partitioning.
  //
  // The range splits into at most `num_threads() + 1` contiguous shards of
  // at least `grain` elements (the +1 lane is the calling thread, which
  // runs shard 0 and then helps claim the rest). `body(b, e)` is invoked
  // exactly once per shard with non-overlapping, ascending ranges covering
  // the input; the call blocks until every shard has finished.
  //
  // Shard boundaries depend only on (end - begin, grain, lane count), so a
  // body that writes f(i) into slot i produces bit-identical memory at any
  // thread count. Reductions that must match the serial order belong in the
  // caller after the join (sum shard-local partials in shard order), or
  // should be expressed per-element so grouping never changes.
  //
  // Must be called from OUTSIDE this pool's workers (the simulation thread
  // in practice); concurrent regions from different threads serialize.
  // Dispatch allocates nothing: the body is passed by reference through a
  // raw pointer, and workers claim shard indices from an atomic ticket.
  template <typename Body>
  void ParallelFor(size_t begin, size_t end, size_t grain, Body&& body) {
    RunShards(
        [](void* ctx, size_t b, size_t e) {
          (*static_cast<std::remove_reference_t<Body>*>(ctx))(b, e);
        },
        &body, begin, end, grain);
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  using ShardFn = void (*)(void* ctx, size_t begin, size_t end);

  void WorkerLoop(size_t self);
  // Pops from own back, else steals from another queue's front.
  bool TryGetTask(size_t self, std::function<void()>& task);

  // Non-template core of ParallelFor.
  void RunShards(ShardFn fn, void* ctx, size_t begin, size_t end,
                 size_t grain);
  // Executes shard `i` of the active region and retires it.
  void RunOneShard(size_t i);
  // Claims and runs region shards while any are unclaimed. Returns true if
  // it ran at least one shard.
  bool TryRunParallelShards();
  // True if an active region still has unclaimed shards (cheap peek used
  // by the worker idle path under wait_mutex_).
  bool ParallelShardAvailable() const;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wait_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::atomic<size_t> pending_{0};   // Submitted but not yet finished.
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> shutdown_{false};

  // --- ParallelFor region state ---
  // One region at a time (par_region_mutex_). The caller writes the plain
  // fields, then publishes them with a release store to par_meta_; workers
  // acquire-load par_meta_ before touching anything else. Claims go through
  // par_ticket_, whose value packs (epoch << kParIndexBits) | next_index:
  // a compare-exchange claim only succeeds while the ticket still belongs
  // to the epoch the worker validated against par_meta_, so a worker late
  // out of a previous region can never consume (and thus lose) a shard
  // index of the next region.
  static constexpr int kParIndexBits = 20;
  static constexpr uint64_t kParIndexMask = (1ULL << kParIndexBits) - 1;

  std::mutex par_region_mutex_;   // Serializes whole regions.
  std::mutex par_done_mutex_;     // Guards the completion condvar.
  std::condition_variable par_done_;
  ShardFn par_fn_ = nullptr;      // Plain: published via par_meta_.
  void* par_ctx_ = nullptr;
  size_t par_begin_ = 0;
  size_t par_chunk_ = 0;          // Base shard size; first par_rem_ get +1.
  size_t par_rem_ = 0;
  std::atomic<uint64_t> par_meta_{0};    // (epoch << bits) | shard_count.
  std::atomic<uint64_t> par_ticket_{0};  // (epoch << bits) | next_index.
  std::atomic<size_t> par_done_count_{0};
};

// Serial-guarded entry point: runs `body(begin, end)` directly (the exact
// serial path — no atomics, no pool) when `pool` is null, has no workers,
// or the range is not worth splitting; otherwise forwards to
// pool->ParallelFor. This is the call sites' spelling so "jobs=1 takes the
// serial path" is structural rather than a convention.
template <typename Body>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 Body&& body) {
  const size_t n = end > begin ? end - begin : 0;
  if (n == 0) {
    return;
  }
  if (pool == nullptr || pool->num_threads() < 1 || n <= grain) {
    body(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, grain, std::forward<Body>(body));
}

}  // namespace ampere

#endif  // SRC_COMMON_THREAD_POOL_H_
