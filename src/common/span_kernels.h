// Fixed-order reduction kernels over contiguous SoA spans.
//
// Floating-point addition is not associative, so a reduction's result is
// defined by its association order, and this simulator's byte-identity
// contract (docs/performance.md) requires every consumer to pick ONE order
// and use it everywhere, independent of thread count or shard boundaries.
// Two orders live here:
//
//   * SumSequential — strict left-to-right: ((x0 + x1) + x2) + ...
//     This is the historical order baked into the committed goldens; every
//     aggregate a golden observes (telemetry rack/row sums, the periodic
//     exact resummation) must keep using it.
//
//   * SumBlocked4 — a fixed 4-lane blocked (pairwise-style) reduction:
//     lane j accumulates x[4i + j] left-to-right, the four lanes combine as
//     (l0 + l1) + (l2 + l3), and the tail (n % 4 elements) folds
//     left-to-right into that total. The order is a pure function of n —
//     never of threads or shards — so it is exactly as deterministic as the
//     sequential order, and it maps 1:1 onto a 4-lane SIMD add: the AVX2
//     path below IS this association (vaddpd performs four independent IEEE
//     adds), which is why the intrinsic and portable variants are
//     bit-identical and a build with or without -mavx2 produces the same
//     bytes. Used by bulk mutation paths (row capping) whose aggregates no
//     golden pins to the sequential order.
//
// All kernels are allocation-free and take restrict-qualified pointers so
// the compiler can vectorize without alias analysis giving up.

#ifndef SRC_COMMON_SPAN_KERNELS_H_
#define SRC_COMMON_SPAN_KERNELS_H_

#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace ampere {
namespace span_kernels {

// Strict left-to-right sum — the golden order. The serial dependence chain
// cannot vectorize, but the restrict-qualified flat loop still unrolls and
// schedules well.
inline double SumSequential(const double* __restrict x, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += x[i];
  }
  return sum;
}

// Portable fixed 4-lane blocked reduction (see the header comment for the
// exact association). Auto-vectorizes to one vector accumulator at -O3.
inline double SumBlocked4Portable(const double* __restrict x, size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  const size_t main = n & ~size_t{3};
  for (size_t i = 0; i < main; i += 4) {
    l0 += x[i];
    l1 += x[i + 1];
    l2 += x[i + 2];
    l3 += x[i + 3];
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (size_t i = main; i < n; ++i) {
    sum += x[i];
  }
  return sum;
}

#if defined(__AVX2__)
// Intrinsic variant of the same association: one vaddpd per 4 elements is
// four independent IEEE adds, lane j seeing exactly the elements lane j of
// the portable kernel sees, and the horizontal combine spells out the same
// (l0 + l1) + (l2 + l3). Bit-identical to SumBlocked4Portable by
// construction; the identity is pinned by tests/parallel_determinism_test.
inline double SumBlocked4Avx2(const double* __restrict x, size_t n) {
  __m256d acc = _mm256_setzero_pd();
  const size_t main = n & ~size_t{3};
  for (size_t i = 0; i < main; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (size_t i = main; i < n; ++i) {
    sum += x[i];
  }
  return sum;
}
#endif

// The blocked reduction the bulk paths call: the intrinsic body when the
// translation unit is compiled with AVX2, the portable body otherwise.
// Same bits either way (see above), so mixing TUs is safe.
inline double SumBlocked4(const double* __restrict x, size_t n) {
#if defined(__AVX2__)
  return SumBlocked4Avx2(x, n);
#else
  return SumBlocked4Portable(x, n);
#endif
}

}  // namespace span_kernels
}  // namespace ampere

#endif  // SRC_COMMON_SPAN_KERNELS_H_
