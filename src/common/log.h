// Minimal leveled logger.
//
// The production Ampere daemon logs controller decisions for audit; this
// logger serves the same purpose in simulation. It is intentionally tiny:
// benches and tests set the level once, and hot paths guard with the macro so
// disabled levels cost one branch.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string>
#include <string_view>

namespace ampere {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global log threshold; messages below it are skipped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Canonical lowercase name ("debug", "info", "warning", "error", "off").
const char* LogLevelName(LogLevel level);

// Parses a level name (case-insensitive; accepts the canonical names plus
// "warn" and the single-letter tags d/i/w/e). Returns false — leaving *out
// untouched — on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

// Applies the AMPERE_LOG_LEVEL environment variable, if set and valid, to
// the global threshold. Returns true if a level was applied. Benches and
// examples call this before parsing --log-level (flag beats environment).
bool ApplyLogLevelFromEnv();

// Writes one formatted line to stderr — or, when the calling thread has a
// ScopedLogCapture installed (src/common/log_capture.h), appends it to that
// capture buffer instead. Prefer the AMPERE_LOG macro.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace log_internal {

// Thread-local capture sink. Installed/removed by ScopedLogCapture; nullptr
// means "write to stderr". Exposed here so LogMessage stays a single
// translation unit away from both users.
struct CaptureSink {
  virtual ~CaptureSink() = default;
  virtual void Write(const std::string& formatted_line) = 0;
};

CaptureSink* GetThreadCaptureSink();
// Returns the previously installed sink (for nesting).
CaptureSink* SetThreadCaptureSink(CaptureSink* sink);

}  // namespace log_internal

namespace log_internal {

class LineBuilder {
 public:
  LineBuilder(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LineBuilder() { LogMessage(level_, file_, line_, stream_.str()); }

  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace ampere

#define AMPERE_LOG(level)                                              \
  if (::ampere::LogLevel::level < ::ampere::GetLogLevel()) {           \
  } else                                                               \
    ::ampere::log_internal::LineBuilder(::ampere::LogLevel::level,     \
                                        __FILE__, __LINE__)

#endif  // SRC_COMMON_LOG_H_
