#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace ampere {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_write_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

thread_local log_internal::CaptureSink* t_capture_sink = nullptr;

}  // namespace

namespace log_internal {

CaptureSink* GetThreadCaptureSink() { return t_capture_sink; }

CaptureSink* SetThreadCaptureSink(CaptureSink* sink) {
  CaptureSink* previous = t_capture_sink;
  t_capture_sink = sink;
  return previous;
}

}  // namespace log_internal

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), "[%s %s:%d] ", LevelTag(level),
                Basename(file), line);
  if (log_internal::CaptureSink* sink = t_capture_sink; sink != nullptr) {
    // Captured: the line goes to the per-run buffer, no global lock, no
    // interleaving with other workers' runs.
    sink->Write(std::string(prefix) + message + "\n");
    return;
  }
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "%s%s\n", prefix, message.c_str());
}

}  // namespace ampere
