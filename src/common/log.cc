#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ampere {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_write_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

thread_local log_internal::CaptureSink* t_capture_sink = nullptr;

}  // namespace

namespace log_internal {

CaptureSink* GetThreadCaptureSink() { return t_capture_sink; }

CaptureSink* SetThreadCaptureSink(CaptureSink* sink) {
  CaptureSink* previous = t_capture_sink;
  t_capture_sink = sink;
  return previous;
}

}  // namespace log_internal

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "off";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "debug" || lower == "d") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "i") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "w") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "e") {
    *out = LogLevel::kError;
  } else if (lower == "off") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

bool ApplyLogLevelFromEnv() {
  const char* env = std::getenv("AMPERE_LOG_LEVEL");
  if (env == nullptr) return false;
  LogLevel level;
  if (!ParseLogLevel(env, &level)) return false;
  SetLogLevel(level);
  return true;
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), "[%s %s:%d] ", LevelTag(level),
                Basename(file), line);
  if (log_internal::CaptureSink* sink = t_capture_sink; sink != nullptr) {
    // Captured: the line goes to the per-run buffer, no global lock, no
    // interleaving with other workers' runs.
    sink->Write(std::string(prefix) + message + "\n");
    return;
  }
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "%s%s\n", prefix, message.c_str());
}

}  // namespace ampere
