// Strong identifier types for topology entities and jobs.
//
// IDs are dense indices assigned by the topology builder / workload
// generator, so they double as vector indices throughout the simulator.
// The tag parameter makes e.g. ServerId and RowId non-interchangeable.

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>

namespace ampere {

template <typename Tag>
class DenseId {
 public:
  constexpr DenseId() : value_(kInvalidValue) {}
  explicit constexpr DenseId(int32_t value) : value_(value) {}

  constexpr bool valid() const { return value_ != kInvalidValue; }
  constexpr int32_t value() const { return value_; }
  // Convenience for indexing std:: containers.
  constexpr size_t index() const { return static_cast<size_t>(value_); }

  constexpr auto operator<=>(const DenseId&) const = default;

 private:
  static constexpr int32_t kInvalidValue = -1;
  int32_t value_;
};

struct ServerIdTag {};
struct RackIdTag {};
struct RowIdTag {};
struct JobIdTag {};
struct TaskIdTag {};
struct DataCenterIdTag {};

using ServerId = DenseId<ServerIdTag>;
using RackId = DenseId<RackIdTag>;
using RowId = DenseId<RowIdTag>;
using JobId = DenseId<JobIdTag>;
// Index of one data center within a campus (see cluster/campus.h). Ids are
// dense per campus; single-DC code paths never mint one.
using DataCenterId = DenseId<DataCenterIdTag>;

}  // namespace ampere

template <typename Tag>
struct std::hash<ampere::DenseId<Tag>> {
  size_t operator()(const ampere::DenseId<Tag>& id) const {
    return std::hash<int32_t>{}(id.value());
  }
};

#endif  // SRC_COMMON_IDS_H_
