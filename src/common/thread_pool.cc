#include "src/common/thread_pool.h"

#include <chrono>
#include <utility>

#include "src/common/check.h"

namespace ampere {
namespace {

thread_local int t_worker_index = -1;

}  // namespace

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) {
      num_threads = 1;
    }
  }
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain-then-join: workers keep pulling until every queue is empty AND
  // shutdown_ is set, so tasks queued before destruction all run.
  Wait();
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  AMPERE_CHECK(task != nullptr);
  AMPERE_CHECK(!shutdown_.load(std::memory_order_acquire))
      << "Submit after shutdown";
  pending_.fetch_add(1, std::memory_order_acq_rel);

  // A worker submitting work keeps it local (LIFO, cache-warm); external
  // submitters spread round-robin so a freshly submitted grid starts evenly
  // distributed and stealing is the exception, not the rule.
  size_t target;
  int self = t_worker_index;
  if (self >= 0 && static_cast<size_t>(self) < queues_.size()) {
    target = static_cast<size_t>(self);
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::TryGetTask(size_t self, std::function<void()>& task) {
  // Own queue first, back end (LIFO for locality).
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal from the front of the others (FIFO end — oldest task, most likely
  // to represent a big untouched chunk of the grid).
  for (size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  t_worker_index = static_cast<int>(self);
  for (;;) {
    std::function<void()> task;
    if (TryGetTask(self, task)) {
      task();
      task = nullptr;  // Release captures before signalling completion.
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(wait_mutex_);
        all_done_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wait_mutex_);
    if (shutdown_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // Re-check under the lock: a Submit may have raced the scan above.
    work_available_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  all_done_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace ampere
