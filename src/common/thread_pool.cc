#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/check.h"

namespace ampere {
namespace {

thread_local int t_worker_index = -1;
// Which pool the current thread is a worker of (nullptr for non-workers).
// ParallelFor regions must not be started by the target pool's own workers
// (they could all block waiting on each other); workers of a *different*
// pool — e.g. a harness worker driving a scenario that owns an inner
// per-run pool — are fine, so the guard compares pool identity, not just
// worker-ness.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) {
      num_threads = 1;
    }
  }
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain-then-join: workers keep pulling until every queue is empty AND
  // shutdown_ is set, so tasks queued before destruction all run.
  Wait();
  {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  AMPERE_CHECK(task != nullptr);
  AMPERE_CHECK(!shutdown_.load(std::memory_order_acquire))
      << "Submit after shutdown";
  pending_.fetch_add(1, std::memory_order_acq_rel);

  // A worker submitting work keeps it local (LIFO, cache-warm); external
  // submitters spread round-robin so a freshly submitted grid starts evenly
  // distributed and stealing is the exception, not the rule.
  size_t target;
  int self = t_worker_index;
  if (self >= 0 && static_cast<size_t>(self) < queues_.size()) {
    target = static_cast<size_t>(self);
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::TryGetTask(size_t self, std::function<void()>& task) {
  // Own queue first, back end (LIFO for locality).
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  // Steal from the front of the others (FIFO end — oldest task, most likely
  // to represent a big untouched chunk of the grid).
  for (size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  t_worker_index = static_cast<int>(self);
  t_worker_pool = this;
  for (;;) {
    if (TryRunParallelShards()) {
      continue;
    }
    std::function<void()> task;
    if (TryGetTask(self, task)) {
      task();
      task = nullptr;  // Release captures before signalling completion.
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(wait_mutex_);
        all_done_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(wait_mutex_);
    if (shutdown_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
    // Re-check under the lock: a Submit or a ParallelFor publication may
    // have raced the scans above (publishers touch wait_mutex_ before
    // notifying, so this check cannot miss a wakeup).
    if (ParallelShardAvailable()) {
      continue;
    }
    work_available_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

// --- ParallelFor -----------------------------------------------------------

bool ThreadPool::ParallelShardAvailable() const {
  const uint64_t meta = par_meta_.load(std::memory_order_acquire);
  const uint64_t shards = meta & kParIndexMask;
  if (shards == 0) {
    return false;
  }
  const uint64_t ticket = par_ticket_.load(std::memory_order_acquire);
  return (ticket >> kParIndexBits) == (meta >> kParIndexBits) &&
         (ticket & kParIndexMask) < shards;
}

void ThreadPool::RunOneShard(size_t i) {
  // Shard i covers [begin + i*chunk + min(i, rem),
  //                 begin + (i+1)*chunk + min(i+1, rem)): the first
  // par_rem_ shards are one element longer. Pure function of (i, n, k).
  const size_t extra_before = i < par_rem_ ? i : par_rem_;
  const size_t b = par_begin_ + i * par_chunk_ + extra_before;
  const size_t len = par_chunk_ + (i < par_rem_ ? 1 : 0);
  par_fn_(par_ctx_, b, b + len);
  const uint64_t meta = par_meta_.load(std::memory_order_acquire);
  if (par_done_count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      (meta & kParIndexMask)) {
    // Last shard: wake the region owner. Taking the mutex orders the
    // notify after the owner's predicate check, so no wakeup is lost.
    std::lock_guard<std::mutex> lock(par_done_mutex_);
    par_done_.notify_all();
  }
}

bool ThreadPool::TryRunParallelShards() {
  bool ran = false;
  for (;;) {
    const uint64_t meta = par_meta_.load(std::memory_order_acquire);
    const uint64_t shards = meta & kParIndexMask;
    const uint64_t epoch = meta >> kParIndexBits;
    if (shards == 0) {
      return ran;
    }
    uint64_t ticket = par_ticket_.load(std::memory_order_acquire);
    for (;;) {
      if ((ticket >> kParIndexBits) != epoch ||
          (ticket & kParIndexMask) >= shards) {
        return ran;  // Region drained (or epoch already moved on).
      }
      // CAS claim: succeeds only while the ticket still belongs to the
      // epoch validated above, so no index of a newer region can be
      // consumed-and-dropped by a straggler from an older one.
      if (par_ticket_.compare_exchange_weak(ticket, ticket + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        RunOneShard(ticket & kParIndexMask);
        ran = true;
        break;  // Re-read meta: the region may have drained meanwhile.
      }
    }
  }
}

void ThreadPool::RunShards(ShardFn fn, void* ctx, size_t begin, size_t end,
                           size_t grain) {
  AMPERE_CHECK(t_worker_pool != this)
      << "ParallelFor called from inside the pool's own worker";
  const size_t n = end > begin ? end - begin : 0;
  if (n == 0) {
    return;
  }
  const size_t lanes = workers_.size() + 1;  // Workers + this caller.
  // Floor division: k shards of n/k or n/k+1 elements each, so every shard
  // holds at least `grain` elements (the documented contract). Ceiling
  // division would admit shards just under the grain when n % grain != 0.
  const size_t by_grain = grain > 0 ? n / grain : n;
  const size_t k = std::min(lanes, by_grain < 1 ? size_t{1} : by_grain);
  if (k <= 1) {
    fn(ctx, begin, end);
    return;
  }

  std::lock_guard<std::mutex> region(par_region_mutex_);
  const uint64_t epoch = (par_meta_.load(std::memory_order_relaxed) >>
                          kParIndexBits) + 1;
  par_fn_ = fn;
  par_ctx_ = ctx;
  par_begin_ = begin;
  par_chunk_ = n / k;
  par_rem_ = n % k;
  par_done_count_.store(0, std::memory_order_relaxed);
  // Caller takes shard 0 below; workers start claiming from 1.
  par_ticket_.store((epoch << kParIndexBits) | 1, std::memory_order_release);
  par_meta_.store((epoch << kParIndexBits) | k, std::memory_order_release);
  {
    // Touch wait_mutex_ so a worker between its idle re-check and its wait
    // cannot miss the notification (same protocol as shutdown).
    std::lock_guard<std::mutex> lock(wait_mutex_);
  }
  work_available_.notify_all();

  RunOneShard(0);
  // Help drain: if workers are busy (or this is an oversubscribed host),
  // the caller claims remaining shards itself instead of blocking.
  for (;;) {
    uint64_t ticket = par_ticket_.load(std::memory_order_acquire);
    if ((ticket >> kParIndexBits) != epoch ||
        (ticket & kParIndexMask) >= k) {
      break;
    }
    if (par_ticket_.compare_exchange_weak(ticket, ticket + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      RunOneShard(ticket & kParIndexMask);
    }
  }

  // Join: brief spin (shards are tens of microseconds), then block.
  for (int spin = 0; spin < 4096; ++spin) {
    if (par_done_count_.load(std::memory_order_acquire) == k) {
      break;
    }
  }
  if (par_done_count_.load(std::memory_order_acquire) != k) {
    std::unique_lock<std::mutex> lock(par_done_mutex_);
    par_done_.wait(lock, [this, k] {
      return par_done_count_.load(std::memory_order_acquire) == k;
    });
  }
  // Retire the region: zero the shard count, keeping the epoch (the next
  // region bumps it). Stragglers re-validate against this and back off.
  par_meta_.store(epoch << kParIndexBits, std::memory_order_release);
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(wait_mutex_);
  all_done_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace ampere
