// Fixed-size node pool allocator for node-based containers on hot paths.
//
// std::unordered_map allocates one heap node per element; on churn-heavy
// maps (a server's running-task table turns over once per job) the
// malloc/free pair dominates the container's cost. PoolAllocator recycles
// nodes through a free list carved from geometrically-growing blocks, so
// steady-state insert/erase touches no global allocator at all.
//
// Determinism note: the allocator changes only *where* nodes live, never
// how the container arranges them — libstdc++'s hashtable layout (bucket
// assignment, within-bucket chaining, iteration order) is a function of
// hashes and insertion order alone, not of node addresses. Swapping this in
// for std::allocator is therefore observation-equivalent, which the
// bit-identity harness tests verify end to end.
//
// Concurrency: a pool is confined to the container that owns it (copies of
// the allocator share the pool via shared_ptr). Containers used from one
// thread at a time — the simulation model's case — need no locking.
//
// Only single-object allocations of the pool's node size are pooled;
// array allocations (e.g. the hashtable's bucket vector) and mismatched
// sizes from rebound copies fall through to operator new/delete.

#ifndef SRC_COMMON_POOL_ALLOCATOR_H_
#define SRC_COMMON_POOL_ALLOCATOR_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace ampere {

namespace internal {

// Untyped fixed-node-size arena with an intrusive free list. Blocks are
// only released when the pool is destroyed, so recycled node addresses stay
// valid for the lifetime of the owning container.
class NodePool {
 public:
  explicit NodePool(size_t node_size)
      : node_size_(node_size < sizeof(FreeNode) ? sizeof(FreeNode)
                                                : node_size) {}

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  size_t node_size() const { return node_size_; }

  void* Allocate() {
    if (free_ != nullptr) {
      FreeNode* node = free_;
      free_ = node->next;
      return node;
    }
    if (bump_remaining_ == 0) {
      Grow();
    }
    void* p = bump_;
    bump_ += node_size_;
    --bump_remaining_;
    return p;
  }

  void Deallocate(void* p) {
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_;
    free_ = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  void Grow() {
    blocks_.emplace_back(new unsigned char[node_size_ * next_block_nodes_]);
    bump_ = blocks_.back().get();
    bump_remaining_ = next_block_nodes_;
    if (next_block_nodes_ < kMaxBlockNodes) {
      next_block_nodes_ *= 2;
    }
  }

  static constexpr size_t kMaxBlockNodes = 4096;

  const size_t node_size_;
  FreeNode* free_ = nullptr;
  unsigned char* bump_ = nullptr;
  size_t bump_remaining_ = 0;
  size_t next_block_nodes_ = 16;
  std::vector<std::unique_ptr<unsigned char[]>> blocks_;
};

}  // namespace internal

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  // The pool moves/swaps with the nodes it owns, so cross-container moves
  // are always pointer steals, never element-wise reallocation.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  PoolAllocator() = default;

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept  // NOLINT(runtime/explicit)
      : pool_(other.pool_) {}

  T* allocate(size_t n) {
    // Blocks come from operator new[] (max_align_t-aligned) and nodes are
    // spaced sizeof(T) apart (a multiple of alignof(T)), so the pool serves
    // any T without extended alignment; over-aligned types bypass it.
    if constexpr (alignof(T) <= alignof(std::max_align_t)) {
      if (n == 1) {
        if (pool_ == nullptr) {
          pool_ = std::make_shared<internal::NodePool>(sizeof(T));
        }
        if (pool_->node_size() == NodeBytes()) {
          return static_cast<T*>(pool_->Allocate());
        }
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t n) {
    if (n == 1 && pool_ != nullptr && pool_->node_size() == NodeBytes()) {
      pool_->Deallocate(p);
      return;
    }
    ::operator delete(p);
  }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ == b.pool_;
  }
  friend bool operator!=(const PoolAllocator& a, const PoolAllocator& b) {
    return !(a == b);
  }

 private:
  template <typename U>
  friend class PoolAllocator;

  static constexpr size_t NodeBytes() {
    return sizeof(T) < sizeof(void*) ? sizeof(void*) : sizeof(T);
  }

  std::shared_ptr<internal::NodePool> pool_;
};

}  // namespace ampere

#endif  // SRC_COMMON_POOL_ALLOCATOR_H_
