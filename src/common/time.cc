#include "src/common/time.h"

#include <cstdio>

namespace ampere {

std::string SimTime::ToString() const {
  int64_t total_seconds = micros_ / 1000000;
  int64_t h = total_seconds / 3600;
  int64_t m = (total_seconds % 3600) / 60;
  int64_t s = total_seconds % 60;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s));
  return buf;
}

}  // namespace ampere
