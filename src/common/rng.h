// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component (arrival process, duration model, power noise,
// measurement noise, scheduler tie-breaking) owns its own Rng stream, forked
// from a master seed via SplitMix64. Re-running any benchmark with the same
// seed reproduces results bit-for-bit.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <cmath>
#include <numbers>

namespace ampere {

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// re-expressed), seeded through SplitMix64 as the authors recommend.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Forks an independent stream; children of distinct (seed, stream_id) pairs
  // are statistically independent for simulation purposes.
  Rng Fork(uint64_t stream_id) const;

  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (not rate). Requires mean > 0.
  double Exponential(double mean);

  // Standard normal via Box-Muller (cached second variate).
  double StandardNormal();

  double Normal(double mu, double sigma) { return mu + sigma * StandardNormal(); }

  // Lognormal parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  int64_t Poisson(double mean);

 private:
  Rng() = default;

  uint64_t s_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
  // UniformInt rejection-limit memo; a range of 0 never occurs here (the
  // full-range case returns before the memo), so 0 means "empty".
  uint64_t cached_range_ = 0;
  uint64_t cached_limit_ = 0;
};

}  // namespace ampere

#endif  // SRC_COMMON_RNG_H_
