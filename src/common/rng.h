// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component (arrival process, duration model, power noise,
// measurement noise, scheduler tie-breaking) owns its own Rng stream, forked
// from a master seed via SplitMix64. Re-running any benchmark with the same
// seed reproduces results bit-for-bit.
//
// Two flavours live here:
//   * Rng — a sequential xoshiro256** stream. Draws depend on how many draws
//     came before, so a consumer must always draw in the same order.
//   * CounterRng (free functions) — counter-based ("stateless") streams: a
//     variate is a pure function of (seed, stream, tick). Nothing is drawn
//     "before" anything else, so values are independent of evaluation order
//     and thread count — the property the sharded telemetry sampler needs
//     for bit-identical output at any --jobs value.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <numbers>

namespace ampere {

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// re-expressed), seeded through SplitMix64 as the authors recommend.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Forks an independent stream; children of distinct (seed, stream_id) pairs
  // are statistically independent for simulation purposes.
  Rng Fork(uint64_t stream_id) const;

  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (not rate). Requires mean > 0.
  double Exponential(double mean);

  // Standard normal via Box-Muller (cached second variate).
  double StandardNormal();

  double Normal(double mu, double sigma) { return mu + sigma * StandardNormal(); }

  // Lognormal parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  int64_t Poisson(double mean);

 private:
  Rng() = default;

  uint64_t s_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
  // UniformInt rejection-limit memo; a range of 0 never occurs here (the
  // full-range case returns before the memo), so 0 means "empty".
  uint64_t cached_range_ = 0;
  uint64_t cached_limit_ = 0;
};

// --- Counter-based (stateless) streams ------------------------------------
//
// counter_rng::At(seed, stream, tick) and friends are pure functions: the
// same arguments always yield the same bits, no matter how many other
// variates were evaluated, in what order, or on which thread. The mixer is
// a SplitMix64-style finalizer over an FNV-1a-combined key, which passes
// the usual avalanche checks and is cheap enough for per-reading use.
namespace counter_rng {

// SplitMix64 finalizer: bijective 64-bit avalanche mix.
constexpr uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

// Stage 1 of key derivation: folds (seed, tick) into a per-tick base. Batch
// consumers evaluating many streams at one tick (the sampler: one stream
// per server pair, one tick per minute) hoist this out of the per-stream
// loop — it is the loop-invariant two thirds of the mixing work.
constexpr uint64_t TickBase(uint64_t seed, uint64_t tick) {
  uint64_t h = Mix64(seed ^ 0xCBF29CE484222325ULL);
  return Mix64((h ^ tick) * kFnvPrime);
}

// Stage 2: folds the stream id into a tick base. One Mix64 per stream.
constexpr uint64_t StreamKey(uint64_t base, uint64_t stream) {
  return Mix64((base ^ stream) * kFnvPrime);
}

// Combines (seed, stream, tick) into one well-mixed 64-bit key — exactly
// StreamKey(TickBase(seed, tick), stream), so one-off evaluations and
// hoisted batch loops produce identical bits. FNV-1a-style folds between
// Mix64 rounds keep distinct argument triples from colliding under simple
// arithmetic relations (stream+1 vs tick-1, etc.).
constexpr uint64_t Key(uint64_t seed, uint64_t stream, uint64_t tick) {
  return StreamKey(TickBase(seed, tick), stream);
}

// Raw 64-bit variate for a key (a second independent word is Mix64(key^C)).
constexpr uint64_t U64(uint64_t key) { return Mix64(key); }

// Uniform double in [0, 1) from a key.
inline double UniformDouble(uint64_t key) {
  return static_cast<double>(U64(key) >> 11) * 0x1.0p-53;
}

// Two independent standard-normal variates from one key (one Box-Muller
// evaluation: z0 = r cos theta, z1 = r sin theta). Callers that map one
// variate per identity should derive the key from identity/2 and pick by
// parity — that halves the log/sqrt/trig cost versus one evaluation per
// identity while every variate stays a pure function of (key, lane).
struct NormalPair {
  double z0 = 0.0;
  double z1 = 0.0;
};
NormalPair StandardNormalPair(uint64_t key);

// Single standard normal as a pure function of a key (the z0 lane).
double StandardNormal(uint64_t key);

// Batched Box-Muller over `num_pairs` consecutive streams: writes
// z[2k] = z0 and z[2k+1] = z1 of StandardNormalPair(StreamKey(base,
// first_stream + k)) for k in [0, num_pairs). Bit-identical to calling
// StandardNormalPair per stream — the batch is a strip-mined restructure,
// not a different formula: the integer key mixing and uniform conversion
// run as flat span loops the compiler can vectorize, while log/sin/cos stay
// scalar libm calls (vector math libraries round differently, and these
// bits are pinned by goldens). Allocation-free: internal staging lives in
// fixed stack blocks.
void StandardNormalSpan(uint64_t base, uint64_t first_stream,
                        size_t num_pairs, double* z);

}  // namespace counter_rng

}  // namespace ampere

#endif  // SRC_COMMON_RNG_H_
