// Invariant checking.
//
// AMPERE_CHECK is always on (simulation correctness beats nanoseconds here);
// AMPERE_DCHECK compiles out in NDEBUG builds. Failures throw
// ampere::CheckFailure so tests can assert on violated invariants instead of
// aborting the whole test binary.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace ampere {

class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void FailCheck(const char* condition, const char* file, int line,
                            const std::string& message);

namespace check_internal {

class Voidify {
 public:
  // Lowest-precedence operator so `AMPERE_CHECK(x) << msg` parses.
  void operator&(std::ostream&) {}
};

class FailStream {
 public:
  FailStream(const char* condition, const char* file, int line)
      : condition_(condition), file_(file), line_(line) {}
  [[noreturn]] ~FailStream() noexcept(false) {
    FailCheck(condition_, file_, line_, stream_.str());
  }

  template <typename T>
  FailStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* condition_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace check_internal
}  // namespace ampere

#define AMPERE_CHECK(condition)                                      \
  if (condition) {                                                   \
  } else /* NOLINT */                                                \
    ::ampere::check_internal::FailStream(#condition, __FILE__, __LINE__)

#ifdef NDEBUG
#define AMPERE_DCHECK(condition) AMPERE_CHECK(true || (condition))
#else
#define AMPERE_DCHECK(condition) AMPERE_CHECK(condition)
#endif

#endif  // SRC_COMMON_CHECK_H_
