// Per-thread log capture.
//
// The logger serializes writes to stderr with a global mutex, which is
// correct but interleaves lines from concurrent scenario runs into an
// unreadable braid. ScopedLogCapture redirects the *calling thread's*
// AMPERE_LOG output into a private buffer for its lifetime; the harness
// installs one per scenario run and stores the captured text in the run's
// result row, so each run's log reads as if it had run alone.
//
// Scopes nest: the inner capture wins while alive, then the outer resumes.
// The capture is strictly thread-local — other threads' logs still go to
// stderr (or to their own captures).

#ifndef SRC_COMMON_LOG_CAPTURE_H_
#define SRC_COMMON_LOG_CAPTURE_H_

#include <string>

#include "src/common/log.h"

namespace ampere {

class ScopedLogCapture : private log_internal::CaptureSink {
 public:
  ScopedLogCapture();
  ~ScopedLogCapture() override;

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  // Captured text so far (formatted lines, newline-terminated).
  const std::string& output() const { return buffer_; }

  // Moves the captured text out, leaving the buffer empty.
  std::string TakeOutput();

 private:
  void Write(const std::string& formatted_line) override;

  std::string buffer_;
  log_internal::CaptureSink* previous_ = nullptr;
};

}  // namespace ampere

#endif  // SRC_COMMON_LOG_CAPTURE_H_
