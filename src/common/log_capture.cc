#include "src/common/log_capture.h"

#include <utility>

namespace ampere {

ScopedLogCapture::ScopedLogCapture() {
  previous_ = log_internal::SetThreadCaptureSink(this);
}

ScopedLogCapture::~ScopedLogCapture() {
  log_internal::SetThreadCaptureSink(previous_);
}

std::string ScopedLogCapture::TakeOutput() {
  return std::exchange(buffer_, std::string());
}

void ScopedLogCapture::Write(const std::string& formatted_line) {
  buffer_ += formatted_line;
}

}  // namespace ampere
