// Simulated-time types for the Ampere simulator and control plane.
//
// The event core runs at millisecond resolution (RAPL reacts in < 1 ms in the
// paper; we model intra-tick reactions), while the control plane (power
// monitor, controller) runs at one-minute cadence. A strong type prevents
// accidental mixing of raw tick counts with wall-clock-like quantities.

#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ampere {

// A point in simulated time, measured in microseconds from simulation start.
// Also used for durations (the arithmetic is the same and the simulator never
// mixes the two with real wall-clock time). Microsecond resolution covers
// both sub-millisecond request service times (the Fig. 11 latency study) and
// multi-day experiment horizons without overflow.
class SimTime {
 public:
  constexpr SimTime() : micros_(0) {}

  static constexpr SimTime Micros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Millis(double ms) {
    return SimTime(static_cast<int64_t>(ms * 1e3));
  }
  static constexpr SimTime Seconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e6));
  }
  static constexpr SimTime Minutes(double m) {
    return SimTime(static_cast<int64_t>(m * 60.0 * 1e6));
  }
  static constexpr SimTime Hours(double h) {
    return SimTime(static_cast<int64_t>(h * 3600.0 * 1e6));
  }
  static constexpr SimTime Max() {
    return SimTime(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t micros() const { return micros_; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }
  constexpr double seconds() const {
    return static_cast<double>(micros_) / 1e6;
  }
  constexpr double minutes() const {
    return static_cast<double>(micros_) / 60e6;
  }
  constexpr double hours() const {
    return static_cast<double>(micros_) / 3600e6;
  }

  // Hour-of-day in [0, 24), assuming the simulation starts at midnight.
  // Used by the E_t estimator's per-hour quantile profile.
  constexpr int hour_of_day() const {
    int64_t h = micros_ / (3600 * kMicrosPerSecond);
    int hod = static_cast<int>(h % 24);
    return hod < 0 ? hod + 24 : hod;
  }

  // Index of the enclosing 1-minute control interval.
  constexpr int64_t minute_index() const {
    return micros_ / (60 * kMicrosPerSecond);
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime other) const {
    return SimTime(micros_ + other.micros_);
  }
  constexpr SimTime operator-(SimTime other) const {
    return SimTime(micros_ - other.micros_);
  }
  constexpr SimTime& operator+=(SimTime other) {
    micros_ += other.micros_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) {
    micros_ -= other.micros_;
    return *this;
  }
  constexpr SimTime operator*(double k) const {
    return SimTime(static_cast<int64_t>(static_cast<double>(micros_) * k));
  }

  std::string ToString() const;

 private:
  static constexpr int64_t kMicrosPerSecond = 1000000;
  explicit constexpr SimTime(int64_t us) : micros_(us) {}
  int64_t micros_;
};

}  // namespace ampere

#endif  // SRC_COMMON_TIME_H_
