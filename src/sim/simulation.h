// Discrete-event simulation engine.
//
// A single-threaded event core drives the data-center model: job arrivals
// and completions are point events, while the power monitor and the Ampere
// controller are periodic tasks on a one-minute cadence. Completion events
// are cancellable because DVFS power capping changes server speed, which
// requires rescheduling every affected task's completion.

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/time.h"

namespace ampere {

class Simulation {
 public:
  using Callback = std::function<void()>;

  // A cancellable reference to a scheduled event. Default-constructed handles
  // are inert. Cancelling an already-fired or already-cancelled event is a
  // no-op, so owners can cancel unconditionally in destructors.
  class EventHandle {
   public:
    EventHandle() = default;

    void Cancel();
    // True if the event is still queued and will fire.
    bool pending() const;

   private:
    friend class Simulation;
    struct State;
    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}
    std::weak_ptr<State> state_;
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  size_t pending_events() const { return live_events_; }
  uint64_t processed_events() const { return processed_events_; }

  // Schedules `callback` at absolute time `at` (>= now()).
  EventHandle ScheduleAt(SimTime at, Callback callback);

  // Schedules `callback` `delay` after the current time (delay >= 0).
  EventHandle ScheduleAfter(SimTime delay, Callback callback);

  // Schedules `callback(fire_time)` every `interval` starting at `start`,
  // forever (periodic tasks run for the life of the simulation). The callback
  // receives the nominal fire time.
  void SchedulePeriodic(SimTime start, SimTime interval,
                        std::function<void(SimTime)> callback);

  // Executes the next event, advancing the clock to it. Returns false when
  // the queue is empty.
  bool Step();

  // Runs every event with fire time <= `until`, then sets the clock to
  // `until` (so telemetry windows close deterministically).
  void RunUntil(SimTime until);

  // Runs to queue exhaustion. Periodic tasks never exhaust; use RunUntil.
  void RunToCompletion();

 private:
  struct QueueEntry {
    SimTime time;
    uint64_t seq;  // FIFO among same-time events.
    std::shared_ptr<EventHandle::State> state;
  };
  struct EntryLater {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  uint64_t next_seq_ = 0;
  size_t live_events_ = 0;
  uint64_t processed_events_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryLater> queue_;
};

}  // namespace ampere

#endif  // SRC_SIM_SIMULATION_H_
