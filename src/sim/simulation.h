// Discrete-event simulation engine.
//
// A single-threaded event core drives the data-center model: job arrivals
// and completions are point events, while the power monitor and the Ampere
// controller are periodic tasks on a one-minute cadence. Completion events
// are cancellable because DVFS power capping changes server speed, which
// requires rescheduling every affected task's completion.
//
// Hot-path design: events live in a slab of pooled slots recycled through a
// free list, each slot holding its callback in small-buffer storage sized
// for the closures the model actually schedules (completion lambdas,
// periodic re-arms). The steady state allocates nothing per event — no
// shared_ptr control block, no std::function heap node. Handles are
// generation-checked PODs: cancelling an already-fired, already-cancelled,
// or recycled event is a safe no-op, exactly like the previous
// shared-state handles, with cancel O(1).

#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace ampere {

class Simulation {
 public:
  using Callback = std::function<void()>;

  // A cancellable reference to a scheduled event. Default-constructed handles
  // are inert. Cancelling an already-fired or already-cancelled event is a
  // no-op, so owners can cancel unconditionally in destructors. Handles are
  // trivially copyable; a copied handle refers to the same event. The
  // Simulation must outlive any Cancel()/pending() call on a live handle
  // (every owner in the model is destroyed before its Simulation).
  class EventHandle {
   public:
    EventHandle() = default;

    void Cancel();
    // True if the event is still queued and will fire.
    bool pending() const;

   private:
    friend class Simulation;
    EventHandle(Simulation* sim, uint32_t slot, uint64_t seq)
        : sim_(sim), slot_(slot), seq_(seq) {}
    Simulation* sim_ = nullptr;
    uint32_t slot_ = 0;
    uint64_t seq_ = 0;
  };

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  size_t pending_events() const { return live_events_; }
  uint64_t processed_events() const { return processed_events_; }

  // Schedules `callback` at absolute time `at` (>= now()). Accepts any
  // nullary callable; closures up to the slot's inline buffer are stored
  // without touching the heap.
  template <typename F>
  EventHandle ScheduleAt(SimTime at, F&& callback) {
    AMPERE_CHECK(at >= now_) << "scheduling into the past: at="
                             << at.ToString() << " now=" << now_.ToString();
    const uint32_t slot_index = AllocSlot();
    const uint64_t seq = next_seq_++;
    AMPERE_CHECK(seq < (uint64_t{1} << kSeqBits)) << "event seq overflow";
    Slot& slot = slots_[slot_index];
    slot.callback.Emplace(std::forward<F>(callback));
    slot.seq = seq;
    HeapPush(QueueEntry{at, (seq << kSlotBits) | slot_index});
    ++live_events_;
    return EventHandle(this, slot_index, seq);
  }

  // Schedules `callback` `delay` after the current time (delay >= 0).
  template <typename F>
  EventHandle ScheduleAfter(SimTime delay, F&& callback) {
    AMPERE_CHECK(delay >= SimTime()) << "negative delay";
    return ScheduleAt(now_ + delay, std::forward<F>(callback));
  }

  // Schedules `callback(fire_time)` every `interval` starting at `start`,
  // forever (periodic tasks run for the life of the simulation). The callback
  // receives the nominal fire time.
  void SchedulePeriodic(SimTime start, SimTime interval,
                        std::function<void(SimTime)> callback);

  // Executes the next event, advancing the clock to it. Returns false when
  // the queue is empty.
  bool Step();

  // Runs every event with fire time <= `until`, then sets the clock to
  // `until` (so telemetry windows close deterministically).
  void RunUntil(SimTime until);

  // Runs to queue exhaustion. Periodic tasks never exhaust; use RunUntil.
  void RunToCompletion();

  // Pre-sizes the event pool and queue for `expected_live` concurrently
  // scheduled events (capacity hint; the pool grows on demand regardless).
  void ReserveEvents(size_t expected_live);

  // Introspection for tests/benches: slots ever created (high-water mark of
  // concurrently live events) and slots currently on the free list.
  size_t slab_size() const { return slots_.size(); }
  size_t free_slots() const { return free_list_.size(); }

 private:
  // Move-only type-erased nullary callable with small-buffer storage.
  // kInlineBytes covers every closure the model schedules (the largest is
  // the periodic re-arm at 40 bytes); larger callables fall back to one
  // heap node, preserving correctness for arbitrary user code.
  class PooledCallback {
   public:
    static constexpr size_t kInlineBytes = 48;

    PooledCallback() = default;
    ~PooledCallback() { Reset(); }
    PooledCallback(const PooledCallback&) = delete;
    PooledCallback& operator=(const PooledCallback&) = delete;

    template <typename F>
    void Emplace(F&& f) {
      using D = std::decay_t<F>;
      static_assert(std::is_invocable_r_v<void, D&>,
                    "event callback must be callable as void()");
      Reset();
      if constexpr (sizeof(D) <= kInlineBytes &&
                    alignof(D) <= alignof(std::max_align_t)) {
        ::new (static_cast<void*>(buffer_)) D(std::forward<F>(f));
        ops_ = InlineOps<D>();
      } else {
        *reinterpret_cast<D**>(static_cast<void*>(buffer_)) =
            new D(std::forward<F>(f));
        ops_ = HeapOps<D>();
      }
    }

    void Invoke() { ops_->invoke(buffer_); }
    void Reset() {
      if (ops_ != nullptr) {
        const Ops* ops = ops_;
        ops_ = nullptr;
        ops->destroy(buffer_);
      }
    }
    bool has_value() const { return ops_ != nullptr; }

   private:
    struct Ops {
      void (*invoke)(void*);
      void (*destroy)(void*);
    };

    template <typename D>
    static const Ops* InlineOps() {
      static constexpr Ops ops = {
          [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
          [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
      };
      return &ops;
    }
    template <typename D>
    static const Ops* HeapOps() {
      static constexpr Ops ops = {
          [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
          [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
      };
      return &ops;
    }

    const Ops* ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  };

  // Queue entries pack (seq, slot) into one word: seq in the high bits,
  // slot index in the low kSlotBits. Sequence numbers are globally unique,
  // so comparing packed words compares seqs (the slot bits can only break a
  // tie that never happens), and a slot's current seq doubles as its
  // generation token — an entry or handle whose seq no longer matches the
  // slot's is stale. The packing halves the entry to 16 bytes: the pop's
  // sift-down touches half the cache lines of the 32-byte layout it
  // replaces, which is where most of the queue time goes at fleet scale.
  static constexpr int kSlotBits = 22;       // 4M concurrently live events.
  static constexpr int kSeqBits = 64 - kSlotBits;
  static constexpr uint64_t kSlotMask = (uint64_t{1} << kSlotBits) - 1;
  // Token value meaning "no queued event owns this slot"; real seqs are
  // checked against kSeqBits so they never collide with it.
  static constexpr uint64_t kNoEvent = ~uint64_t{0};

  // One pooled event slot. `seq` is the sequence number of the event
  // currently occupying the slot (kNoEvent when free/fired/cancelled);
  // queue entries and handles carry the seq they were minted with, so stale
  // references are detected in O(1) without shared ownership.
  struct Slot {
    PooledCallback callback;
    uint64_t seq = kNoEvent;
  };

  struct QueueEntry {
    SimTime time;
    uint64_t key;  // (seq << kSlotBits) | slot.

    uint64_t seq() const { return key >> kSlotBits; }
    uint32_t slot() const { return static_cast<uint32_t>(key & kSlotMask); }
  };

  // (time, seq) is a strict total order — seq is unique — so the pop
  // sequence is fully determined by the entries alone, independent of the
  // heap's internal arrangement. That makes the heap shape a pure
  // performance choice: a 4-ary heap halves the levels of a binary heap
  // (fewer dependent cache misses on the pop's sift-down, where most of the
  // queue time goes) at the cost of a few extra in-cache-line compares.
  static bool Earlier(const QueueEntry& a, const QueueEntry& b) {
    if (a.time != b.time) {
      return a.time < b.time;
    }
    return a.key < b.key;
  }

  void HeapPush(const QueueEntry& entry) {
    heap_.push_back(entry);
    size_t i = heap_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!Earlier(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  // Removes heap_[0]. Hole-based sift-down: the displaced last element is
  // written once at its final position instead of swapped down level by
  // level.
  void HeapPop() {
    const QueueEntry last = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n == 0) {
      return;
    }
    size_t i = 0;
    for (;;) {
      const size_t first_child = i * 4 + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      const size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (size_t c = first_child + 1; c < end; ++c) {
        if (Earlier(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!Earlier(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  uint32_t AllocSlot() {
    if (!free_list_.empty()) {
      const uint32_t index = free_list_.back();
      free_list_.pop_back();
      return index;
    }
    AMPERE_CHECK(slots_.size() < kSlotMask) << "event slot overflow";
    slots_.emplace_back();
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  // Retires a slot's current event: clears its seq token (stale-ing every
  // outstanding handle/queue entry) and returns the slot to the free list.
  void RetireSlot(uint32_t index) {
    Slot& slot = slots_[index];
    slot.seq = kNoEvent;
    slot.callback.Reset();
    free_list_.push_back(index);
  }

  bool EntryStale(const QueueEntry& entry) const {
    return slots_[entry.slot()].seq != entry.seq();
  }

  void CancelEvent(uint32_t slot_index, uint64_t seq);
  bool EventPending(uint32_t slot_index, uint64_t seq) const {
    return slot_index < slots_.size() && slots_[slot_index].seq == seq;
  }

  SimTime now_;
  uint64_t next_seq_ = 0;
  size_t live_events_ = 0;
  uint64_t processed_events_ = 0;
  // Slab of pooled slots: deque for stable addresses across growth (an event
  // firing may schedule new events while its own slot is still in use).
  std::deque<Slot> slots_;
  std::vector<uint32_t> free_list_;
  // 4-ary min-heap on (time, packed seq/slot); see Earlier()/HeapPush()/
  // HeapPop().
  std::vector<QueueEntry> heap_;
};

}  // namespace ampere

#endif  // SRC_SIM_SIMULATION_H_
