#include "src/sim/simulation.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {

struct Simulation::EventHandle::State {
  Callback callback;
  bool cancelled = false;
  bool fired = false;
};

void Simulation::EventHandle::Cancel() {
  if (auto state = state_.lock()) {
    state->cancelled = true;
  }
}

bool Simulation::EventHandle::pending() const {
  auto state = state_.lock();
  return state != nullptr && !state->cancelled && !state->fired;
}

Simulation::EventHandle Simulation::ScheduleAt(SimTime at, Callback callback) {
  AMPERE_CHECK(at >= now_) << "scheduling into the past: at="
                           << at.ToString() << " now=" << now_.ToString();
  auto state = std::make_shared<EventHandle::State>();
  state->callback = std::move(callback);
  queue_.push(QueueEntry{at, next_seq_++, state});
  ++live_events_;
  return EventHandle(std::move(state));
}

Simulation::EventHandle Simulation::ScheduleAfter(SimTime delay,
                                                  Callback callback) {
  AMPERE_CHECK(delay >= SimTime()) << "negative delay";
  return ScheduleAt(now_ + delay, std::move(callback));
}

void Simulation::SchedulePeriodic(SimTime start, SimTime interval,
                                  std::function<void(SimTime)> callback) {
  AMPERE_CHECK(interval > SimTime()) << "non-positive period";
  // The self-rescheduling closure owns the user callback; each firing queues
  // the next one, so the task survives indefinitely.
  auto cb = std::make_shared<std::function<void(SimTime)>>(std::move(callback));
  struct Rearm {
    Simulation* sim;
    SimTime interval;
    std::shared_ptr<std::function<void(SimTime)>> cb;
    void Fire(SimTime nominal) const {
      (*cb)(nominal);
      Rearm next = *this;
      sim->ScheduleAt(nominal + interval,
                      [next, at = nominal + interval] { next.Fire(at); });
    }
  };
  Rearm rearm{this, interval, std::move(cb)};
  ScheduleAt(start, [rearm, start] { rearm.Fire(start); });
}

bool Simulation::Step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    --live_events_;
    if (entry.state->cancelled) {
      continue;
    }
    AMPERE_CHECK(entry.time >= now_);
    now_ = entry.time;
    entry.state->fired = true;
    ++processed_events_;
    entry.state->callback();
    return true;
  }
  return false;
}

void Simulation::RunUntil(SimTime until) {
  AMPERE_CHECK(until >= now_);
  // One span per drain, not per event: the event loop is far too hot for
  // per-event instrumentation, so RunUntil reports the wall time of the
  // whole drain plus a delta counter of events processed inside it.
  AMPERE_SPAN("sim.run_until");
  const uint64_t processed_before = processed_events_;
  while (!queue_.empty()) {
    // Discard cancelled entries first: Step() would skip past them to the
    // next live event, which may lie beyond the boundary.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      --live_events_;
      continue;
    }
    if (queue_.top().time > until) {
      break;
    }
    Step();
  }
  now_ = until;
  AMPERE_COUNTER_ADD("sim.events", processed_events_ - processed_before);
}

void Simulation::RunToCompletion() {
  while (Step()) {
  }
}

}  // namespace ampere
