#include "src/sim/simulation.h"

#include <memory>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {

void Simulation::EventHandle::Cancel() {
  if (sim_ != nullptr) {
    sim_->CancelEvent(slot_, seq_);
  }
}

bool Simulation::EventHandle::pending() const {
  return sim_ != nullptr && sim_->EventPending(slot_, seq_);
}

void Simulation::CancelEvent(uint32_t slot_index, uint64_t seq) {
  if (slot_index >= slots_.size()) {
    return;
  }
  if (slots_[slot_index].seq != seq) {
    // Already fired, already cancelled, or the slot was recycled for a newer
    // event: nothing to do.
    return;
  }
  // O(1) cancel: stale the handle/queue-entry generation and recycle the
  // slot immediately. The queue entry stays behind and is discarded (by the
  // generation mismatch) when it reaches the head.
  RetireSlot(slot_index);
  --live_events_;
}

void Simulation::SchedulePeriodic(SimTime start, SimTime interval,
                                  std::function<void(SimTime)> callback) {
  AMPERE_CHECK(interval > SimTime()) << "non-positive period";
  // The self-rescheduling closure owns the user callback; each firing queues
  // the next one, so the task survives indefinitely. The user callback sits
  // behind one shared_ptr allocated here, once — the per-fire re-arm closure
  // (40 bytes) fits the pooled slots' inline buffer, so steady-state
  // periodic ticks are allocation-free.
  auto cb = std::make_shared<std::function<void(SimTime)>>(std::move(callback));
  struct Rearm {
    Simulation* sim;
    SimTime interval;
    std::shared_ptr<std::function<void(SimTime)>> cb;
    void Fire(SimTime nominal) const {
      (*cb)(nominal);
      Rearm next = *this;
      sim->ScheduleAt(nominal + interval,
                      [next, at = nominal + interval] { next.Fire(at); });
    }
  };
  Rearm rearm{this, interval, std::move(cb)};
  ScheduleAt(start, [rearm, start] { rearm.Fire(start); });
}

bool Simulation::Step() {
  while (!heap_.empty()) {
    const QueueEntry entry = heap_.front();
    HeapPop();
    if (EntryStale(entry)) {
      // Cancelled (the slot was retired, possibly re-minted since): the
      // live-event count was settled at cancel time.
      continue;
    }
    --live_events_;
    AMPERE_CHECK(entry.time >= now_);
    now_ = entry.time;
    ++processed_events_;
    Slot& slot = slots_[entry.slot()];
    // Clear the seq token before invoking: the event is now "fired", so a
    // Cancel() or pending() from inside its own callback behaves like the
    // old shared-state handles (no-op / false). The slot is only returned
    // to the free list after the callback finishes, so events scheduled by
    // the callback cannot alias the still-running slot.
    slot.seq = kNoEvent;
    try {
      slot.callback.Invoke();
    } catch (...) {
      slot.callback.Reset();
      free_list_.push_back(entry.slot());
      throw;
    }
    slot.callback.Reset();
    free_list_.push_back(entry.slot());
    return true;
  }
  return false;
}

void Simulation::RunUntil(SimTime until) {
  AMPERE_CHECK(until >= now_);
  // One span per drain, not per event: the event loop is far too hot for
  // per-event instrumentation, so RunUntil reports the wall time of the
  // whole drain plus a delta counter of events processed inside it.
  AMPERE_SPAN("sim.run_until");
  const uint64_t processed_before = processed_events_;
  while (!heap_.empty()) {
    // Discard stale (cancelled) entries first: Step() would skip past them
    // to the next live event, which may lie beyond the boundary.
    if (EntryStale(heap_.front())) {
      HeapPop();
      continue;
    }
    if (heap_.front().time > until) {
      break;
    }
    Step();
  }
  now_ = until;
  AMPERE_COUNTER_ADD("sim.events", processed_events_ - processed_before);
}

void Simulation::RunToCompletion() {
  while (Step()) {
  }
}

void Simulation::ReserveEvents(size_t expected_live) {
  free_list_.reserve(expected_live);
  heap_.reserve(expected_live);
  while (slots_.size() < expected_live) {
    slots_.emplace_back();
    free_list_.push_back(static_cast<uint32_t>(slots_.size() - 1));
  }
}

}  // namespace ampere
