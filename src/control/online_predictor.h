// Online power-demand predictor (the paper's §3.6 future work: "We can use
// a better online power prediction model to get a better estimation").
//
// The shipped estimator uses a static per-hour 99.5th-percentile profile.
// This extension predicts the next-interval increase online from the live
// power stream: an AR(1) fit over a sliding window yields the expected
// increase, and an EWMA of squared residuals yields its variance; the
// margin is prediction + z * sigma. Compared to the static profile it
// adapts within minutes to regime changes while keeping a configurable
// tail-risk level.

#ifndef SRC_CONTROL_ONLINE_PREDICTOR_H_
#define SRC_CONTROL_ONLINE_PREDICTOR_H_

#include <cstddef>
#include <deque>

namespace ampere {

struct OnlinePredictorParams {
  // Sliding window of one-minute increases used for the AR(1) fit.
  size_t window = 240;
  // Tail multiplier: margin = mean_prediction + z * sigma. 2.58 ~ 99.5 %.
  double z = 2.58;
  // EWMA weight for the residual variance.
  double variance_alpha = 0.05;
  // Bootstrap margin until enough samples arrive.
  double bootstrap_margin = 0.03;
  // Floor/ceiling for the produced margin.
  double min_margin = 0.0;
  double max_margin = 0.2;
};

class OnlineEtPredictor {
 public:
  OnlineEtPredictor() : OnlineEtPredictor(OnlinePredictorParams{}) {}
  explicit OnlineEtPredictor(const OnlinePredictorParams& params);

  // Feeds the latest normalized power sample (one per control interval).
  void Observe(double normalized_power);

  // Margin E_t for the next interval: predicted increase plus z-sigma.
  double Margin() const;

  // Point prediction of the next one-interval increase (can be negative).
  double PredictedIncrease() const;

  size_t observations() const { return observations_; }

 private:
  void RefitAr1();

  OnlinePredictorParams params_;
  std::deque<double> increases_;
  bool have_last_ = false;
  double last_power_ = 0.0;
  double last_increase_ = 0.0;
  size_t observations_ = 0;
  // AR(1): increase_{t+1} ~ c + phi * increase_t.
  double phi_ = 0.0;
  double c_ = 0.0;
  bool fitted_ = false;
  double residual_var_ = 0.0;
  bool have_var_ = false;
};

}  // namespace ampere

#endif  // SRC_CONTROL_ONLINE_PREDICTOR_H_
