// Estimator of the one-interval power-demand increase E_t.
//
// E_t sets the controller's safety margin: control engages when normalized
// power exceeds r_threshold = 1 - E_t (§3.6, Fig. 6). The paper estimates
// E_t conservatively as the 99.5th percentile of historical one-minute power
// increases, computed separately for each hour of the day because the
// increase distribution varies diurnally.

#ifndef SRC_CONTROL_ET_ESTIMATOR_H_
#define SRC_CONTROL_ET_ESTIMATOR_H_

#include <array>
#include <span>

#include "src/common/time.h"

namespace ampere {

class EtEstimator {
 public:
  // A flat margin, independent of time (the ablation baseline and the
  // bootstrap value before history exists).
  static EtEstimator Constant(double et);

  // The paper's estimator: per-hour-of-day `quantile` (default 99.5th
  // percentile) of one-minute increases in the normalized power series
  // `history`, which starts at minute-of-day `start_minute_of_day`. Hours
  // with no history fall back to `fallback`.
  static EtEstimator FromHistory(std::span<const double> history,
                                 int start_minute_of_day = 0,
                                 double quantile = 0.995,
                                 double fallback = 0.03);

  // Expected worst-case normalized power increase over the next interval.
  double Estimate(SimTime now) const {
    return per_hour_[static_cast<size_t>(now.hour_of_day())];
  }

  const std::array<double, 24>& per_hour() const { return per_hour_; }

 private:
  explicit EtEstimator(const std::array<double, 24>& per_hour)
      : per_hour_(per_hour) {}
  std::array<double, 24> per_hour_;
};

}  // namespace ampere

#endif  // SRC_CONTROL_ET_ESTIMATOR_H_
