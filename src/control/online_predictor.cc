#include "src/control/online_predictor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace ampere {

OnlineEtPredictor::OnlineEtPredictor(const OnlinePredictorParams& params)
    : params_(params) {
  AMPERE_CHECK(params.window >= 8);
  AMPERE_CHECK(params.z >= 0.0);
  AMPERE_CHECK(params.variance_alpha > 0.0 && params.variance_alpha <= 1.0);
  AMPERE_CHECK(params.max_margin > params.min_margin);
}

void OnlineEtPredictor::Observe(double normalized_power) {
  ++observations_;
  if (!have_last_) {
    have_last_ = true;
    last_power_ = normalized_power;
    return;
  }
  double increase = normalized_power - last_power_;
  last_power_ = normalized_power;

  // Residual of the previous prediction updates the variance estimate.
  if (fitted_) {
    double predicted = c_ + phi_ * last_increase_;
    double residual = increase - predicted;
    double sq = residual * residual;
    if (have_var_) {
      residual_var_ = (1.0 - params_.variance_alpha) * residual_var_ +
                      params_.variance_alpha * sq;
    } else {
      residual_var_ = sq;
      have_var_ = true;
    }
  }

  increases_.push_back(increase);
  if (increases_.size() > params_.window) {
    increases_.pop_front();
  }
  last_increase_ = increase;
  if (increases_.size() >= 8) {
    RefitAr1();
  }
}

void OnlineEtPredictor::RefitAr1() {
  // Least squares of x_{t+1} on x_t over the window.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  size_t n = increases_.size() - 1;
  for (size_t i = 0; i < n; ++i) {
    double x = increases_[i];
    double y = increases_[i + 1];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom <= 1e-18) {
    // Degenerate (constant increases): fall back to the mean increase.
    phi_ = 0.0;
    c_ = sy / static_cast<double>(n);
  } else {
    phi_ = (static_cast<double>(n) * sxy - sx * sy) / denom;
    // Clamp to a stable AR(1); wild phi estimates on short windows would
    // otherwise destabilize the margin.
    phi_ = std::clamp(phi_, -0.95, 0.95);
    c_ = (sy - phi_ * sx) / static_cast<double>(n);
  }
  fitted_ = true;
}

double OnlineEtPredictor::PredictedIncrease() const {
  if (!fitted_) {
    return 0.0;
  }
  return c_ + phi_ * last_increase_;
}

double OnlineEtPredictor::Margin() const {
  if (!fitted_ || !have_var_) {
    return params_.bootstrap_margin;
  }
  double margin = PredictedIncrease() + params_.z * std::sqrt(residual_var_);
  return std::clamp(margin, params_.min_margin, params_.max_margin);
}

}  // namespace ampere
