// Hierarchical campus budget allocation: pure math, no topology types.
//
// A campus of N data centers shares one utility contract. Every re-plan
// interval the campus allocator re-divides the campus cap across the per-DC
// Ampere controllers from *observed* headroom: a DC whose experiment group
// is pushing against its budget receives a larger share, a DC coasting far
// below keeps a protective floor and lends the rest. This is the
// CloudPowerCap move (see PAPERS.md) lifted to the campus level, with the
// per-DC controllers unchanged in their inner loop — the allocator only
// shifts the PM each controller normalizes against.
//
// Like the rest of src/control, this module is pure functions of plain
// numbers: observations in, budgets out. Determinism is trivial (no RNG, no
// iteration-order dependence) and the core is unit-testable without any
// cluster machinery.

#ifndef SRC_CONTROL_CAMPUS_ALLOCATOR_H_
#define SRC_CONTROL_CAMPUS_ALLOCATOR_H_

#include <span>
#include <vector>

#include "src/common/time.h"

namespace ampere {

enum class CampusAllocPolicy : int {
  // Equal N-way split of the campus cap (clamped to contracts). The
  // baseline a federation must beat.
  kStatic = 0,
  // Demand-proportional re-division from observed power with an E_t-style
  // safety margin and a protective per-DC floor.
  kHeadroom = 1,
};

struct CampusAllocatorConfig {
  CampusAllocPolicy policy = CampusAllocPolicy::kHeadroom;
  // How often the campus re-plans. Much slower than the per-DC control
  // cadence (1/min): budgets should move on workload timescales, not noise.
  SimTime replan_interval = SimTime::Minutes(15);
  // Safety margin on observed demand, in the spirit of the paper's E_t: a
  // DC's desired share is observed * (1 + et_margin) so the next interval's
  // drift is already funded.
  double et_margin = 0.025;
  // No DC's share drops below this fraction of the equal split, however
  // idle it looks — a starved DC could otherwise never demonstrate demand
  // again (its controller would freeze everything).
  double min_share = 0.10;
  // Decision-journal ring capacity for the allocator (one record per DC per
  // re-plan).
  size_t journal_capacity = 1024;
};

// One DC's state as the allocator sees it at a re-plan instant.
struct CampusDcObservation {
  // Latest observed power of the controlled (experiment) domain, watts.
  double observed_watts = 0.0;
  // The budget the DC's controller currently runs against, watts.
  double budget_watts = 0.0;
  // Hard ceiling for this DC (its share of the physical feed), watts.
  double contract_watts = 0.0;
};

// Divides `campus_total_watts` across the observed DCs per `config`.
// Invariants, both policies:
//   * every share is positive, >= min_share * equal_split (unless the
//     contract is lower), and <= contract_watts;
//   * the shares sum to <= campus_total_watts (equality whenever the
//     contracts leave room).
// Pure function: identical inputs yield bit-identical outputs.
std::vector<double> AllocateCampusBudgets(
    double campus_total_watts, std::span<const CampusDcObservation> dcs,
    const CampusAllocatorConfig& config);

}  // namespace ampere

#endif  // SRC_CONTROL_CAMPUS_ALLOCATOR_H_
