#include "src/control/spcp.h"

#include <algorithm>

#include "src/common/check.h"

namespace ampere {

double SolveSpcp(double pt, double et, double pm, double kr) {
  AMPERE_CHECK(kr > 0.0);
  double u = (pt + et - pm) / kr;
  return std::clamp(u, 0.0, 1.0);
}

double ThresholdRatio(double et, double pm) { return pm - et; }

double FreezeRatioFor(double pt, double et, double pm, double kr,
                      double max_freeze_ratio) {
  AMPERE_CHECK(max_freeze_ratio > 0.0 && max_freeze_ratio <= 1.0);
  if (pt <= ThresholdRatio(et, pm)) {
    return 0.0;
  }
  return std::min(SolveSpcp(pt, et, pm, kr), max_freeze_ratio);
}

}  // namespace ampere
