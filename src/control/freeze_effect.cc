#include "src/control/freeze_effect.h"

#include <vector>

#include "src/common/check.h"

namespace ampere {

FreezeEffectModel::FreezeEffectModel(double kr)
    : kr_(kr), fit_r_squared_(1.0) {
  AMPERE_CHECK(kr > 0.0) << "kr must be positive; freezing reduces power";
}

FreezeEffectModel FreezeEffectModel::Fit(std::span<const FuSample> samples,
                                         size_t min_samples) {
  std::vector<double> u;
  std::vector<double> dp;
  for (const FuSample& s : samples) {
    u.push_back(s.u);
    dp.push_back(s.delta_power);
  }
  AMPERE_CHECK(u.size() >= min_samples)
      << "need >= " << min_samples << " calibration samples, got " << u.size();
  LinearFit fit = FitThroughOrigin(u, dp);
  AMPERE_CHECK(fit.slope > 0.0)
      << "calibration found non-positive kr = " << fit.slope
      << "; freezing did not reduce power";
  return FreezeEffectModel(fit.slope, fit.r_squared);
}

}  // namespace ampere
