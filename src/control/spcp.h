// The Simplified Power Control Problem (SPCP) and its closed-form solution.
//
// With the linear effect model f(u) = kr*u, the horizon-1 problem
//   min u  s.t.  P_{t+1} = P_t + E_t - kr*u <= PM,  0 <= u <= 1
// has the closed-form optimum of Eq. (13):
//   u_t = max{ min{ (P_t + E_t - PM) / kr, 1.0 }, 0 }.
// All quantities are normalized to the power budget, so PM = 1.0 in the
// controller's units. Lemma 3.1 shows iterating this solution step by step
// is optimal for the full horizon-N problem (validated in tests against a
// brute-force solver — see pcp.h).

#ifndef SRC_CONTROL_SPCP_H_
#define SRC_CONTROL_SPCP_H_

namespace ampere {

// Eq. (13). `pt` and `et` are normalized to the budget `pm` scale (typically
// pm == 1.0). Requires kr > 0.
double SolveSpcp(double pt, double et, double pm, double kr);

// The control-engagement threshold of Fig. 6: no freezing is needed while
// P_t <= r_threshold = pm - et.
double ThresholdRatio(double et, double pm);

// The controller's full F function (Fig. 6) mapping current normalized power
// to a freezing ratio, including the operational cap on the maximum ratio
// (§4.1.1 limits it to 50 % for scheduler-maintenance reasons).
double FreezeRatioFor(double pt, double et, double pm, double kr,
                      double max_freeze_ratio);

}  // namespace ampere

#endif  // SRC_CONTROL_SPCP_H_
