// The freezing-effect model f(u).
//
// f(u) is the expected one-interval reduction in (normalized) row power when
// a fraction u of the row's servers is frozen, relative to not freezing
// (§3.4). It combines two effects: frozen servers drain as their jobs finish,
// and statistically fewer new jobs land on the row. The paper measures f(u)
// with a controlled experiment and approximates it linearly, f(u) = kr * u,
// which is what makes the closed-form SPCP solution possible (§3.6).

#ifndef SRC_CONTROL_FREEZE_EFFECT_H_
#define SRC_CONTROL_FREEZE_EFFECT_H_

#include <span>

#include "src/stats/regression.h"

namespace ampere {

// One controlled-experiment observation: freezing ratio in effect during an
// interval and the measured power reduction it produced (normalized to the
// power budget).
struct FuSample {
  double u = 0.0;
  double delta_power = 0.0;
};

class FreezeEffectModel {
 public:
  // Direct construction from a known slope (tests, sensitivity studies).
  explicit FreezeEffectModel(double kr);

  // Fits kr by least squares through the origin over calibration samples
  // (the Fig. 5 procedure). Requires at least `min_samples` points with
  // nonzero u.
  static FreezeEffectModel Fit(std::span<const FuSample> samples,
                               size_t min_samples = 10);

  double kr() const { return kr_; }
  // Expected normalized power reduction at freezing ratio u.
  double Effect(double u) const { return kr_ * u; }
  // R^2 of the fit (1.0 for directly constructed models).
  double fit_r_squared() const { return fit_r_squared_; }

 private:
  FreezeEffectModel(double kr, double r_squared)
      : kr_(kr), fit_r_squared_(r_squared) {}
  double kr_;
  double fit_r_squared_;
};

}  // namespace ampere

#endif  // SRC_CONTROL_FREEZE_EFFECT_H_
