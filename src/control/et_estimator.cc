#include "src/control/et_estimator.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/stats/timeseries_ops.h"

namespace ampere {

EtEstimator EtEstimator::Constant(double et) {
  AMPERE_CHECK(et >= 0.0 && et < 1.0);
  std::array<double, 24> per_hour;
  per_hour.fill(et);
  return EtEstimator(per_hour);
}

EtEstimator EtEstimator::FromHistory(std::span<const double> history,
                                     int start_minute_of_day, double quantile,
                                     double fallback) {
  AMPERE_CHECK(quantile > 0.0 && quantile <= 1.0);
  std::array<double, 24> per_hour = HourlyIncreaseQuantile(
      history, start_minute_of_day, quantile, fallback);
  // Negative estimates (an hour where power only ever fell) would disable
  // the safety margin entirely; clamp at zero.
  for (double& e : per_hour) {
    e = std::max(e, 0.0);
  }
  return EtEstimator(per_hour);
}

}  // namespace ampere
