#include "src/control/pcp.h"

#include <cmath>

#include "src/common/check.h"

namespace ampere {
namespace {

// Smallest u in [0, 1] with f(u) >= needed, by bisection (f non-decreasing,
// f(0) == 0). Returns 1.0 if even f(1) < needed (caller marks infeasible).
double MinimalControl(const std::function<double(double)>& f, double needed) {
  if (needed <= 0.0) {
    return 0.0;
  }
  if (f(1.0) < needed) {
    return 1.0;
  }
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (f(mid) >= needed) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace

PcpSolution SolvePcpGreedy(const PcpProblem& problem) {
  AMPERE_CHECK(problem.f != nullptr);
  AMPERE_CHECK(!problem.e.empty());
  PcpSolution solution;
  solution.feasible = true;
  double p = problem.p0;
  for (double e_k : problem.e) {
    double needed = p + e_k - problem.pm;
    double u = MinimalControl(problem.f, needed);
    double p_next = p + e_k - problem.f(u);
    if (p_next > problem.pm + 1e-12) {
      solution.feasible = false;  // Best effort: u == 1 was not enough.
    }
    solution.u.push_back(u);
    solution.cost += u;
    solution.trajectory.push_back(p_next);
    p = p_next;
  }
  return solution;
}

PcpSolution SolvePcpBruteForce(const PcpProblem& problem, int steps,
                               double tolerance) {
  AMPERE_CHECK(problem.f != nullptr);
  AMPERE_CHECK(steps >= 1);
  size_t n = problem.e.size();
  AMPERE_CHECK(n >= 1 && n <= 6) << "brute force is exponential in N";

  PcpSolution best;
  best.feasible = false;
  std::vector<int> grid(n, 0);
  double best_cost = static_cast<double>(n) + 1.0;

  // Odometer enumeration of {0..steps}^n.
  while (true) {
    double cost = 0.0;
    for (int g : grid) {
      cost += static_cast<double>(g) / steps;
    }
    if (cost < best_cost) {
      // Evaluate trajectory feasibility.
      double p = problem.p0;
      bool ok = true;
      std::vector<double> traj;
      std::vector<double> u_vec;
      for (size_t k = 0; k < n; ++k) {
        double u = static_cast<double>(grid[k]) / steps;
        p = p + problem.e[k] - problem.f(u);
        if (p > problem.pm + tolerance) {
          ok = false;
          break;
        }
        traj.push_back(p);
        u_vec.push_back(u);
      }
      if (ok) {
        best.feasible = true;
        best.u = std::move(u_vec);
        best.cost = cost;
        best.trajectory = std::move(traj);
        best_cost = cost;
      }
    }
    // Increment odometer.
    size_t pos = 0;
    while (pos < n) {
      if (grid[pos] < steps) {
        ++grid[pos];
        break;
      }
      grid[pos] = 0;
      ++pos;
    }
    if (pos == n) {
      break;
    }
  }
  return best;
}

}  // namespace ampere
