#include "src/control/campus_allocator.h"

#include <algorithm>

#include "src/common/check.h"

namespace ampere {

// Deterministic water-fill: start every DC at its protective floor, then
// pour the remaining campus watts proportionally to per-DC weights, clamping
// at contracts and re-pouring what the clamps reject. Each pass either
// exhausts the pool or saturates at least one DC, so <= n passes suffice.
// Everything iterates in DC index order — no data-dependent ordering.
static std::vector<double> WaterFill(double total,
                                     std::span<const double> weights,
                                     std::span<const double> floors,
                                     std::span<const double> caps) {
  const size_t n = weights.size();
  std::vector<double> shares(floors.begin(), floors.end());
  double pool = total;
  for (double f : floors) {
    pool -= f;
  }
  for (size_t pass = 0; pass <= n; ++pass) {
    if (pool <= 1e-9) {
      break;
    }
    double active_weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (shares[i] < caps[i]) {
        active_weight += weights[i];
      }
    }
    if (active_weight <= 0.0) {
      break;
    }
    double granted = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (shares[i] >= caps[i]) {
        continue;
      }
      const double give = pool * (weights[i] / active_weight);
      const double next = std::min(shares[i] + give, caps[i]);
      granted += next - shares[i];
      shares[i] = next;
    }
    pool -= granted;
    if (granted <= 1e-9) {
      break;
    }
  }
  return shares;
}

std::vector<double> AllocateCampusBudgets(
    double campus_total_watts, std::span<const CampusDcObservation> dcs,
    const CampusAllocatorConfig& config) {
  const size_t n = dcs.size();
  AMPERE_CHECK(n >= 1) << "campus allocation over zero data centers";
  AMPERE_CHECK(campus_total_watts > 0.0);
  AMPERE_CHECK(config.min_share >= 0.0 && config.min_share <= 1.0);
  AMPERE_CHECK(config.et_margin >= 0.0);

  const double equal = campus_total_watts / static_cast<double>(n);
  std::vector<double> floors(n), caps(n), weights(n);
  for (size_t i = 0; i < n; ++i) {
    AMPERE_CHECK(dcs[i].contract_watts > 0.0)
        << "dc " << i << " has no resolved contract";
    caps[i] = dcs[i].contract_watts;
    floors[i] = std::min(config.min_share * equal, caps[i]);
    switch (config.policy) {
      case CampusAllocPolicy::kStatic:
        // Equal weights: with uniform contracts this reduces to exactly the
        // equal split (floor + pool/n == total/n).
        weights[i] = 1.0;
        break;
      case CampusAllocPolicy::kHeadroom:
        // Fund observed demand plus the E_t-style drift margin; never weight
        // below the floor so an idle DC keeps a path back to demand.
        weights[i] = std::max(
            dcs[i].observed_watts * (1.0 + config.et_margin), floors[i]);
        break;
    }
  }
  return WaterFill(campus_total_watts, weights, floors, caps);
}

}  // namespace ampere
