// Time-varying power budget P(t).
//
// The paper controls against a fixed provisioned cap P_M; real contracts
// move — utility curtailment requests (step), demand-response events with
// recovery windows (ramp), and carbon/price-shaped daily curves all retarget
// the cap while the workload keeps arriving. A BudgetSchedule is a pure
// function of measured time returning a scale factor on the base budget;
// the experiment layers push base * ScaleAt(t) through
// AmpereController::SetDomainBudget (and the campus allocator's total)
// every minute, so the RHC loop rides a moving target.
//
// Semantics:
//   * Phases are half-open intervals [start, end) on the MEASURED clock
//     (t = 0 is the end of warmup). Outside every phase the scale is 1.
//   * Overlapping phases multiply — a curtailment on top of a carbon curve
//     composes the way two independent constraints would.
//   * A step holds one scale across its window; a ramp interpolates
//     linearly from `from` at start to `to` at end (reaching `to` only in
//     the limit; a following step usually pins it).
//   * The optional diurnal curve multiplies everything: scale dips to
//     (1 - depth) at peak_hour and returns to 1 at the anti-peak,
//     cosine-shaped — the shape of a carbon-intensity or price signal.
//   * Scales must stay positive; the default-constructed schedule is the
//     constant 1 and IsConstant() lets callers skip scheduling work for it
//     (keeping fixed-budget runs bit-identical to the pre-P(t) tree).

#ifndef SRC_CONTROL_BUDGET_SCHEDULE_H_
#define SRC_CONTROL_BUDGET_SCHEDULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"

namespace ampere {

struct BudgetPhase {
  SimTime start;
  SimTime end;
  double scale_begin = 1.0;
  double scale_end = 1.0;  // == scale_begin for a step.
};

class BudgetSchedule {
 public:
  BudgetSchedule() = default;

  // Curtail (or boost) to `scale` on [start, end).
  void AddStep(SimTime start, SimTime end, double scale);
  // Linear ramp from `from` at start to `to` at end over [start, end).
  void AddRamp(SimTime start, SimTime end, double from, double to);
  // 24 h cosine curve: (1 - depth) at peak_hour, 1 at the anti-peak.
  // depth in [0, 1).
  void SetDiurnal(double depth, double peak_hour);

  // Scale on the base budget at measured time `t`. Pure and cheap (a pass
  // over the phase list); always > 0.
  double ScaleAt(SimTime t) const;

  // The minimum of ScaleAt over [0, horizon), sampled per minute — what a
  // bench reports as the deepest curtailment a run rode through.
  double MinScaleOver(SimTime horizon) const;

  bool IsConstant() const {
    return phases_.empty() && diurnal_depth_ == 0.0;
  }

  const std::vector<BudgetPhase>& phases() const { return phases_; }
  double diurnal_depth() const { return diurnal_depth_; }
  double diurnal_peak_hour() const { return diurnal_peak_hour_; }

 private:
  std::vector<BudgetPhase> phases_;
  double diurnal_depth_ = 0.0;
  double diurnal_peak_hour_ = 14.0;
};

// Parses the harness --budget-schedule grammar: ';'-separated segments of
//   step:<start_min>:<end_min>:<scale>
//   ramp:<start_min>:<end_min>:<from>:<to>
//   diurnal:<depth>:<peak_hour>
// e.g. "step:60:100:0.85;ramp:100:120:0.85:1.0". Returns false and fills
// `error` on malformed input (never throws — flag values are external
// data); on success appends onto `out`.
bool ParseBudgetSchedule(std::string_view spec, BudgetSchedule* out,
                         std::string* error);

}  // namespace ampere

#endif  // SRC_CONTROL_BUDGET_SCHEDULE_H_
