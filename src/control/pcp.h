// The general Power Control Problem (PCP) over a receding horizon.
//
//   min  C(U) = sum_k u_k
//   s.t. P_{k+1} = P_k + E_k - f(u_k) <= PM,   0 <= u_k <= 1,
//        k = t .. t+N-1,
//
// for an arbitrary monotone effect function f (§3.6). Two solvers:
//
//  * SolvePcpGreedy — per-step minimal control: at each step pick the
//    smallest u_k that satisfies the step's constraint (bisection on f).
//    For linear f this reduces to iterated SPCP and is optimal (Lemma 3.1).
//
//  * SolvePcpBruteForce — exhaustive grid search over u-vectors, exponential
//    in N; exists to validate Lemma 3.1 and the greedy solver on small
//    instances (property tests), never used in the control loop.

#ifndef SRC_CONTROL_PCP_H_
#define SRC_CONTROL_PCP_H_

#include <functional>
#include <span>
#include <vector>

namespace ampere {

struct PcpProblem {
  double p0 = 0.0;              // Current normalized power P_t.
  std::vector<double> e;        // Predicted increases E_t .. E_{t+N-1}.
  double pm = 1.0;              // Normalized budget.
  // Effect function; must be non-decreasing on [0, 1] with f(0) == 0.
  std::function<double(double)> f;
};

struct PcpSolution {
  bool feasible = false;
  std::vector<double> u;        // Control sequence (empty if infeasible).
  double cost = 0.0;            // sum(u).
  std::vector<double> trajectory;  // P_{t+1} .. P_{t+N} under u.
};

PcpSolution SolvePcpGreedy(const PcpProblem& problem);

// Exhaustive search over the grid {0, 1/steps, 2/steps, ..., 1}^N. Intended
// for N <= 4 and steps <= ~50. A grid point is feasible if the trajectory
// stays within pm + tolerance (grid quantization slack).
PcpSolution SolvePcpBruteForce(const PcpProblem& problem, int steps,
                               double tolerance = 1e-9);

}  // namespace ampere

#endif  // SRC_CONTROL_PCP_H_
