#include "src/control/budget_schedule.h"

#include <cmath>
#include <cstdlib>
#include <numbers>
#include <string>

#include "src/common/check.h"

namespace ampere {

void BudgetSchedule::AddStep(SimTime start, SimTime end, double scale) {
  AMPERE_CHECK(end > start) << "budget step window is empty";
  AMPERE_CHECK(scale > 0.0) << "budget scale must stay positive";
  phases_.push_back(BudgetPhase{start, end, scale, scale});
}

void BudgetSchedule::AddRamp(SimTime start, SimTime end, double from,
                             double to) {
  AMPERE_CHECK(end > start) << "budget ramp window is empty";
  AMPERE_CHECK(from > 0.0 && to > 0.0) << "budget scale must stay positive";
  phases_.push_back(BudgetPhase{start, end, from, to});
}

void BudgetSchedule::SetDiurnal(double depth, double peak_hour) {
  AMPERE_CHECK(depth >= 0.0 && depth < 1.0)
      << "diurnal depth must be in [0, 1)";
  diurnal_depth_ = depth;
  diurnal_peak_hour_ = peak_hour;
}

double BudgetSchedule::ScaleAt(SimTime t) const {
  double scale = 1.0;
  for (const BudgetPhase& phase : phases_) {
    if (t < phase.start || t >= phase.end) {
      continue;
    }
    if (phase.scale_begin == phase.scale_end) {
      scale *= phase.scale_begin;
    } else {
      const double f = static_cast<double>((t - phase.start).micros()) /
                       static_cast<double>((phase.end - phase.start).micros());
      scale *= phase.scale_begin + (phase.scale_end - phase.scale_begin) * f;
    }
  }
  if (diurnal_depth_ > 0.0) {
    const double hours = std::fmod(t.hours(), 24.0);
    // cos(0) = 1 at the peak hour -> the deepest dip (1 - depth).
    const double phase = 2.0 * std::numbers::pi *
                         (hours - diurnal_peak_hour_) / 24.0;
    scale *= 1.0 - diurnal_depth_ * 0.5 * (1.0 + std::cos(phase));
  }
  return scale;
}

double BudgetSchedule::MinScaleOver(SimTime horizon) const {
  double lowest = 1.0;
  for (SimTime t; t < horizon; t += SimTime::Minutes(1)) {
    const double s = ScaleAt(t);
    if (s < lowest) {
      lowest = s;
    }
  }
  return lowest;
}

namespace {

bool ParseFields(std::string_view body, std::vector<double>* out) {
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t colon = body.find(':', pos);
    const std::string field(
        body.substr(pos, colon == std::string_view::npos ? colon
                                                         : colon - pos));
    if (field.empty()) {
      return false;
    }
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0' || !std::isfinite(value)) {
      return false;
    }
    out->push_back(value);
    if (colon == std::string_view::npos) {
      return true;
    }
    pos = colon + 1;
  }
  return false;
}

}  // namespace

bool ParseBudgetSchedule(std::string_view spec, BudgetSchedule* out,
                         std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string_view::npos) {
      semi = spec.size();
    }
    const std::string_view segment = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (segment.empty()) {
      continue;
    }
    const size_t colon = segment.find(':');
    if (colon == std::string_view::npos) {
      return fail("segment '" + std::string(segment) +
                  "' has no arguments (want kind:args)");
    }
    const std::string_view kind = segment.substr(0, colon);
    std::vector<double> fields;
    if (!ParseFields(segment.substr(colon + 1), &fields)) {
      return fail("segment '" + std::string(segment) +
                  "' has a non-numeric field");
    }
    if (kind == "step") {
      if (fields.size() != 3) {
        return fail("step wants start_min:end_min:scale");
      }
      if (fields[1] <= fields[0] || fields[0] < 0.0 || fields[2] <= 0.0) {
        return fail("step '" + std::string(segment) + "' out of range");
      }
      out->AddStep(SimTime::Minutes(fields[0]), SimTime::Minutes(fields[1]),
                   fields[2]);
    } else if (kind == "ramp") {
      if (fields.size() != 4) {
        return fail("ramp wants start_min:end_min:from:to");
      }
      if (fields[1] <= fields[0] || fields[0] < 0.0 || fields[2] <= 0.0 ||
          fields[3] <= 0.0) {
        return fail("ramp '" + std::string(segment) + "' out of range");
      }
      out->AddRamp(SimTime::Minutes(fields[0]), SimTime::Minutes(fields[1]),
                   fields[2], fields[3]);
    } else if (kind == "diurnal") {
      if (fields.size() != 2) {
        return fail("diurnal wants depth:peak_hour");
      }
      if (fields[0] < 0.0 || fields[0] >= 1.0) {
        return fail("diurnal depth must be in [0, 1)");
      }
      out->SetDiurnal(fields[0], fields[1]);
    } else {
      return fail("unknown segment kind '" + std::string(kind) +
                  "' (want step|ramp|diurnal)");
    }
  }
  return true;
}

}  // namespace ampere
