#include "src/power/power_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace ampere {

ServerPowerModel::ServerPowerModel(const PowerModelParams& params)
    : params_(params),
      idle_watts_(params.rated_watts * params.idle_fraction),
      dynamic_range_watts_(params.rated_watts * (1.0 - params.idle_fraction)) {
  AMPERE_CHECK(params.rated_watts > 0.0);
  AMPERE_CHECK(params.idle_fraction >= 0.0 && params.idle_fraction < 1.0);
  AMPERE_CHECK(params.alpha > 0.0);
}

double ServerPowerModel::DynamicPowerAt(double utilization,
                                        double freq_multiplier) const {
  double u = std::clamp(utilization, 0.0, 1.0);
  double f = std::clamp(freq_multiplier, 0.0, 1.0);
  double shaped = params_.alpha == 1.0 ? u : std::pow(u, params_.alpha);
  return dynamic_range_watts_ * shaped * f;
}

double ServerPowerModel::PowerAt(double utilization,
                                 double freq_multiplier) const {
  return idle_watts_ + DynamicPowerAt(utilization, freq_multiplier);
}

void ServerPowerModel::PowerSpanUniformFreq(const double* utilization,
                                            double freq_multiplier,
                                            double* power,
                                            double* dynamic_full,
                                            size_t n) const {
  const double* __restrict u_in = utilization;
  double* __restrict power_out = power;
  double* __restrict dynamic_out = dynamic_full;
  const double idle = idle_watts_;
  const double range = dynamic_range_watts_;
  // Shared-frequency clamp hoisted once per span (the scalar path clamps
  // per call; same value, same bits).
  const double f = std::clamp(freq_multiplier, 0.0, 1.0);
  if (params_.alpha == 1.0) {
    // Linear fast path: pure mul/add over the span, no libm.
    // dynamic_full is (range * u) * 1.0 == range * u bit-for-bit, and
    // power is idle + (range * u) * f — the scalar operand order.
    for (size_t i = 0; i < n; ++i) {
      const double u = std::clamp(u_in[i], 0.0, 1.0);
      const double dyn = range * u;
      dynamic_out[i] = dyn;
      power_out[i] = idle + dyn * f;
    }
    return;
  }
  // Curved path: the pow stays a scalar libm call per element for
  // bit-identity with DynamicPowerAt; everything around it is still a flat
  // span loop.
  const double alpha = params_.alpha;
  for (size_t i = 0; i < n; ++i) {
    const double u = std::clamp(u_in[i], 0.0, 1.0);
    const double shaped = std::pow(u, alpha);
    const double dyn = range * shaped;
    dynamic_out[i] = dyn;
    power_out[i] = idle + dyn * f;
  }
}

}  // namespace ampere
