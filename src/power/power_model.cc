#include "src/power/power_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace ampere {

ServerPowerModel::ServerPowerModel(const PowerModelParams& params)
    : params_(params),
      idle_watts_(params.rated_watts * params.idle_fraction),
      dynamic_range_watts_(params.rated_watts * (1.0 - params.idle_fraction)) {
  AMPERE_CHECK(params.rated_watts > 0.0);
  AMPERE_CHECK(params.idle_fraction >= 0.0 && params.idle_fraction < 1.0);
  AMPERE_CHECK(params.alpha > 0.0);
}

double ServerPowerModel::DynamicPowerAt(double utilization,
                                        double freq_multiplier) const {
  double u = std::clamp(utilization, 0.0, 1.0);
  double f = std::clamp(freq_multiplier, 0.0, 1.0);
  double shaped = params_.alpha == 1.0 ? u : std::pow(u, params_.alpha);
  return dynamic_range_watts_ * shaped * f;
}

double ServerPowerModel::PowerAt(double utilization,
                                 double freq_multiplier) const {
  return idle_watts_ + DynamicPowerAt(utilization, freq_multiplier);
}

}  // namespace ampere
