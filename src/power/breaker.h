// PDU circuit-breaker model.
//
// The row-level power budget is physically enforced by breakers in each PDU
// (§2.1). A breaker does not trip the instant the budget is crossed — it has
// a thermal tolerance — but sustained overload cuts power to hundreds of
// servers at once, the catastrophic outcome all of this machinery exists to
// avoid. We model a trip as continuous overload above a tolerance multiplier
// for longer than a delay.

#ifndef SRC_POWER_BREAKER_H_
#define SRC_POWER_BREAKER_H_

#include "src/common/time.h"

namespace ampere {

struct BreakerParams {
  // Overload tolerance: draws below tolerance * budget never trip.
  double tolerance = 1.10;
  // Continuous time above tolerance before the breaker opens.
  SimTime trip_delay = SimTime::Seconds(30);
};

class CircuitBreaker {
 public:
  CircuitBreaker() : CircuitBreaker(BreakerParams{}) {}
  explicit CircuitBreaker(const BreakerParams& params) : params_(params) {}

  // Feeds one observation of instantaneous draw. Observations must be
  // non-decreasing in time. Returns true if this observation tripped the
  // breaker.
  bool Observe(SimTime now, double power_watts, double budget_watts);

  bool tripped() const { return tripped_; }
  SimTime tripped_at() const { return tripped_at_; }

  void Reset();

 private:
  BreakerParams params_;
  bool overloaded_ = false;
  SimTime overload_since_;
  bool tripped_ = false;
  SimTime tripped_at_;
};

}  // namespace ampere

#endif  // SRC_POWER_BREAKER_H_
