#include "src/power/breaker.h"

namespace ampere {

bool CircuitBreaker::Observe(SimTime now, double power_watts,
                             double budget_watts) {
  if (tripped_) {
    return false;
  }
  bool over = power_watts > params_.tolerance * budget_watts;
  if (!over) {
    overloaded_ = false;
    return false;
  }
  if (!overloaded_) {
    overloaded_ = true;
    overload_since_ = now;
    return false;
  }
  if (now - overload_since_ >= params_.trip_delay) {
    tripped_ = true;
    tripped_at_ = now;
    return true;
  }
  return false;
}

void CircuitBreaker::Reset() {
  overloaded_ = false;
  tripped_ = false;
  overload_since_ = SimTime();
  tripped_at_ = SimTime();
}

}  // namespace ampere
