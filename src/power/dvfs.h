// DVFS frequency ladder and RAPL-style row power capping.
//
// The paper keeps hardware power capping enabled as a safety net (§2.1,
// §3.5): when a row exceeds its PDU budget, RAPL reacts within < 1 ms and
// slows servers via DVFS, protecting the circuit breaker but disturbing job
// performance (Fig. 11). We model the ladder of available frequency
// multipliers and a row-level capper that picks a uniform throttle for the
// row's servers so total draw falls back under budget.

#ifndef SRC_POWER_DVFS_H_
#define SRC_POWER_DVFS_H_

#include <vector>

namespace ampere {

// The discrete frequency multipliers a server supports, e.g. 1.2 GHz .. 2.4
// GHz expressed as fractions of nominal. Sorted ascending; the last entry
// must be 1.0 (uncapped).
class DvfsLadder {
 public:
  // Default ladder: 50 % .. 100 % in 10-point steps.
  DvfsLadder();
  explicit DvfsLadder(std::vector<double> multipliers);

  // Largest available multiplier <= `f` (rounds *down* so a cap is honored);
  // returns the minimum step if `f` is below all steps.
  double ClampDown(double f) const;

  double min_multiplier() const { return steps_.front(); }
  const std::vector<double>& steps() const { return steps_; }

 private:
  std::vector<double> steps_;
};

// Decision produced by the row capper for one enforcement pass.
struct CapDecision {
  bool engaged = false;      // True if any throttling is required.
  double throttle = 1.0;     // Uniform frequency multiplier for the row.
};

// Row-level RAPL model. Given the row's aggregate idle power and aggregate
// dynamic (above-idle, at-current-frequency-1.0) power, picks the largest
// ladder step t such that idle_sum + dynamic_sum * t <= budget. If even the
// minimum step overshoots (idle floor too high), returns the minimum step —
// hardware cannot cap below idle.
CapDecision ComputeRowCap(double idle_sum_watts, double dynamic_sum_watts,
                          double budget_watts, const DvfsLadder& ladder);

}  // namespace ampere

#endif  // SRC_POWER_DVFS_H_
