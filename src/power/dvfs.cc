#include "src/power/dvfs.h"

#include <algorithm>

#include "src/common/check.h"

namespace ampere {

DvfsLadder::DvfsLadder() : DvfsLadder({0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {}

DvfsLadder::DvfsLadder(std::vector<double> multipliers)
    : steps_(std::move(multipliers)) {
  AMPERE_CHECK(!steps_.empty());
  AMPERE_CHECK(std::is_sorted(steps_.begin(), steps_.end()));
  AMPERE_CHECK(steps_.front() > 0.0);
  AMPERE_CHECK(steps_.back() == 1.0) << "ladder must include the uncapped step";
}

double DvfsLadder::ClampDown(double f) const {
  // Largest step <= f; min step if f is below the whole ladder.
  auto it = std::upper_bound(steps_.begin(), steps_.end(), f);
  if (it == steps_.begin()) {
    return steps_.front();
  }
  return *(it - 1);
}

CapDecision ComputeRowCap(double idle_sum_watts, double dynamic_sum_watts,
                          double budget_watts, const DvfsLadder& ladder) {
  AMPERE_CHECK(idle_sum_watts >= 0.0);
  AMPERE_CHECK(dynamic_sum_watts >= 0.0);
  CapDecision decision;
  if (idle_sum_watts + dynamic_sum_watts <= budget_watts) {
    return decision;  // Under budget, no throttle.
  }
  decision.engaged = true;
  if (dynamic_sum_watts <= 0.0 || budget_watts <= idle_sum_watts) {
    // Idle floor alone violates the budget; cap as hard as hardware allows.
    decision.throttle = ladder.min_multiplier();
    return decision;
  }
  double needed = (budget_watts - idle_sum_watts) / dynamic_sum_watts;
  decision.throttle = ladder.ClampDown(needed);
  return decision;
}

}  // namespace ampere
