// Server power model.
//
// Modern servers draw a large idle floor plus a utilization-dependent dynamic
// component (§1: "actual power draw from a server depends on its
// utilization"). Fig. 4 of the paper shows a busy server at ~0.83 of rated
// power draining to ~0.69 (idle) as its jobs finish, so the default idle
// fraction is 0.65. DVFS throttling scales only the dynamic component (the
// frequency multiplier also scales job progress — see the cluster module).

#ifndef SRC_POWER_POWER_MODEL_H_
#define SRC_POWER_POWER_MODEL_H_

#include <cstddef>

namespace ampere {

struct PowerModelParams {
  // Measured maximum draw ("rated power" per the paper's definition, not the
  // higher name-plate power). Typical 2015-era server: ~250 W (§2.1).
  double rated_watts = 250.0;
  // Idle draw as a fraction of rated.
  double idle_fraction = 0.65;
  // Curvature of the utilization -> dynamic power map; 1.0 = linear.
  double alpha = 1.0;
};

class ServerPowerModel {
 public:
  explicit ServerPowerModel(const PowerModelParams& params);

  // Instantaneous draw in watts for CPU `utilization` in [0, 1] running at
  // `freq_multiplier` in (0, 1]. Throttling scales the dynamic component.
  double PowerAt(double utilization, double freq_multiplier) const;

  double idle_watts() const { return idle_watts_; }
  double rated_watts() const { return params_.rated_watts; }
  // Dynamic (above-idle) draw at the given operating point.
  double DynamicPowerAt(double utilization, double freq_multiplier) const;

  // Batched evaluation over a contiguous utilization span at one shared
  // frequency multiplier — the shape of a rack under uniform row capping
  // (racks are homogeneous, so one model serves the whole span and the
  // clamp of `freq_multiplier` hoists out of the loop). Writes, for each i:
  //   power[i]        = PowerAt(utilization[i], freq_multiplier)
  //   dynamic_full[i] = DynamicPowerAt(utilization[i], 1.0)
  // bit-identical to the scalar calls (same expressions, same operand
  // order); the linear-alpha fast path is decided once per span instead of
  // once per server, leaving flat restrict-qualified loops the compiler can
  // vectorize. Allocation-free.
  void PowerSpanUniformFreq(const double* utilization, double freq_multiplier,
                            double* power, double* dynamic_full,
                            size_t n) const;

 private:
  PowerModelParams params_;
  double idle_watts_;
  double dynamic_range_watts_;
};

}  // namespace ampere

#endif  // SRC_POWER_POWER_MODEL_H_
