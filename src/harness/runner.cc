#include "src/harness/runner.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/common/log_capture.h"
#include "src/common/thread_pool.h"
#include "src/faults/presets.h"
#include "src/obs/metrics.h"

namespace ampere {
namespace harness {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Runs the body, converting exceptions into a failed row instead of
// propagating across the pool.
void RunBody(const Scenario& scenario, RunContext& context, ResultRow* row) {
  try {
    AMPERE_CHECK(scenario.body != nullptr)
        << "scenario '" << scenario.name << "' has no body";
    scenario.body(context);
  } catch (const std::exception& e) {
    row->ok = false;
    row->error = e.what();
  } catch (...) {
    row->ok = false;
    row->error = "unknown exception";
  }
}

}  // namespace

int ResolveJobs(int requested_jobs) {
  if (requested_jobs > 0) {
    return requested_jobs;
  }
  if (const char* env = std::getenv("AMPERE_JOBS"); env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) {
      return parsed;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ScenarioRunner::ScenarioRunner(const RunnerOptions& options)
    : options_(options) {}

ResultTable ScenarioRunner::Run(std::span<const Scenario> scenarios) const {
  const int jobs = ResolveJobs(options_.jobs);
  const bool capture_logs = options_.capture_logs;

  const bool capture_obs = options_.capture_obs;

  ResultTable table;
  table.Resize(scenarios.size());
  table.set_jobs(jobs);

  auto total_start = std::chrono::steady_clock::now();
  {
    ThreadPool pool(jobs);
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const Scenario* scenario = &scenarios[i];
      ResultRow* row = &table.row(i);  // Each task owns exactly its slot.
      pool.Submit([scenario, row, i, capture_logs, capture_obs] {
        row->index = i;
        row->scenario = scenario->name;
        row->seed = scenario->seed;
        RunContext context(i, scenario->seed);
        // One private registry per run (scenario bodies are single-threaded,
        // so every instrumented write the body triggers stays on this
        // worker thread and lands here — isolated from concurrent runs).
        obs::MetricsRegistry run_registry;
        std::optional<obs::ScopedMetricsRegistry> obs_scope;
        if (capture_obs) obs_scope.emplace(&run_registry);
        auto run_start = std::chrono::steady_clock::now();
        if (capture_logs) {
          ScopedLogCapture capture;
          RunBody(*scenario, context, row);
          row->log = capture.TakeOutput();
        } else {
          RunBody(*scenario, context, row);
        }
        row->wall_ms = ElapsedMs(run_start);
        if (capture_obs) {
          obs::MetricsSnapshot snapshot = run_registry.Snapshot();
          if (!snapshot.empty()) row->obs_json = snapshot.ToJson();
          obs_scope.reset();
        }
        row->metrics = std::move(context.metrics());
        row->notes = std::move(context.notes());
        row->artifacts = std::move(context.artifacts());
      });
    }
    pool.Wait();
  }
  table.set_total_wall_ms(ElapsedMs(total_start));
  return table;
}

ResultTable RunScenarios(std::span<const Scenario> scenarios,
                         const RunnerOptions& options) {
  return ScenarioRunner(options).Run(scenarios);
}

HarnessArgs ParseHarnessArgs(int argc, char** argv) {
  HarnessArgs args;
  // Environment first, flags second: --log-level below overrides this,
  // matching the --jobs / AMPERE_JOBS precedence in ResolveJobs.
  ApplyLogLevelFromEnv();
  auto value_of = [&](std::string_view arg, std::string_view flag,
                      int& i) -> const char* {
    // --flag=value
    if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
        arg[flag.size()] == '=') {
      return argv[i] + flag.size() + 1;
    }
    // --flag value
    if (arg == flag && i + 1 < argc) {
      return argv[++i];
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (const char* v = value_of(arg, "--jobs", i)) {
      args.runner.jobs = std::atoi(v);
      AMPERE_CHECK(args.runner.jobs > 0) << "--jobs needs a positive integer";
    } else if (const char* csv = value_of(arg, "--csv", i)) {
      args.csv_path = csv;
    } else if (const char* json = value_of(arg, "--json", i)) {
      args.json_path = json;
    } else if (const char* level = value_of(arg, "--log-level", i)) {
      LogLevel parsed;
      AMPERE_CHECK(ParseLogLevel(level, &parsed))
          << "--log-level wants debug|info|warning|error|off, got '" << level
          << "'";
      SetLogLevel(parsed);
    } else if (const char* preset = value_of(arg, "--faults", i)) {
      auto config = faults::PresetByName(preset);
      if (!config.has_value()) {
        std::string known;
        for (const std::string& name : faults::PresetNames()) {
          if (!known.empty()) known += "|";
          known += name;
        }
        AMPERE_CHECK(false) << "--faults wants " << known << ", got '"
                            << preset << "'";
      }
      args.faults_preset = preset;
      args.faults = *config;
    } else if (const char* trace = value_of(arg, "--trace", i)) {
      args.trace_path = trace;
    } else if (const char* dir = value_of(arg, "--postmortem-dir", i)) {
      args.postmortem_dir = dir;
    } else if (const char* replay = value_of(arg, "--replay", i)) {
      args.replay_trace_path = replay;
    } else if (const char* record = value_of(arg, "--record", i)) {
      args.record_trace_path = record;
    } else if (const char* sched = value_of(arg, "--budget-schedule", i)) {
      args.budget_schedule_spec = sched;
    } else if (const char* store = value_of(arg, "--store-dir", i)) {
      args.store_dir = store;
    } else if (const char* budget = value_of(arg, "--hot-budget", i)) {
      const int parsed = std::atoi(budget);
      AMPERE_CHECK(parsed >= 2)
          << "--hot-budget wants a sample count >= 2, got '" << budget << "'";
      args.hot_budget_samples = static_cast<size_t>(parsed);
    } else if (arg == "--obs") {
      args.runner.capture_obs = true;
    } else if (arg == "--no-notes") {
      args.print_notes = false;
    } else {
      args.positional.emplace_back(arg);
    }
  }
  return args;
}

std::string ArtifactPathForRun(const std::string& base, size_t run_index,
                               size_t total_runs) {
  if (total_runs <= 1) {
    return base;
  }
  const std::string suffix = "_run" + std::to_string(run_index);
  const size_t slash = base.find_last_of('/');
  const size_t dot = base.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + suffix;  // No extension (or a dot only in a directory).
  }
  std::string out;
  out.reserve(base.size() + suffix.size());
  out.append(base, 0, dot);
  out += suffix;
  out.append(base, dot, std::string::npos);
  return out;
}

}  // namespace harness
}  // namespace ampere
