// Built-in scenario sets: smoke-sized grids over the core entry points.
//
// These exist so the registry has real, fast content out of the box — the
// determinism tests and the `scenario_sweep` example run them by name. Both
// sets are deliberately small (tens of simulated minutes on tens of
// servers) so a full grid finishes in seconds even single-threaded; the
// paper-scale grids live in bench/ where they belong.

#include "src/harness/scenario.h"

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/fleet.h"

namespace ampere {
namespace harness {
namespace {

ExperimentConfig SmokeExperimentConfig(uint64_t seed, double target_power,
                                       double ro) {
  ExperimentConfig config;
  config.seed = seed;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 3;
  config.topology.servers_per_rack = 14;  // 42 servers.
  config.over_provision_ratio = ro;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, target_power, ro);
  config.warmup = SimTime::Minutes(20);
  config.duration = SimTime::Hours(2);
  config.controller.et = EtEstimator::Constant(0.02);
  return config;
}

void ReportExperiment(const ExperimentResult& result, RunContext& context) {
  context.Metric("p_mean", result.experiment.p_mean);
  context.Metric("p_max", result.experiment.p_max);
  context.Metric("u_mean", result.experiment.u_mean);
  context.Metric("violations", result.experiment.violations);
  context.Metric("ctl_violations", result.control.violations);
  context.Metric("r_thru", result.throughput_ratio);
  context.Metric("g_tpw", result.gain_tpw);
  context.Metric("jobs_completed",
                 static_cast<double>(result.jobs_completed));
}

std::vector<Scenario> ExperimentSmokeGrid() {
  struct Spec {
    double ro;
    double target_power;
  };
  const std::vector<Spec> specs = {
      {0.25, 0.92}, {0.25, 0.99}, {0.17, 0.90}, {0.17, 0.97}};
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < specs.size(); ++i) {
    const Spec spec = specs[i];
    uint64_t seed = 9000 + i;
    char name[64];
    std::snprintf(name, sizeof(name), "ro=%.2f target=%.2f", spec.ro,
                  spec.target_power);
    scenarios.push_back(Scenario{
        name, seed, [spec, seed](RunContext& context) {
          ExperimentConfig config =
              SmokeExperimentConfig(seed, spec.target_power, spec.ro);
          ExperimentResult result = RunExperimentToResult(config);
          ReportExperiment(result, context);
        }});
  }
  return scenarios;
}

std::vector<Scenario> FleetSmokeGrid() {
  const std::vector<double> loads = {0.75, 0.85};
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < loads.size(); ++i) {
    const double load = loads[i];
    uint64_t seed = 7000 + i;
    char name[64];
    std::snprintf(name, sizeof(name), "fleet load=%.2f", load);
    scenarios.push_back(Scenario{
        name, seed, [load, seed](RunContext& context) {
          FleetConfig config;
          config.seed = seed;
          config.topology.num_rows = 2;
          config.topology.racks_per_row = 2;
          config.topology.servers_per_rack = 10;
          RowProduct product;
          product.target_power = load;
          config.products = {product};
          FleetResult result =
              RunFleetToResult(config, SimTime::Hours(3));
          for (size_t r = 0; r < result.rows.size(); ++r) {
            std::string prefix = "row" + std::to_string(r) + "_";
            context.Metric(prefix + "p_mean", result.rows[r].p_mean);
            context.Metric(prefix + "p_max", result.rows[r].p_max);
          }
          context.Metric("dc_mean_watts", result.dc_mean_watts);
          context.Metric("jobs_completed",
                         static_cast<double>(result.jobs_completed));
        }});
  }
  return scenarios;
}

}  // namespace

void RegisterBuiltinScenarios() {
  static bool registered = false;
  if (registered) {
    return;
  }
  registered = true;
  ScenarioRegistry::Global().Register(
      "experiment-smoke",
      "4-point rO x load grid of short controlled experiments (42 servers, "
      "2 h + 20 min warmup)",
      ExperimentSmokeGrid);
  ScenarioRegistry::Global().Register(
      "fleet-smoke",
      "2-point load grid of short 2-row fleet runs (40 servers, 3 h)",
      FleetSmokeGrid);
}

}  // namespace harness
}  // namespace ampere
