// Typed grid execution on top of the scenario runner.
//
// Most benches sweep a typed parameter list (RunSpec, double, enum, ...)
// and need the typed per-run result back for shape checks, alongside the
// structured metric rows for emission. RunGrid bridges the two: it wraps
// each item in a Scenario whose body calls the user function and stores the
// typed result into a presized slot (one writer per slot — no locking),
// then returns both the assembled ResultTable and the typed results in
// submission order.

#ifndef SRC_HARNESS_GRID_H_
#define SRC_HARNESS_GRID_H_

#include <cstdint>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/harness/runner.h"
#include "src/harness/scenario.h"

namespace ampere {
namespace harness {

// Scenario metadata derived from a grid item.
struct GridMeta {
  std::string name;
  uint64_t seed = 0;
};

template <typename R>
struct GridResult {
  ResultTable table;        // Submission-order rows (metrics, notes, timing).
  std::vector<R> values;    // Typed results, submission order.
};

// `meta(item, index)` -> GridMeta; `fn(item, RunContext&)` -> R.
// R must be default-constructible and move-assignable.
template <typename Item, typename MetaFn, typename Fn>
auto RunGrid(std::span<const Item> items, MetaFn&& meta, Fn&& fn,
             const RunnerOptions& options = {}) {
  using R = std::invoke_result_t<Fn&, const Item&, RunContext&>;
  static_assert(!std::is_void_v<R>,
                "grid functions return their typed result");
  static_assert(std::is_default_constructible_v<R>,
                "grid results are slot-assigned; wrap non-default-"
                "constructible types in an aggregate");

  GridResult<R> out;
  out.values.resize(items.size());
  std::vector<Scenario> scenarios;
  scenarios.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    GridMeta m = meta(items[i], i);
    const Item* item = &items[i];
    R* slot = &out.values[i];
    scenarios.push_back(Scenario{
        std::move(m.name), m.seed,
        [item, slot, &fn](RunContext& context) {
          *slot = fn(*item, context);
        }});
  }
  out.table = RunScenarios(scenarios, options);
  return out;
}

// Overload for containers (vector, initializer-list-built arrays).
template <typename Container, typename MetaFn, typename Fn>
auto RunGridOver(const Container& items, MetaFn&& meta, Fn&& fn,
                 const RunnerOptions& options = {}) {
  return RunGrid(std::span(items.data(), items.size()),
                 std::forward<MetaFn>(meta), std::forward<Fn>(fn), options);
}

}  // namespace harness
}  // namespace ampere

#endif  // SRC_HARNESS_GRID_H_
