// Structured per-run results for the scenario runner.
//
// Every scenario run produces one ResultRow: named metric values (ordered
// as the scenario reported them), free-text notes (the per-run detail a
// bench would previously have printf'd mid-run), the captured log, the
// seed, and wall-clock timing. Rows are assembled in *submission order*
// regardless of which worker finished first, so a table produced with
// jobs=8 is byte-identical (timing aside) to the jobs=1 table.
//
// Emission formats:
//   * ToText — aligned human-readable table (what benches print).
//   * ToCsv  — deterministic data only (index, scenario, seed, metrics);
//              no timing columns, so CSV output is bit-stable across runs
//              and job counts. Suitable for plotting and for golden files.
//   * ToJson — the full record including per-run wall_ms, total wall time,
//              job count, notes, and captured logs.

#ifndef SRC_HARNESS_RESULT_TABLE_H_
#define SRC_HARNESS_RESULT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ampere {
namespace harness {

struct MetricValue {
  std::string name;
  double value = 0.0;
};

struct ResultRow {
  size_t index = 0;        // Submission order.
  std::string scenario;    // Human-readable run name.
  uint64_t seed = 0;
  bool ok = true;          // False if the scenario body threw.
  std::string error;       // Exception text when !ok.
  double wall_ms = 0.0;    // Wall-clock of this run on its worker.
  std::vector<MetricValue> metrics;
  std::string notes;       // Per-run detail text (kept out of stdout).
  std::string log;         // Captured AMPERE_LOG output of the run.
  // Pre-rendered JSON object with the run's observability data (metrics
  // snapshot, span profile, journal summary) captured by the runner's
  // per-run ScopedMetricsRegistry. Emitted verbatim as the "obs" field of
  // ToJson when non-empty. Spans carry wall-clock values, so this field —
  // like `log` and `wall_ms` — is excluded from CSV and SameData: the
  // determinism contract covers metrics/notes only.
  std::string obs_json;
  // Paths of artifacts the run wrote to disk (trace files, postmortem
  // dumps), reported via RunContext::Artifact. Emitted as the "artifacts"
  // JSON array when non-empty; excluded from CSV and SameData (paths embed
  // run-scoped names, not metric content).
  std::vector<std::string> artifacts;

  // Value of a named metric; CHECK-fails when absent.
  double Metric(std::string_view name) const;
  // Pointer to the value, or nullptr when absent.
  const double* FindMetric(std::string_view name) const;
};

class ResultTable {
 public:
  ResultTable() = default;

  void Resize(size_t n) { rows_.resize(n); }
  size_t size() const { return rows_.size(); }
  ResultRow& row(size_t i) { return rows_.at(i); }
  const ResultRow& row(size_t i) const { return rows_.at(i); }
  const std::vector<ResultRow>& rows() const { return rows_; }

  void set_jobs(int jobs) { jobs_ = jobs; }
  int jobs() const { return jobs_; }
  void set_total_wall_ms(double ms) { total_wall_ms_ = ms; }
  double total_wall_ms() const { return total_wall_ms_; }

  // Union of metric names across rows, in first-appearance order.
  std::vector<std::string> MetricNames() const;

  std::string ToText() const;
  std::string ToCsv() const;
  std::string ToJson() const;

  // Deterministic-content equality: index, scenario, seed, ok, error,
  // metrics (names, order, and bit-exact values), and notes. Ignores
  // wall-clock fields, job count, and captured logs — exactly the fields a
  // jobs=1 vs jobs=N comparison must disregard.
  static bool SameData(const ResultTable& a, const ResultTable& b);

 private:
  std::vector<ResultRow> rows_;
  int jobs_ = 1;
  double total_wall_ms_ = 0.0;
};

// Writes `contents` to `path` (CHECK-fails on I/O error). Used by benches
// for --csv / --json output.
void WriteFile(const std::string& path, const std::string& contents);

// JSON string escaping (exposed for tests).
std::string JsonEscape(std::string_view s);

}  // namespace harness
}  // namespace ampere

#endif  // SRC_HARNESS_RESULT_TABLE_H_
