// Scenario abstraction and registry for the parallel runner.
//
// A Scenario is one independent unit of evaluation work: a name, a seed,
// and a body that builds its own Simulation (and everything hanging off
// it), runs it, and reports named metrics through the RunContext. Bodies
// must be self-contained — no shared mutable state with other scenarios —
// which the core layer guarantees (ControlledExperiment / Fleet own their
// RNG streams, clocks, and stores; see src/core).
//
// The registry maps names to scenario-set factories so tools and tests can
// run curated grids ("experiment-smoke", "fleet-smoke", paper sweeps) by
// name; `examples/scenario_sweep` is the CLI front end.

#ifndef SRC_HARNESS_SCENARIO_H_
#define SRC_HARNESS_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/harness/result_table.h"

namespace ampere {
namespace harness {

// Handed to the scenario body; collects the run's structured output.
// A RunContext instance is used by exactly one worker thread at a time, so
// its methods need no locking.
class RunContext {
 public:
  RunContext(size_t index, uint64_t seed) : index_(index), seed_(seed) {}

  size_t index() const { return index_; }
  uint64_t seed() const { return seed_; }

  // Appends a named metric row value (order preserved in the ResultRow).
  void Metric(std::string_view name, double value) {
    metrics_.push_back(MetricValue{std::string(name), value});
  }

  // Appends per-run detail text (printed after the table, never
  // interleaved with other runs).
  void Note(std::string_view text) { notes_ += text; }
  void NoteLine(std::string_view text) {
    notes_ += text;
    notes_ += '\n';
  }

  // Records the path of an artifact this run wrote to disk (a trace file, a
  // postmortem dump). Lands in ResultRow::artifacts and the JSON record's
  // "artifacts" array, so consumers can find per-run output files without
  // globbing.
  void Artifact(std::string_view path) {
    artifacts_.emplace_back(path);
  }

  std::vector<MetricValue>& metrics() { return metrics_; }
  std::string& notes() { return notes_; }
  std::vector<std::string>& artifacts() { return artifacts_; }

 private:
  size_t index_;
  uint64_t seed_;
  std::vector<MetricValue> metrics_;
  std::string notes_;
  std::vector<std::string> artifacts_;
};

struct Scenario {
  std::string name;
  uint64_t seed = 0;
  std::function<void(RunContext&)> body;
};

// Named factories of scenario sets.
class ScenarioRegistry {
 public:
  using Factory = std::function<std::vector<Scenario>()>;

  // Process-wide registry (mutation is not thread-safe; register at startup).
  static ScenarioRegistry& Global();

  void Register(std::string name, std::string description, Factory factory);

  bool Contains(std::string_view name) const;

  // Materializes the scenario set; CHECK-fails on unknown names.
  std::vector<Scenario> Make(std::string_view name) const;

  // (name, description) pairs, sorted by name.
  std::vector<std::pair<std::string, std::string>> List() const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

// Registers the built-in scenario sets (smoke-sized experiment and fleet
// grids). Called once by tools that want them; idempotent.
void RegisterBuiltinScenarios();

}  // namespace harness
}  // namespace ampere

#endif  // SRC_HARNESS_SCENARIO_H_
