#include "src/harness/scenario.h"

#include "src/common/check.h"

namespace ampere {
namespace harness {

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(std::string name, std::string description,
                                Factory factory) {
  AMPERE_CHECK(factory != nullptr);
  entries_[std::move(name)] =
      Entry{std::move(description), std::move(factory)};
}

bool ScenarioRegistry::Contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<Scenario> ScenarioRegistry::Make(std::string_view name) const {
  auto it = entries_.find(name);
  AMPERE_CHECK(it != entries_.end())
      << "unknown scenario set '" << name << "'";
  return it->second.factory();
}

std::vector<std::pair<std::string, std::string>> ScenarioRegistry::List()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.description);
  }
  return out;
}

}  // namespace harness
}  // namespace ampere
