#include "src/harness/result_table.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_set>

#include "src/common/check.h"

namespace ampere {
namespace harness {
namespace {

// Shortest round-trip decimal representation.
std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  // Prefer a shorter form when it round-trips exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) {
      return shorter;
    }
  }
  return buffer;
}

std::string CsvEscape(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double ResultRow::Metric(std::string_view name) const {
  const double* value = FindMetric(name);
  AMPERE_CHECK(value != nullptr)
      << "scenario '" << scenario << "' has no metric '" << name << "'";
  return *value;
}

const double* ResultRow::FindMetric(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) {
      return &m.value;
    }
  }
  return nullptr;
}

std::vector<std::string> ResultTable::MetricNames() const {
  std::vector<std::string> names;
  std::unordered_set<std::string_view> seen;
  for (const ResultRow& r : rows_) {
    for (const MetricValue& m : r.metrics) {
      if (seen.insert(m.name).second) {
        names.push_back(m.name);
      }
    }
  }
  return names;
}

std::string ResultTable::ToText() const {
  std::vector<std::string> names = MetricNames();
  size_t scenario_width = 8;
  for (const ResultRow& r : rows_) {
    scenario_width = std::max(scenario_width, r.scenario.size());
  }

  std::string out;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "%4s  %-*s", "#",
                static_cast<int>(scenario_width), "scenario");
  out += buffer;
  for (const std::string& name : names) {
    std::snprintf(buffer, sizeof(buffer), " %12s", name.c_str());
    out += buffer;
  }
  out += "      wall_ms\n";

  for (const ResultRow& r : rows_) {
    std::snprintf(buffer, sizeof(buffer), "%4zu  %-*s", r.index + 1,
                  static_cast<int>(scenario_width), r.scenario.c_str());
    out += buffer;
    if (!r.ok) {
      out += "  FAILED: " + r.error + "\n";
      continue;
    }
    for (const std::string& name : names) {
      const double* value = r.FindMetric(name);
      if (value != nullptr) {
        std::snprintf(buffer, sizeof(buffer), " %12.4f", *value);
      } else {
        std::snprintf(buffer, sizeof(buffer), " %12s", "-");
      }
      out += buffer;
    }
    std::snprintf(buffer, sizeof(buffer), " %12.1f\n", r.wall_ms);
    out += buffer;
  }
  return out;
}

std::string ResultTable::ToCsv() const {
  std::vector<std::string> names = MetricNames();
  std::string out = "index,scenario,seed,ok";
  for (const std::string& name : names) {
    out += ',' + CsvEscape(name);
  }
  out += '\n';
  for (const ResultRow& r : rows_) {
    out += std::to_string(r.index) + ',' + CsvEscape(r.scenario) + ',' +
           std::to_string(r.seed) + ',' + (r.ok ? "1" : "0");
    for (const std::string& name : names) {
      out += ',';
      if (const double* value = r.FindMetric(name); value != nullptr) {
        out += FormatDouble(*value);
      }
    }
    out += '\n';
  }
  return out;
}

std::string ResultTable::ToJson() const {
  std::string out = "{\n";
  out += "  \"jobs\": " + std::to_string(jobs_) + ",\n";
  out += "  \"total_wall_ms\": " + FormatDouble(total_wall_ms_) + ",\n";
  out += "  \"runs\": [\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    const ResultRow& r = rows_[i];
    out += "    {\n";
    out += "      \"index\": " + std::to_string(r.index) + ",\n";
    out += "      \"scenario\": \"" + JsonEscape(r.scenario) + "\",\n";
    out += "      \"seed\": " + std::to_string(r.seed) + ",\n";
    out += std::string("      \"ok\": ") + (r.ok ? "true" : "false") + ",\n";
    if (!r.ok) {
      out += "      \"error\": \"" + JsonEscape(r.error) + "\",\n";
    }
    out += "      \"wall_ms\": " + FormatDouble(r.wall_ms) + ",\n";
    out += "      \"metrics\": {";
    for (size_t m = 0; m < r.metrics.size(); ++m) {
      if (m > 0) {
        out += ", ";
      }
      out += "\"" + JsonEscape(r.metrics[m].name) +
             "\": " + FormatDouble(r.metrics[m].value);
    }
    out += "},\n";
    out += "      \"notes\": \"" + JsonEscape(r.notes) + "\",\n";
    if (!r.obs_json.empty()) {
      out += "      \"obs\": ";
      out += r.obs_json;
      out += ",\n";
    }
    if (!r.artifacts.empty()) {
      out += "      \"artifacts\": [";
      for (size_t a = 0; a < r.artifacts.size(); ++a) {
        if (a > 0) {
          out += ", ";
        }
        out += "\"" + JsonEscape(r.artifacts[a]) + "\"";
      }
      out += "],\n";
    }
    out += "      \"log\": \"" + JsonEscape(r.log) + "\"\n";
    out += (i + 1 < rows_.size()) ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool ResultTable::SameData(const ResultTable& a, const ResultTable& b) {
  if (a.rows_.size() != b.rows_.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rows_.size(); ++i) {
    const ResultRow& x = a.rows_[i];
    const ResultRow& y = b.rows_[i];
    if (x.index != y.index || x.scenario != y.scenario || x.seed != y.seed ||
        x.ok != y.ok || x.error != y.error || x.notes != y.notes ||
        x.metrics.size() != y.metrics.size()) {
      return false;
    }
    for (size_t m = 0; m < x.metrics.size(); ++m) {
      if (x.metrics[m].name != y.metrics[m].name ||
          std::memcmp(&x.metrics[m].value, &y.metrics[m].value,
                      sizeof(double)) != 0) {
        return false;  // Bit-exact comparison (0.0 vs -0.0 differ; NaN==NaN).
      }
    }
  }
  return true;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AMPERE_CHECK(out.good()) << "cannot open " << path << " for writing";
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  AMPERE_CHECK(out.good()) << "short write to " << path;
}

}  // namespace harness
}  // namespace ampere
