// Parallel scenario runner.
//
// Executes a set of independent scenarios on a work-stealing thread pool —
// one Simulation per worker at a time, N workers (hardware_concurrency by
// default, `--jobs` flag or AMPERE_JOBS env override) — and assembles the
// per-run structured results into a ResultTable in deterministic
// submission order. Each run gets a ScopedLogCapture so the global logger
// never interleaves lines from concurrent runs; the captured text lands in
// the run's result row.
//
// Determinism contract: scenario bodies are pure functions of their config
// and seed (the core layer owns all RNG streams per instance), so the
// metric content of the ResultTable is bit-identical for any job count.
// Only wall-clock fields differ; ResultTable::SameData ignores them.

#ifndef SRC_HARNESS_RUNNER_H_
#define SRC_HARNESS_RUNNER_H_

#include <span>
#include <string>
#include <vector>

#include "src/faults/fault_plan.h"
#include "src/harness/result_table.h"
#include "src/harness/scenario.h"

namespace ampere {
namespace harness {

struct RunnerOptions {
  // <= 0 selects the default: AMPERE_JOBS from the environment if set,
  // else std::thread::hardware_concurrency().
  int jobs = 0;
  // Install a per-run ScopedLogCapture (store logs in the row instead of
  // interleaving stderr).
  bool capture_logs = true;
  // Install a per-run obs::ScopedMetricsRegistry so every counter, gauge,
  // histogram, and span the run touches lands in an isolated snapshot,
  // rendered into ResultRow::obs_json (the "obs" section of ToJson). Off
  // by default: runs that don't ask for it pay nothing, and existing JSON
  // output stays byte-identical.
  bool capture_obs = false;
};

// Resolves a requested job count to the effective worker count (>= 1).
int ResolveJobs(int requested_jobs);

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const RunnerOptions& options = {});

  // Runs all scenarios; blocks until done. A scenario body that throws
  // marks its row !ok with the exception text — it never tears down the
  // whole grid.
  ResultTable Run(std::span<const Scenario> scenarios) const;

 private:
  RunnerOptions options_;
};

// One-shot convenience wrapper.
ResultTable RunScenarios(std::span<const Scenario> scenarios,
                         const RunnerOptions& options = {});

// --- Command-line plumbing shared by benches and tools ---
//
// Recognized flags (everything else lands in `positional`):
//   --jobs=N | --jobs N     worker count (default: see RunnerOptions)
//   --csv=PATH | --csv PATH write the deterministic CSV table to PATH
//   --json=PATH             write the full JSON record (incl. timing)
//   --no-notes              suppress per-run notes on stdout
//   --obs                   capture per-run obs snapshots into the JSON
//   --log-level=LEVEL       global log threshold (debug|info|warning|
//                           error|off); overrides AMPERE_LOG_LEVEL, which
//                           ParseHarnessArgs applies first
//   --faults=PRESET         named chaos preset (none|light|moderate|heavy,
//                           src/faults/presets.h) applied by fault-aware
//                           benches to every run's ExperimentConfig::faults
//   --trace=PATH            obs-aware benches install a flight recorder per
//                           run and export its Chrome/Perfetto trace; PATH
//                           is run-suffixed (ArtifactPathForRun) when the
//                           bench runs more than one scenario, so --jobs>1
//                           grids never clobber one file
//   --postmortem-dir=DIR    obs-aware benches enable anomaly-triggered
//                           postmortem dumps into DIR (one JSON per trigger)
//   --replay=PATH           trace-aware benches drive the workload from the
//                           ampere.trace.v1 file at PATH instead of the
//                           synthetic generator (replaces --trace for the
//                           *workload* sense; --trace stays the Perfetto
//                           export flag)
//   --record=PATH           trace-aware benches record the generated
//                           workload and write an ampere.trace.v1 file;
//                           PATH is run-suffixed like --trace
//   --budget-schedule=SPEC  time-varying budget P(t); SPEC grammar is
//                           ParseBudgetSchedule's (step:.. / ramp:.. /
//                           diurnal:.., ';'-separated). Stored verbatim —
//                           benches parse it so the harness library keeps
//                           no control-layer dependency
//   --store-dir=DIR         storage-aware benches attach a persistent
//                           telemetry cold tier under DIR (run-suffixed via
//                           ArtifactPathForRun, so grids never share a
//                           store); off by default — RAM-only, goldens
//                           unchanged
//   --hot-budget=N          per-series hot-tier sample budget used with
//                           --store-dir (>= 2; 0/absent keeps the
//                           StorageSection default)
struct HarnessArgs {
  RunnerOptions runner;
  std::string csv_path;
  std::string json_path;
  bool print_notes = true;
  // --faults: the requested preset name and its resolved config. Benches
  // that support chaos runs copy `faults` into each scenario's experiment
  // config (typically overriding the seed per run); benches that don't are
  // unaffected. Defaults to "none" (all-zero config, any() == false).
  std::string faults_preset = "none";
  faults::FaultPlanConfig faults;
  // --trace / --postmortem-dir: observability artifact destinations (empty
  // = off). Benches that support them copy these into each scenario's
  // ExperimentConfig::obs, deriving the per-run trace path with
  // ArtifactPathForRun and reporting written files via RunContext::Artifact.
  std::string trace_path;
  std::string postmortem_dir;
  // --replay / --record / --budget-schedule: workload-trace and P(t)
  // plumbing (empty = off). Kept as raw strings here; trace-aware benches
  // translate them into ExperimentConfig::trace / budget_schedule.
  std::string replay_trace_path;
  std::string record_trace_path;
  std::string budget_schedule_spec;
  // --store-dir / --hot-budget: persistent telemetry cold tier (empty = off,
  // RAM-only). Storage-aware benches copy these into each scenario's
  // ExperimentConfig::storage via bench::ApplyStorageArgs, deriving the
  // per-run store directory with ArtifactPathForRun. hot_budget_samples = 0
  // keeps the StorageSection default.
  std::string store_dir;
  size_t hot_budget_samples = 0;
  std::vector<std::string> positional;
};

// Also applies the log level: AMPERE_LOG_LEVEL from the environment if set,
// then --log-level on top (flag beats environment) — mirroring how
// ResolveJobs treats --jobs/AMPERE_JOBS.
HarnessArgs ParseHarnessArgs(int argc, char** argv);

// Derives a collision-free per-run artifact path from a base path: run 0 of
// a single-scenario grid keeps `base` unchanged; otherwise "_run<N>" is
// inserted before the extension ("out/t.json" -> "out/t_run3.json", no
// extension appends). Deterministic in (base, run_index, total_runs), so
// the same grid names the same files at any job count.
std::string ArtifactPathForRun(const std::string& base, size_t run_index,
                               size_t total_runs);

}  // namespace harness
}  // namespace ampere

#endif  // SRC_HARNESS_RUNNER_H_
