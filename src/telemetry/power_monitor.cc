#include "src/telemetry/power_monitor.h"

#include <cmath>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {

PowerMonitor::PowerMonitor(DataCenter* dc, TimeSeriesDb* db,
                           const PowerMonitorConfig& config, Rng rng)
    : dc_(dc), db_(db), config_(config), rng_(rng),
      latest_server_watts_(static_cast<size_t>(dc->num_servers()), 0.0),
      latest_row_watts_(static_cast<size_t>(dc->num_rows()), 0.0),
      latest_row_stamp_(static_cast<size_t>(dc->num_rows()),
                        SimTime::Micros(-1)) {
  AMPERE_CHECK(dc != nullptr && db != nullptr);
  AMPERE_CHECK(config.interval > SimTime());
}

void PowerMonitor::RegisterGroup(const std::string& name,
                                 std::vector<ServerId> servers) {
  AMPERE_CHECK(!started_) << "groups must be registered before Start";
  AMPERE_CHECK(!servers.empty());
  // Precompute the rows this group spans: a group reading is only as fresh
  // as its members' row feeds, so blackout checks consult both.
  std::vector<RowId> rows;
  for (ServerId sid : servers) {
    RowId row = dc_->row_of(sid);
    bool seen = false;
    for (RowId r : rows) {
      if (r == row) {
        seen = true;
        break;
      }
    }
    if (!seen) rows.push_back(row);
  }
  groups_.emplace_back(name, std::move(servers));
  group_rows_.push_back(std::move(rows));
  latest_group_watts_[name] = 0.0;
  latest_group_stamp_[name] = SimTime::Micros(-1);
}

void PowerMonitor::Start(SimTime first_sample) {
  AMPERE_CHECK(!started_);
  started_ = true;
  // Pre-size the store for every series this monitor will ever create, so
  // the per-minute Append path never rehashes mid-run.
  size_t expected = groups_.size() + 1;  // Groups + dc total.
  if (config_.record_servers) {
    expected += static_cast<size_t>(dc_->num_servers());
  }
  if (config_.record_racks) {
    expected += static_cast<size_t>(dc_->num_racks());
  }
  if (config_.record_rows) {
    expected += static_cast<size_t>(dc_->num_rows());
  }
  db_->Reserve(expected);
  dc_->sim()->SchedulePeriodic(first_sample, config_.interval,
                               [this](SimTime t) { SampleOnce(t); });
}

void PowerMonitor::SampleOnce(SimTime stamp) {
  // Covers the whole ingest + aggregate pass: per-server "IPMI" reads,
  // rack/row/group rollups, and the TimeSeriesDb appends.
  AMPERE_SPAN("telemetry.sample");
  if (injector_ != nullptr && injector_->TelemetryStalled(stamp)) {
    // The aggregation pipeline is stalled: no sample lands anywhere, every
    // consumer keeps aging data. latest_sample_time_ deliberately stays old.
    ++samples_stalled_;
    AMPERE_COUNTER_ADD("faults.telemetry_stalls", 1);
    return;
  }
  ++samples_taken_;
  AMPERE_COUNTER_ADD("telemetry.samples", 1);
  latest_sample_time_ = stamp;

  // Which row feeds are dark this pass. A blacked-out row monitor returns
  // nothing: its servers' readings are not refreshed and no row point is
  // appended until the window ends.
  std::vector<char> row_dark;
  bool any_dark = false;
  if (injector_ != nullptr) {
    row_dark.assign(static_cast<size_t>(dc_->num_rows()), 0);
    for (int32_t r = 0; r < dc_->num_rows(); ++r) {
      if (injector_->ChannelBlackedOut(RowSeries(RowId(r)), stamp)) {
        row_dark[static_cast<size_t>(r)] = 1;
        any_dark = true;
        AMPERE_COUNTER_ADD("faults.blackout_rows", 1);
      }
    }
  }
  auto dark_row = [&](RowId id) {
    return any_dark && row_dark[static_cast<size_t>(id.index())] != 0;
  };

  // Read every server once through "IPMI": true draw + sensor noise, then
  // watt quantization. All aggregates sum these readings (not the true
  // values), as the streaming aggregation pipeline would. Fault order per
  // reading: the regular noise draw always happens first (keeps the sensor
  // noise stream aligned with a fault-free run), then the injector decides
  // whether the reading arrived and what garbage rode along with it.
  for (int32_t s = 0; s < dc_->num_servers(); ++s) {
    ServerId id(s);
    double reading = dc_->server_power_watts(id) +
                     rng_.Normal(0.0, config_.noise_sigma_watts);
    if (injector_ != nullptr) {
      if (dark_row(dc_->row_of(id))) {
        // The row's monitor feed is dark: no reading at all.
        continue;
      }
      if (injector_->DropServerSample()) {
        // Reading never arrived; the pipeline keeps the last-known value.
        AMPERE_COUNTER_ADD("faults.dropped_samples", 1);
        continue;
      }
      reading += injector_->SensorAdjustWatts();
    }
    if (config_.quantize_to_watts) {
      reading = std::round(reading);
    }
    if (reading < 0.0) {
      reading = 0.0;
    }
    latest_server_watts_[id.index()] = reading;
    if (config_.record_servers) {
      db_->Append(ServerSeries(id), stamp, reading);
    }
  }

  if (config_.record_racks) {
    for (int32_t r = 0; r < dc_->num_racks(); ++r) {
      RackId id(r);
      double sum = 0.0;
      for (ServerId sid : dc_->servers_in_rack(id)) {
        sum += latest_server_watts_[sid.index()];
      }
      db_->Append(RackSeries(id), stamp, sum);
    }
  }

  double total = 0.0;
  for (int32_t r = 0; r < dc_->num_rows(); ++r) {
    RowId id(r);
    if (dark_row(id)) {
      // Feed returned nothing: keep the last-known aggregate (stale stamp)
      // and fold it into the dc total, as a last-value-carried-forward
      // streaming rollup would.
      total += latest_row_watts_[id.index()];
      continue;
    }
    double sum = 0.0;
    for (ServerId sid : dc_->servers_in_row(id)) {
      sum += latest_server_watts_[sid.index()];
    }
    latest_row_watts_[id.index()] = sum;
    latest_row_stamp_[id.index()] = stamp;
    total += sum;
    if (config_.record_rows) {
      db_->Append(RowSeries(id), stamp, sum);
    }
  }
  if (config_.record_total) {
    db_->Append(kTotalSeries, stamp, total);
  }

  for (size_t g = 0; g < groups_.size(); ++g) {
    const auto& [name, servers] = groups_[g];
    if (injector_ != nullptr &&
        injector_->ChannelBlackedOut(GroupSeries(name), stamp)) {
      // The group's own virtual feed is dark; value and stamp stay put.
      continue;
    }
    double sum = 0.0;
    for (ServerId sid : servers) {
      sum += latest_server_watts_[sid.index()];
    }
    latest_group_watts_[name] = sum;
    latest_group_stamp_[name] = stamp;
    db_->Append(GroupSeries(name), stamp, sum);
  }
}

bool PowerMonitor::FeedBlackedOut(const std::string& series,
                                  SimTime now) const {
  return injector_ != nullptr && injector_->ChannelBlackedOut(series, now);
}

PowerReading PowerMonitor::LatestRowReading(RowId id, SimTime now) const {
  PowerReading reading;
  reading.watts = latest_row_watts_[id.index()];
  reading.stamp = latest_row_stamp_[id.index()];
  reading.blacked_out = FeedBlackedOut(RowSeries(id), now);
  return reading;
}

PowerReading PowerMonitor::LatestGroupReading(const std::string& name,
                                              SimTime now) const {
  auto watts_it = latest_group_watts_.find(name);
  AMPERE_CHECK(watts_it != latest_group_watts_.end()) << "unknown group "
                                                      << name;
  PowerReading reading;
  reading.watts = watts_it->second;
  reading.stamp = latest_group_stamp_.at(name);
  reading.blacked_out = FeedBlackedOut(GroupSeries(name), now);
  if (!reading.blacked_out && injector_ != nullptr) {
    // A group aggregate is only as fresh as its members' row feeds: if any
    // member row is dark the sum silently mixes stale per-server values, so
    // surface it as a blackout and let the consumer skip rather than guess.
    for (size_t g = 0; g < groups_.size(); ++g) {
      if (groups_[g].first != name) continue;
      for (RowId row : group_rows_[g]) {
        if (FeedBlackedOut(RowSeries(row), now)) {
          reading.blacked_out = true;
          break;
        }
      }
      break;
    }
  }
  return reading;
}

double PowerMonitor::LatestGroupWatts(const std::string& name) const {
  auto it = latest_group_watts_.find(name);
  AMPERE_CHECK(it != latest_group_watts_.end()) << "unknown group " << name;
  return it->second;
}

std::string PowerMonitor::ServerSeries(ServerId id) {
  return "server/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::RackSeries(RackId id) {
  return "rack/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::RowSeries(RowId id) {
  return "row/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::GroupSeries(const std::string& name) {
  return "group/" + name + "/power";
}

}  // namespace ampere
