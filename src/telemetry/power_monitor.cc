#include "src/telemetry/power_monitor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/span_kernels.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {

PowerMonitor::PowerMonitor(DataCenter* dc, TimeSeriesDb* db,
                           const PowerMonitorConfig& config, Rng rng)
    : dc_(dc), db_(db), config_(config), noise_seed_(rng.NextU64()),
      latest_server_watts_(static_cast<size_t>(dc->num_servers()), 0.0),
      latest_row_watts_(static_cast<size_t>(dc->num_rows()), 0.0),
      latest_row_stamp_(static_cast<size_t>(dc->num_rows()),
                        SimTime::Micros(-1)),
      scratch_rack_watts_(static_cast<size_t>(dc->num_racks()), 0.0),
      scratch_row_watts_(static_cast<size_t>(dc->num_rows()), 0.0),
      row_in_margin_(static_cast<size_t>(dc->num_rows()), 0),
      row_was_dark_(static_cast<size_t>(dc->num_rows()), 0) {
  AMPERE_CHECK(dc != nullptr && db != nullptr);
  AMPERE_CHECK(config.interval > SimTime());

  // Intern every series this monitor will write, once, so SampleOnce never
  // formats a name or probes the name map again. Pre-size the store first
  // so interning does not rehash (groups registered later may add a few
  // more — that is setup-time cost, not sample-time cost).
  size_t expected = 1;  // dc total.
  if (config_.record_servers) {
    expected += static_cast<size_t>(dc_->num_servers());
  }
  if (config_.record_racks) {
    expected += static_cast<size_t>(dc_->num_racks());
  }
  if (config_.record_rows) {
    expected += static_cast<size_t>(dc_->num_rows());
  }
  db_->Reserve(expected);
  // All names carry the (usually empty) series prefix, interned once here.
  const std::string& prefix = config_.series_prefix;
  if (config_.record_servers) {
    server_series_.reserve(static_cast<size_t>(dc_->num_servers()));
    for (int32_t s = 0; s < dc_->num_servers(); ++s) {
      server_series_.push_back(db_->Intern(prefix + ServerSeries(ServerId(s))));
    }
  }
  if (config_.record_racks) {
    rack_series_.reserve(static_cast<size_t>(dc_->num_racks()));
    for (int32_t r = 0; r < dc_->num_racks(); ++r) {
      rack_series_.push_back(db_->Intern(prefix + RackSeries(RackId(r))));
    }
  }
  row_channel_.reserve(static_cast<size_t>(dc_->num_rows()));
  for (int32_t r = 0; r < dc_->num_rows(); ++r) {
    row_channel_.push_back(prefix + RowSeries(RowId(r)));
  }
  if (config_.record_rows) {
    row_series_.reserve(static_cast<size_t>(dc_->num_rows()));
    for (int32_t r = 0; r < dc_->num_rows(); ++r) {
      row_series_.push_back(db_->Intern(row_channel_[static_cast<size_t>(r)]));
    }
  }
  if (config_.record_total) {
    total_series_ = db_->Intern(prefix + kTotalSeries);
  }
}

void PowerMonitor::RegisterGroup(const std::string& name,
                                 std::vector<ServerId> servers) {
  AMPERE_CHECK(!started_) << "groups must be registered before Start";
  AMPERE_CHECK(!servers.empty());
  Group group;
  group.name = name;
  group.channel = config_.series_prefix + GroupSeries(name);
  // Precompute the rows this group spans with a seen-bitmap sized by
  // num_rows: O(servers + rows), not O(servers x rows).
  std::vector<char> seen(static_cast<size_t>(dc_->num_rows()), 0);
  for (ServerId sid : servers) {
    RowId row = dc_->row_of(sid);
    char& mark = seen[static_cast<size_t>(row.index())];
    if (mark == 0) {
      mark = 1;
      group.rows.push_back(row);
    }
  }
  group.servers = std::move(servers);
  group.series = db_->Intern(group.channel);
  if (preallocated_points_ > 0) {
    // PreallocateSamples already ran; reserve this series to match so the
    // group's steady-state appends stay allocation-free too (previously a
    // group registered after the prealloc pass kept growing its vector).
    db_->ReservePoints(group.series, preallocated_points_);
  }
  groups_.push_back(std::move(group));
}

void PowerMonitor::Start(SimTime first_sample) {
  AMPERE_CHECK(!started_);
  started_ = true;
  dc_->sim()->SchedulePeriodic(first_sample, config_.interval,
                               [this](SimTime t) { SampleOnce(t); });
}

void PowerMonitor::PreallocateSamples(size_t expected_samples) {
  preallocated_points_ = expected_samples;
  for (SeriesId id : server_series_) {
    db_->ReservePoints(id, expected_samples);
  }
  for (SeriesId id : rack_series_) {
    db_->ReservePoints(id, expected_samples);
  }
  for (SeriesId id : row_series_) {
    db_->ReservePoints(id, expected_samples);
  }
  if (total_series_.valid()) {
    db_->ReservePoints(total_series_, expected_samples);
  }
  for (const Group& group : groups_) {
    db_->ReservePoints(group.series, expected_samples);
  }
  row_dark_.reserve(static_cast<size_t>(dc_->num_rows()));
}

void PowerMonitor::SampleOnce(SimTime stamp) {
  AMPERE_METRICS_DOMAIN(obs_domain_);
  // Covers the whole ingest + aggregate pass: per-server "IPMI" reads,
  // rack/row/group rollups, and the TimeSeriesDb appends.
  AMPERE_SPAN("telemetry.sample");
  if (injector_ != nullptr && injector_->TelemetryStalled(stamp)) {
    // The aggregation pipeline is stalled: no sample lands anywhere, every
    // consumer keeps aging data. latest_sample_time_ deliberately stays old.
    ++samples_stalled_;
    AMPERE_COUNTER_ADD("faults.telemetry_stalls", 1);
    AMPERE_TIMELINE_D(obs_domain_, stamp,
                      obs::TimelineEventType::kTelemetryStall,
                      static_cast<double>(samples_stalled_));
    return;
  }
  // Noise tick: the index of this non-stalled sample. A pure function of
  // the sample sequence, so every reading's noise key is independent of
  // wall-clock sharding AND of faults dropping other readings.
  const uint64_t tick = samples_taken_;
  ++samples_taken_;
  AMPERE_COUNTER_ADD("telemetry.samples", 1);
  latest_sample_time_ = stamp;

  if (injector_ == nullptr || injector_->TelemetryQuiescentAt(stamp)) {
    // No injector, or the injector cannot touch this pass (zero per-reading
    // fault probabilities and no blackout window covers `stamp`): take the
    // sharded clean path. In the quiescent state the faulted pass performs
    // the identical arithmetic with zero RNG draws and zero fault events,
    // so the two are byte-identical — previously an attached injector
    // forced the serial pass even on fault-free ticks.
    SampleCleanPass(stamp, tick);
  } else {
    // Fault draws (drops, sensor garbage) are a sequential Rng stream, so
    // the faulted pass stays serial regardless of the attached pool.
    SampleFaultedPass(stamp, tick);
  }
}

void PowerMonitor::ReadServersClean(size_t begin, size_t end, uint64_t tick) {
  // True draw + counter-based sensor noise, then watt quantization. The
  // batched kernel evaluates one Box-Muller per two servers (the same pair
  // NoiseAt would compute for either of them), so the values are
  // bit-identical whichever helper produced them — and identical for any
  // shard boundary, since each server's noise depends only on (server,
  // tick).
  std::span<const double> truth = dc_->server_power_soa();
  const double sigma = config_.noise_sigma_watts;
  const bool quantize = config_.quantize_to_watts;
  // Hoist the loop-invariant (seed, tick) half of the key derivation; the
  // per-pair remainder is one StreamKey mix. StreamKey(base, s) ==
  // Key(noise_seed_, s, tick), so these values match NoiseAt exactly.
  const uint64_t base = counter_rng::TickBase(noise_seed_, tick);
  auto finish = [quantize](double reading) {
    if (quantize) {
      reading = std::round(reading);
    }
    return reading < 0.0 ? 0.0 : reading;
  };
  size_t i = begin;
  if ((i & 1) != 0 && i < end) {
    // Odd leading index: this server is the z1 lane of the previous pair.
    latest_server_watts_[i] = finish(truth[i] + NoiseAt(i, tick));
    ++i;
  }
  // Pair-aligned middle: whole spans of noise from the batched kernel, then
  // a flat add/quantize/store sweep over the same block. The staging buffer
  // is a fixed stack block, so the pass stays allocation-free.
  constexpr size_t kNoisePairs = 128;
  double z[2 * kNoisePairs];
  const double* __restrict truth_p = truth.data();
  double* __restrict latest_p = latest_server_watts_.data();
  while (i + 1 < end) {
    const size_t pairs =
        std::min(kNoisePairs, (end - i) / 2);
    counter_rng::StandardNormalSpan(base, static_cast<uint64_t>(i >> 1),
                                    pairs, z);
    const size_t count = 2 * pairs;
    for (size_t k = 0; k < count; ++k) {
      latest_p[i + k] = finish(truth_p[i + k] + sigma * z[k]);
    }
    i += count;
  }
  if (i < end) {
    // Odd trailing index: the z0 lane of a pair whose z1 lane belongs to
    // the next shard.
    latest_server_watts_[i] = finish(truth[i] + NoiseAt(i, tick));
  }
}

void PowerMonitor::SampleCleanPass(SimTime stamp, uint64_t tick) {
  const size_t num_servers = static_cast<size_t>(dc_->num_servers());
  const size_t num_rows = static_cast<size_t>(dc_->num_rows());

  // Phase A: per-server readings. Shards write disjoint slots of
  // latest_server_watts_; each value is a pure function of (server, tick),
  // so the array contents are independent of the shard boundaries.
  ParallelFor(pool_, 0, num_servers, /*grain=*/256,
              [this, tick](size_t b, size_t e) {
                ReadServersClean(b, e, tick);
              });

  // Phase B: per-row aggregation. One row per shard minimum; a row's racks
  // and servers occupy contiguous index ranges, so each shard streams its
  // own span of the readings array and writes its own scratch slots. The
  // sums use SumSequential — the strict left-to-right order the committed
  // goldens pin (see span_kernels.h) — over the same ascending spans as the
  // serial loops they replace.
  const bool record_racks = config_.record_racks;
  const double* readings = latest_server_watts_.data();
  ParallelFor(
      pool_, 0, num_rows, /*grain=*/1,
      [this, record_racks, readings](size_t row_begin, size_t row_end) {
        for (size_t r = row_begin; r < row_end; ++r) {
          const RowId row_id(static_cast<int32_t>(r));
          if (record_racks) {
            for (RackId rid : dc_->racks_in_row(row_id)) {
              const DataCenter::IndexRange range =
                  dc_->server_range_of_rack(rid);
              scratch_rack_watts_[static_cast<size_t>(rid.index())] =
                  span_kernels::SumSequential(readings + range.begin,
                                              range.size());
            }
          }
          const DataCenter::IndexRange range = dc_->server_range_of_row(row_id);
          scratch_row_watts_[r] = span_kernels::SumSequential(
              readings + range.begin, range.size());
        }
      });

  // Serial flush in fixed order — servers, racks, rows, total, groups — so
  // TimeSeriesDb contents are byte-identical at any job count.
  if (config_.record_servers) {
    for (size_t s = 0; s < num_servers; ++s) {
      db_->Append(server_series_[s], stamp, latest_server_watts_[s]);
    }
  }
  if (config_.record_racks) {
    const size_t num_racks = static_cast<size_t>(dc_->num_racks());
    for (size_t r = 0; r < num_racks; ++r) {
      db_->Append(rack_series_[r], stamp, scratch_rack_watts_[r]);
    }
  }
  double total = 0.0;
  for (size_t r = 0; r < num_rows; ++r) {
    const double sum = scratch_row_watts_[r];
    latest_row_watts_[r] = sum;
    latest_row_stamp_[r] = stamp;
    total += sum;
    if (config_.record_rows) {
      db_->Append(row_series_[r], stamp, sum);
    }
  }
  if (config_.record_total) {
    db_->Append(total_series_, stamp, total);
  }
  for (Group& group : groups_) {
    double sum = 0.0;
    for (ServerId sid : group.servers) {
      sum += latest_server_watts_[sid.index()];
    }
    group.latest_watts = sum;
    group.latest_stamp = stamp;
    db_->Append(group.series, stamp, sum);
  }

  RecordRowTimeline(stamp, /*faulted=*/false);
}

void PowerMonitor::SampleFaultedPass(SimTime stamp, uint64_t tick) {
  // Which row feeds are dark this pass. A blacked-out row monitor returns
  // nothing: its servers' readings are not refreshed and no row point is
  // appended until the window ends.
  bool any_dark = false;
  row_dark_.assign(static_cast<size_t>(dc_->num_rows()), 0);
  for (int32_t r = 0; r < dc_->num_rows(); ++r) {
    if (injector_->ChannelBlackedOut(row_channel_[static_cast<size_t>(r)],
                                     stamp)) {
      row_dark_[static_cast<size_t>(r)] = 1;
      any_dark = true;
      AMPERE_COUNTER_ADD("faults.blackout_rows", 1);
    }
  }
  auto dark_row = [&](RowId id) {
    return any_dark && row_dark_[static_cast<size_t>(id.index())] != 0;
  };

  // Read every surviving server once through "IPMI". All aggregates sum
  // these readings (not the true values), as the streaming aggregation
  // pipeline would. Counter-based noise keys off (server, tick), so a
  // dropped reading consumes nothing from any stream — the next pass's
  // noise is automatically aligned with a fault-free run's.
  for (int32_t s = 0; s < dc_->num_servers(); ++s) {
    ServerId id(s);
    if (dark_row(dc_->row_of(id))) {
      // The row's monitor feed is dark: no reading at all.
      continue;
    }
    if (injector_->DropServerSample()) {
      // Reading never arrived; the pipeline keeps the last-known value.
      AMPERE_COUNTER_ADD("faults.dropped_samples", 1);
      continue;
    }
    double reading = dc_->server_power_watts(id) +
                     NoiseAt(static_cast<size_t>(s), tick) +
                     injector_->SensorAdjustWatts();
    if (config_.quantize_to_watts) {
      reading = std::round(reading);
    }
    if (reading < 0.0) {
      reading = 0.0;
    }
    latest_server_watts_[id.index()] = reading;
    if (config_.record_servers) {
      db_->Append(server_series_[static_cast<size_t>(s)], stamp, reading);
    }
  }

  if (config_.record_racks) {
    for (int32_t r = 0; r < dc_->num_racks(); ++r) {
      RackId id(r);
      double sum = 0.0;
      for (ServerId sid : dc_->servers_in_rack(id)) {
        sum += latest_server_watts_[sid.index()];
      }
      db_->Append(rack_series_[static_cast<size_t>(r)], stamp, sum);
    }
  }

  double total = 0.0;
  for (int32_t r = 0; r < dc_->num_rows(); ++r) {
    RowId id(r);
    if (dark_row(id)) {
      // Feed returned nothing: keep the last-known aggregate (stale stamp)
      // and fold it into the dc total, as a last-value-carried-forward
      // streaming rollup would.
      total += latest_row_watts_[id.index()];
      continue;
    }
    double sum = 0.0;
    for (ServerId sid : dc_->servers_in_row(id)) {
      sum += latest_server_watts_[sid.index()];
    }
    latest_row_watts_[id.index()] = sum;
    latest_row_stamp_[id.index()] = stamp;
    total += sum;
    if (config_.record_rows) {
      db_->Append(row_series_[static_cast<size_t>(r)], stamp, sum);
    }
  }
  if (config_.record_total) {
    db_->Append(total_series_, stamp, total);
  }

  for (Group& group : groups_) {
    if (injector_->ChannelBlackedOut(group.channel, stamp)) {
      // The group's own virtual feed is dark; value and stamp stay put.
      continue;
    }
    double sum = 0.0;
    for (ServerId sid : group.servers) {
      sum += latest_server_watts_[sid.index()];
    }
    group.latest_watts = sum;
    group.latest_stamp = stamp;
    db_->Append(group.series, stamp, sum);
  }

  RecordRowTimeline(stamp, /*faulted=*/true);
}

void PowerMonitor::RecordRowTimeline(SimTime stamp, bool faulted) {
  if (obs::CurrentRecorder() == nullptr || !obs::Enabled()) {
    return;
  }
  const size_t num_rows = static_cast<size_t>(dc_->num_rows());
  const double fraction = config_.breaker_margin_fraction;
  for (size_t r = 0; r < num_rows; ++r) {
    const RowId row_id(static_cast<int32_t>(r));
    // Fault-window edges: a row feed going dark / recovering. Clean passes
    // refresh every feed, so any previously-dark row has recovered.
    const bool dark = faulted && row_dark_[r] != 0;
    if (dark != (row_was_dark_[r] != 0)) {
      AMPERE_TIMELINE_D(obs_domain_, stamp,
                        dark ? obs::TimelineEventType::kFaultWindowBegin
                             : obs::TimelineEventType::kFaultWindowEnd,
                        0.0, 0.0, static_cast<uint64_t>(r));
      row_was_dark_[r] = dark ? 1 : 0;
    }
    // Breaker-margin crossings on the sampled (noisy) row draw — the same
    // value every consumer of this monitor sees. Dark rows keep their
    // last-known margin state: a stale value says nothing new.
    if (dark) continue;
    const double budget = dc_->row_budget_watts(row_id);
    if (budget <= 0.0) continue;
    const double watts = latest_row_watts_[r];
    const bool in_margin = watts >= fraction * budget;
    if (in_margin != (row_in_margin_[r] != 0)) {
      AMPERE_TIMELINE_D(obs_domain_, stamp,
                        in_margin
                            ? obs::TimelineEventType::kBreakerMarginEnter
                            : obs::TimelineEventType::kBreakerMarginExit,
                        watts, budget, static_cast<uint64_t>(r));
      row_in_margin_[r] = in_margin ? 1 : 0;
    }
  }
}

bool PowerMonitor::FeedBlackedOut(std::string_view series,
                                  SimTime now) const {
  return injector_ != nullptr && injector_->ChannelBlackedOut(series, now);
}

const PowerMonitor::Group& PowerMonitor::FindGroupOrDie(
    const std::string& name) const {
  for (const Group& group : groups_) {
    if (group.name == name) {
      return group;
    }
  }
  AMPERE_CHECK(false) << "unknown group " << name;
  __builtin_unreachable();
}

PowerReading PowerMonitor::LatestRowReading(RowId id, SimTime now) const {
  PowerReading reading;
  reading.watts = latest_row_watts_[id.index()];
  reading.stamp = latest_row_stamp_[id.index()];
  reading.blacked_out =
      FeedBlackedOut(row_channel_[static_cast<size_t>(id.index())], now);
  return reading;
}

PowerReading PowerMonitor::LatestGroupReading(const std::string& name,
                                              SimTime now) const {
  const Group& group = FindGroupOrDie(name);
  PowerReading reading;
  reading.watts = group.latest_watts;
  reading.stamp = group.latest_stamp;
  reading.blacked_out = FeedBlackedOut(group.channel, now);
  if (!reading.blacked_out && injector_ != nullptr) {
    // A group aggregate is only as fresh as its members' row feeds: if any
    // member row is dark the sum silently mixes stale per-server values, so
    // surface it as a blackout and let the consumer skip rather than guess.
    for (RowId row : group.rows) {
      if (FeedBlackedOut(row_channel_[static_cast<size_t>(row.index())],
                         now)) {
        reading.blacked_out = true;
        break;
      }
    }
  }
  return reading;
}

double PowerMonitor::LatestGroupWatts(const std::string& name) const {
  return FindGroupOrDie(name).latest_watts;
}

std::string PowerMonitor::ServerSeries(ServerId id) {
  return "server/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::RackSeries(RackId id) {
  return "rack/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::RowSeries(RowId id) {
  return "row/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::GroupSeries(const std::string& name) {
  return "group/" + name + "/power";
}

}  // namespace ampere
