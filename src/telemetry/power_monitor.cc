#include "src/telemetry/power_monitor.h"

#include <cmath>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {

PowerMonitor::PowerMonitor(DataCenter* dc, TimeSeriesDb* db,
                           const PowerMonitorConfig& config, Rng rng)
    : dc_(dc), db_(db), config_(config), rng_(rng),
      latest_server_watts_(static_cast<size_t>(dc->num_servers()), 0.0),
      latest_row_watts_(static_cast<size_t>(dc->num_rows()), 0.0) {
  AMPERE_CHECK(dc != nullptr && db != nullptr);
  AMPERE_CHECK(config.interval > SimTime());
}

void PowerMonitor::RegisterGroup(const std::string& name,
                                 std::vector<ServerId> servers) {
  AMPERE_CHECK(!started_) << "groups must be registered before Start";
  AMPERE_CHECK(!servers.empty());
  groups_.emplace_back(name, std::move(servers));
  latest_group_watts_[name] = 0.0;
}

void PowerMonitor::Start(SimTime first_sample) {
  AMPERE_CHECK(!started_);
  started_ = true;
  // Pre-size the store for every series this monitor will ever create, so
  // the per-minute Append path never rehashes mid-run.
  size_t expected = groups_.size() + 1;  // Groups + dc total.
  if (config_.record_servers) {
    expected += static_cast<size_t>(dc_->num_servers());
  }
  if (config_.record_racks) {
    expected += static_cast<size_t>(dc_->num_racks());
  }
  if (config_.record_rows) {
    expected += static_cast<size_t>(dc_->num_rows());
  }
  db_->Reserve(expected);
  dc_->sim()->SchedulePeriodic(first_sample, config_.interval,
                               [this](SimTime t) { SampleOnce(t); });
}

void PowerMonitor::SampleOnce(SimTime stamp) {
  // Covers the whole ingest + aggregate pass: per-server "IPMI" reads,
  // rack/row/group rollups, and the TimeSeriesDb appends.
  AMPERE_SPAN("telemetry.sample");
  ++samples_taken_;
  AMPERE_COUNTER_ADD("telemetry.samples", 1);
  latest_sample_time_ = stamp;

  // Read every server once through "IPMI": true draw + sensor noise, then
  // watt quantization. All aggregates sum these readings (not the true
  // values), as the streaming aggregation pipeline would.
  for (int32_t s = 0; s < dc_->num_servers(); ++s) {
    ServerId id(s);
    double reading = dc_->server_power_watts(id) +
                     rng_.Normal(0.0, config_.noise_sigma_watts);
    if (config_.quantize_to_watts) {
      reading = std::round(reading);
    }
    if (reading < 0.0) {
      reading = 0.0;
    }
    latest_server_watts_[id.index()] = reading;
    if (config_.record_servers) {
      db_->Append(ServerSeries(id), stamp, reading);
    }
  }

  if (config_.record_racks) {
    for (int32_t r = 0; r < dc_->num_racks(); ++r) {
      RackId id(r);
      double sum = 0.0;
      for (ServerId sid : dc_->servers_in_rack(id)) {
        sum += latest_server_watts_[sid.index()];
      }
      db_->Append(RackSeries(id), stamp, sum);
    }
  }

  double total = 0.0;
  for (int32_t r = 0; r < dc_->num_rows(); ++r) {
    RowId id(r);
    double sum = 0.0;
    for (ServerId sid : dc_->servers_in_row(id)) {
      sum += latest_server_watts_[sid.index()];
    }
    latest_row_watts_[id.index()] = sum;
    total += sum;
    if (config_.record_rows) {
      db_->Append(RowSeries(id), stamp, sum);
    }
  }
  if (config_.record_total) {
    db_->Append(kTotalSeries, stamp, total);
  }

  for (const auto& [name, servers] : groups_) {
    double sum = 0.0;
    for (ServerId sid : servers) {
      sum += latest_server_watts_[sid.index()];
    }
    latest_group_watts_[name] = sum;
    db_->Append(GroupSeries(name), stamp, sum);
  }
}

double PowerMonitor::LatestGroupWatts(const std::string& name) const {
  auto it = latest_group_watts_.find(name);
  AMPERE_CHECK(it != latest_group_watts_.end()) << "unknown group " << name;
  return it->second;
}

std::string PowerMonitor::ServerSeries(ServerId id) {
  return "server/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::RackSeries(RackId id) {
  return "rack/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::RowSeries(RowId id) {
  return "row/" + std::to_string(id.value()) + "/power";
}
std::string PowerMonitor::GroupSeries(const std::string& name) {
  return "group/" + name + "/power";
}

}  // namespace ampere
