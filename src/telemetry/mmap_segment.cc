#include "src/telemetry/mmap_segment.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

#include "src/common/check.h"

#if AMPERE_HAVE_MMAP
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace ampere {
namespace {

constexpr char kSegmentMagic[8] = {'A', 'M', 'P', 'T', 'S', 'D', 'B', '1'};

// Largest capacity a reader will map: 2^40 bytes of payload (~64G samples
// would be absurd for one segment; anything larger is corruption).
constexpr uint64_t kMaxSaneCapacity = (uint64_t{1} << 40) / kSegmentSampleStride;

// Byte offsets of header fields, for structured error reporting.
constexpr size_t kOffVersion = 8;
constexpr size_t kOffFlags = 12;
constexpr size_t kOffCount = 24;
constexpr size_t kOffCapacity = 32;
constexpr size_t kOffDataCrc = 56;
constexpr size_t kOffHeaderCrc = 60;

StoreStatus MakeError(StoreError error, size_t byte_offset,
                      const std::string& detail) {
  StoreStatus status;
  status.error = error;
  status.byte_offset = byte_offset;
  std::ostringstream message;
  message << StoreErrorName(error) << " at byte " << byte_offset << ": "
          << detail;
  status.message = message.str();
  return status;
}

uint32_t HeaderCrc(const SegmentHeader& header) {
  // CRC of everything before the header_crc field itself.
  return StoreCrc32(&header, kOffHeaderCrc);
}

}  // namespace

const char* StoreErrorName(StoreError error) {
  switch (error) {
    case StoreError::kNone:
      return "kNone";
    case StoreError::kIo:
      return "kIo";
    case StoreError::kBadMagic:
      return "kBadMagic";
    case StoreError::kVersionSkew:
      return "kVersionSkew";
    case StoreError::kTruncated:
      return "kTruncated";
    case StoreError::kCorruptLength:
      return "kCorruptLength";
    case StoreError::kBadRecord:
      return "kBadRecord";
    case StoreError::kBadCrc:
      return "kBadCrc";
    case StoreError::kBadManifest:
      return "kBadManifest";
  }
  return "kUnknown";
}

uint32_t StoreCrc32(const void* data, size_t len, uint32_t seed) {
  // Table-driven CRC-32 (IEEE 802.3, reflected), table built on first use.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = seed ^ 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t StoreSeriesKey(std::string_view name) {
  // FNV-1a 64.
  uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : name) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// --- MappedFile ------------------------------------------------------------

MappedFile::~MappedFile() { Close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      writable_(other.writable_),
      fd_(other.fd_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.fd_ = -1;
  other.writable_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    writable_ = other.writable_;
    fd_ = other.fd_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.fd_ = -1;
    other.writable_ = false;
  }
  return *this;
}

#if AMPERE_HAVE_MMAP

bool MappedFile::CreateRw(const std::string& path, size_t size) {
  Close();
  AMPERE_CHECK(size > 0) << "zero-size mapping for " << path;
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    return false;
  }
  void* mapping =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mapping == MAP_FAILED) {
    ::close(fd);
    return false;
  }
  path_ = path;
  data_ = static_cast<uint8_t*>(mapping);
  size_ = size;
  writable_ = true;
  fd_ = fd;
  return true;
}

bool MappedFile::OpenRo(const std::string& path) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return false;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (mapping == MAP_FAILED) {
    return false;
  }
  path_ = path;
  data_ = static_cast<uint8_t*>(mapping);
  size_ = size;
  writable_ = false;
  fd_ = -1;
  return true;
}

bool MappedFile::Grow(size_t new_size) {
  AMPERE_CHECK(valid() && writable_) << "Grow of non-writable mapping";
  if (new_size == size_) {
    return true;
  }
  // Portable resize: unmap, ftruncate, remap (mremap is Linux-only). The
  // address may move; callers re-derive their column pointers.
  if (::munmap(data_, size_) != 0) {
    return false;
  }
  data_ = nullptr;
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return false;
  }
  void* mapping =
      ::mmap(nullptr, new_size, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (mapping == MAP_FAILED) {
    return false;
  }
  data_ = static_cast<uint8_t*>(mapping);
  size_ = new_size;
  return true;
}

bool MappedFile::Sync() {
  if (!valid() || !writable_) {
    return true;
  }
  // MS_ASYNC, not MS_SYNC: the pages are already in page cache (which is
  // what survives a process crash); waiting for the disk here would put a
  // journaled write barrier inside every seal.
  return ::msync(data_, size_, MS_ASYNC) == 0;
}

void MappedFile::ReleaseWritten(size_t begin, size_t end) {
  if (!valid() || !writable_) {
    return;
  }
  static const size_t kPage = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t first = (begin + kPage - 1) / kPage * kPage;
  size_t last = end / kPage * kPage;
  if (last > size_) {
    last = size_ / kPage * kPage;
  }
  if (last > first) {
    ::madvise(data_ + first, last - first, MADV_DONTNEED);
  }
}

void MappedFile::Close() {
  if (valid()) {
    if (writable_) {
      ::msync(data_, size_, MS_ASYNC);
    }
    ::munmap(data_, size_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
  data_ = nullptr;
  size_ = 0;
  fd_ = -1;
  writable_ = false;
}

#else  // !AMPERE_HAVE_MMAP — heap buffer + stdio, identical on-disk format.

bool MappedFile::CreateRw(const std::string& path, size_t size) {
  Close();
  AMPERE_CHECK(size > 0) << "zero-size mapping for " << path;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  std::fclose(f);  // Truncate now; contents land on Sync/Close.
  data_ = new uint8_t[size]();
  size_ = size;
  path_ = path;
  writable_ = true;
  return true;
}

bool MappedFile::OpenRo(const std::string& path) {
  Close();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end <= 0) {
    std::fclose(f);
    return false;
  }
  const size_t size = static_cast<size_t>(end);
  std::fseek(f, 0, SEEK_SET);
  uint8_t* buffer = new uint8_t[size];
  const size_t read = std::fread(buffer, 1, size, f);
  std::fclose(f);
  if (read != size) {
    delete[] buffer;
    return false;
  }
  data_ = buffer;
  size_ = size;
  path_ = path;
  writable_ = false;
  return true;
}

bool MappedFile::Grow(size_t new_size) {
  AMPERE_CHECK(valid() && writable_) << "Grow of non-writable mapping";
  if (new_size == size_) {
    return true;
  }
  uint8_t* buffer = new uint8_t[new_size]();
  std::memcpy(buffer, data_, size_ < new_size ? size_ : new_size);
  delete[] data_;
  data_ = buffer;
  size_ = new_size;
  return true;
}

bool MappedFile::Sync() {
  if (!valid() || !writable_) {
    return true;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(data_, 1, size_, f);
  const bool ok = (std::fclose(f) == 0) && written == size_;
  return ok;
}

void MappedFile::ReleaseWritten(size_t begin, size_t end) {
  // Heap buffer: the mapping IS the only copy, nothing can be released.
  (void)begin;
  (void)end;
}

void MappedFile::Close() {
  if (valid() && writable_) {
    Sync();
  }
  delete[] data_;
  data_ = nullptr;
  size_ = 0;
  writable_ = false;
}

#endif  // AMPERE_HAVE_MMAP

// --- SegmentWriter ---------------------------------------------------------

std::unique_ptr<SegmentWriter> SegmentWriter::Create(const std::string& path,
                                                     uint64_t series_key,
                                                     size_t initial_capacity,
                                                     size_t max_capacity) {
  AMPERE_CHECK(max_capacity > 0) << "segment max_capacity must be positive";
  size_t capacity = initial_capacity == 0 ? 1 : initial_capacity;
  if (capacity > max_capacity) {
    capacity = max_capacity;
  }
  auto writer = std::unique_ptr<SegmentWriter>(new SegmentWriter());
  const size_t bytes = kSegmentHeaderSize + kSegmentSampleStride * capacity;
  if (!writer->file_.CreateRw(path, bytes)) {
    return nullptr;
  }
  writer->capacity_ = capacity;
  writer->max_capacity_ = max_capacity;
  std::memcpy(writer->header_.magic, kSegmentMagic, sizeof(kSegmentMagic));
  writer->header_.version = kSegmentVersion;
  writer->header_.flags = 0;
  writer->header_.series_key = series_key;
  writer->header_.capacity = capacity;
  writer->header_.header_crc = HeaderCrc(writer->header_);
  // Land an unsealed header immediately so a mid-write kill leaves a file a
  // reader classifies deterministically (kTruncated: not sealed).
  std::memcpy(writer->file_.data(), &writer->header_, kSegmentHeaderSize);
  return writer;
}

int64_t* SegmentWriter::delta_column() {
  return reinterpret_cast<int64_t*>(file_.data() + kSegmentHeaderSize);
}

double* SegmentWriter::value_column() {
  return reinterpret_cast<double*>(file_.data() + kSegmentHeaderSize +
                                   sizeof(int64_t) * capacity_);
}

std::span<const int64_t> SegmentWriter::deltas() const {
  return {reinterpret_cast<const int64_t*>(file_.data() + kSegmentHeaderSize),
          count()};
}

std::span<const double> SegmentWriter::values() const {
  return {reinterpret_cast<const double*>(file_.data() + kSegmentHeaderSize +
                                          sizeof(int64_t) * capacity_),
          count()};
}

bool SegmentWriter::GrowTo(size_t new_capacity) {
  AMPERE_CHECK(new_capacity > capacity_) << "segment growth must enlarge";
  const size_t new_bytes =
      kSegmentHeaderSize + kSegmentSampleStride * new_capacity;
  const size_t committed = count();
  // The value column moves when capacity changes; stash the committed
  // doubles, grow, then land them at the new offset. (A memmove after the
  // remap would also work, but the remap may relocate the base address, so
  // copy out first — the chunk is at most one segment of doubles.)
  std::vector<double> saved(committed);
  if (committed > 0) {
    std::memcpy(saved.data(),
                file_.data() + kSegmentHeaderSize + sizeof(int64_t) * capacity_,
                sizeof(double) * committed);
  }
  if (!file_.Grow(new_bytes)) {
    return false;
  }
  capacity_ = new_capacity;
  header_.capacity = new_capacity;
  if (committed > 0) {
    std::memcpy(value_column(), saved.data(), sizeof(double) * committed);
  }
  return true;
}

size_t SegmentWriter::AppendBatch(std::span<const TimePoint> batch) {
  AMPERE_CHECK(!sealed()) << "append to sealed segment " << file_.path();
  size_t accepted = 0;
  for (const TimePoint& point : batch) {
    const size_t n = count();
    if (n == max_capacity_) {
      break;  // Full: the cold store seals and rolls to a new segment.
    }
    if (n == capacity_) {
      size_t next = capacity_ * 2;
      if (next > max_capacity_) {
        next = max_capacity_;
      }
      if (!GrowTo(next)) {
        break;  // Disk trouble: report what landed; caller degrades.
      }
    }
    const int64_t t = point.time.micros();
    if (n == 0) {
      header_.first_time_us = t;
      delta_column()[0] = 0;
    } else {
      const int64_t delta = t - header_.last_time_us;
      AMPERE_DCHECK(delta >= 0) << "out-of-order spill into " << file_.path();
      delta_column()[n] = delta;
    }
    value_column()[n] = point.value;
    header_.last_time_us = t;
    header_.count = n + 1;
    ++accepted;
  }
  ReleaseWrittenPages();
  return accepted;
}

void SegmentWriter::ReleaseWrittenPages() {
  if (capacity_ != max_capacity_) {
    return;  // Growth still relocates the value column; offsets not final.
  }
  const size_t n = count();
  ReleaseColumn(kSegmentHeaderSize, sizeof(int64_t) * n, &released_delta_);
  ReleaseColumn(kSegmentHeaderSize + sizeof(int64_t) * capacity_,
                sizeof(double) * n, &released_value_);
}

void SegmentWriter::ReleaseColumn(size_t column_offset, size_t written_bytes,
                                  size_t* released_end) {
  // 4096 is a granule for rate-limiting the madvise calls, not an assumed
  // page size — ReleaseWritten aligns to the real page inward, so a larger
  // page just batches more.
  constexpr size_t kGranule = 4096;
  if (*released_end < column_offset) {
    *released_end = column_offset;
  }
  const size_t frontier = column_offset + written_bytes;
  if (frontier < *released_end + kGranule) {
    return;  // Less than a granule newly completed; wait for more.
  }
  file_.ReleaseWritten(*released_end, frontier);
  *released_end = frontier / kGranule * kGranule;
}

StoreStatus SegmentWriter::Seal() {
  if (sealed()) {
    return StoreStatus{};
  }
  AMPERE_DCHECK(count() > 0) << "sealing empty segment " << file_.path();
  const size_t committed = count();
  if (committed < capacity_) {
    // Trim the slack: move the value column down to its packed offset and
    // shrink the file to exactly header + committed columns.
    std::vector<double> saved(committed);
    std::memcpy(saved.data(), value_column(), sizeof(double) * committed);
    const size_t packed =
        kSegmentHeaderSize + kSegmentSampleStride * committed;
    if (!file_.Grow(packed)) {
      return MakeError(StoreError::kIo, 0,
                       "shrink failed for " + file_.path());
    }
    capacity_ = committed;
    header_.capacity = committed;
    std::memcpy(value_column(), saved.data(), sizeof(double) * committed);
  }
  uint32_t crc = StoreCrc32(delta_column(), sizeof(int64_t) * committed);
  crc = StoreCrc32(value_column(), sizeof(double) * committed, crc);
  header_.data_crc = crc;
  header_.flags |= kSegmentFlagSealed;
  header_.header_crc = HeaderCrc(header_);
  std::memcpy(file_.data(), &header_, kSegmentHeaderSize);
  if (!file_.Sync()) {
    return MakeError(StoreError::kIo, 0, "sync failed for " + file_.path());
  }
  // Unmap: a sealed segment holds no dirty pages; queries reopen read-only.
  const std::string path = file_.path();
  file_.Close();
  return StoreStatus{};
}

// --- SegmentReader ---------------------------------------------------------

SegmentReader::OpenResult SegmentReader::Open(const std::string& path) {
  OpenResult result;
  auto reader = std::unique_ptr<SegmentReader>(new SegmentReader());
  if (!reader->file_.OpenRo(path)) {
    result.status =
        MakeError(StoreError::kIo, 0, "cannot open segment " + path);
    return result;
  }
  const MappedFile& file = reader->file_;
  if (file.size() < kSegmentHeaderSize) {
    result.status = MakeError(StoreError::kTruncated, file.size(),
                              "file shorter than segment header in " + path);
    return result;
  }
  SegmentHeader& header = reader->header_;
  std::memcpy(&header, file.data(), kSegmentHeaderSize);
  if (std::memcmp(header.magic, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    result.status =
        MakeError(StoreError::kBadMagic, 0, "not an AMPTSDB1 file: " + path);
    return result;
  }
  if (HeaderCrc(header) != header.header_crc) {
    result.status = MakeError(StoreError::kBadCrc, kOffHeaderCrc,
                              "header CRC mismatch in " + path);
    return result;
  }
  if (header.version != kSegmentVersion) {
    result.status =
        MakeError(StoreError::kVersionSkew, kOffVersion,
                  "unsupported segment version " +
                      std::to_string(header.version) + " in " + path);
    return result;
  }
  if ((header.flags & kSegmentFlagSealed) == 0) {
    result.status =
        MakeError(StoreError::kTruncated, kOffFlags,
                  "unsealed segment (mid-write kill?) in " + path);
    return result;
  }
  if (header.count == 0) {
    result.status = MakeError(StoreError::kBadRecord, kOffCount,
                              "sealed segment with zero samples in " + path);
    return result;
  }
  if (header.capacity > kMaxSaneCapacity || header.count > header.capacity) {
    result.status = MakeError(StoreError::kCorruptLength, kOffCapacity,
                              "impossible count/capacity in " + path);
    return result;
  }
  const size_t need = kSegmentHeaderSize +
                      sizeof(int64_t) * static_cast<size_t>(header.capacity) +
                      sizeof(double) * static_cast<size_t>(header.count);
  if (file.size() < need) {
    result.status = MakeError(StoreError::kTruncated, file.size(),
                              "file ends before declared columns in " + path);
    return result;
  }
  const auto deltas = reader->deltas();
  const auto values = reader->values();
  uint32_t crc = StoreCrc32(deltas.data(), sizeof(int64_t) * deltas.size());
  crc = StoreCrc32(values.data(), sizeof(double) * values.size(), crc);
  if (crc != header.data_crc) {
    result.status = MakeError(StoreError::kBadCrc, kOffDataCrc,
                              "data CRC mismatch in " + path);
    return result;
  }
  // Decode-validate the timestamp column: delta[0] must be 0, deltas
  // non-negative, and the prefix sum must land exactly on last_time_us.
  if (deltas[0] != 0) {
    result.status = MakeError(StoreError::kBadRecord, kSegmentHeaderSize,
                              "first delta nonzero in " + path);
    return result;
  }
  int64_t t = header.first_time_us;
  for (size_t i = 1; i < deltas.size(); ++i) {
    const int64_t delta = deltas[i];
    if (delta < 0 ||
        t > std::numeric_limits<int64_t>::max() - delta) {  // Would wrap.
      result.status =
          MakeError(StoreError::kBadRecord,
                    kSegmentHeaderSize + sizeof(int64_t) * i,
                    "negative or overflowing delta in " + path);
      return result;
    }
    t += delta;
  }
  if (t != header.last_time_us) {
    result.status = MakeError(StoreError::kBadRecord, kOffCount,
                              "delta sum does not reach last_time_us in " +
                                  path);
    return result;
  }
  result.reader = std::move(reader);
  return result;
}

std::span<const int64_t> SegmentReader::deltas() const {
  return {reinterpret_cast<const int64_t*>(file_.data() + kSegmentHeaderSize),
          count()};
}

std::span<const double> SegmentReader::values() const {
  return {reinterpret_cast<const double*>(
              file_.data() + kSegmentHeaderSize +
              sizeof(int64_t) * static_cast<size_t>(header_.capacity)),
          count()};
}

}  // namespace ampere
