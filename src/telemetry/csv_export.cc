#include "src/telemetry/csv_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "src/common/check.h"

namespace ampere {

void ExportCsv(const TimeSeriesDb& db, std::span<const std::string> series,
               std::ostream& out) {
  AMPERE_CHECK(!series.empty());
  out << "minutes";
  for (const std::string& name : series) {
    out << "," << name;
  }
  out << "\n";

  // Row index: union of timestamps -> per-series value. The stitched read
  // walks cold (spilled) history then the hot tail, in time order, so the
  // exported bytes are identical whether or not a cold store is attached.
  std::map<int64_t, std::vector<std::pair<size_t, double>>> rows;
  for (size_t column = 0; column < series.size(); ++column) {
    db.SeriesStitched(series[column]).ForEachPoint([&](const TimePoint& p) {
      rows[p.time.micros()].emplace_back(column, p.value);
    });
  }

  char buf[64];
  for (const auto& [micros, cells] : rows) {
    std::snprintf(buf, sizeof(buf), "%.4f",
                  SimTime::Micros(micros).minutes());
    out << buf;
    size_t cell_index = 0;
    for (size_t column = 0; column < series.size(); ++column) {
      out << ",";
      // Cells arrive ordered by column (emplaced in column order).
      if (cell_index < cells.size() && cells[cell_index].first == column) {
        std::snprintf(buf, sizeof(buf), "%.4f", cells[cell_index].second);
        out << buf;
        ++cell_index;
      }
    }
    out << "\n";
  }
}

void ExportCsvFile(const TimeSeriesDb& db,
                   std::span<const std::string> series,
                   const std::string& path) {
  std::ofstream out(path);
  AMPERE_CHECK(out.good()) << "cannot open " << path << " for writing";
  ExportCsv(db, series, out);
  AMPERE_CHECK(out.good()) << "write to " << path << " failed";
}

}  // namespace ampere
