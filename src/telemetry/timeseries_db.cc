#include "src/telemetry/timeseries_db.h"

#include <algorithm>

namespace ampere {

SeriesId TimeSeriesDb::Intern(std::string_view name) {
  // Heterogeneous find first: repeat interns (and the string-API shim) pay
  // one hash probe and allocate nothing.
  auto it = index_.find(name);
  if (it != index_.end()) {
    return SeriesId(it->second);
  }
  AMPERE_CHECK(points_.size() < SeriesId::kInvalid) << "series table full";
  const uint32_t id = static_cast<uint32_t>(points_.size());
  names_.emplace_back(name);
  points_.emplace_back();
  index_.emplace(names_.back(), id);
  return SeriesId(id);
}

SeriesId TimeSeriesDb::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return SeriesId();
  }
  return SeriesId(it->second);
}

void TimeSeriesDb::ReservePoints(SeriesId id, size_t expected_points) {
  AMPERE_CHECK(id.valid() && id.index() < points_.size())
      << "ReservePoints through invalid SeriesId";
  points_[id.index()].reserve(expected_points);
}

std::span<const TimePoint> TimeSeriesDb::QueryView(SeriesId id, SimTime from,
                                                   SimTime to) const {
  auto points = Series(id);
  auto lo = std::lower_bound(
      points.begin(), points.end(), from,
      [](const TimePoint& p, SimTime t) { return p.time < t; });
  auto hi = std::upper_bound(
      points.begin(), points.end(), to,
      [](SimTime t, const TimePoint& p) { return t < p.time; });
  return points.subspan(static_cast<size_t>(lo - points.begin()),
                        static_cast<size_t>(hi - lo));
}

const std::string& TimeSeriesDb::Name(SeriesId id) const {
  AMPERE_CHECK(id.valid() && id.index() < names_.size())
      << "Name of invalid SeriesId";
  return names_[id.index()];
}

void TimeSeriesDb::Reserve(size_t expected_series) {
  index_.reserve(expected_series);
  names_.reserve(expected_series);
  points_.reserve(expected_series);
}

std::vector<double> TimeSeriesDb::Values(std::string_view series) const {
  auto points = Series(series);
  std::vector<double> values;
  values.reserve(points.size());
  for (const TimePoint& p : points) {
    values.push_back(p.value);
  }
  return values;
}

std::vector<TimePoint> TimeSeriesDb::Query(std::string_view series,
                                           SimTime from, SimTime to) const {
  auto view = QueryView(series, from, to);
  return std::vector<TimePoint>(view.begin(), view.end());
}

std::vector<std::string> TimeSeriesDb::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    if (!points_[i].empty()) {
      names.push_back(names_[i]);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t TimeSeriesDb::TotalPoints() const {
  size_t n = 0;
  for (const auto& points : points_) {
    n += points.size();
  }
  return n;
}

}  // namespace ampere
