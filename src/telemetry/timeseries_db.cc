#include "src/telemetry/timeseries_db.h"

#include <algorithm>

#include "src/common/check.h"

namespace ampere {

void TimeSeriesDb::Append(std::string_view series, SimTime t, double value) {
  // Heterogeneous find first: in steady state (420 servers x 1/min x 24 h
  // per run) the series always exists, and this path allocates nothing.
  auto it = series_.find(series);
  if (it == series_.end()) {
    // First sample of a new series: pay the one-time string construction.
    it = series_.emplace(std::string(series), std::vector<TimePoint>())
             .first;
  }
  auto& points = it->second;
  AMPERE_CHECK(points.empty() || points.back().time <= t)
      << "out-of-order append to series " << series;
  points.push_back(TimePoint{t, value});
}

void TimeSeriesDb::Reserve(size_t expected_series) {
  series_.reserve(expected_series);
}

std::span<const TimePoint> TimeSeriesDb::Series(
    std::string_view series) const {
  auto it = series_.find(series);
  if (it == series_.end()) {
    return {};
  }
  return it->second;
}

std::vector<double> TimeSeriesDb::Values(std::string_view series) const {
  auto points = Series(series);
  std::vector<double> values;
  values.reserve(points.size());
  for (const TimePoint& p : points) {
    values.push_back(p.value);
  }
  return values;
}

std::optional<TimePoint> TimeSeriesDb::Latest(std::string_view series) const {
  auto points = Series(series);
  if (points.empty()) {
    return std::nullopt;
  }
  return points.back();
}

std::vector<TimePoint> TimeSeriesDb::Query(std::string_view series,
                                           SimTime from, SimTime to) const {
  auto points = Series(series);
  auto lo = std::lower_bound(
      points.begin(), points.end(), from,
      [](const TimePoint& p, SimTime t) { return p.time < t; });
  auto hi = std::upper_bound(
      points.begin(), points.end(), to,
      [](SimTime t, const TimePoint& p) { return t < p.time; });
  return std::vector<TimePoint>(lo, hi);
}

std::vector<std::string> TimeSeriesDb::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t TimeSeriesDb::TotalPoints() const {
  size_t n = 0;
  for (const auto& [_, points] : series_) {
    n += points.size();
  }
  return n;
}

}  // namespace ampere
