#include "src/telemetry/timeseries_db.h"

#include <algorithm>

#include "src/telemetry/cold_store.h"

namespace ampere {

std::vector<TimePoint> StitchedView::Materialize() const {
  std::vector<TimePoint> out;
  out.reserve(size());
  ForEachPoint([&out](const TimePoint& point) { out.push_back(point); });
  return out;
}

SeriesId TimeSeriesDb::Intern(std::string_view name) {
  // Heterogeneous find first: repeat interns (and the string-API shim) pay
  // one hash probe and allocate nothing.
  auto it = index_.find(name);
  if (it != index_.end()) {
    return SeriesId(it->second);
  }
  AMPERE_CHECK(points_.size() < SeriesId::kInvalid) << "series table full";
  const uint32_t id = static_cast<uint32_t>(points_.size());
  names_.emplace_back(name);
  points_.emplace_back();
  index_.emplace(names_.back(), id);
  return SeriesId(id);
}

SeriesId TimeSeriesDb::Find(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return SeriesId();
  }
  return SeriesId(it->second);
}

void TimeSeriesDb::ReservePoints(SeriesId id, size_t expected_points) {
  AMPERE_CHECK(id.valid() && id.index() < points_.size())
      << "ReservePoints through invalid SeriesId";
  size_t target = expected_points;
  if (cold_ != nullptr && target > hot_budget_) {
    // Spilling caps hot occupancy at the budget; reserving the full run
    // length would defeat the bounded-RSS contract.
    target = hot_budget_;
  }
  points_[id.index()].reserve(target);
}

void TimeSeriesDb::AttachColdStore(ColdStore* store,
                                   size_t hot_budget_samples) {
  AMPERE_CHECK(store != nullptr) << "AttachColdStore with null store";
  AMPERE_CHECK(cold_ == nullptr) << "cold store already attached";
  AMPERE_CHECK(hot_budget_samples >= 2)
      << "hot budget must keep at least two samples";
  cold_ = store;
  hot_budget_ = hot_budget_samples;
  spill_trigger_ = hot_budget_samples;
  // Restart path: series living only in the reopened store become visible
  // to Find / SeriesNames without a hot append.
  for (const std::string& name : store->SeriesNames()) {
    Intern(name);
  }
}

void TimeSeriesDb::SpillOldest(SeriesId id) {
  std::vector<TimePoint>& points = points_[id.index()];
  const size_t keep = std::max<size_t>(1, hot_budget_ / 2);
  if (points.size() <= keep) {
    return;
  }
  const size_t n = points.size() - keep;
  cold_->AppendBatch(names_[id.index()],
                     std::span<const TimePoint>(points.data(), n));
  points.erase(points.begin(),
               points.begin() + static_cast<std::ptrdiff_t>(n));
  samples_spilled_ += n;
}

StitchedView TimeSeriesDb::QueryStitched(SeriesId id, SimTime from,
                                         SimTime to) const {
  std::vector<ColdPiece> cold;
  if (cold_ != nullptr && id.valid() && id.index() < names_.size()) {
    cold_->QueryPieces(names_[id.index()], from, to, &cold);
  }
  return StitchedView(std::move(cold), QueryView(id, from, to));
}

StitchedView TimeSeriesDb::SeriesStitched(SeriesId id) const {
  return QueryStitched(id, SimTime::Micros(std::numeric_limits<int64_t>::min()),
                       SimTime::Micros(std::numeric_limits<int64_t>::max()));
}

std::span<const TimePoint> TimeSeriesDb::QueryView(SeriesId id, SimTime from,
                                                   SimTime to) const {
  auto points = Series(id);
  auto lo = std::lower_bound(
      points.begin(), points.end(), from,
      [](const TimePoint& p, SimTime t) { return p.time < t; });
  auto hi = std::upper_bound(
      points.begin(), points.end(), to,
      [](SimTime t, const TimePoint& p) { return t < p.time; });
  return points.subspan(static_cast<size_t>(lo - points.begin()),
                        static_cast<size_t>(hi - lo));
}

const std::string& TimeSeriesDb::Name(SeriesId id) const {
  AMPERE_CHECK(id.valid() && id.index() < names_.size())
      << "Name of invalid SeriesId";
  return names_[id.index()];
}

void TimeSeriesDb::Reserve(size_t expected_series) {
  index_.reserve(expected_series);
  names_.reserve(expected_series);
  points_.reserve(expected_series);
}

std::vector<double> TimeSeriesDb::Values(std::string_view series) const {
  // Routed through the stitched read so spilled history stays visible.
  StitchedView view = SeriesStitched(series);
  std::vector<double> values;
  values.reserve(view.size());
  view.ForEachPoint(
      [&values](const TimePoint& p) { values.push_back(p.value); });
  return values;
}

std::vector<TimePoint> TimeSeriesDb::Query(std::string_view series,
                                           SimTime from, SimTime to) const {
  // Routed through the stitched read so spilled history stays visible.
  return QueryStitched(series, from, to).Materialize();
}

std::vector<std::string> TimeSeriesDb::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    if (!points_[i].empty() ||
        (cold_ != nullptr && cold_->SamplesForSeries(names_[i]) > 0)) {
      names.push_back(names_[i]);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t TimeSeriesDb::TotalPoints() const {
  size_t n = 0;
  for (const auto& points : points_) {
    n += points.size();
  }
  if (cold_ != nullptr) {
    n += static_cast<size_t>(cold_->total_samples());
  }
  return n;
}

}  // namespace ampere
