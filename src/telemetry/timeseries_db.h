// In-memory time-series database.
//
// The production deployment stores one power sample per server per minute in
// MySQL behind a RESTful query API (§3.3). Here the same role is played by an
// append-only in-memory store with range queries; the controller and the
// benches consume the identical query surface (latest value, range scan,
// whole-series extraction).

#ifndef SRC_TELEMETRY_TIMESERIES_DB_H_
#define SRC_TELEMETRY_TIMESERIES_DB_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"

namespace ampere {

struct TimePoint {
  SimTime time;
  double value = 0.0;
};

class TimeSeriesDb {
 public:
  // Appends a point; timestamps within one series must be non-decreasing
  // (the monitor samples monotonically).
  void Append(std::string_view series, SimTime t, double value);

  // Whole series (empty span if the series does not exist).
  std::span<const TimePoint> Series(std::string_view series) const;

  // Values only, in time order.
  std::vector<double> Values(std::string_view series) const;

  // Most recent point, if any.
  std::optional<TimePoint> Latest(std::string_view series) const;

  // Points with from <= time <= to.
  std::vector<TimePoint> Query(std::string_view series, SimTime from,
                               SimTime to) const;

  std::vector<std::string> SeriesNames() const;
  size_t TotalPoints() const;

 private:
  std::unordered_map<std::string, std::vector<TimePoint>> series_;
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_TIMESERIES_DB_H_
