// In-memory time-series database.
//
// The production deployment stores one power sample per server per minute in
// MySQL behind a RESTful query API (§3.3). Here the same role is played by an
// append-only in-memory store with range queries; the controller and the
// benches consume the identical query surface (latest value, range scan,
// whole-series extraction).
//
// Two access tiers:
//   1. Interned handles (SeriesId) — the hot path. A producer interns each
//      series name once (paying the hash + string copy), then appends through
//      the integer handle: a bounds-checked vector index, no hashing, no
//      string formatting, and (after ReservePoints) no allocation.
//   2. String names — the convenience/export surface. Kept as a thin shim
//      over interning so tests, benches, and CSV export read naturally.
//
// Storage is a flat std::vector<std::vector<TimePoint>> indexed by SeriesId;
// the name->id map is only consulted at intern/lookup time, never per append.
//
// An optional persistent cold tier (src/telemetry/cold_store.h) bounds the
// hot tier's RSS: AttachColdStore sets a per-series hot budget, and appends
// that push a series past it spill the oldest run of points into
// memory-mapped segment files through the ordinary AppendBatch span path.
// Spilling changes where history lives, not what it says — QueryStitched /
// SeriesStitched return the full hot+cold history losslessly (bit-exact
// doubles, exact microsecond timestamps), so export and analysis bytes are
// identical with the tier on or off. With no store attached (the default)
// the spill machinery costs one integer compare per append.

#ifndef SRC_TELEMETRY_TIMESERIES_DB_H_
#define SRC_TELEMETRY_TIMESERIES_DB_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace ampere {

class ColdStore;  // src/telemetry/cold_store.h

struct TimePoint {
  SimTime time;
  double value = 0.0;
};

// One contiguous run of cold samples, decoded lazily. `values` is a
// zero-copy span over the mapped value column (raw IEEE-754 bits, so reads
// are bit-exact); timestamps reconstruct exactly as base_time plus the
// running sum of `deltas[1..]` (microsecond deltas — deltas[0] is the delta
// from the sample *before* this piece and is ignored when decoding).
struct ColdPiece {
  SimTime base_time;                // Absolute time of values[0].
  std::span<const int64_t> deltas;  // Same length as values.
  std::span<const double> values;

  size_t size() const { return values.size(); }
};

// A stitched hot+cold query result: cold pieces in time order followed by
// the in-RAM hot tail, all zero-copy. Spans are invalidated by the next
// Append to the same series (hot growth, spill, or segment seal); consume
// before resuming appends. With the cold tier off this is just a wrapper
// around the hot span, so callers can migrate unconditionally.
class StitchedView {
 public:
  StitchedView() = default;
  StitchedView(std::vector<ColdPiece> cold, std::span<const TimePoint> hot)
      : cold_(std::move(cold)), hot_(hot) {
    for (const ColdPiece& piece : cold_) {
      cold_size_ += piece.size();
    }
  }

  size_t size() const { return cold_size_ + hot_.size(); }
  bool empty() const { return size() == 0; }
  std::span<const ColdPiece> cold_pieces() const { return cold_; }
  std::span<const TimePoint> hot() const { return hot_; }

  // Visits every point in time order (cold pieces, then the hot tail).
  template <typename Fn>
  void ForEachPoint(Fn&& fn) const {
    for (const ColdPiece& piece : cold_) {
      SimTime t = piece.base_time;
      for (size_t i = 0; i < piece.values.size(); ++i) {
        if (i > 0) {
          t = t + SimTime::Micros(piece.deltas[i]);
        }
        fn(TimePoint{t, piece.values[i]});
      }
    }
    for (const TimePoint& point : hot_) {
      fn(point);
    }
  }

  // Copying convenience for tests/analysis.
  std::vector<TimePoint> Materialize() const;

 private:
  std::vector<ColdPiece> cold_;
  std::span<const TimePoint> hot_;
  size_t cold_size_ = 0;
};

// Opaque interned-series handle. Default-constructed handles are invalid;
// valid handles come from TimeSeriesDb::Intern / Find and stay valid for the
// lifetime of that database (series are never removed).
class SeriesId {
 public:
  SeriesId() = default;
  bool valid() const { return value_ != kInvalid; }
  uint32_t index() const { return value_; }
  friend bool operator==(SeriesId a, SeriesId b) {
    return a.value_ == b.value_;
  }
  friend bool operator!=(SeriesId a, SeriesId b) {
    return a.value_ != b.value_;
  }

 private:
  friend class TimeSeriesDb;
  explicit SeriesId(uint32_t value) : value_(value) {}
  static constexpr uint32_t kInvalid = 0xffffffffu;
  uint32_t value_ = kInvalid;
};

class TimeSeriesDb {
 public:
  // --- Interned-handle tier (hot path) -----------------------------------

  // Returns the handle for `name`, creating an empty series on first use.
  // The only place a string is hashed or copied; producers call this once
  // per series at setup time (PowerMonitor pre-interns its whole fleet).
  SeriesId Intern(std::string_view name);

  // Lookup without creation; invalid handle if the series does not exist.
  SeriesId Find(std::string_view name) const;

  // Appends a point through a handle: one bounds check + vector push_back.
  // Timestamps within one series must be non-decreasing (the monitor
  // samples monotonically). This is the hot path of every run — one call
  // per recorded aggregate per minute — and after ReservePoints it touches
  // no allocator.
  void Append(SeriesId id, SimTime t, double value) {
    AMPERE_CHECK(id.valid() && id.index() < points_.size())
        << "append through invalid SeriesId";
    std::vector<TimePoint>& points = points_[id.index()];
    AMPERE_CHECK(points.empty() || points.back().time <= t)
        << "out-of-order append to series " << names_[id.index()];
    points.push_back(TimePoint{t, value});
    if (points.size() >= spill_trigger_) {  // SIZE_MAX when no cold tier.
      SpillOldest(id);
    }
  }

  // Bulk append through a handle: one bounds/order check for the whole
  // batch, then a single ranged insert. Semantically identical to calling
  // Append once per element (points must be internally non-decreasing and
  // start at or after the series' current tail); the batch form exists so
  // flush-style producers (the sharded sampler draining its per-row scratch,
  // ingest of a precomputed trace) pay one call and at most one growth
  // per batch instead of per point. After ReservePoints it allocates
  // nothing.
  void AppendBatch(SeriesId id, std::span<const TimePoint> batch) {
    if (batch.empty()) {
      return;
    }
    AMPERE_CHECK(id.valid() && id.index() < points_.size())
        << "batch append through invalid SeriesId";
    std::vector<TimePoint>& points = points_[id.index()];
    AMPERE_CHECK(points.empty() || points.back().time <= batch.front().time)
        << "out-of-order batch append to series " << names_[id.index()];
    for (size_t i = 1; i < batch.size(); ++i) {
      AMPERE_CHECK(batch[i - 1].time <= batch[i].time)
          << "unsorted batch for series " << names_[id.index()];
    }
    points.insert(points.end(), batch.begin(), batch.end());
    if (points.size() >= spill_trigger_) {  // SIZE_MAX when no cold tier.
      SpillOldest(id);
    }
  }

  // Pre-sizes one series' storage for `expected_points` total points so the
  // steady-state Append never reallocates.
  void ReservePoints(SeriesId id, size_t expected_points);

  // Whole series / range views by handle. Spans are invalidated by the next
  // Append to the same series (vector growth); consume before resampling.
  // With a cold store attached these see the HOT TIER ONLY (the most recent
  // points within the budget) — full-history readers use QueryStitched.
  std::span<const TimePoint> Series(SeriesId id) const {
    if (!id.valid() || id.index() >= points_.size()) {
      return {};
    }
    return points_[id.index()];
  }
  std::span<const TimePoint> QueryView(SeriesId id, SimTime from,
                                       SimTime to) const;
  std::optional<TimePoint> Latest(SeriesId id) const {
    auto points = Series(id);
    if (points.empty()) {
      return std::nullopt;
    }
    return points.back();
  }

  // Interned-name reverse lookup (valid handles only).
  const std::string& Name(SeriesId id) const;

  // Number of interned series (including pre-interned, still-empty ones).
  size_t NumSeries() const { return points_.size(); }

  // --- Cold tier (optional persistent spill) ------------------------------

  // Attaches a cold store and arms the spill policy: once a series' hot
  // vector reaches `hot_budget_samples` points, the oldest half spills into
  // `store` (through its AppendBatch span path) and is erased from RAM, so
  // per-series hot occupancy never exceeds the budget. Series already in
  // `store` (the OpenExisting restart path) are interned so lookups and
  // SeriesNames see them. `store` must outlive this db; budget >= 2.
  void AttachColdStore(ColdStore* store, size_t hot_budget_samples);

  bool spill_enabled() const { return cold_ != nullptr; }
  size_t hot_budget_samples() const { return hot_budget_; }
  uint64_t samples_spilled() const { return samples_spilled_; }
  ColdStore* cold_store() const { return cold_; }

  // Full-history reads across both tiers: cold pieces (zero-copy views of
  // the mapped columns) stitched with the hot tail. With no cold store
  // attached these are exactly the hot-span reads, so export/analysis code
  // calls them unconditionally and gets identical bytes either way.
  StitchedView SeriesStitched(SeriesId id) const;
  StitchedView QueryStitched(SeriesId id, SimTime from, SimTime to) const;
  StitchedView SeriesStitched(std::string_view series) const {
    return SeriesStitched(Find(series));
  }
  StitchedView QueryStitched(std::string_view series, SimTime from,
                             SimTime to) const {
    return QueryStitched(Find(series), from, to);
  }

  // --- String tier (shim over interning) ---------------------------------

  // Appends a point; interns the name on first use. Heterogeneous lookup
  // keeps the repeat path allocation-free, but still pays one hash probe —
  // hot producers should hold a SeriesId instead.
  void Append(std::string_view series, SimTime t, double value) {
    Append(Intern(series), t, value);
  }

  // Capacity hint: pre-sizes the name map and series tables for
  // `expected_series` entries so interning never rehashes mid-run.
  void Reserve(size_t expected_series);

  // Whole series (empty span if the series does not exist).
  std::span<const TimePoint> Series(std::string_view series) const {
    return Series(Find(series));
  }

  // Points with from <= time <= to, as a view (no copy).
  std::span<const TimePoint> QueryView(std::string_view series, SimTime from,
                                       SimTime to) const {
    return QueryView(Find(series), from, to);
  }

  // Values only, in time order. Copying: export/analysis surface.
  // [[deprecated]] — prefer QueryView / SeriesStitched (zero-copy, and the
  // stitched form sees the cold tier). Kept as a shim for existing callers;
  // reads the full hot+cold history.
  std::vector<double> Values(std::string_view series) const;

  // Most recent point, if any.
  std::optional<TimePoint> Latest(std::string_view series) const {
    return Latest(Find(series));
  }

  // Points with from <= time <= to. Copying: export/analysis surface.
  // [[deprecated]] — prefer QueryView / QueryStitched (zero-copy, and the
  // stitched form sees the cold tier). Kept as a shim for existing callers;
  // reads the full hot+cold history.
  std::vector<TimePoint> Query(std::string_view series, SimTime from,
                               SimTime to) const;

  // Names of series that hold at least one point (in either tier), sorted.
  // Pre-interned but never-appended series are deliberately excluded:
  // interning is a capacity hint, not an observable write.
  std::vector<std::string> SeriesNames() const;
  // Total points across both tiers.
  size_t TotalPoints() const;

 private:
  // Spills the oldest points of a series past the hot budget into the cold
  // store and erases them from RAM. Called from the append paths when a
  // series reaches the budget; keeps the newest half (always >= 1 point, so
  // Latest and the append-order check stay hot-only).
  void SpillOldest(SeriesId id);
  // Transparent (heterogeneous) hash/equal: find() and the insert-or-lookup
  // in Intern accept std::string_view without materializing a std::string.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<std::string, uint32_t, TransparentHash, std::equal_to<>>
      index_;
  std::vector<std::string> names_;             // Indexed by SeriesId.
  std::vector<std::vector<TimePoint>> points_;  // Indexed by SeriesId.

  // Cold tier; null (and spill_trigger_ = SIZE_MAX, keeping the append-path
  // branch always-false) until AttachColdStore.
  ColdStore* cold_ = nullptr;
  size_t hot_budget_ = 0;
  size_t spill_trigger_ = std::numeric_limits<size_t>::max();
  uint64_t samples_spilled_ = 0;
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_TIMESERIES_DB_H_
