// In-memory time-series database.
//
// The production deployment stores one power sample per server per minute in
// MySQL behind a RESTful query API (§3.3). Here the same role is played by an
// append-only in-memory store with range queries; the controller and the
// benches consume the identical query surface (latest value, range scan,
// whole-series extraction).

#ifndef SRC_TELEMETRY_TIMESERIES_DB_H_
#define SRC_TELEMETRY_TIMESERIES_DB_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"

namespace ampere {

struct TimePoint {
  SimTime time;
  double value = 0.0;
};

class TimeSeriesDb {
 public:
  // Appends a point; timestamps within one series must be non-decreasing
  // (the monitor samples monotonically). The hot path of every run: one
  // call per server per minute. Heterogeneous lookup keeps it
  // allocation-free — no temporary std::string per sample.
  void Append(std::string_view series, SimTime t, double value);

  // Capacity hint: pre-sizes the series map for `expected_series` entries
  // (the monitor calls this once with its series count so the steady state
  // never rehashes).
  void Reserve(size_t expected_series);

  // Whole series (empty span if the series does not exist).
  std::span<const TimePoint> Series(std::string_view series) const;

  // Values only, in time order.
  std::vector<double> Values(std::string_view series) const;

  // Most recent point, if any.
  std::optional<TimePoint> Latest(std::string_view series) const;

  // Points with from <= time <= to.
  std::vector<TimePoint> Query(std::string_view series, SimTime from,
                               SimTime to) const;

  std::vector<std::string> SeriesNames() const;
  size_t TotalPoints() const;

 private:
  // Transparent (heterogeneous) hash/equal: find() and the insert-or-lookup
  // in Append accept std::string_view without materializing a std::string.
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using SeriesMap = std::unordered_map<std::string, std::vector<TimePoint>,
                                       TransparentHash, std::equal_to<>>;

  SeriesMap series_;
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_TIMESERIES_DB_H_
