// Per-minute power telemetry.
//
// Models the paper's in-house power monitor (§3.3): every minute it reads
// each server's draw through IPMI (with measurement noise and watt-level
// quantization), aggregates to rack/row/data-center level with the streaming
// pipeline, and persists the aggregates in the time-series database. The
// monitor itself is stateless across ticks apart from caching the latest
// readings (the paper's monitor is "stateless for easy recovery" — all
// history lives in the database).
//
// Virtual groups support the controlled-experiment methodology of §4.1.2:
// a named set of servers (e.g. "the experiment group": servers with even
// ids) gets its own aggregated series, exactly as the real evaluation
// aggregated the two parity-split halves of one row.

#ifndef SRC_TELEMETRY_POWER_MONITOR_H_
#define SRC_TELEMETRY_POWER_MONITOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/faults/fault_injector.h"
#include "src/telemetry/timeseries_db.h"

namespace ampere {

// A stale-tagged power reading. Production telemetry is not guaranteed
// fresh: the pipeline stalls, feeds black out, readings drop. Consumers that
// care about safety (the controller) read these instead of the bare watt
// accessors and decide how much to trust an aging value.
struct PowerReading {
  double watts = 0.0;
  // When the value was last actually refreshed; negative = never sampled.
  SimTime stamp = SimTime::Micros(-1);
  // True if the feed is inside a blackout window *now* (the value cannot be
  // refreshed until the window ends) or a member row's feed is dark.
  bool blacked_out = false;

  bool valid() const { return stamp >= SimTime(); }
  SimTime Age(SimTime now) const {
    return valid() ? now - stamp : SimTime::Max();
  }
};

struct PowerMonitorConfig {
  SimTime interval = SimTime::Minutes(1);
  // Per-server Gaussian measurement noise (IPMI readings are not exact).
  double noise_sigma_watts = 1.0;
  // Quantize per-server readings to whole watts like BMC firmware does.
  bool quantize_to_watts = true;
  // Which aggregate series to persist.
  bool record_servers = false;
  bool record_racks = true;
  bool record_rows = true;
  bool record_total = true;
};

class PowerMonitor {
 public:
  // `dc`, `db`, and the simulation behind them must outlive the monitor.
  PowerMonitor(DataCenter* dc, TimeSeriesDb* db, const PowerMonitorConfig& config,
               Rng rng);

  // Adds a virtual aggregation group; must be called before Start.
  void RegisterGroup(const std::string& name, std::vector<ServerId> servers);

  // Attaches a fault injector (may be null to detach). Sampling then honors
  // the injector's telemetry faults: whole-pipeline stalls skip the sample
  // pass, dropped per-server readings keep their last-known value, readings
  // that arrive may carry bias/spikes, and blacked-out row/group feeds are
  // not refreshed. With no injector attached behavior is bit-identical to
  // the fault-free monitor. `injector` must outlive the monitor.
  void AttachFaultInjector(faults::FaultInjector* injector) {
    injector_ = injector;
  }

  // Begins sampling at `first_sample`, then every interval.
  void Start(SimTime first_sample);

  // Takes one sample immediately (also used by Start's periodic task).
  void SampleOnce(SimTime stamp);

  // Latest noisy readings, available after the first sample.
  double LatestServerWatts(ServerId id) const {
    return latest_server_watts_[id.index()];
  }
  double LatestRowWatts(RowId id) const { return latest_row_watts_[id.index()]; }
  double LatestGroupWatts(const std::string& name) const;
  SimTime LatestSampleTime() const { return latest_sample_time_; }
  uint64_t samples_taken() const { return samples_taken_; }
  uint64_t samples_stalled() const { return samples_stalled_; }

  // Stale-tagged reads for fault-aware consumers. `now` is the caller's
  // current time, used to evaluate blackout windows; the returned stamp is
  // when the value last refreshed. Fault-free runs always return fresh,
  // non-blacked readings, so callers can adopt this API unconditionally.
  PowerReading LatestRowReading(RowId id, SimTime now) const;
  PowerReading LatestGroupReading(const std::string& name, SimTime now) const;

  // Canonical series names.
  static std::string ServerSeries(ServerId id);
  static std::string RackSeries(RackId id);
  static std::string RowSeries(RowId id);
  static std::string GroupSeries(const std::string& name);
  static constexpr const char* kTotalSeries = "dc/power";

 private:
  // True if the named feed's channel is dark at `now` (no injector => never).
  bool FeedBlackedOut(const std::string& series, SimTime now) const;

  DataCenter* dc_;
  TimeSeriesDb* db_;
  PowerMonitorConfig config_;
  Rng rng_;
  faults::FaultInjector* injector_ = nullptr;
  std::vector<std::pair<std::string, std::vector<ServerId>>> groups_;
  // Rows each group's servers span, aligned with groups_. A group reading is
  // flagged blacked_out when its own feed or any member row's feed is dark.
  std::vector<std::vector<RowId>> group_rows_;
  std::vector<double> latest_server_watts_;
  std::vector<double> latest_row_watts_;
  std::unordered_map<std::string, double> latest_group_watts_;
  // Per-feed refresh stamps; negative = never refreshed.
  std::vector<SimTime> latest_row_stamp_;
  std::unordered_map<std::string, SimTime> latest_group_stamp_;
  SimTime latest_sample_time_;
  uint64_t samples_taken_ = 0;
  uint64_t samples_stalled_ = 0;
  bool started_ = false;
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_POWER_MONITOR_H_
