// Per-minute power telemetry.
//
// Models the paper's in-house power monitor (§3.3): every minute it reads
// each server's draw through IPMI (with measurement noise and watt-level
// quantization), aggregates to rack/row/data-center level with the streaming
// pipeline, and persists the aggregates in the time-series database. The
// monitor itself is stateless across ticks apart from caching the latest
// readings (the paper's monitor is "stateless for easy recovery" — all
// history lives in the database).
//
// Virtual groups support the controlled-experiment methodology of §4.1.2:
// a named set of servers (e.g. "the experiment group": servers with even
// ids) gets its own aggregated series, exactly as the real evaluation
// aggregated the two parity-split halves of one row.
//
// Hot-path note: every series this monitor writes is interned into the
// TimeSeriesDb at construction / RegisterGroup time, so the steady-state
// SampleOnce never hashes a string, never formats a name, and (after
// PreallocateSamples) never allocates.
//
// Noise is counter-based: each per-server reading's measurement noise is a
// pure function of (noise seed, server id, sample tick) — see
// counter_rng in common/rng.h. That makes a reading independent of how many
// other readings were produced before it and on which thread, which is what
// lets the sample pass shard across a thread pool (SetThreadPool) while
// staying byte-identical to the serial pass. The sharded pass reads the
// DataCenter's SoA power array by contiguous row/rack index ranges and
// flushes aggregates serially in fixed (server, rack, row, total, group)
// order, so TimeSeriesDb contents do not depend on the job count.

#ifndef SRC_TELEMETRY_POWER_MONITOR_H_
#define SRC_TELEMETRY_POWER_MONITOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/faults/fault_injector.h"
#include "src/telemetry/timeseries_db.h"

namespace ampere {

// A stale-tagged power reading. Production telemetry is not guaranteed
// fresh: the pipeline stalls, feeds black out, readings drop. Consumers that
// care about safety (the controller) read these instead of the bare watt
// accessors and decide how much to trust an aging value.
struct PowerReading {
  double watts = 0.0;
  // When the value was last actually refreshed; negative = never sampled.
  SimTime stamp = SimTime::Micros(-1);
  // True if the feed is inside a blackout window *now* (the value cannot be
  // refreshed until the window ends) or a member row's feed is dark.
  bool blacked_out = false;

  bool valid() const { return stamp >= SimTime(); }
  SimTime Age(SimTime now) const {
    return valid() ? now - stamp : SimTime::Max();
  }
};

struct PowerMonitorConfig {
  SimTime interval = SimTime::Minutes(1);
  // Per-server Gaussian measurement noise (IPMI readings are not exact).
  double noise_sigma_watts = 1.0;
  // Quantize per-server readings to whole watts like BMC firmware does.
  bool quantize_to_watts = true;
  // Which aggregate series to persist.
  bool record_servers = false;
  bool record_racks = true;
  bool record_rows = true;
  bool record_total = true;
  // Prepended to every series (and fault-channel) name this monitor writes,
  // e.g. "campus/dc2/". Empty (the default) keeps the historical single-DC
  // names bit-identical. In a campus, per-DC prefixes keep the monitors'
  // series disjoint in one shared TimeSeriesDb and give each DC's feeds
  // independent blackout channel hashes.
  std::string series_prefix;
  // Flight-recorder threshold: a row whose sampled draw crosses this
  // fraction of its breaker budget emits a breaker_margin_enter/exit
  // timeline event pair. Observation-only (the breaker itself still trips
  // at its own tolerance); only evaluated while a recorder is installed.
  double breaker_margin_fraction = 0.95;
};

class PowerMonitor {
 public:
  // `dc`, `db`, and the simulation behind them must outlive the monitor.
  // Interns every topology series (per config flags) into `db` up front.
  // `rng` contributes exactly one draw: the seed of the counter-based noise
  // streams (so distinct monitor forks still get distinct noise).
  PowerMonitor(DataCenter* dc, TimeSeriesDb* db, const PowerMonitorConfig& config,
               Rng rng);

  // Adds a virtual aggregation group; must be called before Start. If
  // PreallocateSamples already ran, the group's series is reserved to the
  // same point count so late-registered groups do not reintroduce
  // steady-state allocation.
  void RegisterGroup(const std::string& name, std::vector<ServerId> servers);

  // Attaches a thread pool for the clean (fault-free) sample pass; null
  // (the default) or a single-lane pool takes the exact serial path through
  // the ParallelFor guard. Output is byte-identical either way: per-server
  // noise is counter-based, shard-local sums follow the same element order
  // as the serial loops, and the TimeSeriesDb flush stays serial in fixed
  // order. Passes where the fault injector can actually interfere run
  // serially (the injector's fault draws are a sequential stream); when the
  // injector is quiescent for a tick (see FaultInjector::TelemetryQuiescentAt)
  // the pass shards like the fault-free one. `pool` must outlive the monitor
  // or be detached first.
  void SetThreadPool(ThreadPool* pool) { pool_ = pool; }

  // Attaches a fault injector (may be null to detach). Sampling then honors
  // the injector's telemetry faults: whole-pipeline stalls skip the sample
  // pass, dropped per-server readings keep their last-known value, readings
  // that arrive may carry bias/spikes, and blacked-out row/group feeds are
  // not refreshed. With no injector attached behavior is bit-identical to
  // the fault-free monitor. `injector` must outlive the monitor.
  void AttachFaultInjector(faults::FaultInjector* injector) {
    injector_ = injector;
  }

  // Begins sampling at `first_sample`, then every interval.
  void Start(SimTime first_sample);

  // Metrics/timeline domain for this monitor's instrumentation ("dc3/" in a
  // campus; root, 0, standalone). Observation-only.
  void SetObsDomain(obs::DomainId domain) { obs_domain_ = domain; }
  obs::DomainId obs_domain() const { return obs_domain_; }

  // Capacity hint: reserves storage in the TimeSeriesDb for
  // `expected_samples` points on every series this monitor records, so the
  // steady-state sample path touches no allocator. Purely a reservation —
  // sampling past the hint still works (amortized growth). When the db has
  // a cold store attached, ReservePoints clamps each reservation to the hot
  // budget (spilling caps hot occupancy, so reserving the full run length
  // would defeat the bounded-RSS contract).
  void PreallocateSamples(size_t expected_samples);

  // Takes one sample immediately (also used by Start's periodic task).
  void SampleOnce(SimTime stamp);

  // Latest noisy readings, available after the first sample.
  double LatestServerWatts(ServerId id) const {
    return latest_server_watts_[id.index()];
  }
  double LatestRowWatts(RowId id) const { return latest_row_watts_[id.index()]; }
  double LatestGroupWatts(const std::string& name) const;
  SimTime LatestSampleTime() const { return latest_sample_time_; }
  uint64_t samples_taken() const { return samples_taken_; }
  uint64_t samples_stalled() const { return samples_stalled_; }

  // Stale-tagged reads for fault-aware consumers. `now` is the caller's
  // current time, used to evaluate blackout windows; the returned stamp is
  // when the value last refreshed. Fault-free runs always return fresh,
  // non-blacked readings, so callers can adopt this API unconditionally.
  PowerReading LatestRowReading(RowId id, SimTime now) const;
  PowerReading LatestGroupReading(const std::string& name, SimTime now) const;

  // Canonical series names.
  static std::string ServerSeries(ServerId id);
  static std::string RackSeries(RackId id);
  static std::string RowSeries(RowId id);
  static std::string GroupSeries(const std::string& name);
  static constexpr const char* kTotalSeries = "dc/power";

 private:
  struct Group {
    std::string name;
    std::string channel;  // GroupSeries(name), precomputed once.
    std::vector<ServerId> servers;
    // Rows the group's servers span: a group reading is only as fresh as
    // its members' row feeds, so blackout checks consult both.
    std::vector<RowId> rows;
    SeriesId series;
    double latest_watts = 0.0;
    SimTime latest_stamp = SimTime::Micros(-1);
  };

  // True if the named feed's channel is dark at `now` (no injector => never).
  bool FeedBlackedOut(std::string_view series, SimTime now) const;
  const Group& FindGroupOrDie(const std::string& name) const;

  // Measurement noise for one server at one sample tick: sigma * z where z
  // is the counter-based standard normal for (noise_seed_, server, tick).
  // Servers share Box-Muller pairs two-by-two (key from server/2, lane from
  // server&1); this helper evaluates the pair and picks the lane, so its
  // value is bit-identical to the batched pairwise loop in the clean pass.
  double NoiseAt(size_t server, uint64_t tick) const {
    const uint64_t key = counter_rng::Key(
        noise_seed_, static_cast<uint64_t>(server >> 1), tick);
    const counter_rng::NormalPair pair = counter_rng::StandardNormalPair(key);
    return config_.noise_sigma_watts *
           ((server & 1) == 0 ? pair.z0 : pair.z1);
  }

  // Fault-free sample pass: sharded per-server reads (phase A) and per-row
  // aggregation into scratch (phase B), then a serial flush in fixed order.
  void SampleCleanPass(SimTime stamp, uint64_t tick);
  // Phase A body: noisy quantized readings for servers [begin, end).
  void ReadServersClean(size_t begin, size_t end, uint64_t tick);
  // Fault-aware serial pass (injector attached).
  void SampleFaultedPass(SimTime stamp, uint64_t tick);
  // Flight-recorder edge detection over per-row state, run at the end of
  // both sample passes: breaker-margin crossings (latest row draw vs
  // breaker_margin_fraction x row budget) and fault-window begin/end (row
  // feed went dark / recovered; clean passes see every feed lit). No-op —
  // a single null check — unless a recorder is installed on this thread.
  void RecordRowTimeline(SimTime stamp, bool faulted);

  DataCenter* dc_;
  TimeSeriesDb* db_;
  PowerMonitorConfig config_;
  // Seed of the counter-based noise streams (one draw from the ctor Rng).
  uint64_t noise_seed_ = 0;
  ThreadPool* pool_ = nullptr;  // Not owned; see SetThreadPool.
  faults::FaultInjector* injector_ = nullptr;
  std::vector<Group> groups_;
  // Interned handles, filled at construction per the config's record flags
  // (empty vectors / invalid ids when a tier is not recorded).
  std::vector<SeriesId> server_series_;
  std::vector<SeriesId> rack_series_;
  std::vector<SeriesId> row_series_;
  SeriesId total_series_;
  // Precomputed blackout channel names ("row/N/power"), so fault checks do
  // not re-format per pass.
  std::vector<std::string> row_channel_;
  std::vector<double> latest_server_watts_;
  std::vector<double> latest_row_watts_;
  // Per-feed refresh stamps; negative = never refreshed.
  std::vector<SimTime> latest_row_stamp_;
  // Scratch for the per-pass dark-row bitmap (only touched with an injector
  // attached); member so faulted passes do not allocate either.
  std::vector<char> row_dark_;
  // Phase-B scratch for the clean pass: per-rack and per-row sums, written
  // by disjoint shards and flushed serially. Members (sized at
  // construction) so the sharded pass allocates nothing.
  std::vector<double> scratch_rack_watts_;
  std::vector<double> scratch_row_watts_;
  // Flight-recorder edge state (see RecordRowTimeline): whether each row was
  // inside the breaker margin / dark at the last recorded pass.
  std::vector<char> row_in_margin_;
  std::vector<char> row_was_dark_;
  obs::DomainId obs_domain_ = 0;
  // Point count from the last PreallocateSamples, so late RegisterGroup
  // calls can reserve their series to match.
  size_t preallocated_points_ = 0;
  SimTime latest_sample_time_;
  uint64_t samples_taken_ = 0;
  uint64_t samples_stalled_ = 0;
  bool started_ = false;
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_POWER_MONITOR_H_
