// Per-minute power telemetry.
//
// Models the paper's in-house power monitor (§3.3): every minute it reads
// each server's draw through IPMI (with measurement noise and watt-level
// quantization), aggregates to rack/row/data-center level with the streaming
// pipeline, and persists the aggregates in the time-series database. The
// monitor itself is stateless across ticks apart from caching the latest
// readings (the paper's monitor is "stateless for easy recovery" — all
// history lives in the database).
//
// Virtual groups support the controlled-experiment methodology of §4.1.2:
// a named set of servers (e.g. "the experiment group": servers with even
// ids) gets its own aggregated series, exactly as the real evaluation
// aggregated the two parity-split halves of one row.

#ifndef SRC_TELEMETRY_POWER_MONITOR_H_
#define SRC_TELEMETRY_POWER_MONITOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/telemetry/timeseries_db.h"

namespace ampere {

struct PowerMonitorConfig {
  SimTime interval = SimTime::Minutes(1);
  // Per-server Gaussian measurement noise (IPMI readings are not exact).
  double noise_sigma_watts = 1.0;
  // Quantize per-server readings to whole watts like BMC firmware does.
  bool quantize_to_watts = true;
  // Which aggregate series to persist.
  bool record_servers = false;
  bool record_racks = true;
  bool record_rows = true;
  bool record_total = true;
};

class PowerMonitor {
 public:
  // `dc`, `db`, and the simulation behind them must outlive the monitor.
  PowerMonitor(DataCenter* dc, TimeSeriesDb* db, const PowerMonitorConfig& config,
               Rng rng);

  // Adds a virtual aggregation group; must be called before Start.
  void RegisterGroup(const std::string& name, std::vector<ServerId> servers);

  // Begins sampling at `first_sample`, then every interval.
  void Start(SimTime first_sample);

  // Takes one sample immediately (also used by Start's periodic task).
  void SampleOnce(SimTime stamp);

  // Latest noisy readings, available after the first sample.
  double LatestServerWatts(ServerId id) const {
    return latest_server_watts_[id.index()];
  }
  double LatestRowWatts(RowId id) const { return latest_row_watts_[id.index()]; }
  double LatestGroupWatts(const std::string& name) const;
  SimTime LatestSampleTime() const { return latest_sample_time_; }
  uint64_t samples_taken() const { return samples_taken_; }

  // Canonical series names.
  static std::string ServerSeries(ServerId id);
  static std::string RackSeries(RackId id);
  static std::string RowSeries(RowId id);
  static std::string GroupSeries(const std::string& name);
  static constexpr const char* kTotalSeries = "dc/power";

 private:
  DataCenter* dc_;
  TimeSeriesDb* db_;
  PowerMonitorConfig config_;
  Rng rng_;
  std::vector<std::pair<std::string, std::vector<ServerId>>> groups_;
  std::vector<double> latest_server_watts_;
  std::vector<double> latest_row_watts_;
  std::unordered_map<std::string, double> latest_group_watts_;
  SimTime latest_sample_time_;
  uint64_t samples_taken_ = 0;
  bool started_ = false;
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_POWER_MONITOR_H_
