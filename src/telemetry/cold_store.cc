#include "src/telemetry/cold_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/check.h"

namespace ampere {
namespace {

constexpr std::string_view kManifestMagic = "AMPTSMAN";
constexpr std::string_view kManifestName = "manifest.ampts";

StoreStatus ManifestError(StoreError error, size_t byte_offset,
                          const std::string& detail) {
  StoreStatus status;
  status.error = error;
  status.byte_offset = byte_offset;
  std::ostringstream message;
  message << StoreErrorName(error) << " at byte " << byte_offset
          << " of manifest: " << detail;
  status.message = message.str();
  return status;
}

std::string HexKey(uint64_t key) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(key));
  return std::string(buffer);
}

bool ParseHex64(std::string_view text, uint64_t* out) {
  if (text.size() != 16) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *out = value;
  return true;
}

// Slices one segment's columns to the samples with time in [from_us, to_us]
// and appends the (possibly empty) result as a ColdPiece. O(count) decode:
// cold reads are the export/analysis surface, not the control loop.
void AppendSlice(std::span<const int64_t> deltas,
                 std::span<const double> values, int64_t first_us,
                 int64_t from_us, int64_t to_us,
                 std::vector<ColdPiece>* out) {
  const size_t n = values.size();
  size_t lo = n;       // First index with t >= from_us.
  int64_t lo_time = 0;
  size_t hi = n;       // First index with t > to_us.
  int64_t t = first_us;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) {
      t += deltas[i];
    }
    if (lo == n && t >= from_us) {
      lo = i;
      lo_time = t;
    }
    if (t > to_us) {
      hi = i;
      break;
    }
  }
  if (lo >= hi) {
    return;
  }
  ColdPiece piece;
  piece.base_time = SimTime::Micros(lo_time);
  piece.deltas = deltas.subspan(lo, hi - lo);
  piece.values = values.subspan(lo, hi - lo);
  out->push_back(piece);
}

}  // namespace

ColdStore::ColdStore(const ColdStoreConfig& config) : config_(config) {
  if (config_.segment_samples < 2) {
    config_.segment_samples = 2;
  }
  if (config_.initial_segment_samples == 0) {
    config_.initial_segment_samples = 1;
  }
  if (config_.initial_segment_samples > config_.segment_samples) {
    config_.initial_segment_samples = config_.segment_samples;
  }
#if AMPERE_HAVE_MMAP
  // Segment files are sparse until written (ftruncate allocates no blocks),
  // so creating actives at full capacity costs nothing — and a layout that
  // never moves lets SegmentWriter release written pages from RSS eagerly.
  // Growth-by-doubling only matters for the heap-buffer fallback.
  config_.initial_segment_samples = config_.segment_samples;
#endif
}

ColdStore::~ColdStore() { Flush(); }

std::string ColdStore::ManifestPath() const {
  return config_.dir + "/" + std::string(kManifestName);
}

ColdStore::OpenResult ColdStore::Create(const ColdStoreConfig& config) {
  OpenResult result;
  AMPERE_CHECK(!config.dir.empty()) << "cold store needs a directory";
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec) {
    result.status = ManifestError(
        StoreError::kIo, 0, "cannot create directory " + config.dir);
    return result;
  }
  auto store = std::unique_ptr<ColdStore>(new ColdStore(config));
  result.status = store->WriteManifest();
  if (!result.status.ok()) {
    return result;
  }
  result.store = std::move(store);
  return result;
}

ColdStore::OpenResult ColdStore::OpenExisting(const ColdStoreConfig& config) {
  OpenResult result;
  auto store = std::unique_ptr<ColdStore>(new ColdStore(config));
  std::ifstream in(store->ManifestPath());
  if (!in) {
    result.status = ManifestError(StoreError::kIo, 0,
                                  "cannot open " + store->ManifestPath());
    return result;
  }
  std::string line;
  size_t line_start = 0;
  if (!std::getline(in, line)) {
    result.status =
        ManifestError(StoreError::kBadMagic, 0, "empty manifest");
    return result;
  }
  if (line.rfind(kManifestMagic, 0) != 0) {
    result.status =
        ManifestError(StoreError::kBadMagic, 0, "not an AMPTSMAN manifest");
    return result;
  }
  if (line != std::string(kManifestMagic) + " 1") {
    result.status = ManifestError(StoreError::kVersionSkew,
                                  kManifestMagic.size() + 1,
                                  "unsupported manifest version: " + line);
    return result;
  }
  line_start += line.size() + 1;

  size_t listed = 0;
  bool have_end = false;
  while (std::getline(in, line)) {
    const size_t at = line_start;
    line_start += line.size() + 1;
    if (have_end) {
      result.status = ManifestError(StoreError::kBadManifest, at,
                                    "content after end marker");
      return result;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "end") {
      uint64_t declared = 0;
      std::string extra;
      if (!(fields >> declared) || (fields >> extra)) {
        result.status = ManifestError(StoreError::kBadManifest, at,
                                      "malformed end marker");
        return result;
      }
      if (declared != listed) {
        result.status = ManifestError(
            StoreError::kBadManifest, at,
            "end marker declares " + std::to_string(declared) +
                " segments, saw " + std::to_string(listed));
        return result;
      }
      have_end = true;
      continue;
    }
    if (tag != "seg") {
      result.status = ManifestError(StoreError::kBadManifest, at,
                                    "unrecognized line: " + line);
      return result;
    }
    uint64_t count = 0;
    int64_t first_us = 0;
    int64_t last_us = 0;
    std::string key_hex;
    std::string file;
    if (!(fields >> count >> first_us >> last_us >> key_hex >> file)) {
      result.status = ManifestError(StoreError::kBadManifest, at,
                                    "malformed seg line: " + line);
      return result;
    }
    std::string name;
    std::getline(fields, name);
    if (!name.empty() && name.front() == ' ') {
      name.erase(0, 1);
    }
    uint64_t key = 0;
    if (name.empty() || !ParseHex64(key_hex, &key)) {
      result.status = ManifestError(StoreError::kBadManifest, at,
                                    "malformed seg line: " + line);
      return result;
    }
    if (key != StoreSeriesKey(name)) {
      result.status = ManifestError(
          StoreError::kBadManifest, at,
          "series key does not match name for series " + name);
      return result;
    }
    // Validate the segment itself (magic, version, CRCs, monotone deltas).
    auto opened = SegmentReader::Open(config.dir + "/" + file);
    if (!opened.status.ok()) {
      result.status = opened.status;
      result.status.message =
          "segment " + file + ": " + result.status.message;
      return result;
    }
    SegmentReader& reader = *opened.reader;
    if (reader.count() != count ||
        reader.first_time().micros() != first_us ||
        reader.last_time().micros() != last_us ||
        reader.series_key() != key) {
      result.status = ManifestError(
          StoreError::kBadManifest, at,
          "manifest entry disagrees with segment " + file);
      return result;
    }
    SeriesState& state = store->StateFor(name);
    if (!state.sealed.empty() && first_us < state.sealed.back().last_us) {
      result.status = ManifestError(
          StoreError::kBadManifest, at,
          "segments out of time order for series " + name);
      return result;
    }
    SealedSegment seg;
    seg.file = file;
    seg.count = count;
    seg.first_us = first_us;
    seg.last_us = last_us;
    seg.reader = std::move(opened.reader);
    state.sealed.push_back(std::move(seg));
    state.total_samples += count;
    store->total_samples_ += count;
    ++listed;
  }
  if (!have_end) {
    result.status = ManifestError(StoreError::kBadManifest, line_start,
                                  "missing end marker (truncated manifest)");
    return result;
  }
  store->file_counter_ = listed;  // New segments get fresh names.
  result.store = std::move(store);
  return result;
}

ColdStore::SeriesState& ColdStore::StateFor(std::string_view series) {
  auto it = series_.find(series);
  if (it != series_.end()) {
    return *it->second;
  }
  auto state = std::make_unique<SeriesState>();
  state->name = std::string(series);
  state->key = StoreSeriesKey(series);
  std::string key = state->name;
  auto [pos, inserted] = series_.emplace(std::move(key), std::move(state));
  return *pos->second;
}

std::string ColdStore::NextSegmentPath(const SeriesState& state,
                                       std::string* basename) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "seg-%06llu-%s.seg",
                static_cast<unsigned long long>(file_counter_),
                HexKey(state.key).c_str());
  *basename = buffer;
  return config_.dir + "/" + *basename;
}

void ColdStore::AppendBatch(std::string_view series,
                            std::span<const TimePoint> batch) {
  if (batch.empty()) {
    return;
  }
  SeriesState& state = StateFor(series);
  std::span<const TimePoint> rest = batch;
  while (!rest.empty()) {
    if (state.active == nullptr) {
      std::string basename;
      const std::string path = NextSegmentPath(state, &basename);
      ++file_counter_;
      state.active =
          SegmentWriter::Create(path, state.key,
                                config_.initial_segment_samples,
                                config_.segment_samples);
      AMPERE_CHECK(state.active != nullptr)
          << "cannot create cold segment " << path;
      state.active_file = basename;
    }
    const size_t accepted = state.active->AppendBatch(rest);
    state.total_samples += accepted;
    total_samples_ += accepted;
    rest = rest.subspan(accepted);
    if (!rest.empty()) {
      // Active segment full (or could not grow): seal it and roll.
      AMPERE_CHECK(state.active->count() > 0)
          << "cold segment refused all samples for series " << state.name;
      RollActive(state);
    }
  }
}

void ColdStore::RollActive(SeriesState& state) {
  const StoreStatus status = SealActive(state);
  AMPERE_CHECK(status.ok()) << "cold store seal failed: " << status.message;
  // The manifest is NOT rewritten here: it is O(total segments), so doing it
  // per seal would make a long spill run quadratic in manifest IO. Sealed
  // segments become visible to OpenExisting at the next Flush() (the
  // destructor flushes); a crash in between loses only what a RAM-only store
  // would also have lost.
}

StoreStatus ColdStore::SealActive(SeriesState& state) {
  if (state.active == nullptr) {
    return StoreStatus{};
  }
  if (state.active->count() == 0) {
    // Nothing committed; drop the file instead of sealing an empty segment.
    const std::string path = config_.dir + "/" + state.active_file;
    state.active.reset();
    state.active_file.clear();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return StoreStatus{};
  }
  SealedSegment seg;
  seg.file = state.active_file;
  seg.count = state.active->count();
  seg.first_us = state.active->first_time().micros();
  seg.last_us = state.active->last_time().micros();
  const StoreStatus status = state.active->Seal();
  if (!status.ok()) {
    return status;
  }
  state.sealed.push_back(std::move(seg));
  state.active.reset();
  state.active_file.clear();
  return StoreStatus{};
}

StoreStatus ColdStore::Flush() {
  StoreStatus first;
  for (auto& [name, state] : series_) {
    const StoreStatus status = SealActive(*state);
    if (!status.ok() && first.ok()) {
      first = status;
    }
  }
  const StoreStatus manifest = WriteManifest();
  if (!manifest.ok() && first.ok()) {
    first = manifest;
  }
  return first;
}

StoreStatus ColdStore::WriteManifest() const {
  // Atomic: land the bytes in a temp file, then rename over the manifest.
  const std::string tmp = config_.dir + "/manifest.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return ManifestError(StoreError::kIo, 0, "cannot write " + tmp);
    }
    out << kManifestMagic << " 1\n";
    size_t n = 0;
    for (const auto& [name, state] : series_) {
      for (const SealedSegment& seg : state->sealed) {
        out << "seg " << seg.count << ' ' << seg.first_us << ' '
            << seg.last_us << ' ' << HexKey(state->key) << ' ' << seg.file
            << ' ' << name << '\n';
        ++n;
      }
    }
    out << "end " << n << '\n';
    out.flush();
    if (!out) {
      return ManifestError(StoreError::kIo, 0, "short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, ManifestPath(), ec);
  if (ec) {
    return ManifestError(StoreError::kIo, 0,
                         "cannot rename " + tmp + ": " + ec.message());
  }
  return StoreStatus{};
}

void ColdStore::QueryPieces(std::string_view series, SimTime from, SimTime to,
                            std::vector<ColdPiece>* out) const {
  auto it = series_.find(series);
  if (it == series_.end()) {
    return;
  }
  const SeriesState& state = *it->second;
  const int64_t from_us = from.micros();
  const int64_t to_us = to.micros();
  for (const SealedSegment& seg : state.sealed) {
    if (seg.last_us < from_us || seg.first_us > to_us) {
      continue;
    }
    if (seg.reader == nullptr) {
      // Sealed segments are unmapped at seal time (no dirty pages); the
      // first query remaps them read-only. This must succeed for a store we
      // sealed ourselves — failure means the files were pulled out from
      // under a live store.
      auto opened = SegmentReader::Open(config_.dir + "/" + seg.file);
      AMPERE_CHECK(opened.status.ok())
          << "cold segment unreadable under a live store: "
          << opened.status.message;
      seg.reader = std::move(opened.reader);
    }
    AppendSlice(seg.reader->deltas(), seg.reader->values(), seg.first_us,
                from_us, to_us, out);
  }
  if (state.active != nullptr && state.active->count() > 0) {
    AppendSlice(state.active->deltas(), state.active->values(),
                state.active->first_time().micros(), from_us, to_us, out);
  }
}

std::vector<std::string> ColdStore::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, state] : series_) {
    if (state->total_samples > 0) {
      names.push_back(name);
    }
  }
  return names;  // std::map iteration: already sorted.
}

uint64_t ColdStore::SamplesForSeries(std::string_view series) const {
  auto it = series_.find(series);
  if (it == series_.end()) {
    return 0;
  }
  return it->second->total_samples;
}

size_t ColdStore::total_segments() const {
  size_t n = 0;
  for (const auto& [name, state] : series_) {
    n += state->sealed.size();
    if (state->active != nullptr && state->active->count() > 0) {
      ++n;
    }
  }
  return n;
}

size_t ColdStore::sealed_segments() const {
  size_t n = 0;
  for (const auto& [name, state] : series_) {
    n += state->sealed.size();
  }
  return n;
}

}  // namespace ampere
