// Persistent cold tier: per-series sealed mmap segments + a manifest.
//
// The cold store is where TimeSeriesDb spills its oldest hot samples once a
// per-series hot budget is exceeded (the spill policy lives in
// TimeSeriesDb::AttachColdStore — the db hands the oldest run of TimePoints
// to AppendBatch here as a span, exactly like any other batch producer).
// Each series owns a chain of segment files (src/telemetry/mmap_segment.h):
// one *active* segment receiving appends, and zero or more *sealed* segments
// that are CRC-finalized and unmapped. Steady-state RSS is bounded twice
// over: the writer releases fully written pages of the active segment from
// RSS eagerly (they stay in page cache), and sealing unmaps whatever is
// left — so resident cost at hyperscale is the hot tier plus a few tail
// pages per series, independent of how much history is on disk.
//
// The manifest (dir/manifest.ampts) is the directory of sealed segments:
//
//   AMPTSMAN 1
//   seg <count> <first_us> <last_us> <series_key hex> <file> <series name>
//   ...
//   end <segment count>
//
// It is rewritten atomically (tmp + rename) at Create and at Flush — NOT at
// every seal, because the rewrite is O(total segments) and a long spill run
// seals tens of thousands of times. A crash leaves either the previous or
// the new manifest, never a torn one; segments sealed since the last Flush
// (and the destructor flushes) are unreachable garbage a later writer may
// overwrite. OpenExisting — the instant-restart path — parses the manifest
// and fully validates every listed segment before serving a single sample;
// all failures are structured StoreStatus values (never throws on external
// bytes), and the `end` count mirrors the trace format's truncation
// tripwire.
//
// Queries return ColdPiece views (defined next to TimeSeriesDb): zero-copy
// spans over the mapped delta/value columns, stitched with the hot tail by
// TimeSeriesDb::QueryStitched. Sealed segments are remapped lazily on first
// query (read-only, page-cache backed), so a store that is only written
// keeps no cold mappings at all.

#ifndef SRC_TELEMETRY_COLD_STORE_H_
#define SRC_TELEMETRY_COLD_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time.h"
#include "src/telemetry/mmap_segment.h"
#include "src/telemetry/timeseries_db.h"

namespace ampere {

struct ColdStoreConfig {
  std::string dir;  // Store directory; created by Create.
  // Active segments seal and roll at this many samples. Segment size does
  // NOT bound resident memory on mmap builds — the writer releases fully
  // written pages from RSS eagerly, so an active segment's resident cost is
  // its unfinished tail pages. Bigger segments mean fewer files and fewer
  // seal cycles; the tradeoff left is file count vs. per-file size.
  size_t segment_samples = 65536;
  // Heap-buffer fallback only: first buffer size, grown by doubling up to
  // segment_samples. On mmap builds actives are created sparse at full
  // capacity and this knob is ignored.
  size_t initial_segment_samples = 1024;
};

class ColdStore {
 public:
  struct OpenResult {
    StoreStatus status;
    std::unique_ptr<ColdStore> store;  // Set only when status.ok().
  };

  // Starts an empty store: creates `config.dir` (and parents) and writes an
  // empty manifest. Any previous manifest in the directory is replaced.
  static OpenResult Create(const ColdStoreConfig& config);

  // Instant-restart path: parses the manifest and validates every sealed
  // segment (magic, version, CRCs, monotone deltas). The reopened store
  // serves the identical QueryPieces bytes the sealing process saw, and
  // accepts further appends into fresh segments.
  static OpenResult OpenExisting(const ColdStoreConfig& config);

  ~ColdStore();  // Best-effort Flush.
  ColdStore(const ColdStore&) = delete;
  ColdStore& operator=(const ColdStore&) = delete;

  // Appends `batch` (non-decreasing times, at or after the series tail —
  // enforced by the TimeSeriesDb append checks upstream) to the series'
  // active segment, sealing and rolling to new segment files as they fill.
  void AppendBatch(std::string_view series, std::span<const TimePoint> batch);

  // Seals every non-empty active segment and rewrites the manifest. After a
  // Flush the store is fully on disk; further appends open new segments.
  // Returns the first error encountered (but always tries everything).
  StoreStatus Flush();

  // Appends the cold pieces of `series` overlapping [from, to] to `out`, in
  // time order (sealed chain first, then the active segment). Piece spans
  // are invalidated by the next AppendBatch/Flush for the series.
  void QueryPieces(std::string_view series, SimTime from, SimTime to,
                   std::vector<ColdPiece>* out) const;

  // Series with at least one cold sample, sorted.
  std::vector<std::string> SeriesNames() const;
  uint64_t SamplesForSeries(std::string_view series) const;

  uint64_t total_samples() const { return total_samples_; }
  size_t total_segments() const;  // Sealed + non-empty active.
  size_t sealed_segments() const;

  const std::string& dir() const { return config_.dir; }
  std::string ManifestPath() const;

 private:
  struct SealedSegment {
    std::string file;  // Basename inside dir().
    uint64_t count = 0;
    int64_t first_us = 0;
    int64_t last_us = 0;
    // Opened lazily on first query (OpenExisting keeps its validated
    // readers). mutable: lazy open happens under const QueryPieces.
    mutable std::unique_ptr<SegmentReader> reader;
  };
  struct SeriesState {
    std::string name;
    uint64_t key = 0;
    std::vector<SealedSegment> sealed;
    std::unique_ptr<SegmentWriter> active;
    std::string active_file;  // Basename of `active`, for the manifest.
    uint64_t total_samples = 0;
  };

  explicit ColdStore(const ColdStoreConfig& config);

  SeriesState& StateFor(std::string_view series);
  void RollActive(SeriesState& state);   // Seal; manifest waits for Flush.
  StoreStatus SealActive(SeriesState& state);
  StoreStatus WriteManifest() const;
  std::string NextSegmentPath(const SeriesState& state, std::string* basename);

  ColdStoreConfig config_;
  // Sorted by name; heterogeneous lookup via std::less<>. Sorted order also
  // makes the manifest bytes independent of series creation order.
  std::map<std::string, std::unique_ptr<SeriesState>, std::less<>> series_;
  size_t file_counter_ = 0;  // Monotonic; names segment files uniquely.
  uint64_t total_samples_ = 0;
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_COLD_STORE_H_
