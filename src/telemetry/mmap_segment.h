// Fixed-width memory-mapped segment files for the TimeSeriesDb cold tier.
//
// One segment holds one contiguous run of samples for one series, stored
// columnar so reads are zero-copy and bit-exact:
//
//   Layout (all integers little-endian, 64-byte header):
//     magic[8]   = "AMPTSDB1"
//     u32        version        (1 for ampere.tsdb.v1)
//     u32        flags          (bit 0 = sealed)
//     u64        series_key     (FNV-1a 64 of the series name)
//     u64        count          (committed samples; finalized at seal)
//     u64        capacity       (allocated sample slots; columns sized to it)
//     i64        first_time_us  (absolute time of sample 0)
//     i64        last_time_us   (absolute time of sample count-1)
//     u32        data_crc       (CRC32 of committed delta+value columns)
//     u32        header_crc     (CRC32 of header bytes before this field)
//   payload:
//     i64        delta_us[capacity]  at offset 64
//     f64        value[capacity]     at offset 64 + 8*capacity
//
// Timestamps are delta-of-timestamp encoded (delta_us[0] = 0, delta_us[i] =
// t[i] - t[i-1], all >= 0 because series are append-ordered); values are raw
// IEEE-754 doubles, so a read reconstructs the exact bits that were written.
// The two columns are fixed-width, so a segment can grow in place: ftruncate
// to a larger capacity, remap, and memmove the value column to its new
// offset (heap-buffer fallback only — on mmap builds the cold store creates
// actives sparse at full capacity, so the layout never moves). Writers fill
// up to a configured cap, then seal (finalize count + CRCs, hand pages to
// writeback, unmap) and the cold store rolls to a fresh segment file.
// Steady-state RSS is bounded as the segment fills, not just at seal: pages
// of the columns that are fully written are released from RSS eagerly
// (madvise; the data stays in page cache), leaving only the unfinished tail
// pages resident.
//
// Mapping uses POSIX mmap where available (AMPERE_HAVE_MMAP); elsewhere a
// portable fallback keeps the segment in a heap buffer and rewrites the file
// on sync, preserving the identical on-disk format.
//
// Versioning rules mirror docs/traces.md: any layout change a v1 reader
// cannot interpret bumps `version`, and readers reject unknown versions with
// StoreError::kVersionSkew rather than guessing.
//
// The reader NEVER throws or CHECK-fails on malformed bytes — a segment
// file is external data (it may be truncated by a crash, a full disk, or a
// hostile editor). Every failure mode maps to a structured StoreError with
// a byte offset, which the fuzz suite (tests/fuzz_invariants_test.cpp) pins
// under ASan/UBSan.

#ifndef SRC_TELEMETRY_MMAP_SEGMENT_H_
#define SRC_TELEMETRY_MMAP_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "src/common/time.h"
#include "src/telemetry/timeseries_db.h"  // TimePoint (the spill unit).

#if defined(__unix__) || defined(__APPLE__)
#define AMPERE_HAVE_MMAP 1
#else
#define AMPERE_HAVE_MMAP 0
#endif

namespace ampere {

// Mirrors TraceError (src/workload/trace_format.h): the storage layer's
// structured failure taxonomy.
enum class StoreError : int {
  kNone = 0,
  kIo,             // File unreadable / unwritable / unmappable.
  kBadMagic,       // Not an AMPTSDB1 segment (or not an AMPTSMAN manifest).
  kVersionSkew,    // Version this reader does not understand.
  kTruncated,      // File ends before the declared content, or unsealed
                   // segment (mid-write kill) reached via the manifest.
  kCorruptLength,  // count/capacity impossible (count > capacity, absurd).
  kBadRecord,      // Decoded samples violate invariants (negative delta,
                   // first/last mismatch, empty sealed segment).
  kBadCrc,         // Header or data CRC mismatch.
  kBadManifest,    // Manifest unparseable or inconsistent with segments.
};

const char* StoreErrorName(StoreError error);

// Structured outcome for every open/validate path. Mirrors TraceParseResult.
struct StoreStatus {
  StoreError error = StoreError::kNone;
  std::string message;     // Human-readable, includes file + byte offset.
  size_t byte_offset = 0;  // Where validation stopped.

  bool ok() const { return error == StoreError::kNone; }
};

// CRC-32 (IEEE 802.3, reflected). `seed` chains multi-range checksums.
uint32_t StoreCrc32(const void* data, size_t len, uint32_t seed = 0);

// FNV-1a 64-bit hash of the series name; informational (the manifest maps
// names to files, the key just ties a segment back to its series).
uint64_t StoreSeriesKey(std::string_view name);

inline constexpr uint32_t kSegmentVersion = 1;
inline constexpr uint32_t kSegmentFlagSealed = 1u << 0;
inline constexpr size_t kSegmentHeaderSize = 64;
inline constexpr size_t kSegmentSampleStride = 16;  // i64 delta + f64 value.

// POD image of the 64-byte header. Kept as a shadow struct and memcpy'd
// to/from the mapping (no aliasing games with the raw bytes).
struct SegmentHeader {
  char magic[8];
  uint32_t version = kSegmentVersion;
  uint32_t flags = 0;
  uint64_t series_key = 0;
  uint64_t count = 0;
  uint64_t capacity = 0;
  int64_t first_time_us = 0;
  int64_t last_time_us = 0;
  uint32_t data_crc = 0;
  uint32_t header_crc = 0;
};
static_assert(sizeof(SegmentHeader) == kSegmentHeaderSize,
              "segment header must be exactly 64 bytes");

// Growable file mapping: POSIX mmap (with ftruncate + remap growth) or the
// heap-buffer fallback. Move-only; Close() syncs writable mappings.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Creates (truncating) `path` at `size` bytes and maps it read-write.
  bool CreateRw(const std::string& path, size_t size);
  // Maps an existing file read-only, whole length.
  bool OpenRo(const std::string& path);
  // Grows a writable mapping to `new_size` bytes (ftruncate + remap).
  bool Grow(size_t new_size);
  // Hands a writable mapping's dirty pages to the kernel for writeback
  // (msync MS_ASYNC / fallback rewrite). Dirty page cache survives process
  // death, which is the crash model this tier promises; a synchronous flush
  // here would serialize every seal behind the disk (observed 2.4x
  // closed-loop slowdown at hyperscale with 62k seals on ext4).
  bool Sync();
  // Drops the resident pages fully inside [begin, end) from this process
  // (madvise MADV_DONTNEED, aligned inward to page boundaries). For a
  // shared file mapping this never discards data — dirty pages stay in the
  // page cache for writeback and refault on the next touch — it only takes
  // them out of RSS. No-op in the heap-buffer fallback.
  void ReleaseWritten(size_t begin, size_t end);
  // Unmaps. Writable mappings are handed to writeback first.
  void Close();

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool writable_ = false;
  int fd_ = -1;  // mmap builds only; fallback keeps no descriptor open.
};

// Writable active segment for one series. Appends are a stride-16 columnar
// write into the mapping; Seal() finalizes count + CRCs and unmaps.
class SegmentWriter {
 public:
  // Creates `path` sized for `initial_capacity` samples; Append grows the
  // mapping by doubling up to `max_capacity`, after which it reports full.
  // Returns nullptr on I/O failure (callers log and degrade to RAM-only).
  static std::unique_ptr<SegmentWriter> Create(const std::string& path,
                                               uint64_t series_key,
                                               size_t initial_capacity,
                                               size_t max_capacity);

  // Appends as many of `batch` as fit (batch times non-decreasing and >=
  // the segment tail — enforced upstream by TimeSeriesDb's append checks).
  // Returns how many samples were accepted; < batch.size() means full.
  size_t AppendBatch(std::span<const TimePoint> batch);

  // Finalizes the header (count, first/last, CRCs, sealed flag), syncs and
  // unmaps. No appends afterwards. Idempotent.
  StoreStatus Seal();

  size_t count() const { return static_cast<size_t>(header_.count); }
  size_t remaining() const { return max_capacity_ - count(); }
  bool sealed() const { return (header_.flags & kSegmentFlagSealed) != 0; }
  SimTime first_time() const {
    return SimTime::Micros(header_.first_time_us);
  }
  SimTime last_time() const { return SimTime::Micros(header_.last_time_us); }
  const std::string& path() const { return file_.path(); }

  // Committed columns — stitched queries read the active segment through
  // these. Invalidated by the next AppendBatch (growth remaps) and by Seal.
  std::span<const int64_t> deltas() const;
  std::span<const double> values() const;

 private:
  SegmentWriter() = default;
  bool GrowTo(size_t new_capacity);
  int64_t* delta_column();
  double* value_column();
  // Eager RSS release: pages of the active segment that are fully written
  // are dropped from RSS right away (the data stays in page cache), so the
  // resident cost of an active segment is its unfinished tail pages — not
  // its size. Only runs once the layout is final (capacity == max), since
  // growth relocates the value column. Queries through deltas()/values()
  // refault released pages from page cache transparently.
  void ReleaseWrittenPages();
  void ReleaseColumn(size_t column_offset, size_t written_bytes,
                     size_t* released_end);

  MappedFile file_;
  SegmentHeader header_;  // Shadow; memcpy'd to the mapping on Seal.
  size_t capacity_ = 0;
  size_t max_capacity_ = 0;
  size_t released_delta_ = 0;  // File offset the delta column is released to.
  size_t released_value_ = 0;  // Same for the value column.
};

// Read-only sealed segment. Open() validates the full file (magic, version,
// CRCs, monotone deltas, first/last consistency) before serving any view.
class SegmentReader {
 public:
  struct OpenResult {
    StoreStatus status;
    std::unique_ptr<SegmentReader> reader;  // Set only when status.ok().
  };
  static OpenResult Open(const std::string& path);

  size_t count() const { return static_cast<size_t>(header_.count); }
  uint64_t series_key() const { return header_.series_key; }
  SimTime first_time() const {
    return SimTime::Micros(header_.first_time_us);
  }
  SimTime last_time() const { return SimTime::Micros(header_.last_time_us); }

  // Validated columns, count() entries each, backed by the mapping (clean
  // read-only pages: the page cache may drop and refault them at will).
  std::span<const int64_t> deltas() const;
  std::span<const double> values() const;

 private:
  SegmentReader() = default;

  MappedFile file_;
  SegmentHeader header_;  // Validated copy.
};

}  // namespace ampere

#endif  // SRC_TELEMETRY_MMAP_SEGMENT_H_
