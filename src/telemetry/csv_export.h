// CSV export of time-series data.
//
// The production monitor exposes a RESTful query API; downstream tooling
// (dashboards, the paper's own plots) consumes tabular dumps. ExportCsv
// writes selected series side by side, one row per distinct timestamp
// (union of all series' timestamps; missing cells are left empty).

#ifndef SRC_TELEMETRY_CSV_EXPORT_H_
#define SRC_TELEMETRY_CSV_EXPORT_H_

#include <iosfwd>
#include <span>
#include <string>

#include "src/telemetry/timeseries_db.h"

namespace ampere {

// First column "minutes" (simulation time), then one column per series, in
// the given order. Series names become column headers.
void ExportCsv(const TimeSeriesDb& db, std::span<const std::string> series,
               std::ostream& out);

void ExportCsvFile(const TimeSeriesDb& db,
                   std::span<const std::string> series,
                   const std::string& path);

}  // namespace ampere

#endif  // SRC_TELEMETRY_CSV_EXPORT_H_
