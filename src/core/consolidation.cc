#include "src/core/consolidation.h"

#include <algorithm>

#include "src/common/check.h"

namespace ampere {

ConsolidationController::ConsolidationController(
    DataCenter* dc, Scheduler* scheduler, const ConsolidationConfig& config)
    : dc_(dc), scheduler_(scheduler), config_(config) {
  AMPERE_CHECK(dc != nullptr && scheduler != nullptr);
  AMPERE_CHECK(config.sleep_below_utilization <
               config.wake_above_utilization)
      << "thresholds must leave a hysteresis band";
  AMPERE_CHECK(config.min_awake >= 1);
  AMPERE_CHECK(config.step >= 1);
}

void ConsolidationController::Start(Simulation* sim, SimTime first_tick,
                                    SimTime interval) {
  AMPERE_CHECK(sim != nullptr);
  sim->SchedulePeriodic(first_tick, interval,
                        [this, weak = std::weak_ptr<bool>(alive_)](SimTime) {
                          if (weak.expired()) {
                            return;
                          }
                          Tick();
                        });
}

double ConsolidationController::AwakeUtilization() const {
  double capacity = 0.0;
  double allocated = 0.0;
  for (int32_t s = 0; s < dc_->num_servers(); ++s) {
    const Server& server = dc_->server(ServerId(s));
    if (server.asleep()) {
      continue;
    }
    capacity += server.capacity().cpu_cores;
    allocated += server.allocated().cpu_cores;
  }
  return capacity > 0.0 ? allocated / capacity : 0.0;
}

size_t ConsolidationController::ServersAsleep() const {
  size_t asleep = 0;
  for (int32_t s = 0; s < dc_->num_servers(); ++s) {
    if (dc_->server(ServerId(s)).asleep()) {
      ++asleep;
    }
  }
  return asleep;
}

void ConsolidationController::Tick() {
  double utilization = AwakeUtilization();
  size_t asleep = ServersAsleep();
  size_t awake = static_cast<size_t>(dc_->num_servers()) - asleep;

  if ((utilization > config_.wake_above_utilization ||
       scheduler_->queue_length() > 0) &&
      asleep > 0) {
    size_t to_wake = std::min(config_.step, asleep);
    for (int32_t s = 0; s < dc_->num_servers() && to_wake > 0; ++s) {
      ServerId id(s);
      const Server& server = dc_->server(id);
      if (server.asleep() && !server.waking()) {
        dc_->WakeServer(id);
        ++wakes_;
        --to_wake;
      }
    }
    return;
  }

  if (utilization < config_.sleep_below_utilization &&
      awake > config_.min_awake) {
    size_t to_sleep =
        std::min(config_.step, awake - config_.min_awake);
    for (int32_t s = 0; s < dc_->num_servers() && to_sleep > 0; ++s) {
      ServerId id(s);
      const Server& server = dc_->server(id);
      if (!server.asleep() && !server.reserved() &&
          server.num_tasks() == 0) {
        dc_->SleepServer(id);
        ++sleeps_;
        --to_sleep;
      }
    }
  }
}

}  // namespace ampere
