#include "src/core/experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace_export.h"

namespace ampere {

double ArrivalRateForNormalizedPower(const TopologyConfig& topology,
                                     const BatchWorkloadParams& workload,
                                     double target_normalized_power,
                                     double over_provision_ratio) {
  AMPERE_CHECK(target_normalized_power > 0.0);
  const PowerModelParams& pm = topology.power_model;
  double rated = pm.rated_watts;
  double idle = rated * pm.idle_fraction;
  double dyn_range = rated - idle;
  // Power target relative to the *rated* budget.
  double target_rated = target_normalized_power / (1.0 + over_provision_ratio);
  double util = (rated * target_rated - idle) / dyn_range;
  AMPERE_CHECK(util > 0.0)
      << "target power " << target_normalized_power
      << " is below the idle floor at rO=" << over_provision_ratio;
  AMPERE_CHECK(util <= 1.0) << "target power above full utilization";

  double n_servers = static_cast<double>(topology.num_rows) *
                     topology.racks_per_row * topology.servers_per_rack;
  double total_cores = n_servers * topology.server_capacity.cpu_cores;

  // Mean demand per job from the mix (or the generator's default mix).
  std::vector<DemandProfile> demands = workload.demands;
  if (demands.empty()) {
    demands = {{Resources{1.0, 2.0}, 0.4},
               {Resources{2.0, 4.0}, 0.4},
               {Resources{4.0, 8.0}, 0.2}};
  }
  double weight = 0.0;
  double mean_cores = 0.0;
  for (const DemandProfile& d : demands) {
    weight += d.weight;
    mean_cores += d.weight * d.demand.cpu_cores;
  }
  mean_cores /= weight;

  DurationModel durations(workload.durations);
  double mean_minutes = durations.TruncatedMeanMinutes();
  // Little's law: concurrent cores = rate * duration * cores_per_job.
  return util * total_cores / (mean_minutes * mean_cores);
}

ExperimentResult RunExperimentToResult(const ExperimentConfig& config) {
  ControlledExperiment experiment(config);
  return experiment.Run();
}

ControlledExperiment::ControlledExperiment(const ExperimentConfig& config)
    : config_(config), rng_(config.seed), sim_(),
      dc_(config.topology, &sim_), db_(),
      scheduler_(&dc_, config.scheduler, rng_.Fork(1)),
      monitor_(&dc_, &db_, config.monitor, rng_.Fork(2)) {
  if (config_.jobs >= 2) {
    // jobs lanes total: this (simulation) thread plus jobs-1 pool workers.
    // The pool is instance-owned, so concurrent experiments each get their
    // own; attaching it never changes results (see ExperimentConfig::jobs).
    pool_ = std::make_unique<ThreadPool>(config_.jobs - 1);
    dc_.SetThreadPool(pool_.get());
    monitor_.SetThreadPool(pool_.get());
  }
  if (config_.storage.enabled()) {
    // Persistent cold tier: the db spills past the hot budget into mmap'd
    // segments under store_dir. Pure storage plumbing — the control loop
    // reads the monitor's caches, so results are identical with it off.
    ColdStoreConfig cold;
    cold.dir = config_.storage.store_dir;
    cold.segment_samples =
        config_.storage.segment_samples > 0
            ? config_.storage.segment_samples
            : std::max<size_t>(16384, config_.storage.hot_budget_samples);
    auto opened = ColdStore::Create(cold);
    AMPERE_CHECK(opened.status.ok())
        << "cannot create cold store: " << opened.status.message;
    cold_store_ = std::move(opened.store);
    db_.AttachColdStore(cold_store_.get(),
                        config_.storage.hot_budget_samples);
  }
  // Arrival source: synthetic generator by default, trace replay when the
  // config asks. A recording run interposes the TraceRecorder as the sink —
  // a pass-through decorator, so recording never perturbs the run.
  JobSink* sink = &scheduler_;
  if (config_.trace.recording()) {
    trace_recorder_ = std::make_unique<TraceRecorder>(&sim_, &scheduler_);
    trace_recorder_->set_seed(config_.seed);
    trace_recorder_->SetClasses(config_.workload.demands);
    sink = trace_recorder_.get();
  }
  if (config_.trace.replay()) {
    std::shared_ptr<const TraceData> replay = config_.trace.replay_data;
    if (replay == nullptr) {
      TraceParseResult parsed = ReadTraceFile(config_.trace.replay_path);
      AMPERE_CHECK(parsed.ok()) << "cannot replay trace "
                                << config_.trace.replay_path << ": "
                                << parsed.message;
      replay = std::make_shared<const TraceData>(std::move(parsed.trace));
    }
    trace_workload_ = std::make_unique<TraceArrivalProcess>(
        std::move(replay), &sim_, sink, &ids_);
  } else {
    workload_ = std::make_unique<BatchWorkload>(config_.workload, &sim_,
                                                sink, &ids_, rng_.Fork(3));
  }
  SplitGroups();
  monitor_.RegisterGroup(kExperimentGroup, experiment_servers_);
  monitor_.RegisterGroup(kControlGroup, control_servers_);

  if (config_.faults.any()) {
    // Pre-generate the whole run's fault schedule (seeded independently of
    // the workload) and attach one injector to both fault surfaces. One
    // extra interval of slack covers tasks scheduled right at the horizon.
    const SimTime horizon =
        config_.warmup + config_.duration + config_.monitor.interval;
    injector_ = std::make_unique<faults::FaultInjector>(
        faults::FaultPlan::Generate(config_.faults, horizon));
    monitor_.AttachFaultInjector(injector_.get());
    scheduler_.AttachFaultInjector(injector_.get());
  }

  if (config_.obs.enabled()) {
    recorder_ =
        std::make_unique<obs::FlightRecorder>(config_.obs.recorder_capacity);
    recorder_->SetAnomalyPolicy(config_.obs.anomaly);
    if (!config_.obs.postmortem_dir.empty()) {
      recorder_->SetAnomalySink(
          [this](const obs::TimelineEvent& trigger) {
            WritePostmortem(trigger);
          });
    }
  }

  if (config_.enable_ampere) {
    controller_ = std::make_unique<AmpereController>(&scheduler_, &monitor_,
                                                     config_.controller);
    ControlDomain domain;
    domain.group = kExperimentGroup;
    domain.servers = experiment_servers_;
    domain.budget_watts = experiment_budget_watts_;
    controller_->AddDomain(std::move(domain));
  }

  // Throughput accounting: a "placement" is a job accepted onto a group's
  // server (§4.1.3 counts accepted jobs as the throughput indicator).
  scheduler_.SetPlacementListener(
      [this](const JobSpec&, ServerId server) {
        if (!counting_) {
          return;
        }
        bool is_experiment = (server.value() % 2) == 0;
        if (is_experiment) {
          ++window_thru_experiment_;
          ++minute_thru_experiment_;
        } else {
          ++window_thru_control_;
          ++minute_thru_control_;
        }
      });

  experiment_report_.name = kExperimentGroup;
  experiment_report_.budget_watts = experiment_budget_watts_;
  control_report_.name = kControlGroup;
  control_report_.budget_watts = control_budget_watts_;
}

void ControlledExperiment::SplitGroups() {
  // Parity split: even server ids form the experiment group, odd ids the
  // control group — a uniformly random, product-independent partition
  // (§4.1.2). Reserved servers never join either group.
  for (int32_t s = 0; s < dc_.num_servers(); ++s) {
    ServerId id(s);
    if (dc_.server(id).reserved()) {
      continue;
    }
    if (s % 2 == 0) {
      experiment_servers_.push_back(id);
    } else {
      control_servers_.push_back(id);
    }
  }
  AMPERE_CHECK(!experiment_servers_.empty() && !control_servers_.empty());

  double rated = dc_.power_model().rated_watts();
  double scale = 1.0 + config_.over_provision_ratio;
  double exp_rated =
      static_cast<double>(experiment_servers_.size()) * rated;
  double ctl_rated = static_cast<double>(control_servers_.size()) * rated;
  experiment_budget_watts_ =
      config_.scale_experiment_budget ? exp_rated / scale : exp_rated;
  control_budget_watts_ =
      config_.scale_control_budget ? ctl_rated / scale : ctl_rated;
  current_experiment_budget_ = experiment_budget_watts_;
}

void ControlledExperiment::StartBaseline() {
  // Replay mirrors the generator's event pattern (same Start slot, same
  // per-minute batch task), so a replayed run's event ordering matches the
  // recording run's.
  if (trace_workload_ != nullptr) {
    trace_workload_->Start(SimTime());
  } else {
    workload_->Start(SimTime());
  }
  // First sample lands at t = 1 min, once some workload exists.
  monitor_.Start(SimTime::Minutes(1));
}

void ControlledExperiment::InstallMetricsRecorder(SimTime from, SimTime to) {
  // Runs 2 s after each minute's monitor sample (and after the controller's
  // +1 s tick), so the record reflects this minute's decision.
  sim_.SchedulePeriodic(
      from + SimTime::Seconds(2), SimTime::Minutes(1), [this, to](SimTime t) {
        if (t >= to) {
          return;
        }
        double exp_watts = monitor_.LatestGroupWatts(kExperimentGroup);
        double ctl_watts = monitor_.LatestGroupWatts(kControlGroup);

        MinutePoint exp_point;
        exp_point.time = t;
        exp_point.power_watts = exp_watts;
        exp_point.normalized_power = exp_watts / current_experiment_budget_;
        exp_point.freeze_ratio =
            controller_ != nullptr ? controller_->freeze_ratio(0) : 0.0;
        exp_point.violation = exp_point.normalized_power > 1.0;
        exp_point.placements =
            static_cast<uint32_t>(minute_thru_experiment_);
        experiment_report_.minutes.push_back(exp_point);

        MinutePoint ctl_point;
        ctl_point.time = t;
        ctl_point.power_watts = ctl_watts;
        ctl_point.normalized_power = ctl_watts / control_budget_watts_;
        ctl_point.freeze_ratio = 0.0;
        ctl_point.violation = ctl_point.normalized_power > 1.0;
        ctl_point.placements = static_cast<uint32_t>(minute_thru_control_);
        control_report_.minutes.push_back(ctl_point);

        minute_thru_experiment_ = 0;
        minute_thru_control_ = 0;
      });
}

ExperimentResult ControlledExperiment::Run() {
  AMPERE_SPAN("experiment.run");
  // Install the flight recorder (if configured) for the whole closed loop.
  // Recording is passive — nothing downstream reads the recorder during the
  // run — so results are bit-identical with or without it.
  obs::ScopedFlightRecorder scoped_recorder(recorder_.get());
  StartBaseline();
  SimTime measure_start = config_.warmup;
  SimTime end = config_.warmup + config_.duration;

  if (controller_ != nullptr) {
    // Tick 1 s after the monitor samples so decisions see fresh data.
    controller_->Start(&sim_, measure_start + SimTime::Seconds(1));
  }
  if (controller_ != nullptr && !config_.budget_schedule.IsConstant()) {
    // P(t): re-target the domain budget each minute between the monitor's
    // sample (:00) and the controller's tick (+1 s), so every decision
    // rides the current cap. Gated on a non-constant schedule — fixed-cap
    // runs get no extra events and stay bit-identical.
    sim_.SchedulePeriodic(
        measure_start + SimTime::Millis(500), SimTime::Minutes(1),
        [this, measure_start, end](SimTime t) {
          if (t >= end) {
            return;
          }
          const double scale =
              config_.budget_schedule.ScaleAt(t - measure_start);
          current_experiment_budget_ = experiment_budget_watts_ * scale;
          budget_scale_min_ = std::min(budget_scale_min_, scale);
          controller_->SetDomainBudget(0, current_experiment_budget_);
        });
  }
  InstallMetricsRecorder(measure_start, end);
  sim_.ScheduleAt(measure_start, [this] { counting_ = true; });

  sim_.RunUntil(end);

  experiment_report_.throughput_jobs = window_thru_experiment_;
  control_report_.throughput_jobs = window_thru_control_;
  experiment_report_.Finalize();
  control_report_.Finalize();

  ExperimentResult result;
  result.experiment = experiment_report_;
  result.control = control_report_;
  result.throughput_ratio =
      window_thru_control_ > 0
          ? static_cast<double>(window_thru_experiment_) /
                static_cast<double>(window_thru_control_)
          : 0.0;
  result.gain_tpw =
      GainInTpw(result.throughput_ratio, config_.over_provision_ratio);
  result.jobs_submitted = scheduler_.jobs_submitted();
  result.jobs_completed = scheduler_.jobs_completed();
  result.final_queue_length = scheduler_.queue_length();
  result.breaker_tripped = dc_.AnyBreakerTripped();

  if (injector_ != nullptr) {
    result.fault_counts = injector_->counts();
  }
  if (controller_ != nullptr) {
    result.degraded_ticks = controller_->degraded_ticks();
    result.blackout_skips = controller_->blackout_skips();
    result.stale_fallbacks = controller_->stale_fallbacks();
    result.rpc_giveups = controller_->rpc_giveups();
  }

  if (controller_ != nullptr) {
    result.journal = controller_->journal().Summarize();
    // Re-export the audit-path aggregates as gauges so a harness run's obs
    // snapshot carries the journal summary alongside the span profile.
    if (obs::Enabled()) {
      for (const auto& d : result.journal.domains) {
        const std::string prefix = "journal." + d.domain + ".";
        obs::GaugeSet(prefix + "ticks", static_cast<double>(d.ticks));
        obs::GaugeSet(prefix + "violations",
                      static_cast<double>(d.violations));
        obs::GaugeSet(prefix + "u_mean", d.u_mean);
        obs::GaugeSet(prefix + "u_max", d.u_max);
        obs::GaugeSet(prefix + "p_mean", d.p_mean);
        obs::GaugeSet(prefix + "p_max", d.p_max);
        obs::GaugeSet(prefix + "degraded_ticks",
                      static_cast<double>(d.degraded_ticks));
        obs::GaugeSet(prefix + "rpc_giveups",
                      static_cast<double>(d.rpc_giveups));
      }
    }
  }

  if (recorder_ != nullptr) {
    result.timeline_events = recorder_->total_appended();
    if (!config_.obs.trace_path.empty()) {
      const std::string label =
          config_.obs.run_label.empty() ? "run" : config_.obs.run_label;
      if (obs::WriteChromeTraceFile(*recorder_, config_.obs.trace_path,
                                    label)) {
        // The trace leads the artifact list; postmortems follow in trigger
        // order (artifacts_ collected them as the sink fired).
        result.artifacts.push_back(config_.obs.trace_path);
      } else {
        AMPERE_LOG(kWarning) << "failed to write trace artifact "
                          << config_.obs.trace_path;
      }
    }
    result.artifacts.insert(result.artifacts.end(), artifacts_.begin(),
                            artifacts_.end());
  }

  result.budget_scale_min = budget_scale_min_;
  if (trace_workload_ != nullptr) {
    result.trace_jobs_replayed = trace_workload_->jobs_submitted();
  }
  if (trace_recorder_ != nullptr) {
    result.trace_jobs_recorded = trace_recorder_->jobs_recorded();
    if (!config_.trace.record_path.empty()) {
      if (WriteTraceFile(config_.trace.record_path,
                         trace_recorder_->trace())) {
        result.artifacts.push_back(config_.trace.record_path);
      } else {
        AMPERE_LOG(kWarning) << "failed to write trace artifact "
                             << config_.trace.record_path;
      }
    }
  }
  if (cold_store_ != nullptr) {
    // Seal every active segment so the store is fully on disk and reopenable
    // (the OpenExisting instant-restart path) before the process exits.
    const StoreStatus flushed = cold_store_->Flush();
    AMPERE_CHECK(flushed.ok())
        << "cold store flush failed: " << flushed.message;
    result.cold_samples_spilled = db_.samples_spilled();
    result.cold_segments = cold_store_->total_segments();
    result.artifacts.push_back(cold_store_->ManifestPath());
    AMPERE_LOG(kInfo) << "cold store: spilled "
                      << result.cold_samples_spilled << " samples into "
                      << result.cold_segments << " segments under "
                      << cold_store_->dir();
  }
  return result;
}

std::shared_ptr<const TraceData> ControlledExperiment::RecordedTrace() const {
  AMPERE_CHECK(trace_recorder_ != nullptr)
      << "RecordedTrace needs config.trace.recording()";
  return std::make_shared<const TraceData>(trace_recorder_->trace());
}

void ControlledExperiment::WritePostmortem(const obs::TimelineEvent& trigger) {
  const std::string label =
      config_.obs.run_label.empty() ? "run" : config_.obs.run_label;
  std::string safe_label = label;
  for (char& c : safe_label) {
    if (c == '/' || c == '\\' || c == ' ') c = '-';
  }
  std::error_code ec;
  std::filesystem::create_directories(config_.obs.postmortem_dir, ec);
  const std::string path = config_.obs.postmortem_dir + "/postmortem_" +
                           safe_label + "_" +
                           std::to_string(recorder_->anomalies_fired()) +
                           ".json";
  const std::string json = BuildPostmortemJson(
      trigger, *recorder_, obs::CurrentMetrics()->Snapshot(),
      controller_ != nullptr ? &controller_->journal() : nullptr,
      config_.obs.postmortem, label);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    AMPERE_LOG(kWarning) << "failed to open postmortem artifact " << path;
    return;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (ok) {
    artifacts_.push_back(path);
    AMPERE_LOG(kInfo) << "postmortem (" << obs::TimelineEventTypeName(
                             trigger.type)
                      << " @ " << trigger.time.minutes() << " min) -> "
                      << path;
  }
}

std::vector<FuSample> ControlledExperiment::RunFuCalibration(
    std::span<const double> u_levels, SimTime hold, SimTime rest,
    SimTime total, FreezeSelection selection) {
  AMPERE_CHECK(!u_levels.empty());
  AMPERE_CHECK(hold >= SimTime::Minutes(2));
  AMPERE_CHECK(rest >= SimTime::Minutes(1));
  AMPERE_CHECK(!config_.enable_ampere)
      << "calibration requires the closed-loop controller disabled";
  StartBaseline();
  sim_.RunUntil(config_.warmup);

  // The periodic task outlives this function body (it stays armed in the
  // event queue), so all mutable calibration state lives on the heap and is
  // captured by value.
  struct CalibrationState {
    std::vector<FuSample> samples;
    std::unordered_set<ServerId> frozen;
    std::vector<double> levels;
    double current_u = 0.0;
    double prev_exp = 0.0;
    double prev_ctl = 0.0;
    int64_t hold_minutes = 0;
    int64_t rest_minutes = 0;
    int64_t minute_in_phase = 0;
    bool holding = false;
    size_t level_index = 0;
    FreezeSelection selection = FreezeSelection::kHighestPower;
    Rng rng{1};
  };
  auto state = std::make_shared<CalibrationState>();
  state->levels.assign(u_levels.begin(), u_levels.end());
  state->hold_minutes = static_cast<int64_t>(hold.minutes());
  state->rest_minutes = static_cast<int64_t>(rest.minutes());
  state->selection = selection;
  state->rng = rng_.Fork(77);
  SimTime end = config_.warmup + total;

  // Per-minute calibration task, offset 1 s after the monitor sample.
  sim_.SchedulePeriodic(
      config_.warmup + SimTime::Seconds(1), SimTime::Minutes(1),
      [this, state, end](SimTime now) {
        if (now >= end) {
          return;
        }
        double exp_watts = monitor_.LatestGroupWatts(kExperimentGroup);
        double ctl_watts = monitor_.LatestGroupWatts(kControlGroup);
        // Sampling precedes the phase transition below, so at the tick that
        // applies a freeze `holding` is still false (no partial interval is
        // sampled) and the first sampled delta covers the first full frozen
        // minute.
        if (state->holding) {
          // f(u) sample while the freeze is fresh: the control group's
          // power change is the shared demand trend E_t; the experiment
          // group's shortfall from that trend is the freezing effect
          // (§3.4). Normalized to the budget.
          double delta_ctl =
              (ctl_watts - state->prev_ctl) / control_budget_watts_;
          double delta_exp =
              (exp_watts - state->prev_exp) / experiment_budget_watts_;
          state->samples.push_back(
              FuSample{state->current_u, delta_ctl - delta_exp});
        }
        state->prev_exp = exp_watts;
        state->prev_ctl = ctl_watts;

        ++state->minute_in_phase;
        if (state->holding && state->minute_in_phase >= state->hold_minutes) {
          // Hold over: release and rest so the groups re-equalize.
          for (ServerId id : state->frozen) {
            scheduler_.Unfreeze(id);
          }
          state->frozen.clear();
          state->holding = false;
          state->minute_in_phase = 0;
        } else if (!state->holding &&
                   state->minute_in_phase >= state->rest_minutes) {
          // Rest over: apply the next level to the highest-power
          // experiment-group servers (§3.5).
          state->current_u =
              state->levels[state->level_index % state->levels.size()];
          ++state->level_index;
          auto target = static_cast<size_t>(
              std::floor(state->current_u *
                         static_cast<double>(experiment_servers_.size())));
          std::vector<ServerId> ranked = experiment_servers_;
          switch (state->selection) {
            case FreezeSelection::kHighestPower:
              std::sort(ranked.begin(), ranked.end(),
                        [this](ServerId a, ServerId b) {
                          return monitor_.LatestServerWatts(a) >
                                 monitor_.LatestServerWatts(b);
                        });
              break;
            case FreezeSelection::kLowestPower:
              std::sort(ranked.begin(), ranked.end(),
                        [this](ServerId a, ServerId b) {
                          return monitor_.LatestServerWatts(a) <
                                 monitor_.LatestServerWatts(b);
                        });
              break;
            case FreezeSelection::kRandom:
              for (size_t i = ranked.size(); i > 1; --i) {
                size_t j = static_cast<size_t>(state->rng.UniformInt(
                    0, static_cast<int64_t>(i) - 1));
                std::swap(ranked[i - 1], ranked[j]);
              }
              break;
          }
          for (size_t i = 0; i < target && i < ranked.size(); ++i) {
            scheduler_.Freeze(ranked[i]);
            state->frozen.insert(ranked[i]);
          }
          state->holding = true;
          state->minute_in_phase = 0;
        }
      });

  sim_.RunUntil(end);
  for (ServerId id : state->frozen) {
    scheduler_.Unfreeze(id);
  }
  return state->samples;
}

}  // namespace ampere
