#include "src/core/metrics.h"

#include <algorithm>

namespace ampere {

void GroupReport::Finalize() {
  u_mean = 0.0;
  u_max = 0.0;
  p_mean = 0.0;
  p_max = 0.0;
  violations = 0;
  if (minutes.empty()) {
    return;
  }
  for (const MinutePoint& m : minutes) {
    u_mean += m.freeze_ratio;
    u_max = std::max(u_max, m.freeze_ratio);
    p_mean += m.normalized_power;
    p_max = std::max(p_max, m.normalized_power);
    if (m.violation) {
      ++violations;
    }
  }
  u_mean /= static_cast<double>(minutes.size());
  p_mean /= static_cast<double>(minutes.size());
}

double GainInTpw(double throughput_ratio, double over_provision_ratio) {
  return throughput_ratio * (1.0 + over_provision_ratio) - 1.0;
}

}  // namespace ampere
