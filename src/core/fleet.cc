#include "src/core/fleet.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/workload/duration_model.h"

namespace ampere {
namespace {

// Arrival rate that holds one row at `target_power` (fraction of the row's
// rated budget): Little's law through the power model, as in
// ArrivalRateForNormalizedPower but scoped to a single row.
double RowRateFor(const TopologyConfig& topology,
                  const DurationModelParams& durations, double target_power) {
  const PowerModelParams& pm = topology.power_model;
  double idle = pm.rated_watts * pm.idle_fraction;
  double dyn_range = pm.rated_watts - idle;
  double util = (pm.rated_watts * target_power - idle) / dyn_range;
  AMPERE_CHECK(util > 0.0 && util <= 1.0)
      << "row target power " << target_power << " unreachable";
  double row_cores = static_cast<double>(topology.racks_per_row) *
                     topology.servers_per_rack *
                     topology.server_capacity.cpu_cores;
  // Default demand mix: mean 2.0 cores/job (see BatchWorkload).
  const double mean_cores = 2.0;
  double mean_minutes = DurationModel(durations).TruncatedMeanMinutes();
  return util * row_cores / (mean_minutes * mean_cores);
}

}  // namespace

Fleet::Fleet(const FleetConfig& config)
    : config_(config), rng_(config.seed), sim_(),
      dc_(config.topology, &sim_), db_(),
      scheduler_(&dc_, config.scheduler, rng_.Fork(1)),
      monitor_(&dc_, &db_, config.monitor, rng_.Fork(2)) {
  AMPERE_CHECK(!config.products.empty()) << "need at least one product";
  for (int32_t r = 0; r < dc_.num_rows(); ++r) {
    const RowProduct& product =
        config_.products[std::min(static_cast<size_t>(r),
                                  config_.products.size() - 1)];
    double rate = RowRateFor(config_.topology, config_.durations,
                             product.target_power);
    row_rates_.push_back(rate);

    BatchWorkloadParams params;
    params.arrivals.base_rate_per_min = rate;
    params.arrivals.peak_hour = product.peak_hour;
    params.arrivals.diurnal_amplitude = product.diurnal_amplitude;
    params.arrivals.ar_sigma = product.ar_sigma;
    params.arrivals.burst_prob = product.burst_prob;
    params.arrivals.burst_factor = product.burst_factor;
    params.durations = config_.durations;
    params.row_affinity = RowId(r);
    workloads_.push_back(std::make_unique<BatchWorkload>(
        params, &sim_, &scheduler_, &ids_,
        rng_.Fork(100 + static_cast<uint64_t>(r))));
  }

  if (config_.flexible_target_power > 0.0) {
    // The flexible stream's per-row contribution sits on top of the idle
    // floor already accounted by the pinned products, so derive its rate
    // from the above-idle power increment alone.
    const PowerModelParams& pm = config_.topology.power_model;
    double dyn_range = pm.rated_watts * (1.0 - pm.idle_fraction);
    double util = config_.flexible_target_power * pm.rated_watts / dyn_range;
    AMPERE_CHECK(util > 0.0 && util <= 1.0)
        << "flexible_target_power unreachable";
    double fleet_cores = static_cast<double>(dc_.num_servers()) *
                         config_.topology.server_capacity.cpu_cores;
    double mean_minutes =
        DurationModel(config_.durations).TruncatedMeanMinutes();
    BatchWorkloadParams params;
    params.arrivals.base_rate_per_min =
        util * fleet_cores / (mean_minutes * 2.0);
    params.arrivals.peak_hour = config_.flexible.peak_hour;
    params.arrivals.diurnal_amplitude = config_.flexible.diurnal_amplitude;
    params.arrivals.ar_sigma = config_.flexible.ar_sigma;
    params.arrivals.burst_prob = config_.flexible.burst_prob;
    params.arrivals.burst_factor = config_.flexible.burst_factor;
    params.durations = config_.durations;
    workloads_.push_back(std::make_unique<BatchWorkload>(
        params, &sim_, &scheduler_, &ids_, rng_.Fork(999)));
  }
}

FleetResult RunFleetToResult(const FleetConfig& config, SimTime until) {
  Fleet fleet(config);
  fleet.Run(until);

  FleetResult result;
  for (int32_t r = 0; r < fleet.dc().num_rows(); ++r) {
    RowId row(r);
    double budget = fleet.dc().row_budget_watts(row);
    FleetRowSummary summary;
    double sum = 0.0;
    size_t n = 0;
    for (const TimePoint& p :
         fleet.db().Series(PowerMonitor::RowSeries(row))) {
      double normalized = p.value / budget;
      sum += normalized;
      summary.p_max = std::max(summary.p_max, normalized);
      ++n;
    }
    summary.p_mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
    result.rows.push_back(summary);
  }
  double dc_sum = 0.0;
  size_t dc_n = 0;
  for (const TimePoint& p :
       fleet.db().Series(PowerMonitor::kTotalSeries)) {
    dc_sum += p.value;
    result.dc_max_watts = std::max(result.dc_max_watts, p.value);
    ++dc_n;
  }
  result.dc_mean_watts = dc_n > 0 ? dc_sum / static_cast<double>(dc_n) : 0.0;
  result.jobs_submitted = fleet.scheduler().jobs_submitted();
  result.jobs_completed = fleet.scheduler().jobs_completed();
  return result;
}

void Fleet::Run(SimTime until) {
  AMPERE_SPAN("fleet.run");
  if (!started_) {
    started_ = true;
    for (auto& workload : workloads_) {
      workload->Start(SimTime());
    }
    monitor_.Start(SimTime::Minutes(1));
  }
  sim_.RunUntil(until);
  // Fleet-level dispatch telemetry after the drain: how much work the rows
  // absorbed and where the fleet's power landed.
  AMPERE_GAUGE_SET("fleet.jobs_submitted",
                   static_cast<double>(scheduler_.jobs_submitted()));
  AMPERE_GAUGE_SET("fleet.jobs_completed",
                   static_cast<double>(scheduler_.jobs_completed()));
  AMPERE_GAUGE_SET("fleet.queue_length",
                   static_cast<double>(scheduler_.queue_length()));
}

}  // namespace ampere
