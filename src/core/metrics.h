// Evaluation metrics: per-minute records, group summaries, and the TPW
// family of capacity metrics (§4.1.3).

#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace ampere {

struct MinutePoint {
  SimTime time;
  double power_watts = 0.0;
  double normalized_power = 0.0;  // power / budget.
  double freeze_ratio = 0.0;      // u_t in effect this minute.
  bool violation = false;         // normalized_power > 1.0 at the sample.
  uint32_t placements = 0;        // Jobs accepted this minute (Fig. 12).
};

// Per-group result of one experiment window, the quantities of Table 2.
struct GroupReport {
  std::string name;
  double budget_watts = 0.0;
  std::vector<MinutePoint> minutes;
  uint64_t throughput_jobs = 0;  // Jobs accepted during the window (§4.1.3).

  // Summary statistics over `minutes` (populated by Finalize).
  double u_mean = 0.0;
  double u_max = 0.0;
  double p_mean = 0.0;
  double p_max = 0.0;
  int violations = 0;

  void Finalize();
};

// Throughput-per-provisioned-watt bookkeeping (Eqs. 17-18).
//
// TPW = throughput / (P_M * T); the gain from over-provisioning at ratio rO
// with measured throughput ratio rT is G_TPW = rT * (1 + rO) - 1.
double GainInTpw(double throughput_ratio, double over_provision_ratio);

}  // namespace ampere

#endif  // SRC_CORE_METRICS_H_
